"""Unit tests for the backward DFS path generator.

The regression of record: ``PathFinder._dfs`` used to mark
``(deref, dest, value)`` keys in a ``visited`` set shared across
sibling branches and never unmarked them on backtrack, so a definition
chased while resolving one reaching definition was permanently
excluded from every later sibling — real source→sink paths were lost
depending on iteration order.
"""

from repro.core.paths import PathFinder
from repro.symexec.state import DefPair
from repro.symexec.value import (
    SymConst,
    SymTaint,
    SymVar,
    mk_add,
    mk_deref,
)

DEREF_S = mk_deref(SymVar("s"))
DEREF_M = mk_deref(SymVar("m"))
TAINT = SymTaint(source="recv", callsite=0x100)


class _Enriched:
    """The minimal surface PathFinder needs."""

    name = "handler"

    def __init__(self, pairs):
        self.def_pairs = list(pairs)
        self.taint_objects = set()


class _Sink:
    name = "strcpy"
    addr = 0x400


def _trace(pairs, expr):
    finder = PathFinder(_Enriched(pairs))
    return finder.trace(_Sink(), expr)


def test_sibling_branches_share_a_definition_chain():
    """Two reaching definitions of the same slot both flow through
    ``deref(m)``; chasing the chain in the first branch must not
    consume it for the second."""
    pairs = [
        DefPair(dest=DEREF_S, value=mk_add(DEREF_M, SymConst(1)), site=1),
        DefPair(dest=DEREF_S, value=mk_add(DEREF_M, SymConst(2)), site=2),
        DefPair(dest=DEREF_M, value=TAINT, site=3),
    ]
    paths = _trace(pairs, DEREF_S)
    assert len(paths) == 2
    assert {p.source_name for p in paths} == {"recv"}
    assert {p.steps[0][0] for p in paths} == {1, 2}


def test_two_sinks_reuse_one_finder():
    """Each trace() starts a fresh chain: two sinks sharing the whole
    definition chain both resolve to the source."""
    pairs = [
        DefPair(dest=DEREF_S, value=DEREF_M, site=1),
        DefPair(dest=DEREF_M, value=TAINT, site=2),
    ]
    finder = PathFinder(_Enriched(pairs))
    first = finder.trace(_Sink(), DEREF_S)
    second = finder.trace(_Sink(), DEREF_S)
    assert len(first) == 1 and len(second) == 1
    assert first[0].source_name == second[0].source_name == "recv"


def test_cyclic_definitions_terminate():
    """Mutually recursive definitions: the on-chain visited guard (plus
    the depth/expansion budgets) must prevent an infinite rewrite."""
    pairs = [
        DefPair(dest=DEREF_S, value=mk_add(DEREF_M, SymConst(1)), site=1),
        DefPair(dest=DEREF_M, value=mk_add(DEREF_S, SymConst(1)), site=2),
    ]
    assert _trace(pairs, DEREF_S) == []
