"""PoC validation: findings confirmed by concrete emulation.

The paper verified reports on real devices; here the same experiment
runs in emulation — attacker input must produce an observable exploit
effect (hijacked PC, smashed canary, or injected shell metacharacter),
and the sanitized decoys must survive the same input.
"""

import pytest

from repro.core.validate import validate_function, validate_ground_truth
from repro.corpus import vulnpatterns as vp
from repro.corpus.builder import build_binary
from repro.corpus.minicc import compiler_for

ARCHES = ("arm", "mips")


def _build(arch, cases):
    funcs, truth = [], []
    for factory, kwargs in cases:
        f, g = factory(**kwargs)
        funcs += f
        truth += g
    compiler = compiler_for(arch, "v")
    source, imports = compiler.compile_module(funcs)
    return build_binary("v", arch, source, imports, entry=funcs[0].name,
                        ground_truth=truth)


@pytest.mark.parametrize("arch", ARCHES)
def test_command_injection_reaches_system(arch):
    built = _build(arch, [(vp.cve_2015_2051, {})])
    result = validate_function(built.binary, "cgi_soap_action",
                               "command-injection")
    assert result.confirmed
    assert "system" in result.effect
    assert "injected metacharacter" in result.effect


@pytest.mark.parametrize("arch", ARCHES)
def test_strcpy_overflow_hijacks_or_smashes(arch):
    built = _build(arch, [(vp.cve_2016_5681, {})])
    result = validate_function(built.binary, "cgi_session_cookie",
                               "buffer-overflow")
    assert result.confirmed
    assert "hijack" in result.effect or "canary" in result.effect


@pytest.mark.parametrize("arch", ARCHES)
def test_sanitized_decoy_survives_attack(arch):
    built = _build(arch, [
        (vp.cve_2015_2051, {"name": "safe_soap", "vulnerable": False}),
        (vp.cve_2016_5681, {"name": "safe_cookie", "vulnerable": False}),
    ])
    for name, kind in [("safe_soap", "command-injection"),
                       ("safe_cookie", "buffer-overflow")]:
        result = validate_function(built.binary, name, kind)
        assert not result.confirmed, (name, result.effect)


@pytest.mark.parametrize("arch", ARCHES)
def test_loop_copy_smashes_canary(arch):
    built = _build(arch, [(vp.zero_day_loop_copy, {})])
    result = validate_function(built.binary, "hik_copy_uri",
                               "buffer-overflow")
    assert result.confirmed


@pytest.mark.parametrize("arch", ARCHES)
def test_sscanf_with_protocol_input(arch):
    built = _build(arch, [(vp.zero_day_sscanf, {})])
    truth = built.ground_truth[0]
    result = validate_function(
        built.binary, "uv_rtsp_session", "buffer-overflow",
        input_bytes=truth.poc_input,
    )
    assert result.confirmed


@pytest.mark.parametrize("arch", ARCHES)
def test_ground_truth_validation_agrees_with_labels(arch):
    built = _build(arch, [
        (vp.cve_2013_7389_strncpy, {}),
        (vp.zero_day_read_memcpy, {}),
        (vp.zero_day_read_memcpy, {"name": "safe_frame",
                                   "vulnerable": False}),
    ])
    results = validate_ground_truth(built)
    want = {}
    for item in built.ground_truth:
        want.setdefault(item.function, item.vulnerable)
    for name, result in results.items():
        assert result.confirmed == want[name], (name, result.effect)


def test_detection_and_validation_agree_end_to_end():
    """Static findings and dynamic confirmation coincide (ARM)."""
    from repro.core import DTaint

    built = _build("arm", [
        (vp.cve_2016_5681, {}),
        (vp.cve_2015_2051, {}),
        (vp.cve_2016_5681, {"name": "safe_cookie", "vulnerable": False}),
    ])
    report = DTaint(built.binary, name="v").run()
    static_vuln_functions = set()
    for finding in report.findings:
        for name, symbol in built.binary.functions.items():
            if symbol.addr <= finding.sink_addr < symbol.addr + symbol.size:
                static_vuln_functions.add(name)
    dynamic = validate_ground_truth(built)
    dynamic_confirmed = {n for n, r in dynamic.items() if r.confirmed}
    assert static_vuln_functions == dynamic_confirmed
