"""Property tests for the hash-consing (interning) arena.

Interning's contract: structurally equal construction yields the *same
object* for every :class:`SymExpr` kind, hashes are stable and
identity-based, copies are identity, pickling re-interns, and the
linear canonicalizer round-trips ``a + b - b`` back to ``a`` itself.
"""

import copy
import pickle

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ir.expr import Ops
from repro.symexec.value import (
    SymConst,
    SymDeref,
    SymHeap,
    SymLin,
    SymOp,
    SymRet,
    SymTaint,
    SymVar,
    make_linear,
    mk_add,
    mk_binop,
    mk_deref,
    mk_mul,
    mk_sub,
    node_set,
    substitute,
)

A = SymVar("arg0")
B = SymVar("arg1")
SP = SymVar("sp0")


# ---------------------------------------------------------------------------
# One builder per SymExpr kind, each constructing from scratch so two
# calls exercise the full constructor path (not a shared local).

KIND_BUILDERS = {
    "SymConst": lambda: SymConst(0x4C12),
    "SymVar": lambda: SymVar("interning_probe"),
    "SymRet": lambda: SymRet(0x8A40),
    "SymDeref": lambda: SymDeref(mk_add(SymVar("arg0"), SymConst(0x4C))),
    "SymLin": lambda: mk_add(mk_mul(SymConst(3), SymVar("arg0")),
                             mk_add(SymVar("arg1"), SymConst(7))),
    "SymOp": lambda: SymOp(Ops.AND, (SymVar("arg0"), SymConst(0xFF))),
    "SymTaint": lambda: SymTaint(source="recv", callsite=0x1234),
    "SymHeap": lambda: SymHeap(chain_hash=0xDEADBEEF),
}


@pytest.mark.parametrize("kind", sorted(KIND_BUILDERS))
def test_make_x_is_make_x(kind):
    build = KIND_BUILDERS[kind]
    assert build() is build()


@pytest.mark.parametrize("kind", sorted(KIND_BUILDERS))
def test_hash_stable_across_constructions(kind):
    build = KIND_BUILDERS[kind]
    first = hash(build())
    # Interleave unrelated construction; the hash must not drift.
    for i in range(64):
        mk_deref(mk_add(SymVar("noise%d" % (i % 7)), SymConst(i)))
    assert hash(build()) == first


@pytest.mark.parametrize("kind", sorted(KIND_BUILDERS))
def test_pickle_reinterns(kind):
    original = KIND_BUILDERS[kind]()
    clone = pickle.loads(pickle.dumps(original, protocol=4))
    assert clone is original


@pytest.mark.parametrize("kind", sorted(KIND_BUILDERS))
def test_copy_is_identity(kind):
    original = KIND_BUILDERS[kind]()
    assert copy.copy(original) is original
    assert copy.deepcopy(original) is original


@pytest.mark.parametrize("kind", sorted(KIND_BUILDERS))
def test_immutability_enforced(kind):
    expr = KIND_BUILDERS[kind]()
    with pytest.raises(AttributeError):
        expr.value = 1
    with pytest.raises(AttributeError):
        del expr.size


def test_small_constant_pool_preinterned():
    # Common immediates come from the eagerly filled pool.
    assert SymConst(0) is SymConst(0)
    assert SymConst(4) is SymConst(4)
    assert SymConst(0xFF) is SymConst(0xFF)
    assert SymConst(0xFFFFFFFF) is SymConst(0xFFFFFFFF)


def test_symlin_rejects_non_canonical_tuples():
    # Degenerate single-term/coef-1/const-0 form is just the atom.
    with pytest.raises(AssertionError):
        SymLin(((A, 1),), 0)
    # Zero coefficients are dropped by canonicalization, never stored.
    with pytest.raises(AssertionError):
        SymLin(((A, 0),), 5)
    # Constants fold into the const slot.
    with pytest.raises(AssertionError):
        SymLin(((SymConst(4), 2),), 0)


def test_make_linear_is_the_canonical_entry_point():
    assert make_linear({A: 1}, 0) is A
    assert make_linear({}, 7) is SymConst(7)
    assert make_linear({A: 0, B: 2}, -3) is mk_sub(mk_mul(SymConst(2), B),
                                                   SymConst(3))


# ---------------------------------------------------------------------------
# Hypothesis: identity + round-trips over generated expressions.

atoms = st.sampled_from(
    [A, B, SP, SymVar("arg2"), SymRet(0x400), SymHeap(chain_hash=0x77),
     SymTaint(source="recv", callsite=0x900)]
)
consts = st.integers(min_value=-0x2000, max_value=0x2000).map(
    lambda v: SymConst(v & 0xFFFFFFFF)
)
simple = st.one_of(atoms, consts)


def compound(children):
    return st.one_of(
        st.tuples(children).map(lambda t: mk_deref(t[0])),
        st.tuples(children, children).map(lambda t: mk_add(t[0], t[1])),
        st.tuples(children, consts).map(lambda t: mk_mul(t[1], t[0])),
        st.tuples(children, children).map(
            lambda t: mk_binop(Ops.AND, t[0], t[1])
        ),
    )


exprs = st.recursive(simple, compound, max_leaves=8)


@given(exprs, exprs)
def test_structural_equality_is_identity(x, y):
    assert (x == y) == (x is y)
    if x is y:
        assert hash(x) == hash(y)


@given(exprs, exprs)
def test_add_sub_roundtrips_to_same_object(x, y):
    assert mk_sub(mk_add(x, y), y) is x
    assert mk_add(mk_sub(x, y), y) is x


@given(exprs)
def test_deref_reconstruction_interns(x):
    assert mk_deref(x) is mk_deref(x)
    assert SymDeref(x, 2) is SymDeref(x, 2)
    assert SymDeref(x, 2) is not SymDeref(x, 4)


@given(exprs)
def test_substitute_noop_returns_same_object(x):
    probe = SymVar("never_occurs_in_x")
    assert substitute(x, {probe: A}) is x
    assert substitute(x, {}) is x


@given(exprs)
def test_node_set_contains_self(x):
    assert x in node_set(x)
