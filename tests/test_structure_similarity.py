"""Data-structure layout similarity (Formula 2) and indirect calls."""

import pytest

from repro.core import DTaint
from repro.core.structure import (
    StructLayout,
    extract_layouts,
    resolve_indirect_calls,
    similarity,
    ROOT,
)
from repro.loader.binary import load_elf
from repro.loader.link import build_executable
from repro.symexec.value import SymVar, mk_add, mk_deref, SymConst, substitute


def _layout(fields_by_base):
    layout = StructLayout(root=SymVar("arg0"))
    for base, fields in fields_by_base.items():
        for offset, type_ in fields:
            layout.add(base, offset, type_)
    return layout


class TestSimilarity:
    def test_identical_layouts_score_one_per_base(self):
        a = _layout({ROOT: [(0, "ptr"), (8, "int")]})
        b = _layout({ROOT: [(0, "ptr"), (8, "int")]})
        assert similarity(a, b) == 1.0

    def test_subset_layout(self):
        a = _layout({ROOT: [(8, "int")]})
        b = _layout({ROOT: [(0, "ptr"), (8, "int")]})
        assert similarity(a, b) == pytest.approx(0.5)

    def test_type_conflict_zeroes_similarity(self):
        a = _layout({ROOT: [(8, "ptr")]})
        b = _layout({ROOT: [(8, "int")]})
        assert similarity(a, b) == 0.0

    def test_base_containment_rule(self):
        inner = mk_deref(mk_add(ROOT, SymConst(4)))
        a = _layout({ROOT: [(0, "int")], inner: [(0, "int")]})
        b = _layout({inner: [(0, "int")]})
        # base(B) ⊆ base(A): allowed.
        assert similarity(a, b) > 0
        c = _layout({mk_deref(ROOT): [(0, "int")]})
        # Disjoint base sets: rejected.
        assert similarity(a, c) == 0.0

    def test_symmetry(self):
        a = _layout({ROOT: [(0, "ptr"), (4, "int"), (8, "int")]})
        b = _layout({ROOT: [(0, "ptr"), (4, "int")]})
        assert similarity(a, b) == similarity(b, a)

    def test_multilayer_sums_per_base(self):
        inner = mk_deref(mk_add(ROOT, SymConst(8)))
        a = _layout({ROOT: [(8, "ptr")], inner: [(0, "int"), (4, "int")]})
        b = _layout({ROOT: [(8, "ptr")], inner: [(0, "int"), (4, "int")]})
        assert similarity(a, b) == pytest.approx(2.0)


# A dispatcher that calls a handler through a function pointer kept in
# *writable* memory (so constant folding cannot resolve it) — only the
# layout of the request object identifies the callee.
DISPATCH_SRC = r"""
.globl dispatch
dispatch:                          @ (struct request *req)
    push {r4, r5, lr}
    mov r4, r0
    ldr r5, [r4, #0x8]             @ touch req->query (char*)
    ldr r3, [r4, #0x10]            @ touch req->len   (int)
    cmp r3, #0
    beq skip
    ldr r3, =handler_slot
    ldr r3, [r3]                   @ fp = handler_slot (writable!)
    mov r0, r4
    blx r3                         @ indirect call
skip:
    pop {r4, r5, pc}
.ltorg

.globl handler_echo
handler_echo:                      @ touches only req->name
    ldr r1, [r0, #0x0]
    bx lr

.globl handler_exec
handler_exec:                      @ strcpy(stack, req->query); uses len
    push {r4, lr}
    sub sp, sp, #0x40
    ldr r1, [r0, #0x8]             @ req->query
    ldr r2, [r0, #0x10]            @ req->len
    cmp r2, #0
    beq done_exec
    mov r0, sp
    bl strcpy
done_exec:
    add sp, sp, #0x40
    pop {r4, pc}

.globl fill_request
fill_request:                      @ (req): req->query = getenv("QUERY")
    push {r4, lr}
    mov r4, r0
    ldr r0, =qname
    bl getenv
    str r0, [r4, #0x8]
    mov r3, #1
    str r3, [r4, #0x10]
    pop {r4, pc}
.ltorg

.globl main
main:
    push {r4, lr}
    sub sp, sp, #0x20
    mov r0, sp
    bl fill_request
    mov r0, sp
    bl dispatch
    add sp, sp, #0x20
    pop {r4, pc}

.data
.globl handler_slot
handler_slot: .word handler_exec
.rodata
qname: .asciz "QUERY"
"""


@pytest.fixture(scope="module")
def dispatch_result():
    elf_bytes, _ = build_executable(
        "arm", DISPATCH_SRC, imports=["strcpy", "getenv"], entry="main"
    )
    binary = load_elf(elf_bytes)
    detector = DTaint(binary, name="dispatch")
    report = detector.run()
    return detector, report


def test_indirect_call_resolved_by_similarity(dispatch_result):
    detector, report = dispatch_result
    assert report.indirect_resolved == 1
    resolution = detector.resolutions[0]
    assert resolution.caller == "dispatch"
    assert resolution.callee == "handler_exec"
    assert resolution.score > 0


def test_call_graph_gains_indirect_edge(dispatch_result):
    detector, _ = dispatch_result
    assert "handler_exec" in detector.call_graph.callees("dispatch")


def test_taint_flows_through_indirect_call(dispatch_result):
    """getenv -> req->query -> (indirect) handler_exec -> strcpy."""
    _, report = dispatch_result
    strcpy_findings = [
        f for f in report.findings if f.sink_name == "strcpy"
    ]
    assert strcpy_findings, report.render()
    assert strcpy_findings[0].source_name == "getenv"


def test_layout_extraction_from_summary(dispatch_result):
    detector, _ = dispatch_result
    layouts = extract_layouts(detector.summaries["handler_exec"])
    arg0_layout = layouts[SymVar("arg0")]
    offsets = {
        offset for fields in arg0_layout.fields.values()
        for offset, _ in fields
    }
    assert {0x8, 0x10} <= offsets
