"""Chaos suite: deterministic fault injection through the full pipeline.

The acceptance property is **fault isolation**: every injected fault
degrades exactly its target function (or file) with the right typed
reason, while every finding outside the failure domain stays
byte-identical to a clean run.  The test binary has three independent
vulnerable handlers (no cross-calls), so the failure domain of a fault
in ``h2`` is exactly ``{h2}``.

``CHAOS_SEED`` (environment) drives the seeded sweep the CI chaos job
runs: the seed picks the victim function via
:func:`repro.faultinject.pick_target`, so every seed is a different,
reproducible chaos scenario.
"""

import json
import os
import time

import pytest

from repro.core import DTaint, DTaintConfig
from repro.errors import (
    AnalysisFault,
    CFGError,
    DeadlineExceeded,
    DecodeFault,
    LiftFault,
    MalformedInput,
    SymExecError,
    SymexecFault,
)
from repro.loader.binary import load_elf
from repro.loader.link import build_executable
from repro.pipeline.faultinject import (
    FaultInjector,
    FaultSpec,
    injected,
    pick_target,
)
from repro.symexec.engine import SymbolicEngine

_HANDLER = (
    ".globl %(name)s\n%(name)s:\n    push {lr}\n    ldr r0, =%(lit)s\n"
    "    bl getenv\n    bl system\n    pop {pc}\n.ltorg\n"
)

HANDLERS = ("h1", "h2", "h3")


def _handlers_elf():
    """Three independent getenv->system handlers; no cross-calls."""
    asm = "".join(
        _HANDLER % {"name": name, "lit": "n_%s" % name} for name in HANDLERS
    )
    asm += ".rodata\n" + "".join(
        "n_%s: .asciz \"%s\"\n" % (name, name.upper()) for name in HANDLERS
    )
    elf_bytes, _ = build_executable(
        "arm", asm, imports=["getenv", "system"]
    )
    return elf_bytes


def _scan(elf_bytes, specs=(), **config_kwargs):
    binary = load_elf(elf_bytes)
    config = DTaintConfig(**config_kwargs)
    detector = DTaint(binary, config=config, name="chaos")
    if specs:
        with injected(specs):
            return detector.run()
    return detector.run()


def _findings_blob(report, exclude=()):
    """Canonical, byte-comparable serialisation of the findings."""
    from dataclasses import asdict

    rows = sorted(
        (asdict(f) for f in report.findings if f.function not in exclude),
        key=lambda f: (f["function"], f["sink_addr"], f["source_addr"]),
    )
    return json.dumps(rows, sort_keys=True).encode("utf-8")


class TestSpecs:
    def test_parse_roundtrip(self):
        spec = FaultSpec.parse("decode@cfg:handle_request")
        assert (spec.fault, spec.site, spec.target) == (
            "decode", "cfg", "handle_request"
        )
        assert spec.describe() == "decode@cfg:handle_request"
        assert FaultSpec.parse("malformed@loader").target == "*"

    def test_bad_specs_rejected(self):
        with pytest.raises(ValueError):
            FaultSpec.parse("no-at-sign")
        with pytest.raises(ValueError):
            FaultSpec.parse("@cfg:x")
        with pytest.raises(ValueError):
            FaultSpec(fault="nonsense", site="cfg")

    def test_fault_types_stay_catchable_as_legacy_bases(self):
        # Degradation paths rely on existing except clauses still
        # seeing the new typed faults.
        assert issubclass(DecodeFault, CFGError)
        assert issubclass(LiftFault, CFGError)
        assert issubclass(SymexecFault, SymExecError)
        assert issubclass(DecodeFault, AnalysisFault)
        assert issubclass(DeadlineExceeded, AnalysisFault)

    def test_pick_target_deterministic(self):
        names = ["zeta", "alpha", "mid"]
        assert pick_target(names, 0) == "alpha"
        assert pick_target(names, 1) == "mid"
        assert pick_target(names, 5) == "zeta"
        assert pick_target(names, 3) == pick_target(names, 0)
        with pytest.raises(ValueError):
            pick_target([], 0)


class TestInjector:
    def test_fires_at_most_shots_times(self):
        injector = FaultInjector(["symexec@symexec:f"], shots=1)
        with pytest.raises(SymexecFault):
            injector.check("symexec", "f")
        injector.check("symexec", "f")     # spent: no raise
        assert injector.fired_specs() == ["symexec@symexec:f"]
        assert injector.fired[0].target == "f"

    def test_exact_target_does_not_hit_others(self):
        injector = FaultInjector(["decode@cfg:f1"])
        injector.check("cfg", "f2")
        injector.check("cfg.lift", "f1")
        assert injector.fired == []

    def test_wildcard_hits_first_eligible(self):
        injector = FaultInjector(["decode@cfg:*"])
        with pytest.raises(DecodeFault):
            injector.check("cfg", "whoever")
        assert injector.fired[0].target == "whoever"

    def test_uninstalled_probe_is_noop(self):
        from repro import faultinject

        assert faultinject.active() is None
        faultinject.check("cfg", "f")      # must not raise


FAULT_MATRIX = [
    ("decode@cfg:%s", "DecodeFault", "cfg"),
    ("lift@cfg.lift:%s", "LiftFault", "cfg"),
    ("symexec@symexec:%s", "SymexecFault", "symexec"),
    ("symexec@interproc:%s", "SymexecFault", "interproc"),
    ("symexec@detect:%s", "SymexecFault", "detect"),
]


class TestIsolation:
    """Every fault degrades exactly one function; the rest is clean."""

    @pytest.fixture(scope="class")
    def elf(self):
        return _handlers_elf()

    @pytest.fixture(scope="class")
    def clean(self, elf):
        return _scan(elf)

    def test_clean_run_finds_all_three(self, clean):
        assert sorted(f.function for f in clean.vulnerable_paths) == list(
            HANDLERS
        )
        assert clean.degraded_count == 0
        coverage = clean.coverage
        assert coverage["analyzed"] == coverage["selected"] == 3

    @pytest.mark.parametrize("template,error_type,phase", FAULT_MATRIX)
    def test_single_fault_degrades_only_its_target(
        self, elf, clean, template, error_type, phase
    ):
        target = pick_target(
            HANDLERS, int(os.environ.get("CHAOS_SEED", "0"))
        )
        report = _scan(elf, specs=[template % target])
        assert [d.function for d in report.degraded_functions] == [target]
        degraded = report.degraded_functions[0]
        assert degraded.error_type == error_type
        assert degraded.phase == phase
        assert "injected" in degraded.reason
        # Findings outside the failure domain are byte-identical.
        assert _findings_blob(report) == _findings_blob(
            clean, exclude={target}
        )
        coverage = report.coverage
        assert coverage["degraded"] == 1
        assert coverage["analyzed"] == len(HANDLERS) - 1
        assert coverage["selected"] == len(HANDLERS)

    def test_report_dict_carries_degradation(self, elf):
        report = _scan(elf, specs=["decode@cfg:h2"])
        document = report.to_dict()
        assert document["coverage"]["degraded"] == 1
        assert document["degraded_functions"][0]["function"] == "h2"
        rendered = report.render()
        assert "1 degraded" in rendered
        assert "[degraded] h2@" in rendered

    def test_two_faults_two_domains(self, elf, clean):
        report = _scan(elf, specs=["decode@cfg:h1", "symexec@symexec:h3"])
        assert sorted(d.function for d in report.degraded_functions) == [
            "h1", "h3"
        ]
        assert _findings_blob(report) == _findings_blob(
            clean, exclude={"h1", "h3"}
        )

    def test_deadline_injection_truncates_without_degrading(
        self, elf, clean
    ):
        report = _scan(elf, specs=["deadline@symexec.deadline:h2"])
        assert report.degraded_count == 0
        assert report.truncated_summaries >= 1
        assert report.deadline_truncated >= 1
        # h1/h3 are untouched by h2's truncation.
        assert _findings_blob(report, exclude={"h2"}) == _findings_blob(
            clean, exclude={"h2"}
        )


class TestMalformedInjection:
    def test_loader_fault_is_typed(self):
        elf = _handlers_elf()
        with injected(["malformed@loader:img"]):
            with pytest.raises(MalformedInput):
                load_elf(elf, name="img")

    def test_firmware_file_fault_skips_one_file(self):
        from repro.firmware import binwalk
        from repro.firmware.image import pack_trx
        from repro.firmware.simplefs import SimpleFS

        fs = SimpleFS()
        fs.add_file("/bin/a", b"A" * 100)
        fs.add_file("/bin/b", b"B" * 100)
        blob = pack_trx(b"KERNEL", fs.pack())
        with injected(["malformed@firmware.file:/bin/a"]):
            unpacked, _container = binwalk.extract_filesystem(blob)
        assert unpacked.paths() == ["/bin/b"]
        assert unpacked.skipped[0][0] == "/bin/a"

    def test_firmware_unpack_fault_is_typed(self):
        from repro.firmware import binwalk
        from repro.firmware.image import pack_trx
        from repro.firmware.simplefs import SimpleFS

        fs = SimpleFS()
        fs.add_file("/bin/a", b"A")
        blob = pack_trx(b"K", fs.pack())
        with injected(["malformed@firmware.unpack:fw"]):
            with pytest.raises(MalformedInput):
                binwalk.extract_filesystem(blob, name="fw")


class TestDeadline:
    """The soft deadline caps runaway symbolic exploration."""

    def _pathological_elf(self, stages=18):
        # `stages` chained conditional branches give 2^stages paths:
        # enough to out-run any small deadline at a huge max_paths.
        lines = [".globl patho", "patho:", "    push {lr}"]
        for i in range(stages):
            lines.append("    cmp r0, #%d" % (i + 1))
            lines.append("    bne L%d" % i)
            lines.append("    add r1, r1, #%d" % (i + 1))
            lines.append("L%d:" % i)
        lines.append("    pop {pc}")
        elf_bytes, _ = build_executable("arm", "\n".join(lines) + "\n")
        return elf_bytes

    def test_pathological_function_obeys_deadline(self):
        deadline = 0.2
        binary = load_elf(self._pathological_elf())
        engine = SymbolicEngine(
            binary, max_paths=1_000_000, max_blocks_per_path=512,
            deadline_seconds=deadline,
        )
        detector = DTaint(binary, name="patho")
        function = detector.build_cfg()["patho"]
        start = time.monotonic()
        summary = engine.analyze_function(function)
        elapsed = time.monotonic() - start
        assert summary.truncated
        assert summary.deadline_hit
        # The acceptance bound: within 2x the configured deadline.
        assert elapsed < 2 * deadline, (
            "deadline overshoot: %.3fs > %.3fs" % (elapsed, 2 * deadline)
        )

    def test_no_deadline_by_default(self):
        elf = _handlers_elf()
        report = _scan(elf)
        assert report.deadline_truncated == 0

    def test_config_deadline_flows_to_report(self):
        binary = load_elf(self._pathological_elf())
        config = DTaintConfig(max_paths=1_000_000, deadline_seconds=0.05)
        report = DTaint(binary, config=config, name="patho").run()
        assert report.deadline_truncated == 1
        assert report.degraded_count == 0   # truncation is not failure


class TestFleetInjection:
    """Injection specs ride FleetJob.faults into worker processes."""

    def _write_elf(self, tmp_path):
        path = tmp_path / "handlers.elf"
        path.write_bytes(_handlers_elf())
        return str(path)

    def test_execute_job_fires_and_degrades(self, tmp_path):
        from repro.pipeline import FleetJob, execute_job

        job = FleetJob(
            job_id="chaos", kind="elf", path=self._write_elf(tmp_path),
            faults=("decode@cfg:h2",),
        )
        payload = execute_job(job)
        assert payload["fired_faults"] == ["decode@cfg:h2"]
        assert payload["report"]["coverage"]["degraded"] == 1
        assert payload["report"]["degraded_functions"][0]["function"] == "h2"
        from repro import faultinject

        assert faultinject.active() is None   # uninstalled afterwards

    def test_faulted_jobs_bypass_caches(self, tmp_path):
        from repro.pipeline import FleetJob, execute_job

        elf_path = self._write_elf(tmp_path)
        cache_dir = str(tmp_path / "cache")
        clean = FleetJob(job_id="clean", kind="elf", path=elf_path)
        execute_job(clean, cache_dir=cache_dir)
        faulted = FleetJob(
            job_id="faulted", kind="elf", path=elf_path,
            faults=("decode@cfg:h2",),
        )
        payload = execute_job(faulted, cache_dir=cache_dir)
        # Neither served from the report cache nor poisoning it.
        assert not payload["cache"]["report_cache_hit"]
        assert payload["report"]["coverage"]["degraded"] == 1
        again = execute_job(clean, cache_dir=cache_dir)
        assert again["cache"]["report_cache_hit"]
        assert again["report"]["coverage"]["degraded"] == 0

    def test_scheduler_run_reports_degraded_telemetry(self, tmp_path):
        from repro.pipeline import (
            FleetJob,
            FleetScheduler,
            Telemetry,
            read_events,
        )

        elf_path = self._write_elf(tmp_path)
        telemetry_path = str(tmp_path / "telemetry.jsonl")
        with Telemetry(path=telemetry_path) as telemetry:
            scheduler = FleetScheduler(
                jobs=1, telemetry=telemetry, backoff=0.0
            )
            results = scheduler.run([
                FleetJob(job_id="a", kind="elf", path=elf_path,
                         faults=("symexec@symexec:h1",)),
                FleetJob(job_id="b", kind="elf", path=elf_path),
            ])
        assert all(r.ok for r in results)
        assert results[0].fired_faults == ["symexec@symexec:h1"]
        assert results[0].report["coverage"]["degraded"] == 1
        assert results[1].report["coverage"]["degraded"] == 0
        events = read_events(telemetry_path)
        degraded_events = [
            e for e in events if e["event"] == "job_degraded"
        ]
        assert [e["job"] for e in degraded_events] == ["a"]
        assert degraded_events[0]["degraded_functions"] == ["h1"]
        finish = [e for e in events if e["event"] == "run_finish"]
        assert finish[0]["degraded"] == 1
