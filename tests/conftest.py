"""Shared test helpers."""

import pytest

from repro.arch import get_arch
from repro.emu import Memory, make_cpu


@pytest.fixture
def arm():
    return get_arch("arm")


@pytest.fixture
def mips():
    return get_arch("mips")


def assemble(arch_name, source, section_bases=None, extern_symbols=None):
    arch = get_arch(arch_name)
    return arch.assembler().assemble(
        source, section_bases=section_bases, extern_symbols=extern_symbols
    )


def load_program(arch_name, program, stack_top=0x7FFF0000):
    """Load an :class:`AssembledProgram` into memory + a CPU."""
    arch = get_arch(arch_name)
    memory = Memory(endness=arch.endness)
    for base, data in program.sections.values():
        if data:
            memory.write_bytes(base, data)
    # Map a stack.
    memory.write_bytes(stack_top - 0x10000, b"\x00" * 0x10000)
    cpu = make_cpu(arch, memory)
    return cpu, memory


def run_function(arch_name, source, func="main", args=(), max_steps=200_000):
    """Assemble, load and call ``func``; return (retval, cpu, memory)."""
    program = assemble(arch_name, source)
    cpu, memory = load_program(arch_name, program)
    ret = cpu.run(program.symbols[func], 0x7FFEFF00, max_steps, args=args)
    return ret, cpu, memory
