"""minicc codegen and CVE-pattern detection tests (Tables IV/V)."""

import pytest

from repro.core import DTaint
from repro.corpus import vulnpatterns as vp
from repro.corpus.builder import build_binary
from repro.corpus.minicc import (
    Addr,
    Arg,
    BinOp,
    Call,
    DeclBuf,
    DeclVar,
    If,
    Imm,
    Load,
    MiniFunc,
    Ret,
    Set,
    Store,
    Var,
    While,
    compiler_for,
)
from tests.conftest import load_program

ARCHES = ("arm", "mips")


def _compile_and_run(arch, funcs, entry, args=(), hooks=None):
    compiler = compiler_for(arch, "t")
    source, imports = compiler.compile_module(funcs)
    built = build_binary("t", arch, source, imports, entry=entry)
    cpu, memory = load_program(arch, built.program)
    if hooks:
        for name, hook in hooks.items():
            cpu.hooks[built.program.symbols[name]] = hook
    ret = cpu.run(built.program.symbols[entry], 0x7FFEFF00, args=args)
    return ret, cpu, memory


class TestMiniccExecution:
    """Generated code must actually run correctly on the emulator."""

    @pytest.mark.parametrize("arch", ARCHES)
    def test_arithmetic_and_return(self, arch):
        func = MiniFunc("calc", 1, [
            DeclVar("a", Arg(0)),
            DeclVar("b", Imm(10)),
            Set("b", BinOp("+", Var("b"), Var("a"))),
            Set("b", BinOp("<<", Var("b"), Imm(2))),
            Ret(Var("b")),
        ])
        ret, _, _ = _compile_and_run(arch, [func], "calc", args=(5,))
        assert ret == (10 + 5) << 2

    @pytest.mark.parametrize("arch", ARCHES)
    def test_if_else(self, arch):
        func = MiniFunc("pick", 1, [
            DeclVar("r", Imm(0)),
            If(Arg(0), "lt", Imm(10), [Set("r", Imm(1))], [Set("r", Imm(2))]),
            Ret(Var("r")),
        ])
        assert _compile_and_run(arch, [func], "pick", args=(3,))[0] == 1
        assert _compile_and_run(arch, [func], "pick", args=(30,))[0] == 2

    @pytest.mark.parametrize("arch", ARCHES)
    def test_while_loop_sum(self, arch):
        func = MiniFunc("sum_to", 1, [
            DeclVar("i", Imm(0)),
            DeclVar("acc", Imm(0)),
            While(Var("i"), "lt", Arg(0), [
                Set("i", BinOp("+", Var("i"), Imm(1))),
                Set("acc", BinOp("+", Var("acc"), Var("i"))),
            ]),
            Ret(Var("acc")),
        ])
        ret, _, _ = _compile_and_run(arch, [func], "sum_to", args=(10,))
        assert ret == 55

    @pytest.mark.parametrize("arch", ARCHES)
    def test_store_load_through_pointer(self, arch):
        func = MiniFunc("poke", 1, [
            Store(Arg(0), 8, Imm(0x42)),
            DeclVar("back", Load(Arg(0), 8)),
            Ret(Var("back")),
        ])
        ret, _, memory = _compile_and_run(
            arch, [func], "poke", args=(0x30000,)
        )
        assert ret == 0x42
        assert memory.read(0x30008, 4) == 0x42

    @pytest.mark.parametrize("arch", ARCHES)
    def test_call_between_functions(self, arch):
        callee = MiniFunc("double_it", 1, [
            Ret(BinOp("+", Arg(0), Arg(0))),
        ])
        caller = MiniFunc("main", 1, [
            DeclVar("r"),
            Call("r", "double_it", [Arg(0)]),
            Call("r", "double_it", [Var("r")]),
            Ret(Var("r")),
        ])
        ret, _, _ = _compile_and_run(arch, [caller, callee], "main", args=(7,))
        assert ret == 28

    @pytest.mark.parametrize("arch", ARCHES)
    def test_string_literals_pooled(self, arch):
        func = MiniFunc("greet", 0, [
            DeclVar("p", vp.Str("hello")),
            DeclVar("c", Load(Var("p"), 0, size=1)),
            Ret(Var("c")),
        ])
        ret, _, _ = _compile_and_run(arch, [func], "greet")
        assert ret == ord("h")


def _detect(arch, cases):
    funcs, truth = [], []
    for factory, kwargs in cases:
        f, g = factory(**kwargs)
        funcs += f
        truth += g
    compiler = compiler_for(arch, "t")
    source, imports = compiler.compile_module(funcs)
    built = build_binary("t", arch, source, imports, entry=funcs[0].name,
                         ground_truth=truth)
    report = DTaint(built.binary, name="t").run()
    return built, truth, report


def _hits(built, report, function):
    symbol = built.binary.functions[function]
    low, high = symbol.addr, symbol.addr + symbol.size
    return [f for f in report.findings if low <= f.sink_addr < high]


ALL_PATTERNS = [
    (vp.cve_2013_7389_strncpy, {}),
    (vp.cve_2013_7389_sprintf, {}),
    (vp.cve_2015_2051, {}),
    (vp.cve_2016_5681, {}),
    (vp.cve_2017_6334, {}),
    (vp.cve_2017_6077, {}),
    (vp.edb_43055, {}),
    (vp.zero_day_read_memcpy, {}),
    (vp.zero_day_loop_copy, {}),
    (vp.zero_day_sscanf, {}),
    (vp.zero_day_fgets_strcpy, {}),
]
SAFE_PATTERNS = [
    (vp.cve_2013_7389_strncpy, {"name": "s1", "vulnerable": False}),
    (vp.cve_2013_7389_sprintf, {"name": "s2", "vulnerable": False}),
    (vp.cve_2015_2051, {"name": "s3", "vulnerable": False}),
    (vp.cve_2016_5681, {"name": "s4", "vulnerable": False}),
    (vp.cve_2017_6334, {"name": "s5", "vulnerable": False}),
    (vp.edb_43055, {"name": "s6", "vulnerable": False}),
    (vp.zero_day_read_memcpy, {"name": "s7", "vulnerable": False}),
    (vp.zero_day_loop_copy, {"name": "s8", "vulnerable": False}),
    (vp.zero_day_sscanf, {"name": "s9", "vulnerable": False}),
    (vp.zero_day_fgets_strcpy, {"name": "s10", "vulnerable": False}),
]


class TestPatternDetection:
    @pytest.mark.parametrize("arch", ARCHES)
    def test_all_planted_vulnerabilities_found(self, arch):
        built, truth, report = _detect(arch, ALL_PATTERNS)
        for item in truth:
            assert _hits(built, report, item.function), (
                "missed %s (%s -> %s)" % (item.function, item.source,
                                          item.sink)
            )

    @pytest.mark.parametrize("arch", ARCHES)
    def test_no_safe_decoy_flagged(self, arch):
        built, truth, report = _detect(arch, SAFE_PATTERNS)
        for item in truth:
            assert not _hits(built, report, item.function), (
                "false positive in %s" % item.function
            )

    @pytest.mark.parametrize("arch", ARCHES)
    def test_kinds_and_sources_correct(self, arch):
        built, truth, report = _detect(arch, ALL_PATTERNS)
        for item in truth:
            hits = _hits(built, report, item.function)
            assert any(h.kind == item.kind for h in hits), item.function
            if item.sink != "loop":
                assert any(h.sink_name == item.sink for h in hits)
