"""Tests for the top-down baseline (the Table VII comparator)."""

import pytest

from repro.baseline import TopDownDDG
from repro.core import DTaint
from repro.corpus.openssl import build_openssl
from repro.corpus.profiles import build_firmware


@pytest.fixture(scope="module")
def prepared():
    built = build_firmware("dir645", scale=0.08)
    detector = DTaint(built.binary, name="dir645")
    detector.build_cfg()
    detector.analyze_functions()
    return built, detector


def test_baseline_reanalyzes_shared_callees(prepared):
    built, detector = prepared
    baseline = TopDownDDG(
        binary=built.binary, functions=detector.functions,
        call_graph=detector.call_graph,
    )
    baseline.build()
    local = len([f for f in detector.functions.values() if not f.is_import])
    # The defining property: strictly more analyses than functions.
    assert baseline.stats.contexts_analyzed > local
    assert baseline.stats.reanalyses > 0


def test_baseline_tracks_register_definitions(prepared):
    built, detector = prepared
    baseline = TopDownDDG(
        binary=built.binary, functions=detector.functions,
        call_graph=detector.call_graph, max_contexts_per_function=2,
    )
    graph = baseline.build()
    assert baseline.stats.definitions > 0
    assert graph.number_of_nodes() > 0
    assert baseline.stats.edges == graph.number_of_edges()


def test_baseline_respects_context_budget(prepared):
    built, detector = prepared
    baseline = TopDownDDG(
        binary=built.binary, functions=detector.functions,
        call_graph=detector.call_graph, max_total_contexts=10,
    )
    baseline.build()
    assert baseline.stats.contexts_analyzed <= 10


def test_baseline_roots_are_uncalled_functions():
    built = build_openssl()
    detector = DTaint(built.binary, name="openssl")
    detector.build_cfg()
    baseline = TopDownDDG(
        binary=built.binary, functions=detector.functions,
        call_graph=detector.call_graph,
    )
    roots = baseline.roots()
    assert "ssl3_read_bytes" in roots
    assert "ssl3_read_n" not in roots


def test_baseline_slower_than_bottom_up(prepared):
    import time

    built, detector = prepared
    start = time.perf_counter()
    detector.run_dataflow()
    bottom_up = time.perf_counter() - start

    baseline = TopDownDDG(
        binary=built.binary, functions=detector.functions,
        call_graph=detector.call_graph,
    )
    baseline.build()
    top_down = baseline.stats.ssa_seconds + baseline.stats.ddg_seconds
    assert top_down > bottom_up
