"""The fleet orchestration subsystem (`repro.pipeline`).

Covers the acceptance properties of the fleet scheduler and the
content-addressed caches:

* summary cache hit on identical bytes, miss on mutated bytes, miss on
  a changed config fingerprint;
* a parallel fleet run produces byte-identical findings to a serial
  run;
* a crashing job is retried, then quarantined, without taking down the
  fleet; timeouts and crashes surface as the typed exceptions;
* telemetry is valid JSONL carrying the full job lifecycle.
"""

import json

import pytest

from repro.core import DTaint, DTaintConfig
from repro.core.interproc import deserialize_summary, serialize_summary
from repro.errors import AnalysisTimeout, PipelineError, ReproError, WorkerCrash
from repro.loader.binary import load_elf
from repro.loader.link import build_executable
from repro.pipeline import (
    FleetJob,
    FleetScheduler,
    ReportCache,
    ResultsStore,
    SummaryCache,
    Telemetry,
    binary_sha256,
    canonical_report,
    execute_job,
    findings_fingerprint,
    read_events,
    render_fleet_summary,
    report_fingerprint,
    summary_fingerprint,
)

SCALE = 0.05

_VULN_ASM = (
    ".globl main\nmain:\n    push {lr}\n    ldr r0, =n\n"
    "    bl getenv\n    bl system\n    pop {pc}\n.ltorg\n"
    ".rodata\nn: .asciz \"CMD\"\n"
)


def _small_elf():
    elf_bytes, _ = build_executable(
        "arm", _VULN_ASM, imports=["getenv", "system"]
    )
    return elf_bytes


def _scan(elf_bytes, cache_dir, config=None):
    config = config or DTaintConfig()
    binary = load_elf(elf_bytes)
    bound = SummaryCache(cache_dir).for_binary(
        binary_sha256(elf_bytes), config
    )
    report = DTaint(binary, config=config, name="t", summary_cache=bound).run()
    bound.flush()
    return report, bound


class TestSummarySerialization:
    def test_round_trip(self):
        binary = load_elf(_small_elf())
        detector = DTaint(binary, name="t")
        summaries = detector.analyze_functions()
        summary = summaries["main"]
        clone = deserialize_summary(serialize_summary(summary))
        assert clone is not summary
        assert clone.name == summary.name
        assert clone.def_pairs == summary.def_pairs
        assert clone.constraints == summary.constraints
        assert [c.target for c in clone.callsites] == [
            c.target for c in summary.callsites
        ]

    def test_stale_blobs_decode_to_none(self):
        summary = DTaint(load_elf(_small_elf())).analyze_functions()["main"]
        blob = serialize_summary(summary)
        assert deserialize_summary(b"garbage") is None
        assert deserialize_summary(b"") is None
        # Bumped format version.
        stale = blob[:5] + bytes([blob[5] + 1]) + blob[6:]
        assert deserialize_summary(stale) is None


class TestSummaryCache:
    def test_hit_on_identical_bytes(self, tmp_path):
        elf = _small_elf()
        cold_report, cold = _scan(elf, str(tmp_path))
        assert cold.hits == 0 and cold.misses > 0
        warm_report, warm = _scan(elf, str(tmp_path))
        assert warm.misses == 0
        assert warm.hits == cold.misses
        # Cached and fresh analyses must agree on the findings.
        assert findings_fingerprint(warm_report.to_dict()) == \
            findings_fingerprint(cold_report.to_dict())
        assert warm_report.summary_cache_hits == warm.hits

    def test_miss_on_mutated_bytes(self, tmp_path):
        elf = _small_elf()
        _scan(elf, str(tmp_path))
        mutated = bytearray(elf)
        mutated[-1] ^= 0xFF      # flip one byte anywhere in the binary
        _report, bound = _scan(bytes(mutated), str(tmp_path))
        assert bound.hits == 0 and bound.misses > 0

    def test_config_fingerprint_invalidates(self, tmp_path):
        elf = _small_elf()
        _scan(elf, str(tmp_path), config=DTaintConfig(max_paths=64))
        _report, bound = _scan(
            elf, str(tmp_path), config=DTaintConfig(max_paths=8)
        )
        assert bound.hits == 0 and bound.misses > 0

    def test_deadline_change_invalidates(self, tmp_path):
        """A summary truncated under a tight --deadline must never be
        served to a deadline-free run (or vice versa): the deadline
        shapes the summary itself, so it belongs in the fingerprint."""
        elf = _small_elf()
        tight = DTaintConfig(deadline_seconds=1e-9)
        free = DTaintConfig()
        assert summary_fingerprint(tight) != summary_fingerprint(free)
        assert report_fingerprint(tight) != report_fingerprint(free)
        # The tight deadline genuinely truncates the summary.
        truncated = DTaint(load_elf(elf), config=tight).analyze_functions()
        assert any(s.deadline_hit for s in truncated.values())
        _scan(elf, str(tmp_path), config=tight)
        _report, bound = _scan(elf, str(tmp_path), config=free)
        assert bound.hits == 0 and bound.misses > 0

    def test_fingerprint_functions(self):
        a, b = DTaintConfig(), DTaintConfig(max_paths=8)
        assert summary_fingerprint(a) != summary_fingerprint(b)
        assert summary_fingerprint(a) == summary_fingerprint(DTaintConfig())
        # Trace depth shapes detection, not summaries.
        assert summary_fingerprint(a) == summary_fingerprint(
            DTaintConfig(max_trace_depth=5)
        )
        assert report_fingerprint(a) != report_fingerprint(
            DTaintConfig(max_trace_depth=5)
        )
        # Callable filters are uncacheable at report granularity.
        assert report_fingerprint(
            DTaintConfig(function_filter=lambda n: True)
        ) is None

    def test_corrupt_bundle_is_empty_cache(self, tmp_path):
        elf = _small_elf()
        _report, bound = _scan(elf, str(tmp_path))
        with open(bound.path, "wb") as handle:
            handle.write(b"\x00not a pickle")
        _report, rebound = _scan(elf, str(tmp_path))
        assert rebound.hits == 0 and rebound.misses > 0


class TestReportCache:
    def test_round_trip_and_invalidation(self, tmp_path):
        cache = ReportCache(str(tmp_path))
        config = DTaintConfig()
        fingerprint = report_fingerprint(config)
        sha = binary_sha256(b"bytes")
        assert cache.get(sha, fingerprint) is None
        cache.put(sha, fingerprint, {"binary": "x", "vulnerabilities": []})
        assert cache.get(sha, fingerprint)["binary"] == "x"
        assert cache.get(binary_sha256(b"other"), fingerprint) is None
        assert cache.get(sha, None) is None
        cache.put(sha, None, {"binary": "y"})   # uncacheable: dropped
        assert cache.get(sha, fingerprint)["binary"] == "x"


class TestTypedErrors:
    def test_hierarchy(self):
        assert issubclass(AnalysisTimeout, PipelineError)
        assert issubclass(WorkerCrash, PipelineError)
        assert issubclass(PipelineError, ReproError)
        timeout = AnalysisTimeout("j1", 2.5)
        assert timeout.job_id == "j1" and "2.5" in str(timeout)
        crash = WorkerCrash("j2", exitcode=70)
        assert crash.exitcode == 70 and "j2" in str(crash)


def _profile_job(key, **kwargs):
    return FleetJob(job_id=key, kind="profile", key=key, scale=SCALE,
                    **kwargs)


class TestScheduler:
    def test_parallel_identical_to_serial(self, tmp_path):
        keys = ["dir645", "dir890l"]
        serial = FleetScheduler(jobs=1).run(
            [_profile_job(k) for k in keys]
        )
        parallel = FleetScheduler(jobs=2).run(
            [_profile_job(k) for k in keys]
        )
        assert all(r.ok for r in serial + parallel)
        for left, right in zip(serial, parallel):
            assert findings_fingerprint(left.report) == \
                findings_fingerprint(right.report)
            assert canonical_report(left.report) == \
                canonical_report(right.report)

    def test_warm_cache_hits(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        job = _profile_job("dir645")
        cold = FleetScheduler(jobs=1, cache_dir=cache_dir).run([job])[0]
        assert cold.cache["summary_misses"] > 0
        # Summary layer: everything hits when only the report cache is off.
        warm = FleetScheduler(
            jobs=1, cache_dir=cache_dir, use_report_cache=False,
        ).run([_profile_job("dir645")])[0]
        assert warm.cache["summary_misses"] == 0
        assert warm.cache["summary_hits"] == cold.cache["summary_misses"]
        assert findings_fingerprint(warm.report) == \
            findings_fingerprint(cold.report)
        # Report layer: the whole analysis is skipped.
        hot = FleetScheduler(jobs=1, cache_dir=cache_dir).run(
            [_profile_job("dir645")]
        )[0]
        assert hot.cache["report_cache_hit"]
        assert findings_fingerprint(hot.report) == \
            findings_fingerprint(cold.report)

    def test_crash_retried_then_recovered(self, tmp_path):
        telemetry_path = str(tmp_path / "events.jsonl")
        with Telemetry(telemetry_path) as telemetry:
            result = FleetScheduler(
                jobs=1, retries=2, telemetry=telemetry,
            ).run([
                _profile_job("dir645", fault="crash", fault_attempts=1),
            ])[0]
        assert result.ok
        assert result.attempts == 2
        kinds = [e["event"] for e in read_events(telemetry_path)]
        assert "job_crash" in kinds and "job_retry" in kinds

    def test_crash_quarantined_without_aborting_fleet(self, tmp_path):
        telemetry_path = str(tmp_path / "events.jsonl")
        with Telemetry(telemetry_path) as telemetry:
            results = FleetScheduler(
                jobs=2, retries=1, telemetry=telemetry,
            ).run([
                _profile_job("dir645"),
                _profile_job("dir890l", fault="crash",
                             fault_attempts=10 ** 6),
            ])
        healthy, doomed = results
        assert healthy.ok and healthy.report is not None
        assert doomed.status == "quarantined"
        assert doomed.attempts == 2           # first try + one retry
        assert doomed.error_type == "WorkerCrash"
        events = read_events(telemetry_path)
        kinds = [e["event"] for e in events]
        assert kinds.count("job_crash") == 2
        assert "job_quarantined" in kinds
        assert "job_finish" in kinds          # the healthy job completed

    def test_timeout_kills_and_quarantines(self, tmp_path):
        result = FleetScheduler(jobs=1, timeout=0.5, retries=0).run([
            _profile_job("dir645", fault="hang", fault_attempts=10 ** 6),
        ])[0]
        assert result.status == "quarantined"
        assert result.error_type == "AnalysisTimeout"

    def test_worker_error_is_typed(self):
        result = FleetScheduler(jobs=1, retries=0).run([
            _profile_job("dir645", fault="error", fault_attempts=10 ** 6),
        ])[0]
        assert result.status == "quarantined"
        assert result.error_type == "PipelineError"
        assert "injected failure" in result.error

    def test_rejects_bad_fleets(self):
        with pytest.raises(PipelineError):
            FleetScheduler(jobs=0)
        with pytest.raises(PipelineError):
            FleetScheduler(jobs=1).run(
                [_profile_job("dir645"), _profile_job("dir645")]
            )

    def test_elf_job(self, tmp_path):
        target = tmp_path / "handler.elf"
        target.write_bytes(_small_elf())
        payload = execute_job(
            FleetJob(job_id="elf", kind="elf", path=str(target))
        )
        assert payload["status"] == "ok"
        assert payload["report"]["vulnerabilities"]
        assert payload["sha256"] == binary_sha256(target.read_bytes())


class TestTelemetryAndResults:
    def test_jsonl_is_well_formed(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        with Telemetry(path) as telemetry:
            telemetry.emit("run_start", jobs=2)
            telemetry.emit("job_start", job="a", attempt=1)
            telemetry.emit_many(
                [{"event": "stage", "name": "ssa"}], job="a"
            )
        with open(path) as handle:
            lines = [line for line in handle if line.strip()]
        events = [json.loads(line) for line in lines]
        assert [e["seq"] for e in events] == [0, 1, 2]
        assert events[2] == {
            "ts": events[2]["ts"], "seq": 2, "event": "stage",
            "name": "ssa", "job": "a",
        }
        assert read_events(path) == events

    def test_results_store_and_rollup(self, tmp_path):
        results = FleetScheduler(jobs=2, retries=0).run([
            _profile_job("dir645"),
            _profile_job("dir890l", fault="crash", fault_attempts=10 ** 6),
        ])
        store = ResultsStore(str(tmp_path))
        for result in results:
            image_path = store.write_image(result)
            with open(image_path) as handle:
                document = json.load(handle)
            assert document["status"] == result.status
        rollup_path = store.write_rollup(results, wall_seconds=1.0)
        with open(rollup_path) as handle:
            rollup = json.load(handle)
        assert rollup["totals"]["jobs"] == 2
        assert rollup["totals"]["ok"] == 1
        assert rollup["totals"]["quarantined"] == 1
        ok_row = next(r for r in rollup["images"] if r["status"] == "ok")
        assert ok_row["vulnerabilities"] > 0
        assert ok_row["findings_sha256"]
        summary = render_fleet_summary(results, wall_seconds=1.0)
        assert "quarantined" in summary and "dir645" in summary

    def test_canonical_report_is_run_independent(self):
        base = {
            "binary": "b", "arch": "arm", "analyzed_functions": 3,
            "elapsed_seconds": 1.23, "stage_seconds": {"ssa": 1.0},
            "summary_cache": {"hits": 5, "misses": 0},
            "vulnerable_paths": [
                {"function": "b", "sink_addr": 2, "sink_name": "s"},
                {"function": "a", "sink_addr": 1, "sink_name": "s"},
            ],
        }
        other = dict(base, elapsed_seconds=9.0,
                     stage_seconds={}, summary_cache={})
        other["vulnerable_paths"] = list(
            reversed(base["vulnerable_paths"])
        )
        assert canonical_report(base) == canonical_report(other)
        assert findings_fingerprint(base) == findings_fingerprint(other)
        assert canonical_report(base)["vulnerable_paths"][0]["function"] \
            == "a"


class TestScanJsonCLI:
    def test_scan_json_output(self, tmp_path, capsys):
        from repro.cli import main as cli_main

        target = tmp_path / "handler.elf"
        target.write_bytes(_small_elf())
        rc = cli_main(["scan", str(target), "--json"])
        assert rc == 0
        document = json.loads(capsys.readouterr().out)
        assert document["vulnerabilities"]
        assert document["vulnerabilities"][0]["kind"] == "command-injection"
        assert "summary_cache" in document

    def test_fleet_scan_cli(self, tmp_path, capsys):
        from repro.cli import main as cli_main

        out_dir = str(tmp_path / "out")
        rc = cli_main([
            "fleet-scan", "dir645", "--jobs", "1",
            "--scale", str(SCALE), "--no-cache", "--out", out_dir,
        ])
        assert rc == 0
        assert "Fleet scan" in capsys.readouterr().out
        with open(tmp_path / "out" / "fleet.json") as handle:
            assert json.load(handle)["totals"]["ok"] == 1
        assert read_events(str(tmp_path / "out" / "telemetry.jsonl"))

    def test_fleet_scan_unknown_profile(self, capsys):
        from repro.cli import main as cli_main

        assert cli_main(["fleet-scan", "nope"]) == 2


class TestCacheQuarantine:
    def test_corrupt_bundle_is_quarantined(self, tmp_path):
        import os

        elf = _small_elf()
        _report, bound = _scan(elf, str(tmp_path))
        with open(bound.path, "wb") as handle:
            handle.write(b"\x00not a pickle")
        _report, rebound = _scan(elf, str(tmp_path))
        assert rebound.stats["cache_corrupt"] == 1
        assert os.path.exists(bound.path + ".corrupt")
        # The bad bytes are gone; the rebuilt bundle serves hits again.
        _report, warm = _scan(elf, str(tmp_path))
        assert warm.stats["cache_corrupt"] == 0
        assert warm.hits > 0 and warm.misses == 0

    def test_corrupt_report_cache_is_quarantined(self, tmp_path):
        import os

        cache = ReportCache(str(tmp_path))
        fingerprint = report_fingerprint(DTaintConfig())
        cache.put("ab" * 32, fingerprint, {"binary": "x"})
        path = cache._path("ab" * 32, fingerprint)
        with open(path, "w") as handle:
            handle.write("{not json")
        assert cache.get("ab" * 32, fingerprint) is None
        assert cache.corrupt == 1
        assert os.path.exists(path + ".corrupt")
        # A later put/get cycle works on a clean slate.
        cache.put("ab" * 32, fingerprint, {"binary": "x"})
        assert cache.get("ab" * 32, fingerprint) == {"binary": "x"}


class TestBackoff:
    def test_deterministic_jitter(self):
        a = FleetScheduler(jobs=1, backoff=0.5)
        b = FleetScheduler(jobs=1, backoff=0.5)
        for attempt in (2, 3, 4):
            assert a.backoff_delay("job-x", attempt) == \
                b.backoff_delay("job-x", attempt)
        # Different jobs spread out; same job grows exponentially.
        assert a.backoff_delay("job-x", 2) != a.backoff_delay("job-y", 2)
        assert a.backoff_delay("job-x", 3) > a.backoff_delay("job-x", 2)
        assert a.backoff_delay("job-x", 2) >= 0.5
        assert a.backoff_delay("job-x", 1) == 0.0
        assert FleetScheduler(jobs=1, backoff=0.0).backoff_delay(
            "job-x", 5
        ) == 0.0

    def test_cap_bounds_runaway_delays(self):
        scheduler = FleetScheduler(jobs=1, backoff=1.0, backoff_cap=2.0)
        assert scheduler.backoff_delay("j", 30) == 2.0

    def test_retry_telemetry_records_backoff(self, tmp_path):
        telemetry_path = str(tmp_path / "events.jsonl")
        with Telemetry(path=telemetry_path) as telemetry:
            scheduler = FleetScheduler(
                jobs=1, retries=1, backoff=0.05, telemetry=telemetry,
            )
            results = scheduler.run([FleetJob(
                job_id="flaky", kind="profile", key="dir645", scale=SCALE,
                fault="error", fault_attempts=1,
            )])
        assert results[0].ok and results[0].attempts == 2
        retries = [
            e for e in read_events(telemetry_path)
            if e["event"] == "job_retry"
        ]
        assert len(retries) == 1
        assert retries[0]["backoff_seconds"] == round(
            scheduler.backoff_delay("flaky", 2), 4
        )
