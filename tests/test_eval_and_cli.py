"""Evaluation helpers, report rendering, and the CLI."""

import pytest

from repro.cli import main as cli_main
from repro.core import libc
from repro.core.report import Finding, Report, StageTimer
from repro.core.sinks import parse_format
from repro.eval.resources import measure
from repro.eval.runner import EvalContext, get_scale
from repro.eval.tables import format_table, table1_sources_sinks


class TestTable1:
    def test_matches_paper_listing(self):
        data = table1_sources_sinks()
        assert set(data["sensitive_sinks"]) == {
            "strcpy", "strncpy", "sprintf", "memcpy", "strcat", "sscanf",
            "system", "popen", "loop",
        }
        assert set(data["input_sources"]) == {
            "read", "recv", "recvfrom", "recvmsg", "getenv", "fgets",
            "websGetVar", "find_var",
        }


class TestLibcModels:
    def test_every_source_taints_something(self):
        for name, model in libc.SOURCES.items():
            assert model.taints_args or model.taints_ret, name

    def test_every_sink_has_kind_and_indices(self):
        for name, model in libc.SINKS.items():
            kind, indices = model.sink
            assert kind in (libc.BO, libc.CMDI)
            assert indices, name

    def test_model_lookup(self):
        assert libc.model_for("strcpy").name == "strcpy"
        assert libc.model_for("nonexistent_fn") is None
        assert libc.is_source("recv")
        assert libc.is_sink("system")
        assert not libc.is_sink("strlen")


class TestFormatHelpers:
    def test_parse_format(self):
        assert parse_format("%s %d %x") == ["s", "d", "x"]
        assert parse_format("%254s") == ["s"]
        assert parse_format("100%% done: %s") == ["s"]
        assert parse_format("no specifiers") == []

    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [[1, 22], [333, 4]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5


class TestReport:
    def _finding(self, sink_addr=0x100, source_addr=0x50, sanitized=False):
        return Finding(
            kind="buffer-overflow", function="f", sink_name="memcpy",
            sink_addr=sink_addr, source_name="recv", source_addr=source_addr,
            sanitized=sanitized,
        )

    def test_vulnerabilities_dedup_by_sink(self):
        report = Report(binary_name="x")
        report.findings = [
            self._finding(source_addr=0x50),
            self._finding(source_addr=0x60),
            self._finding(sink_addr=0x200),
        ]
        assert len(report.vulnerable_paths) == 3
        assert len(report.vulnerabilities) == 2

    def test_summary_row_shape(self):
        report = Report(binary_name="x", analyzed_functions=5)
        row = report.summary_row()
        assert row["firmware"] == "x"
        assert row["vulnerable_paths"] == 0

    def test_stage_timer_accumulates(self):
        timer = StageTimer()
        timer.start("a")
        timer.stop()
        timer.start("b")
        timer.stop()
        assert set(timer.stages) == {"a", "b"}
        assert timer.total >= 0


class TestResources:
    def test_measure_reports_positive_numbers(self):
        with measure(trace_python_heap=True) as usage:
            _ = [i * i for i in range(200000)]
        assert usage.wall_seconds > 0
        assert usage.cpu_seconds > 0
        assert usage.peak_traced_mb > 0
        assert usage.max_rss_mb > 0

    def test_measure_skips_heap_tracing_by_default(self):
        import tracemalloc

        with measure() as usage:
            assert not tracemalloc.is_tracing()
            _ = [i * i for i in range(200000)]
        assert usage.wall_seconds > 0
        assert usage.peak_traced_mb == 0.0
        assert usage.max_rss_mb > 0


class TestRunner:
    def test_get_scale_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.5")
        assert get_scale() == 0.5
        monkeypatch.setenv("REPRO_SCALE", "garbage")
        assert get_scale() == 0.25
        monkeypatch.setenv("REPRO_SCALE", "99")
        assert get_scale() == 1.0

    def test_context_caches_builds(self):
        context = EvalContext(scale=0.05)
        first = context.built("dir645")
        second = context.built("dir645")
        assert first is second


class TestCLI:
    def test_corpus_command(self, capsys):
        rc = cli_main(["corpus", "dir645", "--scale", "0.05"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "DTaint report" in out
        assert "vulnerabilities" in out

    def test_corpus_unknown_key(self, capsys):
        assert cli_main(["corpus", "nope"]) == 2

    def test_fleet_command(self, capsys):
        rc = cli_main(["fleet", "--size", "800"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Figure 1" in out

    def test_scan_command(self, tmp_path, capsys):
        from repro.loader.link import build_executable

        elf_bytes, _ = build_executable(
            "arm",
            ".globl main\nmain:\n    push {lr}\n    ldr r0, =n\n"
            "    bl getenv\n    bl system\n    pop {pc}\n.ltorg\n"
            ".rodata\nn: .asciz \"X\"\n",
            imports=["getenv", "system"],
        )
        target = tmp_path / "handler.elf"
        target.write_bytes(elf_bytes)
        rc = cli_main(["scan", str(target)])
        assert rc == 0
        assert "command-injection" in capsys.readouterr().out

    def test_firmware_command(self, tmp_path, capsys):
        from repro.firmware.image import pack_trx
        from repro.firmware.simplefs import SimpleFS
        from repro.loader.link import build_executable

        elf_bytes, _ = build_executable(
            "arm",
            ".globl main\nmain:\n    mov r0, #0\n    bx lr\n",
        )
        fs = SimpleFS()
        fs.add_file("/bin/httpd", elf_bytes)
        blob = tmp_path / "fw.bin"
        blob.write_bytes(pack_trx(b"KERNEL", fs.pack()))
        rc = cli_main(["firmware", str(blob)])
        assert rc == 0
        assert "httpd" in capsys.readouterr().out


class TestExitCodes:
    """Distinct exit codes per failure kind (scan / firmware / fleet-scan)."""

    def _vuln_elf(self, tmp_path):
        from repro.loader.link import build_executable

        elf_bytes, _ = build_executable(
            "arm",
            ".globl main\nmain:\n    push {lr}\n    ldr r0, =n\n"
            "    bl getenv\n    bl system\n    pop {pc}\n.ltorg\n"
            ".rodata\nn: .asciz \"X\"\n",
            imports=["getenv", "system"],
        )
        target = tmp_path / "handler.elf"
        target.write_bytes(elf_bytes)
        return str(target)

    def test_scan_findings_exit_code(self, tmp_path, capsys):
        target = self._vuln_elf(tmp_path)
        assert cli_main(["scan", target]) == 0
        assert cli_main(["scan", target, "--fail-on-findings"]) == 1

    def test_scan_malformed_input_exits_3(self, tmp_path, capsys):
        bad = tmp_path / "not-an.elf"
        bad.write_bytes(b"\x7fELF" + b"\xff" * 16)
        assert cli_main(["scan", str(bad)]) == 3
        assert "analysis failed" in capsys.readouterr().err

    def test_scan_strict_degradation_exits_4(self, tmp_path, capsys):
        target = self._vuln_elf(tmp_path)
        rc = cli_main([
            "scan", target, "--inject", "decode@cfg:main", "--strict",
        ])
        assert rc == 4
        captured = capsys.readouterr()
        assert "degradation policy violated" in captured.err
        assert "[degraded] main@" in captured.out

    def test_scan_max_degraded_tolerates(self, tmp_path, capsys):
        target = self._vuln_elf(tmp_path)
        rc = cli_main([
            "scan", target, "--inject", "decode@cfg:main",
            "--max-degraded", "1",
        ])
        assert rc == 0

    def test_scan_deadline_flag(self, tmp_path, capsys):
        target = self._vuln_elf(tmp_path)
        assert cli_main(["scan", target, "--deadline", "30"]) == 0

    def test_firmware_malformed_exits_3(self, tmp_path, capsys):
        blob = tmp_path / "fw.bin"
        blob.write_bytes(b"\x00" * 64)
        assert cli_main(["firmware", str(blob)]) == 3

    def test_fleet_scan_bad_inject_spec_exits_2(self, tmp_path, capsys):
        rc = cli_main([
            "fleet-scan", "dir645", "--scale", "0.05", "--no-cache",
            "--inject", "not-a-spec",
        ])
        assert rc == 2

    def test_fleet_scan_quarantine_exits_3(self, capsys):
        rc = cli_main([
            "fleet-scan", "dir645", "--scale", "0.05", "--jobs", "1",
            "--retries", "0", "--no-cache", "--inject-crash", "dir645",
        ])
        assert rc == 3

    def test_fleet_scan_strict_degradation_exits_4(self, capsys):
        rc = cli_main([
            "fleet-scan", "dir645", "--scale", "0.05", "--jobs", "1",
            "--no-cache", "--inject", "symexec@symexec:*", "--strict",
        ])
        assert rc == 4
        assert "degradation policy violated" in capsys.readouterr().err
