"""Unit tests for the shared assembly-source parser."""

import pytest

from repro.arch.asmlang import (
    AssembledProgram,
    eval_symbol_expr,
    parse_int,
    parse_source,
    strip_comment,
)
from repro.errors import AssemblyError


class TestStripComment:
    def test_at_and_semicolon(self):
        assert strip_comment("mov r0, r1 @ hello", "@;") == "mov r0, r1 "
        assert strip_comment("mov r0, r1 ; hi", "@;") == "mov r0, r1 "

    def test_double_slash(self):
        assert strip_comment("add r0, r1 // c-style", "@;") == "add r0, r1 "

    def test_comment_char_inside_string_preserved(self):
        line = '.asciz "a;b@c"'
        assert strip_comment(line, "@;") == line

    def test_hash_for_mips(self):
        assert strip_comment("lw $t0, 4($sp) # load", "#;") == "lw $t0, 4($sp) "


class TestParseSource:
    def test_sections_and_labels(self):
        parsed = parse_source(
            ".text\nf:\n mov r0, r1\n.rodata\nmsg: .asciz \"x\"\n", "@;"
        )
        text_kinds = [i.kind for i in parsed.sections[".text"]]
        assert text_kinds == ["label", "insn"]
        ro_kinds = [i.kind for i in parsed.sections[".rodata"]]
        assert ro_kinds == ["label", "string"]

    def test_label_and_code_same_line(self):
        parsed = parse_source("f: mov r0, r1\n", "@;")
        kinds = [i.kind for i in parsed.sections[".text"]]
        assert kinds == ["label", "insn"]

    def test_globl_collects_exports(self):
        parsed = parse_source(".globl main\n.global other\n", "@;")
        assert parsed.exported == {"main", "other"}

    def test_word_args_split(self):
        parsed = parse_source(".data\nt: .word 1, 2, foo+4\n", "@;")
        item = parsed.sections[".data"][1]
        assert item.kind == "word"
        assert item.args == ["1", "2", "foo+4"]

    def test_string_escapes(self):
        parsed = parse_source('.rodata\ns: .asciz "a\\n\\t\\x41"\n', "@;")
        item = parsed.sections[".rodata"][1]
        assert item.text == "a\n\tA\x00"

    def test_unknown_directive_rejected(self):
        with pytest.raises(AssemblyError):
            parse_source(".bogus 4\n", "@;")

    def test_unknown_section_rejected(self):
        with pytest.raises(AssemblyError):
            parse_source(".section .evil\n", "@;")


class TestExpressions:
    def test_parse_int_forms(self):
        assert parse_int("42") == 42
        assert parse_int("0x2a") == 42
        assert parse_int("-8") == -8
        assert parse_int("'A'") == 65
        with pytest.raises(AssemblyError):
            parse_int("nope")

    def test_symbol_arithmetic(self):
        symbols = {"base": 0x1000}
        assert eval_symbol_expr("base", symbols) == 0x1000
        assert eval_symbol_expr("base+8", symbols) == 0x1008
        assert eval_symbol_expr("base - 4", symbols) == 0xFFC
        assert eval_symbol_expr("0x20", symbols) == 0x20

    def test_undefined_symbol_raises(self):
        with pytest.raises(AssemblyError):
            eval_symbol_expr("missing", {})


class TestAssembledProgram:
    def test_flat_image_zero_fills_gaps(self):
        program = AssembledProgram(
            sections={
                ".text": (0x1000, b"\xaa\xbb"),
                ".data": (0x1008, b"\xcc"),
            },
            symbols={},
            exported=set(),
        )
        base, image = program.flat_image()
        assert base == 0x1000
        assert image[0:2] == b"\xaa\xbb"
        assert image[2:8] == b"\x00" * 6
        assert image[8] == 0xCC

    def test_flat_image_empty(self):
        program = AssembledProgram(sections={}, symbols={}, exported=set())
        assert program.flat_image() == (0, b"")
