"""CFG recovery, call graph, dominators and loop tests."""

import pytest

from repro.cfg import CFGBuilder, build_call_graph, natural_loops
from repro.cfg.dominators import compute_dominators, immediate_dominators
from repro.cfg.loops import loop_membership
from repro.ir.irsb import JumpKind
from repro.loader.binary import load_elf
from repro.loader.link import build_executable

ARM_SRC = r"""
.globl main
main:
    push {r4, lr}
    mov r4, r0
    cmp r4, #0
    beq zero_case
    bl helper
    b done
zero_case:
    mov r0, #0
done:
    pop {r4, pc}
.globl helper
helper:
    mov r1, #0
loop:
    add r1, r1, #1
    cmp r1, r0
    blt loop
    mov r0, r1
    bx lr
.globl uses_import
uses_import:
    push {lr}
    bl strcpy
    pop {pc}
.globl has_pool
has_pool:
    ldr r0, =0x11223344
    bx lr
.ltorg
"""

MIPS_SRC = r"""
.globl main
main:
    addiu $sp, $sp, -24
    sw $ra, 20($sp)
    beq $a0, $zero, zero_case
    nop
    jal helper
    nop
    b done
    nop
zero_case:
    move $v0, $zero
done:
    lw $ra, 20($sp)
    jr $ra
    addiu $sp, $sp, 24
.globl helper
helper:
    move $v0, $zero
loop:
    addiu $v0, $v0, 1
    slt $t0, $v0, $a0
    bne $t0, $zero, loop
    nop
    jr $ra
    nop
"""


@pytest.fixture
def arm_funcs():
    elf_bytes, _ = build_executable("arm", ARM_SRC, imports=["strcpy"])
    binary = load_elf(elf_bytes)
    return CFGBuilder(binary).build_all(), binary


@pytest.fixture
def mips_funcs():
    elf_bytes, _ = build_executable("mips", MIPS_SRC)
    binary = load_elf(elf_bytes)
    return CFGBuilder(binary).build_all(), binary


def test_arm_main_block_structure(arm_funcs):
    functions, _ = arm_funcs
    main = functions["main"]
    # entry, call-block after beq, b-done block..., zero_case, done.
    assert main.block_count >= 4
    entry = main.entry_block
    assert len(entry.successors) == 2  # beq taken / fall-through


def test_arm_call_sites_resolved(arm_funcs):
    functions, _ = arm_funcs
    main = functions["main"]
    calls = main.call_sites
    assert len(calls) == 1
    assert calls[0].target_name == "helper"
    assert not calls[0].is_indirect


def test_arm_return_blocks_marked(arm_funcs):
    functions, _ = arm_funcs
    main = functions["main"]
    rets = [b for b in main.blocks.values() if b.is_return_block]
    assert len(rets) == 1  # pop {r4, pc}


def test_arm_loop_detected(arm_funcs):
    functions, _ = arm_funcs
    helper = functions["helper"]
    loops = natural_loops(helper)
    assert len(loops) == 1
    membership = loop_membership(helper)
    header = loops[0].header
    assert header in loops[0].body
    assert any(header in s for s in membership.values())


def test_arm_import_call(arm_funcs):
    functions, binary = arm_funcs
    uses = functions["uses_import"]
    calls = uses.call_sites
    assert calls[0].target_name == "strcpy"
    assert binary.functions["strcpy"].is_import


def test_arm_literal_pool_not_decoded(arm_funcs):
    functions, _ = arm_funcs
    pool_fn = functions["has_pool"]
    # Only one block: ldr + bx lr; the pool word is not a block.
    assert pool_fn.block_count == 1
    block = pool_fn.entry_block
    assert len(block.insns) == 2


def test_arm_pool_load_folds_to_constant(arm_funcs):
    from repro.ir.expr import Const
    from repro.ir.stmt import WrTmp

    functions, _ = arm_funcs
    block = functions["has_pool"].entry_block
    consts = [
        s.expr.value
        for s in block.irsb.stmts
        if isinstance(s, WrTmp) and isinstance(s.expr, Const)
    ]
    assert 0x11223344 in consts


def test_call_graph_edges(arm_funcs):
    functions, _ = arm_funcs
    call_graph = build_call_graph(functions)
    assert "helper" in call_graph.callees("main")
    assert "strcpy" in call_graph.callees("uses_import")
    assert "main" in call_graph.callers("helper")


def test_bottom_up_order(arm_funcs):
    functions, _ = arm_funcs
    call_graph = build_call_graph(functions)
    order = call_graph.bottom_up_order()
    assert order.index("helper") < order.index("main")
    assert order.index("strcpy") < order.index("uses_import")


def test_dominators_entry_dominates_all(arm_funcs):
    functions, _ = arm_funcs
    main = functions["main"]
    dom = compute_dominators(main)
    for addr, dominators in dom.items():
        assert main.addr in dominators


def test_immediate_dominators_form_tree(arm_funcs):
    functions, _ = arm_funcs
    main = functions["main"]
    idom = immediate_dominators(main)
    assert idom[main.addr] == main.addr
    # Every other block's idom is a different block.
    for addr, dominator in idom.items():
        if addr != main.addr:
            assert dominator != addr


def test_mips_blocks_keep_delay_slots(mips_funcs):
    functions, _ = mips_funcs
    main = functions["main"]
    for block in main.blocks.values():
        last = block.insns[-1]
        if len(block.insns) >= 2 and block.insns[-2].has_delay_slot():
            assert not last.has_delay_slot()


def test_mips_call_and_loop(mips_funcs):
    functions, _ = mips_funcs
    main = functions["main"]
    assert any(c.target_name == "helper" for c in main.call_sites)
    helper = functions["helper"]
    assert len(natural_loops(helper)) == 1


def test_mips_conditional_branch_successors(mips_funcs):
    functions, _ = mips_funcs
    main = functions["main"]
    entry = main.entry_block
    assert len(entry.successors) == 2


def test_block_lift_jumpkinds(arm_funcs):
    functions, _ = arm_funcs
    main = functions["main"]
    kinds = {b.irsb.jumpkind for b in main.blocks.values()}
    assert JumpKind.CALL in kinds
    assert JumpKind.RET in kinds
