"""MIPS32 encode/decode and assembler roundtrip tests."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.arch import get_arch
from repro.arch.mips import encoding as enc
from repro.arch.mips.assembler import hi16, lo16
from repro.errors import AssemblyError, DisassemblyError

regs = st.integers(min_value=0, max_value=31)
imm16s = st.integers(min_value=-0x8000, max_value=0x7FFF)
imm16u = st.integers(min_value=0, max_value=0xFFFF)


def roundtrip(insn):
    return enc.decode(enc.encode(insn), insn.addr)


@given(st.sampled_from(sorted(enc.R_FUNCTS)), regs, regs, regs,
       st.integers(min_value=0, max_value=31))
def test_rtype_roundtrip(mnem, rs, rt, rd, shamt):
    insn = enc.MipsInsn(kind="r", mnemonic=mnem, rs=rs, rt=rt, rd=rd, shamt=shamt)
    back = roundtrip(insn)
    assert (back.mnemonic, back.rs, back.rt, back.rd, back.shamt) == (
        mnem, rs, rt, rd, shamt
    )


@given(st.sampled_from(sorted(enc.SIGNED_IMM)), regs, regs, imm16s)
def test_itype_signed_roundtrip(mnem, rs, rt, imm):
    insn = enc.MipsInsn(kind="i", mnemonic=mnem, rs=rs, rt=rt, imm=imm)
    back = roundtrip(insn)
    assert (back.mnemonic, back.rs, back.rt, back.imm) == (mnem, rs, rt, imm)


@given(st.sampled_from(["andi", "ori", "xori"]), regs, regs, imm16u)
def test_itype_unsigned_roundtrip(mnem, rs, rt, imm):
    insn = enc.MipsInsn(kind="i", mnemonic=mnem, rs=rs, rt=rt, imm=imm)
    back = roundtrip(insn)
    assert back.imm == imm


@given(st.sampled_from(["j", "jal"]),
       st.integers(min_value=0, max_value=(1 << 26) - 1))
def test_jtype_roundtrip(mnem, word_index):
    target = word_index << 2
    insn = enc.MipsInsn(kind="j", mnemonic=mnem, target=target, addr=0)
    back = roundtrip(insn)
    assert back.target == target


@given(st.sampled_from(["bltz", "bgez"]), regs, imm16s)
def test_regimm_roundtrip(mnem, rs, imm):
    insn = enc.MipsInsn(kind="i", mnemonic=mnem, rs=rs, imm=imm)
    back = roundtrip(insn)
    assert (back.mnemonic, back.rs, back.imm) == (mnem, rs, imm)


def test_decode_rejects_unknown_opcode():
    with pytest.raises(DisassemblyError):
        enc.decode(0xFC000000)


def test_branch_target():
    insn = enc.MipsInsn(kind="i", mnemonic="beq", imm=-1, addr=0x1000)
    assert insn.branch_target() == 0x1000  # addr+4-4


def test_is_return():
    jr_ra = enc.MipsInsn(kind="r", mnemonic="jr", rs=31)
    assert jr_ra.is_return()
    jr_t9 = enc.MipsInsn(kind="r", mnemonic="jr", rs=25)
    assert not jr_t9.is_return()


@given(st.integers(min_value=0, max_value=0xFFFFFFFF))
def test_hi_lo_reconstruct(value):
    low = lo16(value)
    if low >= 0x8000:
        low -= 0x10000
    assert ((hi16(value) << 16) + low) & 0xFFFFFFFF == value


class TestMipsAssembler:
    SNIPPETS = [
        ("addu $v0, $a0, $a1", ["addu"]),
        ("move $t0, $a0", ["addu"]),
        ("li $t0, 42", ["addiu"]),
        ("li $t0, 0x12345678", ["lui", "addiu"]),
        ("lw $t1, 0x4c($a0)", ["lw"]),
        ("sw $ra, 28($sp)", ["sw"]),
        ("nop", ["sll"]),
        ("jr $ra", ["jr"]),
        ("sll $t0, $t1, 2", ["sll"]),
        ("sltu $v0, $a0, $a1", ["sltu"]),
    ]

    @pytest.mark.parametrize("snippet,mnems", SNIPPETS)
    def test_expansion(self, snippet, mnems):
        arch = get_arch("mips")
        prog = arch.assembler().assemble(".text\n%s\n" % snippet)
        base, data = prog.sections[".text"]
        insns = list(arch.disassembler().disasm_range(data, base))
        assert [i.mnemonic for i in insns] == mnems

    def test_la_reconstructs_address(self):
        arch = get_arch("mips")
        src = ".text\nf:\n la $t0, message\n jr $ra\n nop\n" \
              ".rodata\nmessage: .asciz \"hi\"\n"
        prog = arch.assembler().assemble(src)
        base, data = prog.sections[".text"]
        insns = list(arch.disassembler().disasm_range(data, base))
        lui, addiu = insns[0], insns[1]
        value = ((lui.imm & 0xFFFF) << 16) + addiu.imm
        assert value & 0xFFFFFFFF == prog.symbols["message"]

    def test_branch_offsets(self):
        arch = get_arch("mips")
        src = ".text\nloop:\n bne $t0, $t1, loop\n nop\n beq $zero, $zero, after\n nop\nafter:\n jr $ra\n nop\n"
        prog = arch.assembler().assemble(src)
        base, data = prog.sections[".text"]
        insns = list(arch.disassembler().disasm_range(data, base))
        assert insns[0].branch_target() == prog.symbols["loop"]
        assert insns[2].branch_target() == prog.symbols["after"]

    def test_jal_and_word_tables(self):
        arch = get_arch("mips")
        src = (
            ".text\nmain:\n jal helper\n nop\n jr $ra\n nop\n"
            "helper:\n jr $ra\n nop\n"
            ".data\ntable: .word main, helper\n"
        )
        prog = arch.assembler().assemble(src)
        tbase, tdata = prog.sections[".text"]
        insns = list(arch.disassembler().disasm_range(tdata, tbase))
        assert insns[0].target == prog.symbols["helper"]
        dbase, ddata = prog.sections[".data"]
        assert int.from_bytes(ddata[0:4], "big") == prog.symbols["main"]
        assert int.from_bytes(ddata[4:8], "big") == prog.symbols["helper"]

    def test_rejects_out_of_range_immediate(self):
        arch = get_arch("mips")
        with pytest.raises(AssemblyError):
            arch.assembler().assemble(".text\naddiu $t0, $t1, 0x9000\n")

    def test_text_rendering_roundtrip(self):
        arch = get_arch("mips")
        asm = arch.assembler()
        dis = arch.disassembler()
        snippets = [
            "addu $v0, $a0, $a1",
            "lw $t1, 76($a0)",
            "sw $ra, 28($sp)",
            "sll $t0, $t1, 2",
            "ori $t0, $zero, 513",
            "jr $ra",
            "sltu $v0, $a0, $a1",
        ]
        for snippet in snippets:
            base, data = asm.assemble(".text\n%s\n" % snippet).sections[".text"]
            rendered = dis.disasm_one(data, 0, base).text()
            base2, data2 = asm.assemble(".text\n%s\n" % rendered).sections[".text"]
            assert data2 == data, rendered
