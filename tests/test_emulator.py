"""End-to-end programs on the concrete emulators."""

import pytest

from tests.conftest import assemble, load_program, run_function

ARM_FACTORIAL = r"""
.text
.globl fact
fact:                   @ iterative factorial of r0
    mov r1, #1
loop:
    cmp r0, #1
    ble done
    mul r1, r0, r1
    sub r0, r0, #1
    b loop
done:
    mov r0, r1
    bx lr
"""

MIPS_FACTORIAL = r"""
.text
.globl fact
fact:
    li $v0, 1
loop:
    slti $t0, $a0, 2
    bne $t0, $zero, done
    nop
    # v0 *= a0 via shift-add (no mult in the subset)
    move $t1, $a0
    move $t2, $v0
    move $v0, $zero
mul_loop:
    beq $t1, $zero, mul_done
    nop
    andi $t3, $t1, 1
    beq $t3, $zero, skip_add
    nop
    addu $v0, $v0, $t2
skip_add:
    srl $t1, $t1, 1
    sll $t2, $t2, 1
    b mul_loop
    nop
mul_done:
    addiu $a0, $a0, -1
    b loop
    nop
done:
    jr $ra
    nop
"""

ARM_STRCPY = r"""
.text
.globl do_copy
do_copy:                @ strcpy(r0=dst, r1=src); returns length
    mov r2, #0
copy_loop:
    ldrb r3, [r1, r2]
    strb r3, [r0, r2]
    add r2, r2, #1
    cmp r3, #0
    bne copy_loop
    sub r0, r2, #1
    bx lr
"""


@pytest.mark.parametrize("n,expected", [(0, 1), (1, 1), (5, 120), (10, 3628800)])
def test_arm_factorial(n, expected):
    ret, _, _ = run_function("arm", ARM_FACTORIAL, "fact", args=(n,))
    assert ret == expected


@pytest.mark.parametrize("n,expected", [(0, 1), (1, 1), (5, 120), (7, 5040)])
def test_mips_factorial(n, expected):
    ret, _, _ = run_function("mips", MIPS_FACTORIAL, "fact", args=(n,))
    assert ret == expected


def test_arm_strcpy_moves_bytes():
    program = assemble("arm", ARM_STRCPY)
    cpu, memory = load_program("arm", program)
    src, dst = 0x20000, 0x21000
    memory.write_bytes(src, b"firmware\x00")
    memory.write_bytes(dst, b"\x00" * 16)
    ret = cpu.run(program.symbols["do_copy"], 0x7FFEFF00, args=(dst, src))
    assert ret == len(b"firmware")
    assert memory.read_cstring(dst) == b"firmware"


def test_arm_stack_roundtrip():
    src = r"""
.text
f:
    push {r4, r5, lr}
    mov r4, r0
    mov r5, r1
    add r0, r4, r5
    pop {r4, r5, pc}
"""
    ret, cpu, _ = run_function("arm", src, "f", args=(3, 4))
    assert ret == 7


def test_arm_calls_and_returns():
    src = r"""
.text
main:
    push {lr}
    mov r0, #5
    bl double
    bl double
    pop {pc}
double:
    add r0, r0, r0
    bx lr
"""
    ret, _, _ = run_function("arm", src, "main")
    assert ret == 20


def test_mips_calls_with_delay_slots():
    src = r"""
.text
main:
    addiu $sp, $sp, -24
    sw $ra, 20($sp)
    li $a0, 5
    jal double
    nop
    move $a0, $v0
    jal double
    nop
    lw $ra, 20($sp)
    jr $ra
    addiu $sp, $sp, 24
double:
    jr $ra
    addu $v0, $a0, $a0
"""
    ret, _, _ = run_function("mips", src, "main")
    assert ret == 20


def test_mips_delay_slot_executes_on_not_taken_branch():
    src = r"""
.text
f:
    li $v0, 0
    beq $a0, $zero, skip
    addiu $v0, $v0, 1     # delay slot: always executes
    addiu $v0, $v0, 10
skip:
    jr $ra
    nop
"""
    ret_taken, _, _ = run_function("mips", src, "f", args=(0,))
    assert ret_taken == 1       # slot ran, branch taken
    ret_not, _, _ = run_function("mips", src, "f", args=(9,))
    assert ret_not == 11        # slot ran, fall-through ran too


def test_arm_conditional_execution():
    src = r"""
.text
f:
    cmp r0, #10
    movlt r0, #1
    movge r0, #2
    bx lr
"""
    assert run_function("arm", src, "f", args=(5,))[0] == 1
    assert run_function("arm", src, "f", args=(10,))[0] == 2


def test_arm_hook_models_external_call():
    src = r"""
.text
main:
    push {lr}
    bl external
    add r0, r0, #1
    pop {pc}
external:
    bx lr
"""
    program = assemble("arm", src)
    cpu, _ = load_program("arm", program)

    def fake_external(c):
        c.regs[0] = 41

    cpu.hooks[program.symbols["external"]] = fake_external
    ret = cpu.run(program.symbols["main"], 0x7FFEFF00)
    assert ret == 42
