"""Tests for the differential correctness harness (repro.diffcheck)."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cli import main
from repro.diffcheck import (
    PATTERNS,
    DiffCheck,
    FragmentSpec,
    ProgramSpec,
    baseline_flagged,
    build_program,
    generate_specs,
    oracle_verdicts,
    run_diffcheck,
    shrink_spec,
)
from repro.core import DTaint
from repro.pipeline.telemetry import read_events


def _spec(patterns, arch="arm", fillers=0, name="t"):
    """Spec with one fragment per (pattern, vulnerable) pair."""
    fragments = tuple(
        FragmentSpec(pattern=key, function="h%d_%s" % (i, key),
                     vulnerable=vulnerable)
        for i, (key, vulnerable) in enumerate(patterns)
    )
    return ProgramSpec(name=name, arch=arch, fragments=fragments,
                       fillers=fillers, filler_seed=7)


class TestGeneration:
    def test_same_seed_same_specs(self):
        first = generate_specs(seed=7, count=5)
        second = generate_specs(seed=7, count=5)
        assert [s.to_dict() for s in first] == \
            [s.to_dict() for s in second]

    def test_different_seeds_differ(self):
        a = [s.to_dict() for s in generate_specs(seed=1, count=10)]
        b = [s.to_dict() for s in generate_specs(seed=2, count=10)]
        assert a != b

    def test_spec_round_trips_through_dict(self):
        spec = generate_specs(seed=3, count=1)[0]
        assert ProgramSpec.from_dict(spec.to_dict()) == spec

    def test_build_contains_every_fragment_and_filler(self):
        spec = _spec([("system_soap", True), ("strcpy_cookie", False)],
                     fillers=2)
        built = build_program(spec)
        names = {f.name for f in built.binary.local_functions}
        assert {"h0_system_soap", "h1_strcpy_cookie"} <= names
        assert sum(1 for n in names if n.startswith("fill")) == 2
        labels = {g.function: g.vulnerable for g in built.ground_truth}
        assert labels == {"h0_system_soap": True,
                          "h1_strcpy_cookie": False}


class TestOracle:
    @pytest.mark.parametrize("arch", ["arm", "mips"])
    def test_vulnerable_and_safe_variants_separate(self, arch):
        spec = _spec([("system_soap", True), ("strcpy_cookie", False)],
                     arch=arch)
        built = build_program(spec)
        verdicts = oracle_verdicts(built)
        assert verdicts["h0_system_soap"].confirmed
        assert not verdicts["h1_strcpy_cookie"].confirmed


class TestBaselineCheck:
    def test_flags_flow_with_or_without_sanitization(self):
        # The baseline models no sanitization: both variants flagged —
        # exactly the imprecision the differential report surfaces.
        for vulnerable in (True, False):
            spec = _spec([("system_soap", vulnerable)])
            built = build_program(spec)
            detector = DTaint(built.binary, name="t")
            detector.build_cfg()
            flagged = baseline_flagged(
                built.binary, detector.functions, detector.call_graph
            )
            assert "h0_system_soap" in flagged

    def test_does_not_flag_fillers(self):
        spec = _spec([("system_soap", True)], fillers=2)
        built = build_program(spec)
        detector = DTaint(built.binary, name="t")
        detector.build_cfg()
        flagged = baseline_flagged(
            built.binary, detector.functions, detector.call_graph
        )
        assert not any(name.startswith("fill") for name in flagged)


class TestShrinker:
    def test_shrinks_to_the_offending_fragment(self):
        spec = _spec(
            [("system_soap", True), ("strcpy_cookie", False),
             ("memcpy_frame", True)],
            fillers=2,
        )

        def predicate(candidate):
            return any(f.function == "h1_strcpy_cookie"
                       for f in candidate.fragments)

        minimized, steps = shrink_spec(spec, predicate)
        assert [f.function for f in minimized.fragments] == \
            ["h1_strcpy_cookie"]
        assert minimized.fillers == 0
        assert steps == 3

    def test_nothing_to_shrink(self):
        spec = _spec([("system_soap", True)])
        minimized, steps = shrink_spec(spec, lambda c: True)
        assert minimized == spec and steps == 0


class TestHarness:
    def test_sweep_has_no_unexplained_static_fns(self):
        report = run_diffcheck(seed=3, count=6)
        assert report.ok
        assert report.programs == 6
        assert report.functions_checked > 0
        counts = report.counts
        assert counts["static-fn"] == 0
        assert counts["oracle-mismatch"] == 0

    def test_sanitized_decoys_become_baseline_disagreements(self):
        # A program that is one sanitized decoy: static and oracle
        # agree it is safe, the check-blind baseline flags it.
        harness = DiffCheck(seed=0, count=1, shrink=False)
        checked, divergences = harness._check_program(
            _spec([("system_ping", False)]),
            need_oracle=True, need_baseline=True,
        )
        assert checked == 1
        assert [d.kind for d in divergences] == ["baseline-disagreement"]
        assert divergences[0].expected is False

    def test_divergences_carry_minimized_reproducers(self):
        report = run_diffcheck(seed=1, count=4)
        for divergence in report.divergences:
            reproducer = divergence.reproducer
            assert reproducer["fragments"], divergence.describe()
            # Shrinking keeps the divergent function's own fragment.
            assert any(f["function"] == divergence.function
                       for f in reproducer["fragments"])

    def test_triage_report_dict_shape(self):
        report = run_diffcheck(seed=2, count=3, shrink=False)
        doc = report.to_dict()
        assert set(doc["counts"]) == {
            "static-fn", "static-fp", "baseline-disagreement",
            "oracle-mismatch",
        }
        assert doc["ok"] == (doc["unexplained_static_fns"] == 0)
        json.dumps(doc)   # must be JSON-serialisable as-is


class TestCLI:
    def test_diffcheck_cli_writes_artifacts(self, tmp_path, capsys):
        out = str(tmp_path / "out")
        code = main(["diffcheck", "--seed", "1", "--count", "2",
                     "--out", out])
        assert code == 0
        doc = json.load(open(str(tmp_path / "out" / "diffcheck.json")))
        assert doc["seed"] == 1 and doc["programs"] == 2
        events = read_events(str(tmp_path / "out" / "telemetry.jsonl"))
        kinds = {e["event"] for e in events}
        assert {"diffcheck_start", "diffcheck_program",
                "diffcheck_done"} <= kinds
        done = [e for e in events if e["event"] == "diffcheck_done"][0]
        assert done["ok"] is True
        assert capsys.readouterr().out.strip()

    def test_fail_on_any_divergence(self, tmp_path):
        # Seeded sweeps include sanitized decoys, so baseline
        # disagreements exist; the strict switch turns them fatal.
        code = main(["diffcheck", "--seed", "1", "--count", "4",
                     "--no-shrink", "--fail-on-any-divergence"])
        assert code == 1

    def test_rejects_bad_count(self, capsys):
        assert main(["diffcheck", "--count", "0"]) == 2


# ---------------------------------------------------------------------------
# Property: the oracle is trustworthy — every vulnerable=True generated
# program's sink is actually reachable in emulation (and the matched
# sanitized variant is not exploitable), so oracle labels can judge the
# detector.

_PATTERN_KEYS = sorted(PATTERNS)


@settings(max_examples=12, deadline=None)
@given(
    key=st.sampled_from(_PATTERN_KEYS),
    arch=st.sampled_from(["arm", "mips"]),
    vulnerable=st.booleans(),
)
def test_oracle_round_trips_generated_labels(key, arch, vulnerable):
    spec = _spec([(key, vulnerable)], arch=arch, name="prop")
    built = build_program(spec)
    (verdict,) = oracle_verdicts(built).values()
    assert verdict.confirmed == vulnerable, (
        "%s/%s vulnerable=%s: oracle said %s (%s)"
        % (key, arch, vulnerable, verdict.confirmed, verdict.effect)
    )
