"""Phase profiler: unit behavior + pipeline integration.

The load-bearing regression here is the warm-cache property: a fleet
rescan whose summaries all hit the cache must never re-enter symbolic
execution, observable through the ``symexec_functions`` phase counter
(PR 1's cache path, now assertable).
"""

from repro import profiling
from repro.pipeline.scheduler import FleetJob, FleetScheduler, execute_job
from repro.pipeline.telemetry import (
    Telemetry,
    aggregate_phase_profile,
    read_events,
    render_fleet_summary,
)

SCALE = 0.05


def _job(key="dir645"):
    return FleetJob(job_id=key, kind="profile", key=key, scale=SCALE)


class TestPhaseProfiler:
    def test_phase_accumulates_and_counts(self):
        profiler = profiling.PhaseProfiler()
        with profiler.phase("alias"):
            pass
        with profiler.phase("alias"):
            pass
        profiler.count("alias_queries")
        profiler.count("alias_queries", 2)
        snap = profiler.snapshot()
        assert snap["seconds"]["alias"] >= 0.0
        assert snap["counters"]["alias_queries"] == 3

    def test_delta_isolates_a_window(self):
        profiler = profiling.PhaseProfiler()
        profiler.add_seconds("lift", 1.0)
        profiler.count("lift_blocks", 5)
        before = profiler.snapshot()
        profiler.add_seconds("lift", 0.5)
        profiler.add_seconds("detect", 0.25)
        profiler.count("lift_blocks", 3)
        delta = profiling.delta(before, profiler.snapshot())
        assert abs(delta["seconds"]["lift"] - 0.5) < 1e-9
        assert abs(delta["seconds"]["detect"] - 0.25) < 1e-9
        assert delta["counters"] == {"lift_blocks": 3}

    def test_merge_and_percentages(self):
        merged = profiling.merge([
            {"seconds": {"symexec": 3.0}, "counters": {"symexec_functions": 4}},
            {"seconds": {"symexec": 1.0, "detect": 1.0},
             "counters": {"symexec_functions": 2}},
        ])
        assert merged["seconds"] == {"symexec": 4.0, "detect": 1.0}
        assert merged["counters"] == {"symexec_functions": 6}
        shares = profiling.phase_percentages(merged)
        assert shares == {"symexec": 80.0, "detect": 20.0}
        assert profiling.phase_percentages({"seconds": {}}) == {}

    def test_render_lists_phases_and_counters(self):
        text = profiling.render(
            {"seconds": {"symexec": 2.0, "lift": 1.0},
             "counters": {"lift_blocks": 7}},
        )
        assert "symexec" in text and "lift" in text
        assert "66.7%" in text and "lift_blocks=7" in text


class TestPipelineIntegration:
    def test_report_carries_phase_profile(self, tmp_path):
        payload = execute_job(_job())
        profile = payload["report"]["phase_profile"]
        assert profile["seconds"].get("symexec", 0.0) > 0.0
        assert profile["counters"]["symexec_functions"] > 0
        assert profile["counters"]["lift_blocks"] > 0

    def test_warm_summary_cache_never_reenters_symexec(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        cold = execute_job(_job(), cache_dir=cache_dir,
                           use_report_cache=False)
        assert cold["cache"]["summary_misses"] > 0
        assert cold["report"]["phase_profile"]["counters"][
            "symexec_functions"] > 0

        before = profiling.PROFILER.snapshot()
        warm = execute_job(_job(), cache_dir=cache_dir,
                           use_report_cache=False)
        window = profiling.delta(before, profiling.PROFILER.snapshot())

        assert warm["cache"]["summary_misses"] == 0
        assert warm["cache"]["summary_hits"] > 0
        # The hot path was never entered: no symexec counter ticks and
        # no symexec seconds accumulated anywhere in the process while
        # the warm job ran — and the warm report's own profile agrees.
        assert window["counters"].get("symexec_functions", 0) == 0
        assert window["seconds"].get("symexec", 0.0) == 0.0
        warm_counters = warm["report"]["phase_profile"]["counters"]
        assert warm_counters.get("symexec_functions", 0) == 0

    def test_fleet_emits_phase_times_and_summary_shares(self, tmp_path):
        telemetry_path = str(tmp_path / "events.jsonl")
        cache_dir = str(tmp_path / "cache")
        with Telemetry(telemetry_path) as telemetry:
            scheduler = FleetScheduler(jobs=1, cache_dir=cache_dir,
                                       telemetry=telemetry)
            results = scheduler.run([_job()])
        assert results[0].ok
        events = read_events(telemetry_path)
        phase_events = [e for e in events if e["event"] == "phase_times"]
        assert len(phase_events) == 1
        assert phase_events[0]["seconds"].get("symexec", 0.0) > 0.0
        assert phase_events[0]["counters"]["symexec_functions"] > 0

        aggregate = aggregate_phase_profile(results)
        assert aggregate["seconds"].get("symexec", 0.0) > 0.0
        summary = render_fleet_summary(results, wall_seconds=1.0)
        assert "phases:" in summary and "symexec" in summary

        # A whole-report cache hit re-emits nothing: its profile
        # describes the original run, not this one.
        with Telemetry(telemetry_path) as telemetry:
            hot = FleetScheduler(jobs=1, cache_dir=cache_dir,
                                 telemetry=telemetry).run([_job()])
        assert hot[0].cache["report_cache_hit"]
        hot_events = read_events(telemetry_path)[len(events):]
        assert not [e for e in hot_events if e["event"] == "phase_times"]
        assert aggregate_phase_profile(hot) == {"seconds": {}, "counters": {}}
