"""The paper's flagship hard case: Heartbleed at the binary level.

"As far as we know, the state-of-the-art static taint analysis cannot
detect Heartbleed weakness at the binary code level" (paper §II-B) —
this is the case DTaint's pointer aliasing + interprocedural
definition updating is built for.
"""

import pytest

from repro.core import DTaint
from repro.corpus.openssl import build_openssl
from repro.symexec.value import pretty


@pytest.fixture(scope="module")
def result():
    target = build_openssl()
    detector = DTaint(target.binary, name="openssl")
    report = detector.run()
    return target, detector, report


def test_heartbleed_found(result):
    _, _, report = result
    memcpy_findings = [
        f for f in report.findings if f.sink_name == "memcpy"
    ]
    assert len(memcpy_findings) == 1
    finding = memcpy_findings[0]
    assert finding.kind == "buffer-overflow"
    assert finding.source_name.startswith("read")


def test_patched_heartbeat_not_flagged(result):
    target, detector, report = result
    fixed_addr_range = _function_range(target, "tls1_process_heartbeat_fixed")
    for finding in report.findings:
        assert not (
            fixed_addr_range[0] <= finding.sink_addr < fixed_addr_range[1]
        ), "the patched handler must not be flagged"


def test_vulnerable_sink_is_in_heartbeat(result):
    target, _, report = result
    heartbeat = _function_range(target, "tls1_process_heartbeat")
    finding = [f for f in report.findings if f.sink_name == "memcpy"][0]
    assert heartbeat[0] <= finding.sink_addr < heartbeat[1]


def test_payload_expression_shows_n2s_chain(result):
    """The tainted length must be the inlined n2s over rrec.data."""
    _, _, report = result
    finding = [f for f in report.findings if f.sink_name == "memcpy"][0]
    # payload = (p[2] | p[1] << 8) where p roots in the s->s3 chain.
    assert "0x58" in finding.expr          # s->s3
    assert "0xec" in finding.expr or "0x118" in finding.expr
    assert "256" in finding.expr or "<< " in finding.expr


def test_stored_pointer_definition_exported(result):
    """rrec.data = rbuf.buf must be visible in the top-level caller."""
    _, detector, _ = result
    enriched = detector.enriched["ssl3_read_bytes"]
    rendered = [
        (pretty(p.dest), pretty(p.value)) for p in enriched.def_pairs
    ]
    assert (
        "deref(deref(arg0 + 0x58) + 0x118)",
        "deref(deref(arg0 + 0x58) + 0xec)",
    ) in rendered


def test_taint_object_is_record_buffer(result):
    _, detector, _ = result
    enriched = detector.enriched["ssl3_read_bytes"]
    assert "deref(deref(arg0 + 0x58) + 0xec)" in {
        pretty(t) for t in enriched.taint_objects
    }


def _function_range(target, name):
    symbol = target.binary.functions[name]
    return symbol.addr, symbol.addr + symbol.size
