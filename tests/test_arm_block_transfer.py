"""Differential coverage for ARM block transfers (ldm/stm modes)."""

import pytest

from repro.arch import get_arch
from repro.emu import Memory, make_cpu
from repro.ir.interp import IRInterpreter
from tests.conftest import assemble

MODES = ["ia", "ib", "da", "db"]


def _run_both(source, init_regs):
    program = assemble("arm", source)
    base, data = program.sections[".text"]
    arch = get_arch("arm")

    emu_mem = Memory(endness="little")
    emu_mem.write_bytes(base, data)
    emu_mem.write_bytes(0x30000, bytes(0x200))
    cpu = make_cpu(arch, emu_mem)
    for index, value in init_regs.items():
        cpu.regs[index] = value
    cpu.run(program.symbols["f"], 0x7FFE0000)

    insns = [
        arch.disassembler().disasm_one(data, off, base + off)
        for off in range(0, len(data), 4)
    ]
    ir_mem = Memory(endness="little")
    ir_mem.write_bytes(base, data)
    ir_mem.write_bytes(0x30000, bytes(0x200))
    registers = {"r%d" % i: 0 for i in range(16)}
    for index, value in init_regs.items():
        registers["r%d" % index] = value
    registers["r13"] = 0x7FFE0000
    registers["r14"] = 0xFFFF0000
    registers.update(cc_op=1, cc_dep1=1, cc_dep2=0, cc_ndep=0)
    interp = IRInterpreter(registers, ir_mem)
    lifter = arch.lifter()
    pc = program.symbols["f"]
    for _ in range(20):
        index = (pc - base) // 4
        irsb = lifter.lift_block(insns[index:])
        pc, _kind = interp.run(irsb)
        if pc == 0xFFFF0000:
            break
    return cpu, emu_mem, registers, ir_mem


@pytest.mark.parametrize("mode", MODES)
def test_stm_modes_match_emulator(mode):
    source = (
        ".text\nf:\n    stm%s r10!, {r0, r1, r2}\n    bx lr\n" % mode
    )
    init = {0: 0x11111111, 1: 0x22222222, 2: 0x33333333, 10: 0x30100}
    cpu, emu_mem, registers, ir_mem = _run_both(source, init)
    assert registers["r10"] == cpu.regs[10]
    assert ir_mem.read_bytes(0x30000, 0x200) == emu_mem.read_bytes(
        0x30000, 0x200
    )


@pytest.mark.parametrize("mode", MODES)
def test_ldm_modes_match_emulator(mode):
    setup = "".join(
        "    str r%d, [r10, #%d]\n" % (i, 4 * (i - 4))
        for i in range(4, 7)
    )
    source = (
        ".text\nf:\n%s    ldm%s r10, {r0, r1, r2}\n    bx lr\n"
        % (setup, mode)
    )
    init = {4: 0xAAAA0001, 5: 0xBBBB0002, 6: 0xCCCC0003, 10: 0x30100}
    cpu, _emu_mem, registers, _ir_mem = _run_both(source, init)
    for i in range(3):
        assert registers["r%d" % i] == cpu.regs[i], "r%d in mode" % i


def test_push_pop_roundtrip_preserves_values():
    source = (
        ".text\nf:\n"
        "    push {r4, r5, r6}\n"
        "    mov r4, #0\n    mov r5, #0\n    mov r6, #0\n"
        "    pop {r4, r5, r6}\n"
        "    bx lr\n"
    )
    init = {4: 0x44444444, 5: 0x55555555, 6: 0x66666666}
    cpu, _m, registers, _im = _run_both(source, init)
    for i in (4, 5, 6):
        assert cpu.regs[i] == init[i]
        assert registers["r%d" % i] == init[i]


def test_report_json_roundtrip(tmp_path):
    import json

    from repro.core import DTaint
    from repro.corpus.examples import build_foo_woo

    built = build_foo_woo()
    report = DTaint(built.binary, name="foo-woo").run()
    path = report.save_json(tmp_path / "report.json")
    data = json.loads(open(path).read())
    assert data["binary"] == "foo-woo"
    assert len(data["vulnerabilities"]) == 1
    assert data["vulnerabilities"][0]["sink_name"] == "memcpy"
    assert data["stage_seconds"]
