"""Malformed-input corpus: every broken file fails *typed*, never raw.

The loader and the firmware extractors sit on the trust boundary: the
bytes they parse come off flash images.  The contract under test is
that any corruption — truncation at every offset, seeded bit flips,
zero-length files, forged header fields — surfaces as the typed
:class:`MalformedInput` hierarchy (``ELFError`` / ``FirmwareError``)
and **never** as ``struct.error``, ``IndexError``, ``MemoryError`` or
a hang.
"""

import random
import struct

import pytest

from repro.corpus.profiles import build_firmware
from repro.errors import ELFError, FirmwareError, MalformedInput
from repro.firmware import binwalk
from repro.firmware.image import (
    pack_trx,
    pack_uimage,
    parse_trx,
    parse_uimage,
)
from repro.firmware.simplefs import SimpleFS
from repro.loader.binary import load_elf
from repro.loader.elf import ElfFile


@pytest.fixture(scope="module")
def built():
    """A real corpus binary (the seed for every corruption below)."""
    return build_firmware("dgn1000", scale=0.05)


@pytest.fixture(scope="module")
def firmware_blob(built):
    fs = SimpleFS()
    fs.add_file("/bin/httpd", built.elf_bytes)
    fs.add_file("/etc/version", b"v1.0.42\n" * 30)
    return pack_trx(b"KERNELSTUB" * 20, fs.pack())


def _assert_typed(parse, data, expected=MalformedInput):
    """A corrupt input either parses or raises the typed family."""
    try:
        parse(data)
    except expected:
        pass
    # Any other exception type propagates and fails the test.


class TestMalformedELF:
    def test_zero_length(self):
        with pytest.raises(ELFError):
            load_elf(b"")

    def test_not_elf_at_all(self):
        with pytest.raises(ELFError):
            load_elf(b"GIF89a" + b"\x00" * 100)

    def test_truncation_sweep(self, built):
        elf = built.elf_bytes
        # Every truncation length across the file, coarse then fine
        # around the header region where most parsing happens.
        lengths = set(range(0, min(len(elf), 256))) | set(
            range(0, len(elf), max(1, len(elf) // 128))
        )
        for length in sorted(lengths):
            _assert_typed(load_elf, elf[:length], ELFError)

    @pytest.mark.parametrize("seed", range(8))
    def test_seeded_bit_flips(self, built, seed):
        rng = random.Random(seed)
        elf = bytearray(built.elf_bytes)
        for _ in range(rng.randrange(1, 16)):
            elf[rng.randrange(len(elf))] ^= 1 << rng.randrange(8)
        _assert_typed(load_elf, bytes(elf), ELFError)

    def test_forged_symbol_count_cannot_spin(self, built):
        # Blow sh_size of .symtab up to claim ~268M symbols; the parse
        # must bound itself by the actual bytes, not the forged size.
        elf = built.elf_bytes
        parsed = ElfFile.parse(elf)
        symtab = parsed.sections[".symtab"]
        e_shoff = struct.unpack_from(parsed.endian + "I", elf, 32)[0]
        e_shentsize, e_shnum = struct.unpack_from(
            parsed.endian + "HH", elf, 46
        )
        forged = bytearray(elf)
        for i in range(e_shnum):
            base = e_shoff + i * e_shentsize
            offset, size = struct.unpack_from(
                parsed.endian + "II", forged, base + 16
            )
            if offset == symtab.offset and size == symtab.size:
                struct.pack_into(
                    parsed.endian + "I", forged, base + 20, 0xFFFFFFF0
                )
                break
        else:
            pytest.fail("could not locate .symtab header to forge")
        _assert_typed(load_elf, bytes(forged), ELFError)

    def test_forged_memsz_cannot_allocate(self, built):
        # A PT_LOAD claiming a multi-GB memsz must be rejected before
        # the loader tries to zero-fill it.
        elf = built.elf_bytes
        endian = ElfFile.parse(elf).endian
        e_phoff = struct.unpack_from(endian + "I", elf, 28)[0]
        forged = bytearray(elf)
        struct.pack_into(endian + "I", forged, e_phoff + 20, 0xF0000000)
        with pytest.raises(ELFError):
            load_elf(bytes(forged))


class TestMalformedFirmware:
    def test_zero_length(self):
        with pytest.raises(FirmwareError):
            binwalk.extract_filesystem(b"")

    def test_truncation_sweep(self, firmware_blob):
        step = max(1, len(firmware_blob) // 200)
        for length in range(0, len(firmware_blob), step):
            _assert_typed(
                binwalk.extract_filesystem, firmware_blob[:length],
                FirmwareError,
            )

    @pytest.mark.parametrize("seed", range(8))
    def test_seeded_bit_flips(self, firmware_blob, seed):
        rng = random.Random(1000 + seed)
        blob = bytearray(firmware_blob)
        for _ in range(rng.randrange(1, 16)):
            blob[rng.randrange(len(blob))] ^= 1 << rng.randrange(8)
        _assert_typed(
            binwalk.extract_filesystem, bytes(blob), FirmwareError
        )

    def test_trx_header_garbage(self):
        _assert_typed(parse_trx, pack_trx(b"K", b"R")[:10], FirmwareError)
        with pytest.raises(FirmwareError):
            parse_trx(b"HDR0")          # magic with nothing behind it

    def test_uimage_header_garbage(self):
        image = pack_uimage(b"kern", b"root")
        with pytest.raises(FirmwareError):
            parse_uimage(image[:30])
        # Valid header CRC but payload too short for the rootfs-offset
        # word: still a typed failure.
        _assert_typed(parse_uimage, image[:70], FirmwareError)

    def test_simplefs_entry_corruption_is_per_file(self):
        fs = SimpleFS()
        fs.add_file("/bin/good", b"G" * 200)
        fs.add_file("/bin/bad", b"B" * 200)
        packed = bytearray(fs.pack())
        # Corrupt /bin/bad's compressed payload, then re-seal the
        # image checksum so only the entry is broken, not the image.
        import zlib

        header_size = struct.calcsize("<4sIII")
        _magic, count, table_size, _crc = struct.unpack_from(
            "<4sIII", packed, 0
        )
        entry_size = struct.calcsize("<HHIII")
        cursor = 0
        table = packed[header_size:header_size + table_size]
        target_span = None
        for _ in range(count):
            path_len, _mode, offset, stored_len, _raw = struct.unpack_from(
                "<HHIII", table, cursor
            )
            path = bytes(
                table[cursor + entry_size:cursor + entry_size + path_len]
            )
            if path == b"/bin/bad":
                target_span = (offset, stored_len)
            cursor += entry_size + path_len
        assert target_span is not None
        start = header_size + table_size + target_span[0]
        packed[start] ^= 0xFF
        new_crc = zlib.crc32(bytes(packed[header_size:])) & 0xFFFFFFFF
        struct.pack_into("<I", packed, header_size - 4, new_crc)

        unpacked = SimpleFS.unpack(bytes(packed))
        assert "/bin/good" in unpacked
        assert "/bin/bad" not in unpacked
        assert unpacked.skipped[0][0] == "/bin/bad"

    def test_undecodable_path_is_per_file_skip(self):
        fs = SimpleFS()
        fs.add_file("/bin/ok", b"fine")
        packed = bytearray(fs.pack())
        header_size = struct.calcsize("<4sIII")
        entry_size = struct.calcsize("<HHIII")
        # First path byte -> invalid UTF-8 continuation, reseal CRC.
        import zlib

        packed[header_size + entry_size] = 0xFF
        new_crc = zlib.crc32(bytes(packed[header_size:])) & 0xFFFFFFFF
        struct.pack_into("<I", packed, header_size - 4, new_crc)
        unpacked = SimpleFS.unpack(bytes(packed))
        assert len(unpacked) == 0
        assert len(unpacked.skipped) == 1
        assert "undecodable path" in unpacked.skipped[0][1]


class TestBoundedAllocation:
    """Decompression bombs and forged sizes cannot allocate past the
    declared budgets — they lose an entry (typed skip) or the image
    (typed error), never the process."""

    @staticmethod
    def _reseal(packed):
        import zlib

        header_size = struct.calcsize("<4sIII")
        new_crc = zlib.crc32(bytes(packed[header_size:])) & 0xFFFFFFFF
        struct.pack_into("<I", packed, header_size - 4, new_crc)

    def test_oversized_entry_is_skipped_before_inflating(self):
        fs = SimpleFS()
        fs.add_file("/bin/ok", b"fine")
        fs.add_file("/bin/bomb", b"A" * 4096)   # compresses tiny
        packed = fs.pack()
        unpacked = SimpleFS.unpack(packed, max_file_bytes=1024)
        assert "/bin/ok" in unpacked
        assert "/bin/bomb" not in unpacked
        [(label, reason)] = unpacked.skipped
        assert label == "/bin/bomb"
        assert "over the" in reason

    def test_lying_raw_len_cannot_inflate_past_declaration(self):
        """A header understating raw_len must not make the inflater
        produce (and allocate) the real, larger expansion."""
        fs = SimpleFS()
        fs.add_file("/bin/liar", b"B" * 4096)
        packed = bytearray(fs.pack())
        header_size = struct.calcsize("<4sIII")
        # Shrink the declared raw_len (offset 12 into the only entry);
        # keep it != stored_len so the compressed path still runs.
        struct.pack_into("<I", packed, header_size + 12, 512)
        self._reseal(packed)
        unpacked = SimpleFS.unpack(bytes(packed))
        assert "/bin/liar" not in unpacked
        [(label, reason)] = unpacked.skipped
        assert label == "/bin/liar"
        assert "bad decompressed size" in reason

    def test_image_inflation_budget_is_typed(self):
        fs = SimpleFS()
        fs.add_file("/bin/a", b"C" * 4096)
        fs.add_file("/bin/b", b"D" * 4096)
        packed = fs.pack()
        with pytest.raises(FirmwareError) as excinfo:
            SimpleFS.unpack(packed, max_file_bytes=1 << 20,
                            max_image_bytes=6000)
        assert "budget" in str(excinfo.value)

    def test_unpack_round_trip_unaffected_by_budgets(self):
        fs = SimpleFS()
        fs.add_file("/bin/a", b"E" * 4096)
        fs.add_file("/etc/version", b"v1\n")
        unpacked = SimpleFS.unpack(fs.pack())
        assert unpacked.skipped == []
        assert unpacked.read_file("/bin/a") == b"E" * 4096

    def test_total_pt_load_budget_is_typed(self, built, monkeypatch):
        elf = built.elf_bytes
        parsed = ElfFile.parse(elf)
        total = sum(seg.memsz for seg in parsed.segments)
        assert total > 0
        monkeypatch.setattr(ElfFile, "MAX_TOTAL_MEMSZ", total - 1)
        with pytest.raises(ELFError) as excinfo:
            ElfFile.parse(elf)
        assert "mapping budget" in str(excinfo.value)
