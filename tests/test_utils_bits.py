"""Unit and property tests for repro.utils.bits."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.bits import (
    align_up,
    bit,
    bits,
    ror32,
    sign_extend,
    to_signed32,
    to_unsigned32,
)

u32 = st.integers(min_value=0, max_value=0xFFFFFFFF)


def test_bit_extracts_single_bits():
    assert bit(0b1010, 1) == 1
    assert bit(0b1010, 0) == 0
    assert bit(1 << 31, 31) == 1


def test_bits_extracts_fields():
    assert bits(0xDEADBEEF, 31, 28) == 0xD
    assert bits(0xDEADBEEF, 7, 0) == 0xEF
    assert bits(0xFF, 3, 0) == 0xF


def test_bits_rejects_inverted_range():
    with pytest.raises(ValueError):
        bits(0, 0, 4)


def test_sign_extend_known_values():
    assert sign_extend(0xFF, 8) == -1
    assert sign_extend(0x7F, 8) == 127
    assert sign_extend(0x8000, 16) == -32768


@given(u32)
def test_signed_unsigned_roundtrip(value):
    assert to_unsigned32(to_signed32(value)) == value


@given(u32, st.integers(min_value=0, max_value=64))
def test_ror32_preserves_bits(value, amount):
    rotated = ror32(value, amount)
    assert bin(rotated).count("1") == bin(value).count("1")
    assert ror32(rotated, 32 - (amount % 32)) == value


def test_align_up():
    assert align_up(0, 4) == 0
    assert align_up(1, 4) == 4
    assert align_up(4, 4) == 4
    assert align_up(0x1001, 0x1000) == 0x2000
    with pytest.raises(ValueError):
        align_up(3, 0)
