"""Unit tests for the concrete libc emulation used by PoC validation."""

import pytest

from repro.emu import Memory, make_cpu
from repro.emu.libc import LibcEmulator, LibcEnvironment
from repro.loader.binary import load_elf
from repro.loader.link import build_executable


def _make(arch, source, imports, env=None):
    elf_bytes, program = build_executable(arch, source, imports=imports,
                                          entry="main")
    binary = load_elf(elf_bytes)
    memory = Memory(endness=binary.arch.endness)
    for vaddr, data, _x in binary.segments:
        if data:
            memory.write_bytes(vaddr, data)
    memory.write_bytes(0x7FFE0000, b"\x00" * 0x20000)
    cpu = make_cpu(binary.arch, memory)
    emulator = LibcEmulator(cpu, binary, env or LibcEnvironment())
    emulator.install()
    return cpu, memory, binary, emulator


ARM_GETENV = r"""
.globl main
main:
    push {lr}
    ldr r0, =name
    bl getenv
    pop {pc}
.ltorg
.rodata
name: .asciz "PATH"
"""


def test_getenv_serves_environment():
    env = LibcEnvironment(env={"PATH": b"/bin:/sbin"})
    cpu, memory, binary, _ = _make("arm", ARM_GETENV, ["getenv"], env)
    ret = cpu.run(binary.functions["main"].addr, 0x7FFEFF00)
    assert memory.read_cstring(ret) == b"/bin:/sbin"


def test_getenv_missing_returns_null():
    cpu, _m, binary, _ = _make("arm", ARM_GETENV, ["getenv"])
    assert cpu.run(binary.functions["main"].addr, 0x7FFEFF00) == 0


ARM_PIPELINE = r"""
.globl main
main:
    push {r4, r5, lr}
    sub sp, sp, #0x80
    mov r0, #0
    mov r1, sp
    mov r2, #0x20
    bl read            @ fill a stack buffer from the input stream
    mov r4, r0         @ n
    add r0, sp, #0x40
    mov r1, sp
    bl strcpy          @ copy it
    add r0, sp, #0x40
    bl strlen
    mov r5, r0
    add r0, sp, #0x40
    bl system          @ record the command
    mov r0, r5
    add sp, sp, #0x80
    pop {r4, r5, pc}
"""


def test_read_strcpy_strlen_system_pipeline():
    env = LibcEnvironment(input_bytes=b"ping -c1 h;rm\x00")
    cpu, _m, binary, emulator = _make(
        "arm", ARM_PIPELINE, ["read", "strcpy", "strlen", "system"], env
    )
    ret = cpu.run(binary.functions["main"].addr, 0x7FFEFF00)
    assert ret == len(b"ping -c1 h;rm")
    assert emulator.env.commands == [("system", b"ping -c1 h;rm")]


ARM_SPRINTF = r"""
.globl main
main:
    push {r4, lr}
    sub sp, sp, #0x40
    mov r0, sp
    ldr r1, =fmt
    mov r2, #42
    ldr r3, =word
    bl sprintf
    mov r4, r0
    mov r0, sp
    bl atoi
    add r0, r0, r4
    add sp, sp, #0x40
    pop {r4, pc}
.ltorg
.rodata
fmt: .asciz "%d-%s"
word: .asciz "items"
"""


def test_sprintf_and_atoi():
    cpu, memory, binary, _ = _make("arm", ARM_SPRINTF, ["sprintf", "atoi"])
    ret = cpu.run(binary.functions["main"].addr, 0x7FFEFF00)
    # sprintf returns len("42-items") == 8; atoi("42-items") == 42.
    assert ret == 42 + 8


MIPS_MALLOC = r"""
.globl main
main:
    addiu $sp, $sp, -24
    sw $ra, 20($sp)
    li $a0, 64
    jal malloc
    nop
    move $t0, $v0
    li $t1, 0x1234
    sw $t1, 0($t0)
    jal malloc
    nop
    lw $v0, 0($t0)  # first allocation must be intact and distinct
    lw $ra, 20($sp)
    jr $ra
    addiu $sp, $sp, 24
.ltorg
"""


def test_malloc_allocations_are_distinct_and_zeroed():
    cpu, _m, binary, emulator = _make("mips", MIPS_MALLOC, ["malloc"])
    ret = cpu.run(binary.functions["main"].addr, 0x7FFEFF00)
    assert ret == 0x1234
    assert emulator.env.heap_cursor > 0x60000000


def test_sscanf_width_and_literal_prefix():
    env = LibcEnvironment()
    cpu, memory, binary, emulator = _make("arm", ARM_GETENV, ["getenv"], env)
    # Exercise the handler directly.
    memory.write_bytes(0x50000, b"Session: ABCDEFGH tail\x00")
    memory.write_bytes(0x50100, b"Session: %4s\x00")
    memory.write_bytes(0x50200, b"\x00" * 16)
    cpu.regs[0] = 0x50000
    cpu.regs[1] = 0x50100
    cpu.regs[2] = 0x50200
    emulator._do_sscanf()
    assert cpu.regs[0] == 1  # matched one conversion
    assert memory.read_cstring(0x50200) == b"ABCD"


def test_fgets_stops_at_newline():
    env = LibcEnvironment(input_bytes=b"line one\nline two\n")
    cpu, memory, binary, emulator = _make("arm", ARM_GETENV, ["getenv"], env)
    memory.write_bytes(0x52000, b"\xff" * 64)
    cpu.regs[0] = 0x52000
    cpu.regs[1] = 64
    emulator._do_fgets()
    assert memory.read_cstring(0x52000) == b"line one\n"
    # The second call resumes after the newline.
    emulator._do_fgets()
    assert memory.read_cstring(0x52000) == b"line two\n"


def test_strchr_hook():
    env = LibcEnvironment()
    cpu, memory, _b, emulator = _make("arm", ARM_GETENV, ["getenv"], env)
    memory.write_bytes(0x53000, b"a;b\x00")
    cpu.regs[0] = 0x53000
    cpu.regs[1] = ord(";")
    emulator._do_strchr()
    assert cpu.regs[0] == 0x53001
    cpu.regs[0] = 0x53000
    cpu.regs[1] = ord("z")
    emulator._do_strchr()
    assert cpu.regs[0] == 0
