"""Unit and property tests for the canonical symbolic values."""

from hypothesis import given
from hypothesis import strategies as st

from repro.ir.expr import Ops
from repro.symexec.value import (
    SymConst,
    SymDeref,
    SymLin,
    SymOp,
    SymVar,
    base_offset,
    contains,
    derefs_in,
    mk_add,
    mk_binop,
    mk_deref,
    mk_mul,
    mk_neg,
    mk_sub,
    pretty,
    substitute,
    walk,
)

A = SymVar("arg0")
B = SymVar("arg1")
SP = SymVar("sp0")


def test_add_commutes_and_canonicalises():
    assert mk_add(A, B) == mk_add(B, A)
    assert mk_add(A, SymConst(0)) == A
    assert mk_add(SymConst(3), SymConst(4)) == SymConst(7)


def test_sub_cancels():
    assert mk_sub(A, A) == SymConst(0)
    assert mk_sub(mk_add(A, B), B) == A


def test_base_offset_views():
    assert base_offset(A) == (A, 0)
    expr = mk_add(A, SymConst(0x4C))
    assert base_offset(expr) == (A, 0x4C)
    assert base_offset(SymConst(0x1000)) == (None, 0x1000)
    # Two symbolic terms has no base+offset shape.
    assert base_offset(mk_add(A, B)) is None


def test_deref_of_sum_matches_paper_notation():
    expr = mk_deref(mk_add(A, SymConst(0x4C)))
    assert pretty(expr) == "deref(arg0 + 0x4c)"
    nested = mk_deref(mk_add(mk_deref(mk_add(A, SymConst(0x58))), SymConst(0xEC)))
    assert pretty(nested) == "deref(deref(arg0 + 0x58) + 0xec)"


def test_negative_offsets_render():
    expr = mk_sub(SP, SymConst(0x100))
    assert pretty(expr) == "sp0 - 0x100"
    assert base_offset(expr) == (SP, -0x100)


def test_shl_becomes_linear():
    expr = mk_binop(Ops.SHL, A, SymConst(2))
    assert isinstance(expr, SymLin)
    assert expr.terms == ((A, 4),)


def test_comparison_folding():
    assert mk_binop(Ops.CMP_LT_U, SymConst(2), SymConst(5)) == SymConst(1)
    assert mk_binop(Ops.CMP_LT_S, SymConst(0xFFFFFFFF), SymConst(0)) == SymConst(1)
    symbolic = mk_binop(Ops.CMP_LT_U, A, SymConst(0x40))
    assert isinstance(symbolic, SymOp)
    assert symbolic.op == Ops.CMP_LT_U


def test_substitute_formal_to_actual():
    # deref(arg0 + 0x4c) with arg0 := deref(sp0 + 8)
    actual = mk_deref(mk_add(SP, SymConst(8)))
    expr = mk_deref(mk_add(A, SymConst(0x4C)))
    replaced = substitute(expr, {A: actual})
    assert replaced == mk_deref(mk_add(actual, SymConst(0x4C)))
    assert pretty(replaced) == "deref(deref(sp0 + 0x8) + 0x4c)"


def test_substitute_whole_subexpression():
    inner = mk_deref(mk_add(A, SymConst(4)))
    expr = mk_add(inner, SymConst(0x10))
    replaced = substitute(expr, {inner: B})
    assert replaced == mk_add(B, SymConst(0x10))


def test_contains_and_derefs():
    expr = mk_deref(mk_add(mk_deref(A), SymConst(8)))
    assert contains(expr, A)
    assert not contains(expr, B)
    assert len(derefs_in(expr)) == 2


atoms = st.sampled_from([A, B, SP, SymVar("arg2"), SymVar("arg3")])
# Constants are canonically unsigned 32-bit.
consts = st.integers(min_value=-0x1000, max_value=0x1000).map(
    lambda v: SymConst(v & 0xFFFFFFFF)
)
simple = st.one_of(atoms, consts)


@given(simple, simple, simple)
def test_add_associative(x, y, z):
    assert mk_add(mk_add(x, y), z) == mk_add(x, mk_add(y, z))


@given(simple, simple)
def test_sub_then_add_roundtrip(x, y):
    assert mk_add(mk_sub(x, y), y) == x


@given(simple)
def test_double_negation(x):
    assert mk_neg(mk_neg(x)) == x


@given(simple, st.integers(min_value=-16, max_value=16))
def test_mul_by_const_distributes(x, k):
    lhs = mk_mul(SymConst(k), mk_add(x, SymConst(5)))
    rhs = mk_add(mk_mul(SymConst(k), x), SymConst(5 * k))
    assert lhs == rhs


@given(simple, simple)
def test_walk_contains_operands(x, y):
    expr = mk_deref(mk_add(x, y))
    nodes = list(walk(expr))
    assert expr in nodes
    if not isinstance(x, SymConst) or not isinstance(y, SymConst):
        assert any(n == x for n in nodes) or any(n == y for n in nodes)


@given(simple, simple)
def test_substitute_identity(x, y):
    expr = mk_deref(mk_add(x, SymConst(12)))
    assert substitute(expr, {}) == expr
    assert substitute(expr, {y: y}) == expr
