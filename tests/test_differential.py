"""Differential testing: IR lifter semantics vs the concrete emulator.

Random straight-line programs are executed twice — once by the
instruction-level emulator, once by lifting to IR and interpreting the
IRSB — and the final register files and memory must agree exactly.
This is the main guard against lifter semantic bugs, including flag
thunks and shifter carries.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch import get_arch
from repro.emu import Memory, make_cpu
from repro.ir.interp import IRInterpreter
from tests.conftest import assemble

SCRATCH = 0x30000
SCRATCH_SIZE = 0x400

# ---------------------------------------------------------------------------
# ARM generation.

_ARM_GP = ["r%d" % i for i in range(10)]  # r10 reserved as scratch base
_ARM_DP3 = ["add", "sub", "and", "orr", "eor", "bic", "adc", "sbc", "rsb"]
_ARM_CONDS = ["eq", "ne", "cs", "cc", "mi", "pl", "hi", "ls", "ge", "lt",
              "gt", "le", "vs", "vc"]

reg = st.sampled_from(_ARM_GP)
imm8 = st.integers(min_value=0, max_value=255)
shift = st.sampled_from(["", ", lsl #1", ", lsl #4", ", lsr #2", ", asr #3",
                         ", ror #7"])
scratch_off = st.integers(min_value=0, max_value=SCRATCH_SIZE // 4 - 1).map(
    lambda i: i * 4
)


@st.composite
def arm_line(draw):
    choice = draw(st.integers(min_value=0, max_value=9))
    if choice <= 3:
        op = draw(st.sampled_from(_ARM_DP3))
        flags = draw(st.sampled_from(["", "s"]))
        if op in ("adc", "sbc") and flags:
            flags = ""  # flag-setting adc/sbc is outside the lifted subset
        if draw(st.booleans()):
            return "%s%s %s, %s, #%d" % (
                op, flags, draw(reg), draw(reg), draw(imm8)
            )
        return "%s%s %s, %s, %s%s" % (
            op, flags, draw(reg), draw(reg), draw(reg), draw(shift)
        )
    if choice == 4:
        kind = draw(st.sampled_from(["mov", "mvn", "movs"]))
        if draw(st.booleans()):
            return "%s %s, #%d" % (kind, draw(reg), draw(imm8))
        return "%s %s, %s%s" % (kind, draw(reg), draw(reg), draw(shift))
    if choice == 5:
        return "cmp %s, #%d" % (draw(reg), draw(imm8))
    if choice == 6:
        op = draw(st.sampled_from(["ldr", "str", "ldrb", "strb", "ldrh", "strh"]))
        offset = draw(scratch_off)
        if op in ("ldrh", "strh"):
            offset &= 0xFE  # halfword encodings carry 8-bit offsets
        return "%s %s, [r10, #%d]" % (op, draw(reg), offset)
    if choice == 7:
        return "mul %s, %s, %s" % (draw(reg), draw(reg), draw(reg))
    if choice == 8:
        cond = draw(st.sampled_from(_ARM_CONDS))
        return "mov%s %s, #%d" % (cond, draw(reg), draw(imm8))
    value = draw(st.integers(min_value=0, max_value=0xFFFF))
    op = draw(st.sampled_from(["movw", "movt"]))
    return "%s %s, #%d" % (op, draw(reg), value)


arm_program = st.lists(arm_line(), min_size=1, max_size=25)
reg_values = st.lists(
    st.integers(min_value=0, max_value=0xFFFFFFFF), min_size=10, max_size=10
)


def _setup_arm(lines, values):
    source = ".text\nf:\n" + "\n".join("    %s" % l for l in lines) + "\n    bx lr\n"
    program = assemble("arm", source)
    base, data = program.sections[".text"]

    arch = get_arch("arm")
    insns = [
        arch.disassembler().disasm_one(data, off, base + off)
        for off in range(0, len(data), 4)
    ]
    return program, insns


@settings(max_examples=120, deadline=None)
@given(arm_program, reg_values)
def test_arm_lifter_matches_emulator(lines, values):
    program, insns = _setup_arm(lines, values)
    base, data = program.sections[".text"]
    arch = get_arch("arm")

    # Emulator run.
    emu_mem = Memory(endness="little")
    emu_mem.write_bytes(base, data)
    emu_mem.write_bytes(SCRATCH, bytes(SCRATCH_SIZE))
    cpu = make_cpu(arch, emu_mem)
    for i, value in enumerate(values):
        cpu.regs[i] = value
    cpu.regs[10] = SCRATCH
    # Choose a flag state representable by a sub-thunk (a=1, b=0):
    # N=0 Z=0 C=1 V=0.
    cpu.flag_c = True
    cpu.run(program.symbols["f"], 0x7FFEFF00 - 64)

    # Lifted run.
    ir_mem = Memory(endness="little")
    ir_mem.write_bytes(base, data)
    ir_mem.write_bytes(SCRATCH, bytes(SCRATCH_SIZE))
    registers = {"r%d" % i: 0 for i in range(16)}
    for i, value in enumerate(values):
        registers["r%d" % i] = value
    registers["r10"] = SCRATCH
    registers["r13"] = 0x7FFEFF00 - 64
    registers["r14"] = 0xFFFF0000
    registers["cc_op"] = 1
    registers["cc_dep1"] = 1
    registers["cc_dep2"] = 0
    registers["cc_ndep"] = 0

    lifter = arch.lifter()
    interp = IRInterpreter(registers, ir_mem)
    pc = program.symbols["f"]
    for _ in range(100):
        index = (pc - base) // 4
        irsb = lifter.lift_block(insns[index:])
        pc, kind = interp.run(irsb)
        if pc == 0xFFFF0000:
            break
    else:
        raise AssertionError("lifted program did not terminate")

    for i in range(13):
        assert registers["r%d" % i] == cpu.regs[i], "r%d diverged" % i
    assert ir_mem.read_bytes(SCRATCH, SCRATCH_SIZE) == emu_mem.read_bytes(
        SCRATCH, SCRATCH_SIZE
    )


@settings(max_examples=120, deadline=None)
@given(
    st.sampled_from(_ARM_CONDS),
    st.integers(min_value=0, max_value=0xFFFFFFFF),
    st.integers(min_value=0, max_value=255),
    st.sampled_from(["cmp", "cmn", "tst", "teq", "movs", "adds", "subs"]),
)
def test_arm_branch_decisions_match(cond, lhs, rhs_imm, setter):
    if setter in ("cmp", "cmn", "tst", "teq"):
        set_line = "%s r0, #%d" % (setter, rhs_imm)
    elif setter == "movs":
        set_line = "movs r2, r0"
    else:
        set_line = "%s r2, r0, #%d" % (setter, rhs_imm)
    source = (
        ".text\nf:\n    %s\n    b%s taken\n    mov r3, #1\n    bx lr\n"
        "taken:\n    mov r3, #2\n    bx lr\n" % (set_line, cond)
    )
    program = assemble("arm", source)
    base, data = program.sections[".text"]
    arch = get_arch("arm")

    emu_mem = Memory(endness="little")
    emu_mem.write_bytes(base, data)
    cpu = make_cpu(arch, emu_mem)
    cpu.regs[0] = lhs
    cpu.flag_c = True
    cpu.run(program.symbols["f"], 0x7FFE0000)
    emu_taken = cpu.regs[3]

    insns = [
        arch.disassembler().disasm_one(data, off, base + off)
        for off in range(0, len(data), 4)
    ]
    ir_mem = Memory(endness="little")
    ir_mem.write_bytes(base, data)
    registers = {"r%d" % i: 0 for i in range(16)}
    registers["r0"] = lhs
    registers["r13"] = 0x7FFE0000
    registers["r14"] = 0xFFFF0000
    registers.update(cc_op=1, cc_dep1=1, cc_dep2=0, cc_ndep=0)
    interp = IRInterpreter(registers, ir_mem)
    lifter = arch.lifter()
    pc = program.symbols["f"]
    for _ in range(10):
        index = (pc - base) // 4
        irsb = lifter.lift_block(insns[index:])
        pc, kind = interp.run(irsb)
        if pc == 0xFFFF0000:
            break
    assert registers["r3"] == emu_taken


def test_arm_pc_relative_loads_match():
    """ldr =literal / adr read PC at insn+8; emulator and lifter agree."""
    source = (
        ".text\nf:\n    ldr r0, =0x11223344\n    ldr r1, =f\n"
        "    adr r2, f\n    bx lr\n.ltorg\n"
    )
    program = assemble("arm", source)
    base, data = program.sections[".text"]
    arch = get_arch("arm")

    emu_mem = Memory(endness="little")
    emu_mem.write_bytes(base, data)
    cpu = make_cpu(arch, emu_mem)
    cpu.run(program.symbols["f"], 0x7FFE0000)

    insns = []
    for off in range(0, 16, 4):
        insns.append(arch.disassembler().disasm_one(data, off, base + off))
    ir_mem = Memory(endness="little")
    ir_mem.write_bytes(base, data)
    registers = {"r%d" % i: 0 for i in range(16)}
    registers["r14"] = 0xFFFF0000
    registers.update(cc_op=1, cc_dep1=1, cc_dep2=0, cc_ndep=0)
    interp = IRInterpreter(registers, ir_mem)
    irsb = arch.lifter().lift_block(insns)
    pc, _ = interp.run(irsb)
    assert pc == 0xFFFF0000
    for i in (0, 1, 2):
        assert registers["r%d" % i] == cpu.regs[i]
    assert cpu.regs[0] == 0x11223344
    assert cpu.regs[1] == program.symbols["f"]
    assert cpu.regs[2] == program.symbols["f"]


# ---------------------------------------------------------------------------
# MIPS generation.

_MIPS_GP = ["$t%d" % i for i in range(8)] + ["$v0", "$v1", "$a0", "$a1"]
_MIPS_R3 = ["addu", "subu", "and", "or", "xor", "nor", "slt", "sltu"]
_MIPS_IMM = ["addiu", "slti", "sltiu", "andi", "ori", "xori"]

mreg = st.sampled_from(_MIPS_GP)


@st.composite
def mips_line(draw):
    choice = draw(st.integers(min_value=0, max_value=4))
    if choice == 0:
        return "%s %s, %s, %s" % (
            draw(st.sampled_from(_MIPS_R3)), draw(mreg), draw(mreg), draw(mreg)
        )
    if choice == 1:
        op = draw(st.sampled_from(_MIPS_IMM))
        limit = (0, 0x7FFF) if op != "addiu" else (-0x8000, 0x7FFF)
        imm = draw(st.integers(min_value=limit[0], max_value=limit[1]))
        return "%s %s, %s, %d" % (op, draw(mreg), draw(mreg), imm)
    if choice == 2:
        op = draw(st.sampled_from(["sll", "srl", "sra"]))
        return "%s %s, %s, %d" % (
            op, draw(mreg), draw(mreg), draw(st.integers(min_value=0, max_value=31))
        )
    if choice == 3:
        op = draw(st.sampled_from(["lw", "sw", "lb", "lbu", "sb", "lh", "lhu", "sh"]))
        align = {"lw": 4, "sw": 4, "lh": 2, "lhu": 2, "sh": 2}.get(op, 1)
        offset = draw(st.integers(min_value=0, max_value=SCRATCH_SIZE // 4 - 1))
        return "%s %s, %d($s0)" % (op, draw(mreg), offset * align)
    return "lui %s, %d" % (
        draw(mreg), draw(st.integers(min_value=0, max_value=0xFFFF))
    )


mips_program = st.lists(mips_line(), min_size=1, max_size=25)
mips_values = st.lists(
    st.integers(min_value=0, max_value=0xFFFFFFFF), min_size=12, max_size=12
)


@settings(max_examples=120, deadline=None)
@given(mips_program, mips_values)
def test_mips_lifter_matches_emulator(lines, values):
    source = (
        ".text\nf:\n" + "\n".join("    %s" % l for l in lines)
        + "\n    jr $ra\n    nop\n"
    )
    program = assemble("mips", source)
    base, data = program.sections[".text"]
    arch = get_arch("mips")

    emu_mem = Memory(endness="big")
    emu_mem.write_bytes(base, data)
    emu_mem.write_bytes(SCRATCH, bytes(SCRATCH_SIZE))
    cpu = make_cpu(arch, emu_mem)
    for name, value in zip(_MIPS_GP, values):
        cpu.set_reg(name.lstrip("$"), value)
    cpu.set_reg("s0", SCRATCH)
    cpu.run(program.symbols["f"], 0x7FFE0000)

    insns = [
        arch.disassembler().disasm_one(data, off, base + off)
        for off in range(0, len(data), 4)
    ]
    ir_mem = Memory(endness="big")
    ir_mem.write_bytes(base, data)
    ir_mem.write_bytes(SCRATCH, bytes(SCRATCH_SIZE))
    from repro.arch.archinfo import MIPS_REG_NAMES

    registers = {name: 0 for name in MIPS_REG_NAMES}
    for name, value in zip(_MIPS_GP, values):
        registers[name.lstrip("$")] = value
    registers["s0"] = SCRATCH
    registers["sp"] = 0x7FFE0000
    registers["ra"] = 0xFFFF0000

    interp = IRInterpreter(registers, ir_mem)
    lifter = arch.lifter()
    pc = program.symbols["f"]
    for _ in range(50):
        index = (pc - base) // 4
        irsb = lifter.lift_block(insns[index:])
        pc, kind = interp.run(irsb)
        if pc == 0xFFFF0000:
            break
    else:
        raise AssertionError("lifted program did not terminate")

    for name in _MIPS_GP:
        short = name.lstrip("$")
        assert registers[short] == cpu.reg(short), "%s diverged" % name
    assert ir_mem.read_bytes(SCRATCH, SCRATCH_SIZE) == emu_mem.read_bytes(
        SCRATCH, SCRATCH_SIZE
    )
