"""Unit tests for Algorithm 2 (interprocedural definition updating)."""

import pytest

from repro.cfg import CFGBuilder, build_call_graph
from repro.cfg.callgraph import CallGraph
from repro.core.interproc import (
    MAX_VARIANTS_PER_CALLSITE,
    InterproceduralAnalysis,
    _exportable,
)
from repro.loader.binary import load_elf
from repro.loader.link import build_executable
from repro.symexec import SymbolicEngine
from repro.symexec.state import CallSiteSummary, DefPair, FunctionSummary
from repro.symexec.value import (
    SymConst,
    SymHeap,
    SymRet,
    SymVar,
    mk_add,
    mk_deref,
    pretty,
)

ARG0 = SymVar("arg0")
SP = SymVar("sp0")


def _run(source, imports=(), entry="main"):
    elf_bytes, _ = build_executable("arm", source, imports=list(imports),
                                    entry=entry)
    binary = load_elf(elf_bytes)
    functions = CFGBuilder(binary).build_all()
    call_graph = build_call_graph(functions)
    engine = SymbolicEngine(binary)
    summaries = {
        name: engine.analyze_function(f)
        for name, f in functions.items() if not f.is_import
    }
    analysis = InterproceduralAnalysis(summaries, call_graph)
    return analysis.run(), call_graph


class TestExportable:
    def test_argument_rooted_defs_export(self):
        assert _exportable(mk_deref(mk_add(ARG0, SymConst(8))))
        assert _exportable(mk_deref(mk_deref(mk_add(ARG0, SymConst(8)))))

    def test_ret_and_heap_rooted_defs_export(self):
        assert _exportable(mk_deref(SymRet(0x100)))
        assert _exportable(mk_deref(SymHeap(chain_hash=1)))

    def test_stack_locals_do_not_export(self):
        assert not _exportable(mk_deref(mk_add(SP, SymConst(-8))))


def test_callee_store_visible_in_caller():
    source = r"""
.globl main
main:
    push {r4, lr}
    bl set_field
    pop {r4, pc}
.globl set_field
set_field:
    mov r3, #7
    str r3, [r0, #0x10]
    bx lr
"""
    enriched, _ = _run(source)
    rendered = {
        (pretty(p.dest), pretty(p.value))
        for p in enriched["main"].def_pairs
    }
    assert ("deref(arg0 + 0x10)", "0x7") in rendered


def test_formals_replaced_by_actuals():
    """set_field(s->inner) rebases deref(arg0+0x10) onto the actual."""
    source = r"""
.globl main
main:
    push {r4, lr}
    ldr r0, [r0, #0x20]
    bl set_field
    pop {r4, pc}
.globl set_field
set_field:
    mov r3, #7
    str r3, [r0, #0x10]
    bx lr
"""
    enriched, _ = _run(source)
    rendered = {pretty(p.dest) for p in enriched["main"].def_pairs}
    assert "deref(deref(arg0 + 0x20) + 0x10)" in rendered


def test_ret_symbol_replaced_with_callee_expression():
    source = r"""
.globl main
main:
    push {r4, lr}
    bl get_field
    str r0, [r1, #8]
    pop {r4, pc}
.globl get_field
get_field:
    ldr r0, [r0, #0x30]
    bx lr
"""
    enriched, _ = _run(source)
    rendered = {
        (pretty(p.dest), pretty(p.value))
        for p in enriched["main"].def_pairs
    }
    assert ("deref(arg1 + 0x8)", "deref(arg0 + 0x30)") in rendered


def test_malloc_becomes_unique_heap_objects():
    """Listing 1: two malloc calls yield two distinct heap pointers."""
    source = r"""
.globl main
main:
    push {r4, r5, lr}
    mov r0, #4
    bl malloc
    mov r4, r0
    mov r0, #4
    bl malloc
    mov r5, r0
    mov r3, #8
    str r3, [r4]
    str r3, [r5]
    pop {r4, r5, pc}
"""
    enriched, _ = _run(source, imports=["malloc"])
    heap_dests = [
        p.dest for p in enriched["main"].def_pairs
        if "heap" in pretty(p.dest)
    ]
    assert len({pretty(d) for d in heap_dests}) == 2


def test_taint_objects_propagate_up():
    source = r"""
.globl main
main:
    push {r4, lr}
    bl fetch
    pop {r4, pc}
.globl fetch
fetch:
    push {lr}
    ldr r0, =name
    bl getenv
    pop {pc}
.ltorg
.rodata
name: .asciz "X"
"""
    enriched, _ = _run(source, imports=["getenv"])
    assert enriched["fetch"].taint_objects
    assert enriched["main"].taint_objects


def test_every_function_enriched_once_bottom_up():
    source = r"""
.globl main
main:
    push {lr}
    bl mid
    pop {pc}
.globl mid
mid:
    push {lr}
    bl leaf
    pop {pc}
.globl leaf
leaf:
    mov r0, #0
    bx lr
"""
    enriched, call_graph = _run(source)
    order = call_graph.bottom_up_order(list(enriched))
    assert order.index("leaf") < order.index("mid") < order.index("main")
    assert set(enriched) == {"main", "mid", "leaf"}


def _synthetic_pair(caller_callsites):
    """A caller/callee pair built directly from summaries (no ELF)."""
    callee = FunctionSummary(name="callee", addr=0x2000)
    callee.def_pairs = [
        DefPair(dest=mk_deref(SymVar("arg0")), value=SymConst(7),
                site=0x2000)
    ]
    caller = FunctionSummary(name="caller", addr=0x1000,
                             callsites=list(caller_callsites))
    call_graph = CallGraph()
    call_graph.graph.add_node("callee")
    call_graph.graph.add_node("caller")
    call_graph.add_edge("caller", "callee")
    analysis = InterproceduralAnalysis(
        {"callee": callee, "caller": caller}, call_graph
    )
    return analysis.run()


def test_variant_cap_per_callsite():
    """One call site summarised with many distinct argument variants:
    only the first MAX_VARIANTS_PER_CALLSITE are imported."""
    sites = [
        CallSiteSummary(addr=0x1010, target="callee",
                        args=[SymConst(0x9000 + 16 * i)])
        for i in range(MAX_VARIANTS_PER_CALLSITE + 3)
    ]
    enriched = _synthetic_pair(sites)
    imported = {
        pretty(p.dest) for p in enriched["caller"].def_pairs
        if p.value == SymConst(7)
    }
    assert len(imported) == MAX_VARIANTS_PER_CALLSITE


def test_duplicate_variants_do_not_consume_the_cap():
    """The same (addr, args) pair repeated across explored paths is
    imported once and does not count against the variant budget."""
    repeated = [
        CallSiteSummary(addr=0x1010, target="callee",
                        args=[SymConst(0x9000)])
        for _ in range(MAX_VARIANTS_PER_CALLSITE + 2)
    ]
    distinct = [
        CallSiteSummary(addr=0x1010, target="callee",
                        args=[SymConst(0xA000 + 16 * i)])
        for i in range(MAX_VARIANTS_PER_CALLSITE - 1)
    ]
    enriched = _synthetic_pair(repeated + distinct)
    imported = {
        pretty(p.dest) for p in enriched["caller"].def_pairs
        if p.value == SymConst(7)
    }
    assert len(imported) == MAX_VARIANTS_PER_CALLSITE


def test_representative_ret_is_exploration_order_independent():
    analysis = InterproceduralAnalysis({}, CallGraph())
    values = [mk_deref(SymVar("arg0")), mk_deref(SymVar("arg1"))]
    forward = FunctionSummary(name="f", addr=0, ret_values=list(values))
    backward = FunctionSummary(name="f", addr=0,
                               ret_values=list(reversed(values)))
    assert analysis._representative_ret(forward, {}) == \
        analysis._representative_ret(backward, {})


def test_recursion_does_not_hang():
    source = r"""
.globl main
main:
    push {lr}
    bl even
    pop {pc}
.globl even
even:
    push {lr}
    cmp r0, #0
    beq done_even
    sub r0, r0, #1
    bl odd
done_even:
    pop {pc}
.globl odd
odd:
    push {lr}
    sub r0, r0, #1
    bl even
    pop {pc}
"""
    enriched, _ = _run(source)
    assert set(enriched) == {"main", "even", "odd"}
