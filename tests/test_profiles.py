"""Firmware profile generation and Table III reproduction (scaled)."""

import pytest

from repro.core import DTaint, DTaintConfig
from repro.corpus.profiles import (
    PROFILES,
    PROFILE_ORDER,
    analyzed_module_prefixes,
    build_firmware,
)

SCALE = 0.08  # keep the test suite fast; benches run larger


@pytest.fixture(scope="module")
def small_reports():
    reports = {}
    for key in ("dir645", "dgn1000"):
        built = build_firmware(key, scale=SCALE)
        config = DTaintConfig(modules=analyzed_module_prefixes(key))
        reports[key] = (built, DTaint(built.binary, config=config,
                                      name=key).run())
    return reports


def test_profile_order_covers_table2():
    assert len(PROFILE_ORDER) == 6
    vendors = [PROFILES[k].vendor for k in PROFILE_ORDER]
    assert vendors == ["D-Link", "D-Link", "Netgear", "Netgear",
                       "Uniview", "Hikvision"]


def test_build_is_deterministic():
    a = build_firmware("dir645", scale=SCALE)
    b = build_firmware("dir645", scale=SCALE)
    assert a.elf_bytes == b.elf_bytes


def test_architectures_match_table2():
    assert PROFILES["dir645"].arch == "mips"
    assert PROFILES["dir890l"].arch == "arm"
    assert PROFILES["dgn1000"].arch == "mips"
    assert PROFILES["hikvision"].arch == "arm"


@pytest.mark.parametrize("key", ["dir645", "dgn1000"])
def test_paths_and_vulns_match_table3(small_reports, key):
    _built, report = small_reports[key]
    profile = PROFILES[key]
    assert len(report.vulnerable_paths) == profile.vulnerable_paths
    assert len(report.vulnerabilities) == profile.vulnerabilities


@pytest.mark.parametrize("key", ["dir645", "dgn1000"])
def test_all_planted_vulns_found_and_decoys_clean(small_reports, key):
    built, report = small_reports[key]
    for item in built.ground_truth:
        symbol = built.binary.functions.get(item.function)
        assert symbol is not None, item.function
        low, high = symbol.addr, symbol.addr + symbol.size
        hits = [f for f in report.findings if low <= f.sink_addr < high]
        if item.vulnerable:
            assert hits, "missed %s in %s" % (item.function, key)
        else:
            assert not hits, "false positive %s in %s" % (item.function, key)


def test_scale_changes_function_count():
    small = build_firmware("dir645", scale=0.05)
    larger = build_firmware("dir645", scale=0.2)
    assert len(larger.binary.local_functions) > len(
        small.binary.local_functions
    )


def test_module_extraction_subsets_functions():
    built = build_firmware("uniview", scale=0.05)
    prefixes = analyzed_module_prefixes("uniview")
    config = DTaintConfig(modules=prefixes)
    detector = DTaint(built.binary, config=config, name="uniview")
    detector.build_cfg()
    analyzed = {
        name for name, function in detector.functions.items()
        if not function.is_import
    }
    all_local = {f.name for f in built.binary.local_functions}
    assert analyzed <= all_local
    assert len(analyzed) < len(all_local)
    for name in analyzed:
        assert any(name.startswith(p) for p in prefixes), name


def test_handlers_present_in_binary():
    built = build_firmware("hikvision", scale=0.05)
    names = set(built.binary.functions)
    for item in built.ground_truth:
        assert item.function in names


def test_hikvision_url_parse_needs_structure_similarity():
    """One Hikvision zero-day flows through an indirect call that only
    Formula 2 resolves (paper: 'associated with pointer alias and the
    similarity of data structure')."""
    built = build_firmware("hikvision", scale=0.05)
    config = DTaintConfig(modules=analyzed_module_prefixes("hikvision"))
    detector = DTaint(built.binary, config=config, name="hik")
    report = detector.run()
    assert report.indirect_resolved >= 1
    resolved = {(r.caller, r.callee) for r in detector.resolutions}
    assert ("http_parse_args_dispatch", "http_parse_args_handler") in resolved

    handler = built.binary.functions["http_parse_args_handler"]
    hits = [
        f for f in report.findings
        if handler.addr <= f.sink_addr < handler.addr + handler.size
    ]
    assert len(hits) == 10  # ten sources through one dispatched sink

    # Ablation: without similarity the dispatched flow disappears.
    off = DTaintConfig(modules=analyzed_module_prefixes("hikvision"),
                       enable_structure_similarity=False)
    report_off = DTaint(built.binary, config=off, name="hik-off").run()
    hits_off = [
        f for f in report_off.findings
        if handler.addr <= f.sink_addr < handler.addr + handler.size
    ]
    assert hits_off == []
