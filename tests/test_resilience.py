"""Service resilience: rlimits, stall reaping, poison jobs, chaos.

The acceptance properties of the robustness layer:

* **resource governance** — workers run under ``setrlimit``; a
  memory bomb degrades to a typed ``ResourceExhausted`` while the
  pool stays warm; a spent CPU budget recycles the worker instead of
  poisoning later jobs;
* **stall reaping** — a frozen worker (SIGSTOP, native deadlock) is
  detected by heartbeat silence and reaped SIGTERM→SIGKILL,
  independent of the per-job deadline;
* **poison containment** — the persistent retry budget and the
  per-image circuit breaker dead-letter a process-killing job across
  daemon restarts; only an operator revives it;
* **service lifecycle** — queue-depth backpressure surfaces as HTTP
  429 + ``Retry-After``; ``/readyz`` flips during drain; the client
  retries torn connections and resumes event streams; transactions
  wait out cross-process lock contention;
* **crash-proof publish** — kill -9 at the worst point (inside the
  publish transaction) loses nothing, duplicates nothing, and the
  recovered findings fingerprints are byte-identical.
"""

import os
import signal
import threading
import time

import pytest

from repro.errors import QueueFull, ResourceExhausted
from repro.faultinject import injected
from repro.pipeline import FleetJob, FleetScheduler, WorkerPool
from repro.pipeline.telemetry import Telemetry
from repro.service import (
    DEAD,
    FAILED,
    PENDING,
    AnalysisDaemon,
    JobQueue,
    ResultsDB,
    ServiceClient,
    ServiceError,
    ServiceTimeout,
    job_spec,
    serve,
)
from repro.service.chaos import (
    baseline_fingerprints,
    chaos_run,
    lock_contender,
)

PROFILE_SPEC = dict(kind="profile", key="dir645", scale=0.05)


def _queue(tmp_path, **kwargs):
    db = ResultsDB(str(tmp_path / "dtaint.sqlite"))
    return db, JobQueue(db, **kwargs)


class TestResourceGovernance:
    def test_rlimits_applied_and_reported(self):
        with WorkerPool(rlimits={"as_mb": 256, "fsize_mb": 64}) as pool:
            worker = pool.acquire()
            try:
                pong = worker.control("ping")
                assert pong["control"] == "pong"
                assert pong["rlimits"].get("as_bytes") == 256 << 20
                assert pong["rlimits"].get("fsize_bytes") == 64 << 20
            finally:
                pool.release(worker)

    def test_memory_bomb_degrades_typed_and_worker_stays_warm(self):
        """A 1 GiB allocation under a 256 MiB RLIMIT_AS surfaces as
        the typed fault; the same worker then keeps serving."""
        with WorkerPool(rlimits={"as_mb": 256}) as pool:
            worker = pool.acquire()
            try:
                bomb = worker.control("alloc", 1 << 30, timeout=30)
                assert bomb["ok"] is False
                assert bomb["error_type"] == "ResourceExhausted"
                # Still alive, still the same process, still answers.
                pong = worker.control("ping")
                assert pong["pid"] == worker.pid
                small = worker.control("alloc", 1 << 20, timeout=30)
                assert small["ok"] is True
            finally:
                pool.release(worker)
            assert pool.warm_count == 1

    def test_ungoverned_worker_allocates_freely(self):
        with WorkerPool() as pool:
            worker = pool.acquire()
            try:
                assert worker.control("ping")["rlimits"] == {}
                assert worker.control("alloc", 1 << 26,
                                      timeout=30)["ok"] is True
            finally:
                pool.release(worker)

    def test_cpu_budget_exhaustion_recycles_worker(self):
        """A job that burns past RLIMIT_CPU's soft limit either
        finishes degraded or fails typed — and the worker retires
        (the CPU clock is process-cumulative), counted as a recycle
        rather than a crash."""
        scheduler = FleetScheduler(
            jobs=1, retries=0, rlimits={"cpu_seconds": 1},
        )
        try:
            # The hot image costs well over one CPU-second even with
            # the collector off and heap tracing opt-out, so the soft
            # RLIMIT_CPU reliably fires mid-job.
            [result] = scheduler.run([
                FleetJob(job_id="burn", kind="profile", key="hikvision",
                         scale=0.25),
            ])
            if not result.ok:
                assert result.error_type == "ResourceExhausted"
            assert scheduler.pool.recycled_total >= 1
            assert scheduler.pool.discarded_total == 0
        finally:
            scheduler.close()


class TestStallReaping:
    def test_sigstopped_worker_is_reaped_as_stalled(self):
        """Heartbeat silence (not the job deadline) detects a frozen
        worker; the job fails typed and the worker is discarded."""
        pids = []
        telemetry = Telemetry(sinks=[
            lambda record: pids.append(record["pid"])
            if record["event"] == "job_start" else None
        ])
        scheduler = FleetScheduler(
            jobs=1, retries=0, heartbeat=0.1, heartbeat_timeout=0.8,
            telemetry=telemetry,
        )
        results = []
        thread = threading.Thread(target=lambda: results.extend(
            scheduler.run([
                FleetJob(job_id="frozen", kind="profile", key="dir645",
                         scale=0.25),
            ])
        ))
        try:
            thread.start()
            deadline = time.monotonic() + 30
            while not pids and time.monotonic() < deadline:
                time.sleep(0.01)
            assert pids, "job never started"
            time.sleep(0.3)          # let a few beats through first
            os.kill(pids[0], signal.SIGSTOP)
            thread.join(30)
            assert not thread.is_alive()
            [result] = results
            assert not result.ok
            assert result.error_type == "WorkerStalled"
            assert scheduler.pool.discarded_total >= 1
        finally:
            if thread.is_alive():      # unfreeze on assertion failure
                os.kill(pids[0], signal.SIGCONT)
                thread.join(60)
            scheduler.close()

    @staticmethod
    def _wait_stopped(pid, timeout=10.0):
        """Block until the kernel reports the process stopped ('T')."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            with open("/proc/%d/stat" % pid) as handle:
                state = handle.read().rsplit(")", 1)[1].split()[0]
            if state == "T":
                return
            time.sleep(0.01)
        raise AssertionError("worker %d never stopped" % pid)

    def test_kill_escalates_sigterm_to_sigkill(self):
        """A worker that cannot honour SIGTERM (here: SIGSTOPped, so
        SIGTERM stays pending forever) is put down by the SIGKILL
        escalation in PoolWorker.kill()."""
        with WorkerPool() as pool:
            worker = pool.acquire()
            assert worker.control("ping")["pid"] == worker.pid
            os.kill(worker.pid, signal.SIGSTOP)
            self._wait_stopped(worker.pid)
            pool.discard(worker)
            assert not worker.process.is_alive()
            assert worker.process.exitcode == -signal.SIGKILL
            assert pool.discarded_total == 1

    def test_healthy_worker_stops_on_sigterm_without_sigkill(self):
        with WorkerPool() as pool:
            worker = pool.acquire()
            assert worker.control("ping")["pid"] == worker.pid
            pool.discard(worker)
            assert not worker.process.is_alive()
            assert worker.process.exitcode == -signal.SIGTERM


class TestPoisonContainment:
    def test_circuit_breaker_quarantines_after_repeated_crashes(
            self, tmp_path):
        db, queue = _queue(tmp_path, crash_threshold=2)
        try:
            job_id, outcome = queue.submit(job_spec(**PROFILE_SPEC))
            assert outcome == "created"
            # Crash 1: poison failure, below threshold -> failed.
            assert queue.claim_batch()[0]["job_id"] == job_id
            queue.fail(job_id, error="boom", error_type="WorkerCrash")
            assert queue.get(job_id)["state"] == FAILED
            [image] = queue.quarantined_images()
            assert image["crash_count"] == 1
            assert not image["quarantined"]
            # Crash 2: the breaker trips, the job dead-letters.
            assert queue.submit(job_spec(**PROFILE_SPEC))[1] == "revived"
            queue.claim_batch()
            queue.fail(job_id, error="boom", error_type="WorkerStalled")
            assert queue.get(job_id)["state"] == DEAD
            # Quarantined: not resubmittable, not claimable.
            assert queue.submit(job_spec(**PROFILE_SPEC))[1] \
                == "quarantined"
            assert queue.claim_batch() == []
            [entry] = queue.dead_letter()
            assert entry["job_id"] == job_id
            assert entry["quarantined"] is True
            assert entry["crash_count"] == 2
            # Operator revival resets both budget and breaker.
            assert queue.retry_dead(job_id) == "requeued"
            assert queue.get(job_id)["state"] == PENDING
            assert queue.get(job_id)["attempts"] == 0
            assert queue.quarantined_images() == []
            assert queue.claim_batch()[0]["job_id"] == job_id
        finally:
            db.close()

    def test_attempt_budget_survives_daemon_restarts(self, tmp_path):
        """A job in flight when the daemon dies burns one attempt;
        the budget is the job row, so it counts across restarts."""
        db, queue = _queue(tmp_path, max_attempts=2, crash_threshold=10)
        try:
            job_id, _ = queue.submit(job_spec(**PROFILE_SPEC))
            queue.claim_batch()             # restart 1: died in flight
            assert queue.recover() == 1     # attempts=1 < 2: requeued
            assert queue.get(job_id)["state"] == PENDING
            queue.claim_batch()             # restart 2: died again
            assert queue.recover() == 0     # attempts=2: dead-letter
            job = queue.get(job_id)
            assert job["state"] == DEAD
            assert job["error_type"] == "DaemonCrash"
        finally:
            db.close()

    def test_plain_analysis_failures_do_not_feed_the_breaker(
            self, tmp_path):
        db, queue = _queue(tmp_path, crash_threshold=1)
        try:
            job_id, _ = queue.submit(job_spec(**PROFILE_SPEC))
            queue.claim_batch()
            queue.fail(job_id, error="bad file",
                       error_type="MalformedInput")
            assert queue.get(job_id)["state"] == FAILED
            assert queue.quarantined_images() == []
        finally:
            db.close()

    def test_retry_dead_of_live_job_is_rejected(self, tmp_path):
        db, queue = _queue(tmp_path)
        try:
            job_id, _ = queue.submit(job_spec(**PROFILE_SPEC))
            assert queue.retry_dead(job_id) == "not_dead"
            assert queue.retry_dead(424242) == "missing"
        finally:
            db.close()


@pytest.fixture
def idle_service(tmp_path):
    """An API server over a daemon whose dispatcher never runs —
    submissions stay pending, so lifecycle tests are race-free."""
    daemon = AnalysisDaemon(
        str(tmp_path / "dtaint.sqlite"), workers=1, max_queue_depth=1,
        retry_after=2.0,
    )
    server = serve(daemon, host="127.0.0.1", port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    client = ServiceClient(
        "http://127.0.0.1:%d" % server.server_address[1],
        retries=0, backoff=0.05,
    )
    try:
        yield daemon, client
    finally:
        server.shutdown()
        server.server_close()
        daemon.scheduler.close()
        daemon.db.close()


class TestLifecycle:
    def test_backpressure_is_429_with_retry_after(self, idle_service):
        daemon, client = idle_service
        assert client.submit(**PROFILE_SPEC)["outcome"] == "created"
        # Depth 1 == max_queue_depth: the next distinct job bounces.
        with pytest.raises(ServiceError) as excinfo:
            client.submit(kind="profile", key="dgn1000", scale=0.05)
        assert excinfo.value.status == 429
        # In-process submission raises the typed error directly.
        with pytest.raises(QueueFull) as excinfo:
            daemon.submit(job_spec("profile", key="dgn1000", scale=0.05))
        assert excinfo.value.retry_after == 2.0
        # Draining the backlog reopens the door.
        jobs = client.jobs(state="pending")
        client.cancel(jobs[0]["job_id"])
        assert client.submit(kind="profile", key="dgn1000",
                             scale=0.05)["outcome"] == "created"

    def test_readyz_flips_while_draining(self, idle_service):
        daemon, client = idle_service
        assert client.readyz()["ready"] is True
        daemon.draining = True
        probe = client.readyz()
        assert probe["ready"] is False
        daemon.draining = False
        assert client.readyz()["ready"] is True

    def test_wait_timeout_is_typed_and_carries_state(self, idle_service):
        _daemon, client = idle_service
        job = client.submit(**PROFILE_SPEC)
        with pytest.raises(ServiceTimeout) as excinfo:
            client.wait(job["job_id"], timeout=0.4, poll=0.05)
        assert excinfo.value.job_id == job["job_id"]
        assert excinfo.value.state == PENDING

    def test_stats_expose_backpressure_and_drain_state(self,
                                                       idle_service):
        daemon, client = idle_service
        client.submit(**PROFILE_SPEC)
        stats = client.stats()
        assert stats["queue_depth"] == 1
        assert stats["max_queue_depth"] == 1
        assert stats["draining"] is False
        assert stats["quarantined_images"] == 0


class TestClientResilience:
    def test_unreachable_daemon_raises_after_retry_budget(self):
        client = ServiceClient("http://127.0.0.1:9", retries=2,
                               backoff=0.01, timeout=0.5)
        with pytest.raises(ServiceError) as excinfo:
            client.healthz()
        assert "after 3 attempts" in str(excinfo.value)

    def test_torn_connection_is_retried_transparently(self,
                                                      idle_service):
        _daemon, _client = idle_service
        client = ServiceClient(_client.base, retries=2, backoff=0.05)
        with injected(["disconnect@service.api:*"], shots=1) as injector:
            assert client.healthz()["ok"] is True
        assert injector.fired_specs() == ["disconnect@service.api:*"]

    def test_zero_retry_client_surfaces_the_disconnect(self,
                                                       idle_service):
        _daemon, client = idle_service          # retries=0 fixture
        with injected(["disconnect@service.api:*"], shots=1):
            with pytest.raises(ServiceError):
                client.healthz()

    def test_stream_events_resumes_across_disconnects(self,
                                                      idle_service):
        """The NDJSON stream yields every event exactly once even
        when connections tear mid-stream: the cursor survives the
        reconnect."""
        daemon, _client = idle_service
        job = daemon.submit(job_spec(**PROFILE_SPEC))
        for index in range(6):
            daemon.db.append_event(job["job_id"], {
                "event": "probe", "index": index, "seq": index, "ts": 0.0,
            })
        client = ServiceClient(_client.base, retries=3, backoff=0.05)
        daemon.queue.cancel(job["job_id"])      # terminal: stream ends
        reference = [
            (e["event_id"], e["index"])
            for e in client.events(job["job_id"])
        ]
        assert len(reference) == 6
        with injected(["disconnect@service.api:*"], shots=2) as injector:
            streamed = [
                (e["event_id"], e["index"])
                for e in client.stream_events(job["job_id"], poll=0.05)
            ]
        assert injector.fired
        assert streamed == reference            # no loss, no duplicates

    def test_stream_events_resumes_from_cursor(self, idle_service):
        daemon, client = idle_service
        job = daemon.submit(job_spec(**PROFILE_SPEC))
        for index in range(4):
            daemon.db.append_event(job["job_id"], {
                "event": "probe", "index": index, "seq": index, "ts": 0.0,
            })
        daemon.queue.cancel(job["job_id"])
        events = client.events(job["job_id"])
        assert len(events) == 4
        cursor = events[0]["event_id"]
        resumed = list(client.stream_events(job["job_id"], after=cursor,
                                            poll=0.05))
        assert [e["event_id"] for e in resumed] == \
            [e["event_id"] for e in events[1:]]


class TestLockContention:
    def test_transactions_wait_out_a_cross_process_writer(self,
                                                          tmp_path):
        db_path = str(tmp_path / "dtaint.sqlite")
        db = ResultsDB(db_path)
        try:
            queue = JobQueue(db)
            with lock_contender(db_path, hold=1.0):
                # The contender holds BEGIN IMMEDIATE; this write must
                # wait it out via busy_timeout instead of raising
                # "database is locked".
                started = time.monotonic()
                job_id, outcome = queue.submit(job_spec(**PROFILE_SPEC))
            assert outcome == "created"
            assert queue.get(job_id)["state"] == PENDING
            assert time.monotonic() - started < 30
        finally:
            db.close()


class TestChaosKillPoints:
    def test_kill9_inside_publish_loses_and_duplicates_nothing(
            self, tmp_path):
        """The worst kill point: inside the publish transaction after
        the queue rows were marked done.  WAL rollback must restore a
        consistent pre-publish state; recovery re-runs the batch and
        lands byte-identical fingerprints."""
        profiles = ("dir645",)
        baseline = baseline_fingerprints(
            str(tmp_path), profiles=profiles, workers=1
        )
        outcome = chaos_run(
            "service.publish", str(tmp_path), baseline,
            profiles=profiles, workers=1,
        )
        assert outcome.killed, outcome.exit_detail
        assert outcome.recovered == 1
        assert outcome.ok, outcome.to_dict()
        assert outcome.done == len(profiles)
        assert outcome.fingerprints == baseline
