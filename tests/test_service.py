"""The service subsystem: warm pool, durable queue, sqlite store, REST.

Covers the acceptance properties of DTaint-as-a-service:

* the worker pool stays warm across scheduler runs and replaces
  crashed workers without losing isolation;
* queue lifecycle: idempotent submission, priority ordering,
  submit → cancel, crash-safe resume on daemon restart;
* ResultsStore v2: record/export round trips, lossless migration of a
  JSON output directory, fault-injected mid-write rollback, corrupt
  database quarantine, retention GC;
* end-to-end REST: submit over HTTP, poll to completion, query
  findings — with the same ``findings_sha256`` an in-process run
  produces.
"""

import json
import os
import threading
import time

import pytest

from repro.errors import MalformedInput
from repro.loader.link import build_executable
from repro.pipeline import (
    FleetJob,
    FleetScheduler,
    JobResult,
    ResultsStore,
    WorkerPool,
    execute_job,
    findings_fingerprint,
)
from repro.pipeline.faultinject import injected
from repro.service import (
    AnalysisDaemon,
    JobQueue,
    ResultsDB,
    ServiceClient,
    ServiceError,
    dedup_key,
    export_run_dir,
    job_spec,
    migrate_output_dir,
    serve,
    verify_roundtrip,
)

_VULN_ASM = (
    ".globl main\nmain:\n    push {lr}\n    ldr r0, =n\n"
    "    bl getenv\n    bl system\n    pop {pc}\n.ltorg\n"
    ".rodata\nn: .asciz \"CMD\"\n"
)


def _small_elf():
    elf_bytes, _ = build_executable(
        "arm", _VULN_ASM, imports=["getenv", "system"]
    )
    return elf_bytes


@pytest.fixture
def elf_path(tmp_path):
    path = tmp_path / "handler.elf"
    path.write_bytes(_small_elf())
    return str(path)


def _job_result(elf_path, job_id="img"):
    """A terminal JobResult by running the job in-process."""
    job = FleetJob(job_id=job_id, kind="elf", path=elf_path)
    payload = execute_job(job)
    return JobResult(
        job=job, status="ok", attempts=1, report=payload["report"],
        sha256=payload["sha256"], cache=payload["cache"],
        resources=payload["resources"], elapsed=0.5,
    )


# ---------------------------------------------------------------------------


class TestWorkerPool:
    def test_scheduler_reuses_warm_workers_across_runs(self, elf_path):
        scheduler = FleetScheduler(jobs=1, backoff=0.0)
        with scheduler:
            for round_no in range(3):
                job = FleetJob(job_id="r%d" % round_no, kind="elf",
                               path=elf_path)
                results = scheduler.run([job])
                assert results[0].ok
            # Three batches, one worker: the pool forked exactly once.
            assert scheduler.pool.spawned_total == 1
            assert scheduler.pool.warm_count == 1
        assert scheduler._pool is None

    def test_crashed_worker_is_discarded_and_replaced(self, elf_path):
        scheduler = FleetScheduler(jobs=1, retries=1, backoff=0.0)
        with scheduler:
            crash = FleetJob(job_id="boom", kind="elf", path=elf_path,
                             fault="crash", fault_attempts=1)
            results = scheduler.run([crash])
            assert results[0].ok and results[0].attempts == 2
            assert scheduler.pool.discarded_total == 1
            assert scheduler.pool.spawned_total == 2

    def test_pool_recycles_after_max_jobs(self, elf_path):
        pool = WorkerPool(max_jobs_per_worker=1)
        scheduler = FleetScheduler(jobs=1, pool=pool, backoff=0.0)
        for round_no in range(2):
            job = FleetJob(job_id="r%d" % round_no, kind="elf",
                           path=elf_path)
            assert scheduler.run([job])[0].ok
        assert pool.recycled_total == 2
        assert pool.spawned_total == 2
        pool.close()
        # A shared pool is not closed by the scheduler.
        scheduler.close()

    def test_parallel_batches_share_results_with_serial(self, elf_path):
        serial = FleetScheduler(jobs=1, backoff=0.0)
        parallel = FleetScheduler(jobs=2, backoff=0.0)
        jobs = [
            FleetJob(job_id="a", kind="elf", path=elf_path),
            FleetJob(job_id="b", kind="elf", path=elf_path),
        ]
        with serial, parallel:
            fps_serial = [
                findings_fingerprint(r.report) for r in serial.run(jobs)
            ]
            fps_parallel = [
                findings_fingerprint(r.report) for r in parallel.run(jobs)
            ]
        assert fps_serial == fps_parallel


# ---------------------------------------------------------------------------


class TestJobQueue:
    def _queue(self, tmp_path):
        db = ResultsDB(str(tmp_path / "dtaint.sqlite"))
        return db, JobQueue(db)

    def test_submit_is_idempotent(self, tmp_path, elf_path):
        db, queue = self._queue(tmp_path)
        spec = job_spec("elf", path=elf_path)
        job_id, outcome = queue.submit(spec)
        assert outcome == "created"
        again, outcome2 = queue.submit(spec)
        assert (again, outcome2) == (job_id, "deduplicated")
        assert queue.counts()["pending"] == 1
        db.close()

    def test_dedup_key_tracks_file_content(self, tmp_path, elf_path):
        spec = job_spec("elf", path=elf_path)
        before = dedup_key(spec)
        with open(elf_path, "ab") as handle:
            handle.write(b"\x00")
        assert dedup_key(spec) != before

    def test_priority_order_and_fifo_within_priority(self, tmp_path):
        db, queue = self._queue(tmp_path)
        low, _ = queue.submit(job_spec("profile", key="dir645"))
        high, _ = queue.submit(
            job_spec("profile", key="dgn1000"), priority=10
        )
        mid, _ = queue.submit(
            job_spec("profile", key="uniview"), priority=5
        )
        claimed = queue.claim_batch(limit=3)
        assert [job["job_id"] for job in claimed] == [high, mid, low]
        db.close()

    def test_submit_then_cancel(self, tmp_path):
        db, queue = self._queue(tmp_path)
        job_id, _ = queue.submit(job_spec("profile", key="dir645"))
        assert queue.cancel(job_id) == "cancelled"
        assert queue.get(job_id)["state"] == "cancelled"
        # Cancelled jobs are never claimed.
        assert queue.claim_batch(limit=10) == []
        # A second cancel is a no-op.
        assert queue.cancel(job_id) == "already_terminal"
        assert queue.cancel(987654) == "missing"
        db.close()

    def test_cancel_running_is_flagged_not_killed(self, tmp_path):
        db, queue = self._queue(tmp_path)
        job_id, _ = queue.submit(job_spec("profile", key="dir645"))
        assert queue.claim_batch(limit=1)[0]["job_id"] == job_id
        assert queue.cancel(job_id) == "cancel_requested"
        assert queue.get(job_id)["state"] == "running"
        assert queue.get(job_id)["cancel_requested"]
        db.close()

    def test_failed_job_is_revived_on_resubmit(self, tmp_path):
        db, queue = self._queue(tmp_path)
        spec = job_spec("profile", key="dir645")
        job_id, _ = queue.submit(spec)
        queue.claim_batch(limit=1)
        queue.fail(job_id, error="boom", error_type="WorkerCrash")
        assert queue.get(job_id)["state"] == "failed"
        same_id, outcome = queue.submit(spec)
        assert (same_id, outcome) == (job_id, "revived")
        job = queue.get(job_id)
        assert job["state"] == "pending" and job["error"] == ""
        db.close()

    def test_restart_resumes_running_jobs(self, tmp_path):
        path = str(tmp_path / "dtaint.sqlite")
        db = ResultsDB(path)
        queue = JobQueue(db)
        job_id, _ = queue.submit(job_spec("profile", key="dir645"))
        queue.claim_batch(limit=1)
        assert queue.get(job_id)["state"] == "running"
        db.close()                    # daemon dies mid-job
        db2 = ResultsDB(path)         # next daemon start
        queue2 = JobQueue(db2)
        assert queue2.recover() == 1
        job = queue2.get(job_id)
        assert job["state"] == "pending" and job["started_ts"] is None
        db2.close()


# ---------------------------------------------------------------------------


class TestResultsDB:
    def test_record_run_round_trips_image_documents(self, tmp_path,
                                                    elf_path):
        result = _job_result(elf_path)
        store = ResultsStore(str(tmp_path / "out"))
        json_path = store.write_image(result)
        with open(json_path) as handle:
            json_doc = json.load(handle)
        db = ResultsDB(str(tmp_path / "dtaint.sqlite"))
        run_id, image_ids = db.record_run([result], 1.25)
        stored = db.image_documents(run_id)[result.job.job_id]
        assert stored == json_doc
        assert verify_roundtrip(stored)
        assert db.image_document(image_ids["img"]) == json_doc
        db.close()

    def test_findings_are_indexed_and_queryable(self, tmp_path, elf_path):
        result = _job_result(elf_path)
        db = ResultsDB(str(tmp_path / "dtaint.sqlite"))
        db.record_run([result], 1.0)
        rows = db.query_findings(kind="command-injection")
        assert rows
        assert all(
            row["finding"]["kind"] == "command-injection" for row in rows
        )
        assert db.query_findings(function="no_such_function") == []
        db.close()

    def test_mid_write_fault_rolls_back_to_previous_state(self, tmp_path,
                                                          elf_path):
        result = _job_result(elf_path)
        db = ResultsDB(str(tmp_path / "dtaint.sqlite"))
        db.record_run([result], 1.0)
        before_runs = db.run_ids()
        before_stats = db.stats()
        with injected(["malformed@results:dtaint.sqlite"]):
            with pytest.raises(MalformedInput):
                db.record_run([result], 2.0)
        # The failed batch left no partial rows behind.
        assert db.run_ids() == before_runs
        assert db.stats()["images"] == before_stats["images"]
        assert db.stats()["findings"] == before_stats["findings"]
        # And the store recovers once the fault is gone.
        run_id, _ = db.record_run([result], 3.0)
        assert db.rollup(run_id)["wall_seconds"] == 3.0
        db.close()

    def test_unreadable_db_is_quarantined(self, tmp_path):
        path = str(tmp_path / "dtaint.sqlite")
        with open(path, "wb") as handle:
            handle.write(b"this is definitely not a sqlite database")
        db = ResultsDB(path)
        assert db.quarantined == 1
        assert os.path.exists(path + ".corrupt")
        # The fresh store works.
        assert db.run_ids() == []
        db.close()

    def test_gc_retention(self, tmp_path, elf_path):
        result = _job_result(elf_path)
        db = ResultsDB(str(tmp_path / "dtaint.sqlite"))
        for _ in range(4):
            db.record_run([result], 1.0)
        queue = JobQueue(db)
        for key in ("dir645", "dgn1000", "uniview"):
            job_id, _ = queue.submit(job_spec("profile", key=key))
            queue.claim_batch(limit=1)
            queue.fail(job_id, error="x")
            db.append_event(job_id, {"seq": 0, "ts": 0.0, "event": "e"})
        dry = db.gc(retain_runs=2, retain_jobs=1, dry_run=True)
        assert dry["runs_removed"] == 2 and dry["jobs_removed"] == 2
        assert len(db.run_ids()) == 4          # dry run touched nothing
        stats = db.gc(retain_runs=2, retain_jobs=1)
        assert stats["runs_removed"] == 2
        assert stats["jobs_removed"] == 2
        assert stats["events_removed"] == 2
        assert len(db.run_ids()) == 2
        assert queue.counts()["failed"] == 1
        # Cascades removed the dropped runs' images and findings.
        remaining = db.stats()
        assert remaining["images"] == 2
        db.close()


class TestMigration:
    def _populated_out_dir(self, tmp_path, elf_path):
        out_dir = str(tmp_path / "out")
        store = ResultsStore(out_dir)
        results = [_job_result(elf_path, job_id="img-a"),
                   _job_result(elf_path, job_id="img-b")]
        for result in results:
            store.write_image(result)
        store.write_rollup(results, 2.5)
        store.write_delta({"baseline": "x", "images": {}})
        return out_dir

    def test_migrate_is_lossless(self, tmp_path, elf_path):
        out_dir = self._populated_out_dir(tmp_path, elf_path)
        db = ResultsDB(str(tmp_path / "dtaint.sqlite"))
        run_id, counts = migrate_output_dir(db, out_dir)
        assert counts == {"images": 2, "documents": 1, "rollup": 1}
        exported = db.export_run(run_id)
        with open(os.path.join(out_dir, "fleet.json")) as handle:
            assert exported["rollup"] == json.load(handle)
        for job_id in ("img-a", "img-b"):
            with open(os.path.join(
                    out_dir, "images", "%s.json" % job_id)) as handle:
                assert exported["images"][job_id] == json.load(handle)
        with open(os.path.join(out_dir, "delta.json")) as handle:
            assert exported["documents"]["delta.json"] == json.load(handle)
        db.close()

    def test_migrate_export_round_trip_is_byte_identical(self, tmp_path,
                                                         elf_path):
        out_dir = self._populated_out_dir(tmp_path, elf_path)
        db = ResultsDB(str(tmp_path / "dtaint.sqlite"))
        run_id, _ = migrate_output_dir(db, out_dir)
        export_dir = str(tmp_path / "export")
        export_run_dir(db, run_id, export_dir)
        for relative in ("fleet.json", "delta.json",
                         os.path.join("images", "img-a.json"),
                         os.path.join("images", "img-b.json")):
            with open(os.path.join(out_dir, relative), "rb") as handle:
                original = handle.read()
            with open(os.path.join(export_dir, relative), "rb") as handle:
                assert handle.read() == original, relative
        db.close()

    def test_migrate_cli(self, tmp_path, elf_path, capsys):
        from repro.cli import main as cli_main

        out_dir = self._populated_out_dir(tmp_path, elf_path)
        db_path = str(tmp_path / "dtaint.sqlite")
        assert cli_main(["results", "migrate", out_dir,
                         "--db", db_path]) == 0
        assert "2 images" in capsys.readouterr().out
        export_dir = str(tmp_path / "export")
        assert cli_main(["results", "export", export_dir,
                         "--db", db_path]) == 0
        assert os.path.exists(
            os.path.join(export_dir, "images", "img-a.json")
        )

    def test_migrate_rejects_empty_dir(self, tmp_path):
        db = ResultsDB(str(tmp_path / "dtaint.sqlite"))
        with pytest.raises(Exception):
            migrate_output_dir(db, str(tmp_path))
        db.close()


# ---------------------------------------------------------------------------


class TestDaemon:
    def test_run_once_processes_submission(self, tmp_path, elf_path):
        with AnalysisDaemon(str(tmp_path / "dtaint.sqlite"),
                            workers=1) as daemon:
            job = daemon.submit(job_spec("elf", path=elf_path))
            assert job["state"] == "pending"
            assert daemon.run_once() == 1
            finished = daemon.job_status(job["job_id"])
            assert finished["state"] == "done"
            findings = daemon.job_findings(job["job_id"])
            assert findings["findings_sha256"]
            assert verify_roundtrip(findings["document"])
            events = daemon.job_events(job["job_id"])
            kinds = [event["event"] for event in events]
            assert "job_start" in kinds and "job_finish" in kinds

    def test_quarantined_job_marks_queue_failed(self, tmp_path):
        with AnalysisDaemon(str(tmp_path / "dtaint.sqlite"),
                            workers=1, retries=0) as daemon:
            job = daemon.submit(
                job_spec("elf", path=str(tmp_path / "missing.elf"))
            )
            assert daemon.run_once() == 1
            failed = daemon.job_status(job["job_id"])
            assert failed["state"] == "failed"
            assert failed["error_type"]

    def test_restart_resumes_pending_work(self, tmp_path, elf_path):
        db_path = str(tmp_path / "dtaint.sqlite")
        first = AnalysisDaemon(db_path, workers=1)
        job = first.submit(job_spec("elf", path=elf_path))
        # Simulate a crash after the job was claimed but before it ran.
        first.queue.claim_batch(limit=1)
        first.scheduler.close()
        first.db.close()
        with AnalysisDaemon(db_path, workers=1) as second:
            assert second.start() == 1         # recovered the claim
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                status = second.job_status(job["job_id"])
                if status["state"] == "done":
                    break
                time.sleep(0.05)
            assert second.job_status(job["job_id"])["state"] == "done"


# ---------------------------------------------------------------------------


@pytest.fixture
def running_service(tmp_path):
    daemon = AnalysisDaemon(str(tmp_path / "dtaint.sqlite"), workers=1)
    server = serve(daemon, host="127.0.0.1", port=0, allow_shutdown=False)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    daemon.start()
    client = ServiceClient("http://127.0.0.1:%d" % server.server_address[1])
    try:
        yield daemon, client
    finally:
        server.shutdown()
        server.server_close()
        daemon.stop()


class TestRestAPI:
    def test_end_to_end_submit_poll_findings(self, running_service,
                                             elf_path):
        _daemon, client = running_service
        assert client.healthz()["ok"]
        job = client.submit(kind="elf", path=elf_path)
        assert job["outcome"] == "created"
        # Idempotent over HTTP too.
        assert client.submit(kind="elf", path=elf_path)["outcome"] \
            == "deduplicated"
        done = client.wait(job["job_id"], timeout=120)
        assert done["state"] == "done"
        findings = client.findings(job["job_id"])
        # The service fingerprint is byte-identical to an in-process
        # run of the same image.
        reference = execute_job(
            FleetJob(job_id="ref", kind="elf", path=elf_path)
        )
        assert findings["findings_sha256"] == \
            findings_fingerprint(reference["report"])
        sections = findings["findings"]
        assert sections["vulnerabilities"]
        # Progress stream: resumable by event_id cursor.
        events = client.events(job["job_id"])
        assert [e["event"] for e in events].count("job_finish") == 1
        cursor = events[-1]["event_id"]
        assert client.events(job["job_id"], after=cursor) == []
        # Fleet-wide findings query.
        rows = client.query_findings(kind="command-injection")
        assert rows and rows[0]["job_id"].startswith("q")
        # Stats reflect the processed job and the warm pool.
        stats = client.stats()
        assert stats["queue"]["done"] == 1
        assert stats["jobs_processed"] == 1

    def test_cancel_over_rest(self, tmp_path):
        # A daemon whose dispatcher never runs: submissions stay
        # pending, so cancel always wins the race.
        daemon = AnalysisDaemon(str(tmp_path / "dtaint.sqlite"), workers=1)
        server = serve(daemon, host="127.0.0.1", port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        client = ServiceClient(
            "http://127.0.0.1:%d" % server.server_address[1]
        )
        try:
            job = client.submit(kind="profile", key="dir645", scale=0.05)
            assert client.cancel(job["job_id"])["disposition"] \
                == "cancelled"
            assert client.job(job["job_id"])["state"] == "cancelled"
        finally:
            server.shutdown()
            server.server_close()
            daemon.scheduler.close()
            daemon.db.close()

    def test_error_paths(self, running_service):
        _daemon, client = running_service
        with pytest.raises(ServiceError) as excinfo:
            client.job(424242)
        assert excinfo.value.status == 404
        with pytest.raises(ServiceError) as excinfo:
            client.submit(kind="nonsense")
        assert excinfo.value.status == 400
        # Shutdown is disabled unless the daemon opted in.
        with pytest.raises(ServiceError) as excinfo:
            client.shutdown()
        assert excinfo.value.status == 403
