"""Canonical detector-output documents for differential testing.

The optimization PRs must never change *what* the detector reports,
only how fast it reports it.  ``canonical_report_doc`` reduces a
``Report.to_dict()`` to the semantic content — counters and findings,
no timings, finding lists sorted by a stable key — so two runs (or two
implementations) can be compared byte-for-byte as JSON.
"""

import json

_TIMING_KEYS = ("elapsed_seconds", "stage_seconds", "summary_cache",
                "phase_profile")


def _finding_key(finding):
    return (
        finding.get("kind", ""),
        finding.get("function", ""),
        finding.get("sink_name", ""),
        finding.get("sink_addr", 0),
        finding.get("source_name", ""),
        finding.get("source_addr", 0),
        finding.get("expr", ""),
        finding.get("hops", 0),
    )


def canonical_report_doc(report_dict):
    """Timing-free, deterministically ordered form of a report dict."""
    doc = {k: v for k, v in report_dict.items() if k not in _TIMING_KEYS}
    for key in ("vulnerable_paths", "vulnerabilities", "sanitized_paths"):
        doc[key] = sorted(doc.get(key, ()), key=_finding_key)
    doc["degraded_functions"] = sorted(
        (
            {k: v for k, v in d.items() if k != "elapsed_seconds"}
            for d in doc.get("degraded_functions", ())
        ),
        key=lambda d: (d.get("addr", 0), d.get("function", "")),
    )
    return doc


def canonical_json(report_dict):
    """The byte-comparable serialisation of a canonical report."""
    return json.dumps(canonical_report_doc(report_dict), indent=2,
                      sort_keys=True)
