"""Canonical detector-output documents for differential testing.

The optimization PRs must never change *what* the detector reports,
only how fast it reports it.  ``canonical_report_doc`` reduces a
``Report.to_dict()`` to the semantic content — counters and findings,
no timings, finding lists sorted by a stable key — so two runs (or two
implementations) can be compared byte-for-byte as JSON.

The implementation lives in :mod:`repro.alias.compare` (the
alias-engine showdown needs the same canonicalisation from inside
``src``, where the test tree is not importable); this module keeps the
historical import surface for the tests.
"""

from repro.alias.compare import (  # noqa: F401
    canonical_json,
    canonical_report_doc,
)
