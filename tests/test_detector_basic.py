"""End-to-end DTaint pipeline tests on hand-written vulnerable binaries."""

import pytest

from repro.core import DTaint, DTaintConfig
from repro.loader.binary import load_elf
from repro.loader.link import build_executable

# A handler binary with one command injection (getenv -> system, no
# check), one sanitized command path (';' scan before system), one
# stack buffer overflow (getenv -> strcpy), and one bounded copy
# (length check before memcpy).
HANDLERS = r"""
.globl vuln_cmdi
vuln_cmdi:                        @ system(getenv("CMD"))  -- no check
    push {r4, lr}
    ldr r0, =env_cmd
    bl getenv
    bl system
    pop {r4, pc}
.ltorg

.globl safe_cmdi
safe_cmdi:                        @ scans for ';' before system()
    push {r4, r5, lr}
    ldr r0, =env_cmd
    bl getenv
    mov r4, r0
    mov r5, #0
scan:
    ldrb r3, [r4, r5]
    cmp r3, #0
    beq run_it
    cmp r3, #0x3b                 @ ';'
    beq refuse
    add r5, r5, #1
    b scan
run_it:
    mov r0, r4
    bl system
    pop {r4, r5, pc}
refuse:
    mov r0, #0
    pop {r4, r5, pc}
.ltorg

.globl vuln_bof
vuln_bof:                         @ strcpy(stack, getenv("COOKIE"))
    push {r4, lr}
    sub sp, sp, #0x98
    ldr r0, =env_cookie
    bl getenv
    mov r1, r0
    mov r0, sp
    bl strcpy
    add sp, sp, #0x98
    pop {r4, pc}
.ltorg

.globl safe_bof
safe_bof:                         @ recv then bounded memcpy
    push {r4, r5, lr}
    sub sp, sp, #0x48
    mov r4, r0
    add r1, sp, #4
    mov r2, #0x100
    mov r0, r4
    bl recv
    mov r5, r0                    @ n = recv(...)
    cmp r5, #0x40
    bge out                       @ reject long input
    mov r2, r5
    add r1, sp, #4
    mov r0, sp
    bl memcpy
out:
    add sp, sp, #0x48
    pop {r4, r5, pc}
.ltorg

.globl vuln_recv_memcpy
vuln_recv_memcpy:                 @ recv then unbounded memcpy
    push {r4, r5, lr}
    sub sp, sp, #0x48
    mov r4, r0
    add r1, sp, #4
    mov r2, #0x100
    mov r0, r4
    bl recv
    mov r5, r0
    mov r2, r5
    add r1, sp, #4
    mov r0, sp
    bl memcpy
    add sp, sp, #0x48
    pop {r4, r5, pc}
.ltorg

.rodata
env_cmd:    .asciz "CMD"
env_cookie: .asciz "HTTP_COOKIE"
"""

IMPORTS = ["getenv", "system", "strcpy", "recv", "memcpy"]


@pytest.fixture(scope="module")
def report():
    elf_bytes, _ = build_executable(
        "arm", HANDLERS, imports=IMPORTS, entry="vuln_cmdi"
    )
    binary = load_elf(elf_bytes)
    detector = DTaint(binary, name="handlers")
    return detector.run()


def _findings_for(report, function):
    return [f for f in report.findings if f.function == function]


def test_command_injection_found(report):
    findings = _findings_for(report, "vuln_cmdi")
    assert len(findings) == 1
    finding = findings[0]
    assert finding.kind == "command-injection"
    assert finding.sink_name == "system"
    assert finding.source_name == "getenv"


def test_sanitized_command_not_reported(report):
    assert _findings_for(report, "safe_cmdi") == []
    sanitized = [f for f in report.sanitized_paths
                 if f.function == "safe_cmdi"]
    assert sanitized, "the checked path should be traced but sanitized"


def test_buffer_overflow_found(report):
    findings = _findings_for(report, "vuln_bof")
    assert any(
        f.kind == "buffer-overflow" and f.sink_name == "strcpy"
        and f.source_name == "getenv"
        for f in findings
    )


def test_bounded_memcpy_not_reported(report):
    assert _findings_for(report, "safe_bof") == []


def test_unbounded_recv_memcpy_found(report):
    findings = _findings_for(report, "vuln_recv_memcpy")
    assert any(
        f.kind == "buffer-overflow" and f.sink_name == "memcpy"
        for f in findings
    )


def test_report_counters(report):
    assert report.sink_count >= 5
    assert report.analyzed_functions == 5
    assert len(report.vulnerabilities) <= len(report.vulnerable_paths)
    assert report.elapsed_seconds > 0
    row = report.summary_row()
    assert row["vulnerabilities"] == len(report.vulnerabilities)


def test_report_render_mentions_findings(report):
    text = report.render()
    assert "system" in text
    assert "VULNERABLE" in text
