"""Symbolic engine tests, including the paper's Fig. 5/6 running example."""

import pytest

from repro.cfg import CFGBuilder
from repro.loader.binary import load_elf
from repro.loader.link import build_executable
from repro.symexec import (
    SymConst,
    SymDeref,
    SymRet,
    SymVar,
    SymbolicEngine,
    mk_add,
    mk_deref,
    mk_sub,
    pretty,
)
from repro.symexec.engine import SP0

ARG0 = SymVar("arg0")
ARG1 = SymVar("arg1")

# The paper's Fig. 5 assembly, transcribed for our assembler.
FOO_WOO = r"""
.globl foo
foo:
    push {r4, r5, lr}
    sub sp, sp, #0x118
    mov r5, r0
    mov r4, r1
    bl woo
    mov r2, r0
    ldr r1, [r5, #0x4c]
    add r0, sp, #0x18
    bl memcpy
    add sp, sp, #0x118
    pop {r4, r5, pc}
.globl woo
woo:
    ldr r5, [r1, #0x24]
    str r5, [r0, #0x4c]
    mov r2, #0x200
    mov r1, r5
    push {lr}
    bl recv
    pop {pc}
"""


@pytest.fixture
def foo_woo():
    elf_bytes, _ = build_executable(
        "arm", FOO_WOO, imports=["memcpy", "recv"], entry="foo"
    )
    binary = load_elf(elf_bytes)
    functions = CFGBuilder(binary).build_all()
    engine = SymbolicEngine(binary)
    return {
        name: engine.analyze_function(function)
        for name, function in functions.items()
    }, functions


def test_woo_definition_pair_matches_paper(foo_woo):
    """woo stores deref(arg1+0x24) into deref(arg0+0x4c) (Fig. 6)."""
    summaries, _ = foo_woo
    woo = summaries["woo"]
    dest = mk_deref(mk_add(ARG0, SymConst(0x4C)))
    value = mk_deref(mk_add(ARG1, SymConst(0x24)))
    assert any(
        p.dest == dest and p.value == value for p in woo.def_pairs
    ), [(pretty(p.dest), pretty(p.value)) for p in woo.def_pairs]


def test_woo_recv_arguments(foo_woo):
    summaries, _ = foo_woo
    woo = summaries["woo"]
    recv_calls = [c for c in woo.callsites if c.target == "recv"]
    assert len(recv_calls) == 1
    call = recv_calls[0]
    assert call.args[0] == ARG0                       # fd
    assert call.args[1] == mk_deref(mk_add(ARG1, SymConst(0x24)))  # buf
    assert call.args[2] == SymConst(0x200)            # len


def test_foo_memcpy_arguments(foo_woo):
    """memcpy(sp-0x100, deref(deref(arg0+0x4c)), ret_woo) (Fig. 6)."""
    summaries, functions = foo_woo
    foo = summaries["foo"]
    memcpy_calls = [c for c in foo.callsites if c.target == "memcpy"]
    assert len(memcpy_calls) == 1
    call = memcpy_calls[0]
    # dest: sp0 - 12 (push) - 0x118 + 0x18 = sp0 - 0x10c
    assert call.args[0] == mk_sub(SP0, SymConst(0x10C))
    # src: deref(arg0 + 0x4c) loaded through r5 = arg0.
    assert call.args[1] == mk_deref(mk_add(ARG0, SymConst(0x4C)))
    # n: the return symbol of the woo callsite.
    woo_call = [c for c in foo.callsites if c.target == "woo"][0]
    assert call.args[2] == SymRet(woo_call.addr)


def test_callsite_order_and_return_addrs(foo_woo):
    summaries, _ = foo_woo
    foo = summaries["foo"]
    targets = [c.target for c in foo.callsites]
    assert targets == ["woo", "memcpy"]
    for call in foo.callsites:
        assert call.return_addr == call.addr + 4


def test_ret_value_recorded(foo_woo):
    summaries, _ = foo_woo
    # woo returns recv's return symbol (r0 after the call).
    woo = summaries["woo"]
    recv_call = [c for c in woo.callsites if c.target == "recv"][0]
    assert SymRet(recv_call.addr) in woo.ret_values


BRANCHY = r"""
.globl check
check:
    cmp r1, #0x40
    bge reject
    str r1, [r0, #0x10]
    mov r0, #0
    bx lr
reject:
    mov r0, #1
    bx lr
"""


def test_constraints_recorded_both_ways():
    elf_bytes, _ = build_executable("arm", BRANCHY, entry="check")
    binary = load_elf(elf_bytes)
    functions = CFGBuilder(binary).build_all()
    engine = SymbolicEngine(binary)
    summary = engine.analyze_function(functions["check"])
    assert summary.paths_explored == 2
    assert len(summary.constraints) == 2
    taken = {c.taken for c in summary.constraints}
    assert taken == {True, False}
    # The guard is a signed comparison against 0x40 mentioning arg1.
    rendered = pretty(summary.constraints[0].expr)
    assert "arg1" in rendered and "0x40" in rendered


def test_store_only_on_unsanitized_path():
    elf_bytes, _ = build_executable("arm", BRANCHY, entry="check")
    binary = load_elf(elf_bytes)
    functions = CFGBuilder(binary).build_all()
    summary = SymbolicEngine(binary).analyze_function(functions["check"])
    dest = mk_deref(mk_add(ARG0, SymConst(0x10)))
    defs = summary.defs_of(dest)
    assert len(defs) == 1
    assert defs[0].value == ARG1


LOOPY = r"""
.globl copy_loop
copy_loop:
    mov r2, #0
again:
    ldrb r3, [r1, r2]
    strb r3, [r0, r2]
    add r2, r2, #1
    cmp r3, #0
    bne again
    bx lr
"""


def test_loop_blocks_analyzed_once_and_loop_stores_found():
    elf_bytes, _ = build_executable("arm", LOOPY, entry="copy_loop")
    binary = load_elf(elf_bytes)
    functions = CFGBuilder(binary).build_all()
    summary = SymbolicEngine(binary).analyze_function(functions["copy_loop"])
    # Terminates despite the loop (each block once per path).
    assert summary.paths_explored >= 1
    # The store inside the loop is recorded as a loop store: a byte
    # copied from deref(arg1+i) to deref(arg0+i).
    assert summary.loop_stores
    site, dest, value = summary.loop_stores[0]
    assert isinstance(dest, SymDeref)
    assert isinstance(value, SymDeref)


def test_stack_args_visible():
    src = r"""
.globl callee
callee:
    ldr r3, [sp]
    str r3, [r0]
    bx lr
"""
    elf_bytes, _ = build_executable("arm", src, entry="callee")
    binary = load_elf(elf_bytes)
    functions = CFGBuilder(binary).build_all()
    summary = SymbolicEngine(binary).analyze_function(functions["callee"])
    dest = mk_deref(ARG0)
    defs = summary.defs_of(dest)
    assert defs and defs[0].value == SymVar("arg4")


MIPS_STORE = r"""
.globl woo
woo:
    lw $t0, 0x24($a1)
    sw $t0, 0x4c($a0)
    jr $ra
    nop
"""


def test_mips_definition_pairs():
    elf_bytes, _ = build_executable("mips", MIPS_STORE, entry="woo")
    binary = load_elf(elf_bytes)
    functions = CFGBuilder(binary).build_all()
    summary = SymbolicEngine(binary).analyze_function(functions["woo"])
    dest = mk_deref(mk_add(ARG0, SymConst(0x4C)))
    value = mk_deref(mk_add(ARG1, SymConst(0x24)))
    assert any(p.dest == dest and p.value == value for p in summary.def_pairs)
