"""Intra-image shard scheduling: planner, shared state, byte-identity.

The acceptance property of the whole subsystem is that sharding is
*invisible* in the output: any shard count (including auto) must yield
a findings fingerprint and coverage counters byte-identical to the
unsharded pipeline, because shards only repartition the
pre-interprocedural work and the merge reassembles the exact state the
serial tail would have seen.  Everything else here — planner
determinism, component integrity, the vectorised call scout, shared
read-only blocks, summary-blob shipping, the unsharded fallback —
exists in service of that property.
"""

import pickle

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.corpus.profiles import analyzed_module_prefixes, build_firmware
from repro.increment.index import FleetIndex, load_segment, pack_segment
from repro.loader.link import build_executable
from repro.pipeline import FleetJob, FleetScheduler, findings_fingerprint
from repro.pipeline import sharedstate
from repro.pipeline.shards import (
    AUTO_SHARDS,
    plan_shards,
    scan_direct_call_edges,
)
from repro.pipeline.telemetry import Telemetry
from repro.service import fleet_job_from_spec, job_spec
from repro.symexec.value import attach_arena_seed, export_arena_seed

IMAGE = "dir645"
SCALE = 0.25    # smallest build whose cost clears two min-cost shards


@pytest.fixture(scope="module")
def image_elf(tmp_path_factory):
    built = build_firmware(IMAGE, scale=SCALE)
    path = tmp_path_factory.mktemp("shards") / ("%s.elf" % IMAGE)
    path.write_bytes(built.elf_bytes)
    return str(path)


def _image_job(path, shards, job_id="img"):
    return FleetJob(job_id=job_id, kind="elf", path=path,
                    modules=analyzed_module_prefixes(IMAGE),
                    shards=shards)


# ---------------------------------------------------------------------------
# Planner: determinism, component integrity, balance.


def _component_edges(names, edges):
    graph = {name: set() for name in names}
    for caller, callee in edges:
        if caller in graph and callee in graph:
            graph[caller].add(callee)
            graph[callee].add(caller)      # undirected reach suffices
    return graph


class TestShardPlanner:
    def test_partition_and_determinism(self):
        costs = {"f%02d" % i: 100 + i for i in range(20)}
        edges = [("f00", "f01"), ("f01", "f00"), ("f02", "f03")]
        plans = [plan_shards(costs, edges, 4, min_shard_cost=0)
                 for _ in range(3)]
        first = plans[0]
        assert all(plan.shards == first.shards for plan in plans)
        flat = [name for shard in first.shards for name in shard]
        assert sorted(flat) == sorted(costs)        # exact partition
        assert len(first.shards) == 4

    def test_mutual_recursion_never_splits(self):
        costs = {name: 1000 for name in "abcdef"}
        # a<->b and c<->d are SCCs; they must land whole.
        edges = [("a", "b"), ("b", "a"), ("c", "d"), ("d", "c")]
        plan = plan_shards(costs, edges, 6, min_shard_cost=0)
        homes = {name: index for index, shard in enumerate(plan.shards)
                 for name in shard}
        assert homes["a"] == homes["b"]
        assert homes["c"] == homes["d"]

    def test_min_cost_collapses_small_images(self):
        costs = {"a": 10, "b": 10}
        plan = plan_shards(costs, [], 8, min_shard_cost=8192)
        assert len(plan.shards) == 1

    def test_shards_capped_by_components(self):
        costs = {name: 50 for name in "abc"}
        plan = plan_shards(costs, [], 16, min_shard_cost=0)
        assert len(plan.shards) <= 3

    @given(
        costs=st.dictionaries(
            st.text(alphabet="abcdefgh", min_size=1, max_size=4),
            st.integers(min_value=1, max_value=5000),
            min_size=1, max_size=16,
        ),
        shard_count=st.integers(min_value=1, max_value=8),
        seed=st.randoms(use_true_random=False),
    )
    @settings(max_examples=50, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_plan_is_a_deterministic_partition(self, costs, shard_count,
                                               seed):
        names = sorted(costs)
        edges = []
        for _ in range(min(len(names) * 2, 20)):
            edges.append((seed.choice(names), seed.choice(names)))
        plan_a = plan_shards(costs, edges, shard_count, min_shard_cost=0)
        plan_b = plan_shards(dict(reversed(list(costs.items()))),
                             list(reversed(edges)), shard_count,
                             min_shard_cost=0)
        assert plan_a.shards == plan_b.shards     # input order irrelevant
        flat = [name for shard in plan_a.shards for name in shard]
        assert sorted(flat) == names              # partition: no loss/dup
        assert len(plan_a.shards) <= shard_count
        assert abs(sum(plan_a.costs) - sum(costs.values())) < 1e-6


# ---------------------------------------------------------------------------
# Direct-call scout.


class TestCallScout:
    def test_recovers_direct_arm_edges(self):
        source = (
            ".globl main\nmain:\n    push {lr}\n    bl helper\n"
            "    pop {pc}\n"
            ".globl helper\nhelper:\n    push {lr}\n    bl leaf\n"
            "    pop {pc}\n"
            ".globl leaf\nleaf:\n    bx lr\n"
        )
        elf_bytes, _ = build_executable("arm", source)
        from repro.loader.binary import load_elf

        binary = load_elf(elf_bytes)
        edges = scan_direct_call_edges(
            binary, {"main", "helper", "leaf"}
        )
        assert ("main", "helper") in edges
        assert ("helper", "leaf") in edges
        assert ("main", "leaf") not in edges

    def test_empty_selection(self):
        source = ".globl main\nmain:\n    bx lr\n"
        elf_bytes, _ = build_executable("arm", source)
        from repro.loader.binary import load_elf

        assert scan_direct_call_edges(load_elf(elf_bytes), set()) == []


# ---------------------------------------------------------------------------
# The acceptance property: shard count never changes findings.


class TestShardIdentity:
    def test_shard_counts_yield_identical_findings(self, image_elf):
        """0 / 1 / 2 / auto shards: one fingerprint, one coverage."""
        events = []
        telemetry = Telemetry()
        telemetry.add_sink(lambda record: events.append(dict(record)))
        baseline = None
        with FleetScheduler(jobs=1, backoff=0.0,
                            telemetry=telemetry) as scheduler:
            for shards in (0, 1, 2, AUTO_SHARDS):
                result = scheduler.run(
                    [_image_job(image_elf, shards,
                                job_id="s%d" % shards)]
                )[0]
                assert result.ok, result.error
                probe = (findings_fingerprint(result.report),
                         result.report.get("coverage"))
                if baseline is None:
                    baseline = probe
                assert probe == baseline, "shards=%d diverged" % shards
        # The test only means something if sharding actually engaged.
        planned = [event for event in events
                   if event["event"] == "shard_plan"]
        assert planned and any(event["shards"] >= 2 for event in planned)
        merged = [event for event in events
                  if event["event"] == "shard_merge_finish"]
        assert merged, "sharded runs must go through the merge task"

    def test_failed_shard_falls_back_to_unsharded(self, image_elf):
        events = []
        telemetry = Telemetry()
        telemetry.add_sink(lambda record: events.append(dict(record)))
        with FleetScheduler(jobs=1, retries=1, backoff=0.0,
                            telemetry=telemetry) as scheduler:
            clean = scheduler.run(
                [_image_job(image_elf, 2, job_id="clean")]
            )[0]
            broken = scheduler.run(
                [FleetJob(job_id="boom", kind="elf", path=image_elf,
                          modules=analyzed_module_prefixes(IMAGE),
                          shards=2, fault="error", fault_attempts=1)]
            )[0]
        assert clean.ok and broken.ok
        assert broken.attempts == 2
        kinds = [event["event"] for event in events]
        assert "shard_fallback" in kinds
        assert findings_fingerprint(broken.report) == \
            findings_fingerprint(clean.report)

    def test_backoff_state_is_pruned_after_run(self, image_elf):
        with FleetScheduler(jobs=1, retries=2, backoff=0.01) as scheduler:
            result = scheduler.run(
                [FleetJob(job_id="flaky", kind="elf", path=image_elf,
                          fault="error", fault_attempts=1)]
            )[0]
            assert result.ok and result.attempts == 2
            # Retry jitter memos must not accumulate across a fleet's
            # lifetime: terminal jobs drop their per-job state.
            assert scheduler._backoff_state == {}


# ---------------------------------------------------------------------------
# Shared read-only blocks.


class TestSharedState:
    def test_publish_attach_roundtrip(self):
        payload = b"shard-shared-bytes" * 100
        block = sharedstate.publish(payload)
        try:
            assert sharedstate.attach(block.ref) == payload
        finally:
            block.unlink()

    def test_object_roundtrip_and_double_unlink(self):
        block = sharedstate.publish_object({"records": [1, 2, 3]})
        assert sharedstate.attach_object(block.ref) == {
            "records": [1, 2, 3]
        }
        block.unlink()
        block.unlink()      # owner-side release is idempotent

    def test_attach_once_memoises_and_tolerates_unlinked(self):
        block = sharedstate.publish(b"seed")
        calls = []

        def apply(data):
            calls.append(data)
            return len(data)

        try:
            assert sharedstate.attach_once(block.ref, apply) == 4
            assert sharedstate.attach_once(block.ref, apply) == 4
            assert len(calls) == 1      # second attach served by memo
        finally:
            block.unlink()
        # A vanished block is a cache miss, never an error.
        gone = ("file", "/nonexistent/dtaint-gone.shared", 4)
        assert sharedstate.attach_once(gone, apply) is None

    def test_arena_seed_roundtrip(self):
        from repro.symexec.value import SymConst

        SymConst(0x1234ABCD)        # ensure at least one pooled atom
        seed = export_arena_seed(max_items=64)
        assert attach_arena_seed(seed) > 0
        block = sharedstate.publish(seed)
        try:
            assert attach_arena_seed(sharedstate.attach(block.ref)) > 0
        finally:
            block.unlink()

    def test_index_segment_roundtrip(self, tmp_path):
        records = {"c" * 16: b"record-one", "d" * 16: b"record-two"}
        packed = pack_segment(records)
        assert load_segment(packed) == records
        assert load_segment(memoryview(packed)) == records
        index = FleetIndex(str(tmp_path), "cfg")
        index.attach_segment(load_segment(packed))
        assert index._segment == records

    def test_summary_cache_blob_shipping(self, tmp_path):
        from repro.pipeline.cache import BoundSummaryCache

        source = BoundSummaryCache(str(tmp_path / "a.pkl"))
        bundle = source._load()
        bundle[0x1000] = pickle.dumps({"f": 1})
        bundle[0x2000] = pickle.dumps({"g": 2})
        blobs = source.export_blobs([0x1000, 0x2000, 0x9999])
        assert sorted(blobs) == [0x1000, 0x2000]
        target = BoundSummaryCache(str(tmp_path / "b.pkl"))
        target._load()[0x1000] = b"existing-wins"
        target.preload(blobs)
        assert target._load()[0x1000] == b"existing-wins"
        assert target._load()[0x2000] == blobs[0x2000]


# ---------------------------------------------------------------------------
# Service plumbing: shard counts survive the queue round trip.


class TestServicePlumbing:
    def test_job_spec_carries_shards(self):
        spec = job_spec("elf", path="/tmp/x.elf", shards=2)
        assert spec["shards"] == 2
        job = fleet_job_from_spec(spec, "j1")
        assert job.shards == 2

    def test_daemon_default_applies_only_when_unset(self):
        spec = job_spec("elf", path="/tmp/x.elf")
        assert fleet_job_from_spec(spec, "j2").shards == 0
        assert fleet_job_from_spec(spec, "j3",
                                   default_shards=AUTO_SHARDS).shards == \
            AUTO_SHARDS
        pinned = job_spec("elf", path="/tmp/x.elf", shards=4)
        assert fleet_job_from_spec(pinned, "j4",
                                   default_shards=AUTO_SHARDS).shards == 4

    def test_cli_shard_parser(self):
        from repro.cli import _parse_shards

        assert _parse_shards("auto") == AUTO_SHARDS
        assert _parse_shards("0") == 0
        assert _parse_shards("8") == 8
        with pytest.raises(ValueError):
            _parse_shards("many")
