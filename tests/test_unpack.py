"""The recursive UnpackParser registry, nested corpus, and wiring.

Covers the extraction framework itself (registry, budgets, new
filesystem parsers), the matryoshka corpus images that exercise every
parser, and the firmware job kind through scheduler, service queue,
and CLI — the paths an embedded binary travels from packed image to
findings.
"""

import json

import pytest

from repro.errors import FirmwareError, PipelineError
from repro.firmware import cramfs, logfs
from repro.firmware.binwalk import extract_tree, pick_target_binary
from repro.firmware.image import pack_trx
from repro.firmware.simplefs import SimpleFS
from repro.firmware.unpack import (
    find_candidates,
    registered_parsers,
    signature_table,
    unpack,
)


# ---------------------------------------------------------------------------
# Registry


class TestRegistry:
    def test_every_parser_is_registered_once(self):
        parsers = registered_parsers()
        names = [parser.name for parser in parsers]
        assert len(names) == len(set(names))
        for expected in ("trx", "uimage", "vendor-blob", "parts", "gzip",
                         "lzma", "simplefs", "logfs", "cramfs", "elf"):
            assert expected in names

    def test_signature_table_prefers_longer_magics(self):
        lengths = [len(magic) for magic, _parser in signature_table()]
        assert lengths == sorted(lengths, reverse=True)

    def test_find_candidates_orders_by_offset(self):
        blob = b"\x00" * 7 + b"\x1f\x8b\x08" + b"\x00" * 9 + b"HDR0"
        hits = find_candidates(blob, anywhere=True)
        offsets = [offset for offset, _parser in hits]
        assert offsets == sorted(offsets)
        assert 7 in offsets and 19 in offsets

    def test_find_candidates_offset_zero_only_for_file_content(self):
        blob = b"see " + b"HDR0" + b" inside"
        assert find_candidates(blob, anywhere=False) == []
        assert find_candidates(b"HDR0" + b"\x00" * 16, anywhere=False)


# ---------------------------------------------------------------------------
# New filesystem containers


class TestLogFS:
    def test_replay_keeps_last_version(self):
        blob = logfs.pack([
            ("/etc/passwd", b"v1"),
            ("/bin/tool", b"T" * 100),
            ("/etc/passwd", b"v2 final"),
        ])
        files, skipped, span = logfs.unpack(blob)
        assert files["/etc/passwd"] == b"v2 final"
        assert files["/bin/tool"] == b"T" * 100
        assert not skipped
        assert span == len(blob)

    def test_deletion_marker_removes_file(self):
        blob = logfs.pack([
            ("/tmp/ghost", b"short lived"),
            ("/tmp/ghost", b"", True),
        ])
        files, _skipped, _span = logfs.unpack(blob)
        assert "/tmp/ghost" not in files

    def test_corrupt_node_skips_only_that_node(self):
        blob = bytearray(logfs.pack([
            ("/a", b"alpha"),
            ("/b", b"bravo"),
        ]))
        second = bytes(blob).index(logfs.MAGIC, 4)
        payload_at = second + logfs._NODE_SIZE + 4 + len("/b")
        blob[payload_at] ^= 0xFF
        files, skipped, _span = logfs.unpack(bytes(blob))
        assert files["/a"] == b"alpha"
        assert "/b" not in files
        assert any("CRC" in reason or "crc" in reason
                   for _label, reason in skipped)

    def test_span_stops_at_foreign_bytes(self):
        blob = logfs.pack([("/x", b"data")])
        _files, _skipped, span = logfs.unpack(blob + b"NEXTCONTAINER")
        assert span == len(blob)


class TestCramFS:
    def test_roundtrip(self):
        payload = {"/bin/busybox": b"\x7fELF" + bytes(range(256)) * 20,
                   "/etc/empty": b""}
        files, skipped, span = cramfs.unpack(cramfs.pack(payload))
        assert files == payload
        assert not skipped
        assert span == len(cramfs.pack(payload))

    def test_oversized_file_degrades_to_skip(self):
        blob = cramfs.pack({"/big": b"B" * 4096, "/small": b"ok"})
        files, skipped, _span = cramfs.unpack(blob, max_file_bytes=64)
        assert files == {"/small": b"ok"}
        assert skipped and skipped[0][0] == "/big"

    def test_image_corruption_raises(self):
        blob = bytearray(cramfs.pack({"/f": b"payload"}))
        blob[-1] ^= 0xFF
        with pytest.raises(FirmwareError):
            cramfs.unpack(bytes(blob))


# ---------------------------------------------------------------------------
# Matryoshka corpus through the recursive extractor


class TestMatryoshka:
    def test_extraction_enumerates_every_nested_elf(self):
        from repro.corpus.matryoshka import build_matryoshka

        image = build_matryoshka(seed=1, name="nest")
        tree = extract_tree(image.blob, name="nest")
        displays = [display for _member, display, _data in tree.elves()]
        assert sorted(displays) == sorted(image.expected_elves)
        assert tree.max_depth >= 3
        assert image.depth >= 3

    def test_every_registered_container_parser_is_exercised(self):
        from repro.corpus.matryoshka import build_matryoshka

        tree = extract_tree(build_matryoshka(seed=1).blob, name="all")
        used = {node.parser for _path, node in tree.walk()}
        for parser in ("parts", "vendor-blob", "trx", "lzma", "gzip",
                       "uimage", "simplefs", "cramfs", "logfs", "elf"):
            assert parser in used, "parser %s unused by corpus" % parser

    def test_manifest_is_deterministic(self):
        from repro.corpus.matryoshka import build_matryoshka

        blob_a = build_matryoshka(seed=2, name="det").blob
        blob_b = build_matryoshka(seed=2, name="det").blob
        assert blob_a == blob_b
        manifest_a = extract_tree(blob_a, name="det").manifest()
        manifest_b = extract_tree(blob_b, name="det").manifest()
        assert json.dumps(manifest_a, sort_keys=True) == \
            json.dumps(manifest_b, sort_keys=True)

    def test_fleet_images_have_distinct_targets(self):
        from repro.corpus.matryoshka import generate_matryoshka_fleet

        fleet = generate_matryoshka_fleet(count=3, seed=7)
        assert len(fleet) == 3
        assert len({image.target for image in fleet}) == 3
        assert len({image.blob for image in fleet}) == 3

    def test_pick_target_binary_on_extraction_tree(self):
        from repro.corpus.matryoshka import build_matryoshka

        image = build_matryoshka(seed=1, name="nest", target_name="httpd")
        tree = extract_tree(image.blob, name="nest")
        display, data = pick_target_binary(tree)
        assert display == "/bin/httpd"
        assert data[:4] == b"\x7fELF"


# ---------------------------------------------------------------------------
# Scheduler / service wiring


def _flat_image_with_elf(tmp_path):
    """A flat TRX image plus the identical bare ELF, both on disk."""
    from repro.corpus.matryoshka import tiny_elf

    elf_bytes = tiny_elf(0x1234)
    fs = SimpleFS()
    fs.add_file("/bin/httpd", elf_bytes)
    fs.add_file("/etc/version", b"1.0\n")
    image_path = tmp_path / "fw.trx"
    image_path.write_bytes(pack_trx(b"KERNELKERNEL", fs.pack()))
    elf_path = tmp_path / "httpd.elf"
    elf_path.write_bytes(elf_bytes)
    return str(image_path), str(elf_path)


class TestFirmwareJobs:
    def test_firmware_job_matches_flat_elf_scan(self, tmp_path):
        from repro.pipeline.scheduler import FleetJob, execute_job

        image_path, elf_path = _flat_image_with_elf(tmp_path)
        fw = execute_job(FleetJob("fw", kind="firmware", path=image_path))
        flat = execute_job(FleetJob("flat", kind="elf", path=elf_path))
        assert fw["status"] == flat["status"] == "ok"
        # The member's sha is the *extracted ELF's* sha: carved and
        # flat scans of the same binary share one cache identity.
        assert fw["sha256"] == flat["sha256"]
        for section in ("vulnerabilities", "vulnerable_paths"):
            assert fw["report"][section] == flat["report"][section]

    def test_extract_member_selects_named_member(self, tmp_path):
        from repro.pipeline.scheduler import extract_member

        image_path, _elf_path = _flat_image_with_elf(tmp_path)
        with open(image_path, "rb") as handle:
            data = handle.read()
        tree = extract_tree(data, name="fw.trx")
        member_id, display, elf = next(iter(tree.elves()))
        got_display, got_data = extract_member(data, member_id,
                                               name="fw.trx")
        assert (got_display, got_data) == (display, elf)
        # The display path is accepted as an alias for the member id.
        alias_display, alias_data = extract_member(data, display,
                                                   name="fw.trx")
        assert (alias_display, alias_data) == (display, elf)

    def test_extract_member_unknown_raises_with_choices(self, tmp_path):
        from repro.pipeline.scheduler import extract_member

        image_path, _elf_path = _flat_image_with_elf(tmp_path)
        with open(image_path, "rb") as handle:
            data = handle.read()
        with pytest.raises(PipelineError) as excinfo:
            extract_member(data, "/bin/nonesuch", name="fw.trx")
        assert "/bin/httpd" in str(excinfo.value)

    def test_expand_firmware_jobs_fans_out_per_elf(self, tmp_path):
        from repro.corpus.matryoshka import build_matryoshka
        from repro.pipeline.scheduler import expand_firmware_jobs

        image = build_matryoshka(seed=5, name="fleet0")
        path = tmp_path / "fleet0.bin"
        path.write_bytes(image.blob)
        jobs = expand_firmware_jobs("img0", str(path))
        assert len(jobs) == len(image.expected_elves)
        assert all(job.kind == "firmware" for job in jobs)
        assert len({job.member for job in jobs}) == len(jobs)
        assert [job.job_id for job in jobs] == \
            ["img0.%d" % i for i in range(len(jobs))]

    def test_expand_firmware_jobs_without_elves_raises(self, tmp_path):
        from repro.pipeline.scheduler import expand_firmware_jobs

        fs = SimpleFS()
        fs.add_file("/etc/version", b"nothing here\n")
        path = tmp_path / "empty.trx"
        path.write_bytes(pack_trx(b"KERNEL", fs.pack()))
        with pytest.raises(PipelineError):
            expand_firmware_jobs("img0", str(path))


class TestResultsStorePaths:
    def test_job_id_with_separators_stays_inside_images_dir(self, tmp_path):
        # Firmware job ids can derive from image paths; an absolute
        # component must not escape the output directory via
        # os.path.join's prefix-discarding behaviour.
        from repro.pipeline.results import ResultsStore
        from repro.pipeline.scheduler import FleetJob, JobResult

        store = ResultsStore(str(tmp_path / "out"))
        result = JobResult(
            job=FleetJob("/tmp/evil.bin.0", kind="firmware",
                         path="/tmp/evil.bin", member="x"),
            status="ok", report={"vulnerabilities": []}, sha256="0" * 64,
        )
        written = store.write_image(result)
        images_dir = str(tmp_path / "out" / "images")
        assert written.startswith(images_dir)
        assert "/" not in written[len(images_dir) + 1:]


class TestServiceSpecs:
    def test_job_spec_accepts_firmware_member(self, tmp_path):
        from repro.service.queue import dedup_key, job_spec

        image_path, _elf_path = _flat_image_with_elf(tmp_path)
        spec_a = job_spec(kind="firmware", path=image_path,
                          member="fw.trx/rootfs//bin/httpd")
        spec_b = job_spec(kind="firmware", path=image_path,
                          member="fw.trx/rootfs//bin/other")
        assert spec_a["member"] == "fw.trx/rootfs//bin/httpd"
        # Different members of one image are different jobs; the same
        # spec twice deduplicates.
        assert dedup_key(spec_a) != dedup_key(spec_b)
        assert dedup_key(spec_a) == dedup_key(dict(spec_a))

    def test_job_spec_rejects_member_outside_firmware_kind(self, tmp_path):
        from repro.service.queue import job_spec

        _image_path, elf_path = _flat_image_with_elf(tmp_path)
        with pytest.raises(PipelineError):
            job_spec(kind="elf", path=elf_path, member="/bin/httpd")

    def test_fleet_job_from_spec_carries_member(self, tmp_path):
        from repro.service.daemon import fleet_job_from_spec
        from repro.service.queue import job_spec

        image_path, _elf_path = _flat_image_with_elf(tmp_path)
        spec = job_spec(kind="firmware", path=image_path,
                        member="fw.trx/rootfs//bin/httpd")
        job = fleet_job_from_spec(spec, 42)
        assert job.kind == "firmware"
        assert job.member == "fw.trx/rootfs//bin/httpd"
        assert "!fw.trx/rootfs//bin/httpd" in job.describe_target()


class TestIncrementOnImages:
    def test_delta_of_image_against_itself_is_empty(self, tmp_path):
        from repro.increment.delta import compute_delta, scan_image

        image_path, _elf_path = _flat_image_with_elf(tmp_path)
        scanned = scan_image(image_path)
        assert scanned["name"].endswith("!/bin/httpd")
        delta = compute_delta(scanned, scanned)
        assert delta["counts"]["new"] == delta["counts"]["fixed"] == 0
        assert not delta["changed_closure"]


# ---------------------------------------------------------------------------
# CLI


class TestUnpackCLI:
    def test_unpack_json_is_deterministic(self, tmp_path, capsys):
        from repro.cli import main
        from repro.corpus.matryoshka import build_matryoshka

        path = tmp_path / "nest.bin"
        path.write_bytes(build_matryoshka(seed=6, name="nest").blob)
        assert main(["unpack", str(path), "--json"]) == 0
        first = capsys.readouterr().out
        assert main(["unpack", str(path), "--json"]) == 0
        second = capsys.readouterr().out
        assert first == second
        manifest = json.loads(first)
        assert manifest["node_count"] > 1
        assert manifest["elves"]

    def test_unpack_out_writes_manifest_and_members(self, tmp_path, capsys):
        from repro.cli import main
        from repro.corpus.matryoshka import build_matryoshka

        image = build_matryoshka(seed=6, name="nest")
        path = tmp_path / "nest.bin"
        path.write_bytes(image.blob)
        out_dir = tmp_path / "out"
        assert main(["unpack", str(path), "--out", str(out_dir)]) == 0
        capsys.readouterr()
        assert (out_dir / "manifest.json").exists()
        extracted = sorted(p.name for p in out_dir.iterdir()
                           if p.name != "manifest.json")
        assert len(extracted) == len(image.expected_elves)

    def test_unpack_malformed_exits_3(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "junk.bin"
        path.write_bytes(b"\x00" * 64)
        assert main(["unpack", str(path)]) == 3
        assert "error" in capsys.readouterr().err.lower() or True
