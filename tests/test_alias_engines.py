"""The selectable alias-engine subsystem (`repro.alias`).

Acceptance properties:

* engine identity is cache identity: summary/report fingerprints and
  service dedup keys differ by engine, and a warm cache populated by
  one engine serves **zero** summaries to the other;
* ``--alias-engine dtaint`` is a no-op: its canonical report is
  byte-identical to the committed golden corpus;
* the sse engine is a strict refinement on the seeded fixtures — it
  drops the dead-store false positive and keeps both vulnerable
  twins — and never *adds* findings on generated programs;
* ``AliasResult.related`` is reflexive and symmetric over interned
  values, and sse's surviving entries partition dtaint's
  (survivors + killed = Algorithm 1's full alias set);
* nested profiler phases bill exclusively, so alias work inside
  interproc summary application is attributed to ``alias``.
"""

import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import profiling
from repro.alias import DEFAULT_ENGINE, ENGINE_NAMES, get_engine
from repro.alias.compare import canonical_json, golden_path
from repro.alias.fixtures import build_fixture
from repro.core import DTaint, DTaintConfig
from repro.core.types import infer_types
from repro.errors import PipelineError
from repro.pipeline import FleetJob, execute_job, findings_fingerprint
from repro.pipeline.cache import report_fingerprint, summary_fingerprint
from repro.service.queue import dedup_key, job_spec
from repro.symexec.state import DefPair, FunctionSummary
from repro.symexec.value import SymConst, SymVar, mk_add, mk_deref, mk_sub

KEY = "dir645"
SCALE = 0.05


def _run(built, name, engine):
    config = DTaintConfig(alias_engine=engine)
    return DTaint(built.binary, config=config, name=name).run()


def _flagged(report):
    return {f.function for f in report.findings if not f.sanitized}


# ---------------------------------------------------------------------------
# Registry.


class TestRegistry:
    def test_singletons(self):
        assert get_engine("dtaint") is get_engine("dtaint")
        assert get_engine("sse") is get_engine("sse")
        assert get_engine("").name == DEFAULT_ENGINE

    def test_names(self):
        for name in ENGINE_NAMES:
            assert get_engine(name).name == name

    def test_unknown_engine_rejected(self):
        with pytest.raises(PipelineError):
            get_engine("points-to")


# ---------------------------------------------------------------------------
# Query-surface properties over synthetic summaries.

# A store event: which stack slot, which argument pointer, which
# offset off that pointer.  Repeated slots create dead stores.
_store = st.tuples(
    st.integers(min_value=0, max_value=3),
    st.integers(min_value=0, max_value=2),
    st.integers(min_value=0, max_value=3),
)


def _summary_from(stores):
    """A summary of pointer stores; repeated slots overwrite."""
    summary = FunctionSummary(name="prop", addr=0x1000)
    sp0 = SymVar("sp0")
    for site, (slot, base_index, offset) in enumerate(stores):
        base = SymVar("arg%d" % base_index)
        dest = mk_deref(mk_sub(sp0, SymConst(8 + 4 * slot)))
        value = mk_add(base, SymConst(4 * offset)) if offset else base
        summary.def_pairs.append(
            DefPair(dest=dest, value=value, site=0x1000 + site)
        )
        # A field access through the base so type inference sees a
        # pointer (same shape as the detector's real summaries).
        field = mk_deref(mk_add(base, SymConst(0x10)))
        summary.def_pairs.append(
            DefPair(dest=field, value=SymConst(site), site=0x2000 + site)
        )
    return summary


class TestQueryProperties:
    @settings(deadline=None, max_examples=60)
    @given(st.lists(_store, min_size=1, max_size=8))
    def test_sse_partitions_dtaint(self, stores):
        summary = _summary_from(stores)
        types = infer_types(summary)
        full = get_engine("dtaint").query(summary, types)
        sparse = get_engine("sse").query(summary, types)
        # Survivors are a subset of Algorithm 1's alias set, and
        # survivors + killed account for every candidate store.
        assert set(sparse.entries) <= set(full.entries)
        assert len(sparse.entries) + len(sparse.killed) \
            == len(full.entries)
        # Every killed pair has a later store to the identical cell.
        sites = {}
        for pair in summary.def_pairs:
            sites.setdefault(pair.dest, []).append(pair.site)
        for pair in sparse.killed:
            assert max(sites[pair.dest]) > pair.site

    @settings(deadline=None, max_examples=60)
    @given(st.lists(_store, min_size=1, max_size=8))
    def test_related_reflexive_symmetric(self, stores):
        summary = _summary_from(stores)
        types = infer_types(summary)
        for engine in ENGINE_NAMES:
            result = get_engine(engine).query(summary, types)
            atoms = [p.dest for p in summary.def_pairs] \
                + [p.value for p in summary.def_pairs]
            for atom in atoms:
                assert result.related(atom, atom)
            for alias, cell in result.cell_names():
                assert result.related(alias, cell)
                assert result.related(cell, alias)


# ---------------------------------------------------------------------------
# The seeded fixtures: sse is a strict refinement.


class TestFixtures:
    def test_dead_store_fp_split(self):
        built = build_fixture("dead_store_fp")
        target = built.ground_truth[0].function
        assert target in _flagged(_run(built, "fp", "dtaint"))
        assert target not in _flagged(_run(built, "fp", "sse"))

    @pytest.mark.parametrize("key", ["dead_store_recall",
                                     "distinct_cells"])
    def test_vulnerable_twins_kept_by_both(self, key):
        built = build_fixture(key)
        target = built.ground_truth[0].function
        for engine in ENGINE_NAMES:
            assert target in _flagged(_run(built, key, engine)), engine

    @settings(deadline=None, max_examples=3)
    @given(st.integers(min_value=2, max_value=60))
    def test_sse_never_adds_findings_on_generated_programs(self, seed):
        from repro.diffcheck.generate import build_program, generate_specs

        for spec in generate_specs(seed, 2):
            built = build_program(spec)
            full = _flagged(_run(built, spec.name, "dtaint"))
            sparse = _flagged(_run(built, spec.name, "sse"))
            assert sparse <= full
            # No recall loss relative to dtaint on labeled-vulnerable
            # functions.
            vulnerable = {g.function for g in built.ground_truth
                          if g.vulnerable}
            assert vulnerable & full <= sparse


# ---------------------------------------------------------------------------
# Golden identity: the default engine is a no-op.


class TestGoldenIdentity:
    def test_dtaint_engine_matches_golden_corpus(self):
        import json

        from repro.corpus.profiles import (
            analyzed_module_prefixes,
            build_firmware,
        )

        with open(golden_path()) as handle:
            golden = json.load(handle)
        built = build_firmware(KEY, scale=0.1)
        config = DTaintConfig(
            modules=analyzed_module_prefixes(KEY), alias_engine="dtaint",
        )
        report = DTaint(built.binary, config=config, name=KEY).run()
        assert canonical_json(report.to_dict()) == json.dumps(
            golden[KEY], indent=2, sort_keys=True
        )


# ---------------------------------------------------------------------------
# Cache identity.


class TestCacheIdentity:
    def test_fingerprints_differ_by_engine(self):
        dtaint = DTaintConfig(alias_engine="dtaint")
        sse = DTaintConfig(alias_engine="sse")
        assert summary_fingerprint(dtaint) != summary_fingerprint(sse)
        assert report_fingerprint(dtaint) != report_fingerprint(sse)

    def test_dedup_key_separates_engines(self):
        dtaint = job_spec(kind="profile", key=KEY, scale=SCALE,
                          alias_engine="dtaint")
        sse = job_spec(kind="profile", key=KEY, scale=SCALE,
                       alias_engine="sse")
        assert dedup_key(dtaint) != dedup_key(sse)
        # Specs persisted before the field existed ran the default.
        legacy = {k: v for k, v in dtaint.items() if k != "alias_engine"}
        assert dedup_key(legacy) == dedup_key(dtaint)

    def test_job_spec_rejects_unknown_engine(self):
        with pytest.raises(PipelineError):
            job_spec(kind="profile", key=KEY, alias_engine="bogus")

    def test_no_cross_engine_summary_reuse(self, tmp_path):
        def job(engine):
            return FleetJob(job_id="%s-%s" % (KEY, engine),
                            kind="profile", key=KEY, scale=SCALE,
                            alias_engine=engine)

        cache_dir = str(tmp_path)
        cold = execute_job(job("dtaint"), cache_dir=cache_dir,
                           use_report_cache=False)
        assert cold["cache"]["summary_misses"] > 0
        other = execute_job(job("sse"), cache_dir=cache_dir,
                            use_report_cache=False)
        assert other["cache"]["summary_hits"] == 0
        warm = execute_job(job("dtaint"), cache_dir=cache_dir,
                           use_report_cache=False)
        assert warm["cache"]["summary_hits"] > 0
        assert findings_fingerprint(warm["report"]) == \
            findings_fingerprint(cold["report"])


# ---------------------------------------------------------------------------
# Profiler attribution.


class TestPhaseAttribution:
    def test_nested_phases_bill_exclusively(self):
        profiler = profiling.PhaseProfiler()
        with profiler.phase("interproc"):
            time.sleep(0.005)
            with profiler.phase("alias"):
                time.sleep(0.02)
        assert profiler.seconds["alias"] >= 0.02
        assert profiler.seconds["interproc"] < 0.02
        assert profiler.seconds["interproc"] > 0.0

    def test_scan_attributes_alias_inside_interproc(self):
        built = build_fixture("dead_store_fp")
        for engine in ENGINE_NAMES:
            before = profiling.PROFILER.snapshot()
            _run(built, "attr-%s" % engine, engine)
            profile = profiling.delta(
                before, profiling.PROFILER.snapshot()
            )
            assert profile["counters"].get("alias_queries", 0) > 0
            assert profile["seconds"].get("alias", 0.0) >= 0.0
            if engine == "sse":
                assert profile["counters"].get("sse_queries", 0) > 0
                assert profile["counters"].get(
                    "sse_killed_stores", 0
                ) > 0
