"""Unit tests for the sanitization constraint checks (paper §IV)."""

from repro.core import libc
from repro.core.paths import TaintPath
from repro.core.sanitize import (
    SEMICOLON,
    _normalize,
    check_buffer_overflow,
    check_command_injection,
    check_loop_copy,
)
from repro.core.sinks import Sink
from repro.ir.expr import Ops
from repro.symexec.state import CallSiteSummary, Constraint
from repro.symexec.value import (
    SymConst,
    SymOp,
    SymRet,
    SymTaint,
    SymVar,
    mk_add,
    mk_deref,
)

TAINT = SymTaint(source="recv", callsite=0x100)
SP = SymVar("sp0")


def _bo_path(sink_name="memcpy"):
    sink = Sink(function="f", addr=0x200, name=sink_name, kind=libc.BO,
                dangerous=[(2, TAINT)])
    return TaintPath(function="f", sink=sink, source=TAINT, expr=TAINT)


def _cmdi_path():
    pointer = SymRet(0x100)
    sink = Sink(function="f", addr=0x200, name="system", kind=libc.CMDI,
                dangerous=[(0, pointer)])
    return TaintPath(function="f", sink=sink,
                     source=SymTaint("getenv", 0x100), expr=pointer)


class TestBufferOverflow:
    def test_upper_bound_taken_sanitizes(self):
        constraint = Constraint(
            expr=SymOp(Ops.CMP_LT_S, (TAINT, SymConst(64))), taken=True
        )
        assert check_buffer_overflow(_bo_path(), [constraint], set())

    def test_upper_bound_not_taken_does_not(self):
        constraint = Constraint(
            expr=SymOp(Ops.CMP_LT_S, (TAINT, SymConst(64))), taken=False
        )
        assert not check_buffer_overflow(_bo_path(), [constraint], set())

    def test_reversed_comparison(self):
        # 64 <= taint, NOT taken => taint < 64 holds.
        constraint = Constraint(
            expr=SymOp(Ops.CMP_LE_S, (SymConst(64), TAINT)), taken=False
        )
        assert check_buffer_overflow(_bo_path(), [constraint], set())

    def test_symbolic_bound_counts(self):
        # n < y for symbolic y is accepted by the paper's rule.
        constraint = Constraint(
            expr=SymOp(Ops.CMP_LT_U, (TAINT, SymVar("y"))), taken=True
        )
        assert check_buffer_overflow(_bo_path(), [constraint], set())

    def test_unrelated_constraint_ignored(self):
        constraint = Constraint(
            expr=SymOp(Ops.CMP_LT_S, (SymVar("other"), SymConst(64))),
            taken=True,
        )
        assert not check_buffer_overflow(_bo_path(), [constraint], set())

    def test_strlen_guard_counts(self):
        pointer = SymRet(0x100)
        taint = SymTaint("getenv", 0x100)
        sink = Sink(function="f", addr=0x200, name="strcpy", kind=libc.BO,
                    dangerous=[(1, pointer)])
        path = TaintPath(function="f", sink=sink, source=taint, expr=pointer)
        strlen_call = CallSiteSummary(addr=0x150, target="strlen",
                                      args=[pointer])
        constraint = Constraint(
            expr=SymOp(Ops.CMP_LT_S, (SymRet(0x150), SymConst(152))),
            taken=True,
        )
        assert check_buffer_overflow(
            path, [constraint], {pointer}, callsites=[strlen_call]
        )


class TestCommandInjection:
    def test_semicolon_compare_sanitizes(self):
        pointer = SymRet(0x100)
        constraint = Constraint(
            expr=SymOp(Ops.CMP_EQ, (mk_deref(pointer, 1),
                                    SymConst(SEMICOLON))),
            taken=False,
        )
        assert check_command_injection(
            _cmdi_path(), [constraint], {pointer}
        )

    def test_other_byte_compare_does_not(self):
        pointer = SymRet(0x100)
        constraint = Constraint(
            expr=SymOp(Ops.CMP_EQ, (mk_deref(pointer, 1), SymConst(0x41))),
            taken=False,
        )
        assert not check_command_injection(
            _cmdi_path(), [constraint], {pointer}
        )

    def test_strchr_guard_sanitizes(self):
        pointer = SymRet(0x100)
        strchr_call = CallSiteSummary(
            addr=0x150, target="strchr",
            args=[pointer, SymConst(SEMICOLON)],
        )
        constraint = Constraint(
            expr=SymOp(Ops.CMP_EQ, (SymRet(0x150), SymConst(0))), taken=True
        )
        assert check_command_injection(
            _cmdi_path(), [constraint], {pointer}, callsites=[strchr_call]
        )

    def test_no_constraints_is_vulnerable(self):
        assert not check_command_injection(_cmdi_path(), [], {SymRet(0x100)})


class TestNormalize:
    def test_unwraps_mips_slt_beq_shape(self):
        inner = SymOp(Ops.CMP_LT_U, (TAINT, SymConst(48)))
        wrapped = SymOp(Ops.CMP_EQ, (inner, SymConst(0)))
        expr, taken = _normalize(wrapped, True)
        assert expr == inner
        assert taken is False  # eq-zero taken means the comparison failed

    def test_unwraps_ne_one(self):
        inner = SymOp(Ops.CMP_LT_S, (TAINT, SymConst(10)))
        wrapped = SymOp(Ops.CMP_NE, (inner, SymConst(1)))
        expr, taken = _normalize(wrapped, False)
        assert expr == inner
        assert taken is True

    def test_leaves_plain_comparisons(self):
        inner = SymOp(Ops.CMP_LT_S, (TAINT, SymConst(10)))
        assert _normalize(inner, True) == (inner, True)


class TestLoopCopy:
    def _loop_path(self):
        sink = Sink(function="f", addr=0x300, name="loop", kind=libc.BO,
                    dangerous=[(1, mk_deref(SP, 1))])
        return TaintPath(function="f", sink=sink, source=TAINT,
                         expr=mk_deref(SP, 1))

    def test_constant_index_bound(self):
        constraint = Constraint(
            expr=SymOp(Ops.CMP_LT_S, (SymVar("i"), SymConst(63))), taken=True
        )
        assert check_loop_copy(self._loop_path(), [constraint], set())

    def test_pointer_limit_bound(self):
        limit = mk_add(SP, SymConst(64))
        constraint = Constraint(
            expr=SymOp(Ops.CMP_LT_U, (SP, limit)), taken=True
        )
        assert check_loop_copy(self._loop_path(), [constraint], set())

    def test_nul_check_is_not_a_bound(self):
        constraint = Constraint(
            expr=SymOp(Ops.CMP_NE, (mk_deref(SP, 1), SymConst(0))),
            taken=True,
        )
        assert not check_loop_copy(self._loop_path(), [constraint], set())
