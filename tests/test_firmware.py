"""Firmware containers, SimpleFS, binwalk scanning, and extraction."""

import struct
import zlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import FirmwareError
from repro.firmware import binwalk
from repro.firmware.image import (
    TRX_HEADER_SIZE,
    TRX_MAGIC,
    UIMAGE_HEADER_SIZE,
    pack_parts,
    pack_trx,
    pack_uimage,
    pack_vendor_blob,
    parse_parts,
    parse_trx,
    parse_uimage,
    parse_vendor_blob,
)
from repro.firmware.simplefs import SimpleFS


def _sample_fs():
    fs = SimpleFS()
    fs.add_dir("/bin")
    fs.add_file("/bin/cgibin", b"\x7fELF" + b"\x01" * 200)
    fs.add_file("/etc/passwd", b"root::0:0:root:/root:/bin/sh\n")
    fs.add_file("/www/index.html", b"<html>" + b"A" * 500 + b"</html>")
    return fs


class TestSimpleFS:
    def test_pack_unpack_roundtrip(self):
        fs = _sample_fs()
        packed = fs.pack()
        back = SimpleFS.unpack(packed)
        assert back.paths() == fs.paths()
        assert back.read_file("/etc/passwd") == fs.read_file("/etc/passwd")
        assert back.read_file("/bin/cgibin")[:4] == b"\x7fELF"

    def test_compression_applied_to_large_files(self):
        fs = SimpleFS()
        fs.add_file("/big", b"A" * 10000)
        assert len(fs.pack()) < 2000

    def test_rejects_bad_magic(self):
        with pytest.raises(FirmwareError):
            SimpleFS.unpack(b"XXXX" + b"\x00" * 100)

    def test_rejects_corrupted_payload(self):
        packed = bytearray(_sample_fs().pack())
        packed[-10] ^= 0xFF
        with pytest.raises(FirmwareError):
            SimpleFS.unpack(bytes(packed))

    def test_relative_path_rejected(self):
        fs = SimpleFS()
        with pytest.raises(FirmwareError):
            fs.add_file("relative/path", b"x")

    def test_read_missing_file(self):
        with pytest.raises(FirmwareError):
            _sample_fs().read_file("/nope")

    @settings(max_examples=30, deadline=None)
    @given(
        st.dictionaries(
            st.text(
                alphabet="abcdefgh/", min_size=1, max_size=12
            ).map(lambda s: "/" + s.strip("/")).filter(lambda s: len(s) > 1),
            st.binary(min_size=0, max_size=300),
            min_size=1,
            max_size=8,
        )
    )
    def test_roundtrip_property(self, files):
        fs = SimpleFS()
        for path, data in files.items():
            fs.add_file(path, data)
        back = SimpleFS.unpack(fs.pack())
        for path, data in files.items():
            assert back.read_file(path) == data


class TestContainers:
    def test_trx_roundtrip(self):
        image = pack_trx(b"KERNEL" * 100, b"ROOTFS" * 100)
        parsed = parse_trx(image)
        assert parsed.kernel == b"KERNEL" * 100
        assert parsed.rootfs == b"ROOTFS" * 100

    def test_trx_crc_detects_corruption(self):
        image = bytearray(pack_trx(b"K" * 50, b"R" * 50))
        image[40] ^= 0x01
        with pytest.raises(FirmwareError):
            parse_trx(bytes(image))

    def test_uimage_roundtrip(self):
        image = pack_uimage(b"kernel" * 64, b"rootfs" * 64, name="DIR-645")
        parsed = parse_uimage(image)
        assert parsed.kernel == b"kernel" * 64
        assert parsed.rootfs == b"rootfs" * 64
        assert parsed.name == "DIR-645"
        assert parsed.load_addr == 0x80000000

    def test_uimage_data_crc(self):
        image = bytearray(pack_uimage(b"kern", b"root"))
        image[-1] ^= 0xFF
        with pytest.raises(FirmwareError):
            parse_uimage(bytes(image))


class TestBinwalk:
    def test_scan_finds_signatures(self):
        fs = _sample_fs()
        blob = b"\xde\xad" * 20 + pack_trx(b"KERN", fs.pack())
        kinds = {s.kind for s in binwalk.scan(blob)}
        assert "trx" in kinds
        assert "simplefs" in kinds
        # The ELF inside the fs is zlib-compressed, so its magic is
        # not visible to a raw scan — the extractor must unpack first.
        raw = b"junk" + b"\x7fELF\x01\x01\x01" + b"tail"
        assert "elf" in {s.kind for s in binwalk.scan(raw)}

    def test_extract_trx_filesystem(self):
        fs = _sample_fs()
        blob = pack_trx(b"KERNEL", fs.pack())
        extracted, container = binwalk.extract_filesystem(blob)
        assert container.container == "trx"
        assert extracted.read_file("/etc/passwd").startswith(b"root:")

    def test_extract_uimage_filesystem(self):
        fs = _sample_fs()
        blob = pack_uimage(b"KERNEL", fs.pack())
        extracted, container = binwalk.extract_filesystem(blob)
        assert container.container == "uimage"
        assert "/bin/cgibin" in extracted

    def test_vendor_blob_extracts_via_key_recovery(self):
        # The XOR key is recovered from the wrapper's own header and
        # the payload deobfuscated in place of failing the extraction.
        blob = pack_vendor_blob(b"KERNEL", _sample_fs().pack(),
                                xor_key=0x77)
        extracted, container = binwalk.extract_filesystem(blob)
        assert container.container == "trx"
        assert "/bin/cgibin" in extracted
        inner, span, key = parse_vendor_blob(blob)
        assert span == len(blob)
        assert key == 0x77
        assert inner[:4] == TRX_MAGIC

    def test_carve_tries_candidates_past_decoy_vendor_blob(self):
        # Regression: carve() used to raise on the first vendor-blob
        # hit, masking a perfectly valid TRX later in the blob.  The
        # decoy's payload decodes (key 0x00) to no known container, so
        # the carver must fall through, not abort.
        decoy = b"VNDR" + struct.pack("<BxxxI", 0x00, 8) + b"\x00" * 8
        blob = decoy + pack_trx(b"KERNEL", _sample_fs().pack())
        extracted, container = binwalk.extract_filesystem(blob)
        assert container.container == "trx"
        assert "/bin/cgibin" in extracted

    def test_carve_fails_only_when_no_candidate_parses(self):
        decoy = b"VNDR" + struct.pack("<BxxxI", 0x00, 8) + b"\x00" * 8
        with pytest.raises(FirmwareError) as excinfo:
            binwalk.carve(decoy + b"\xfe" * 32)
        # The error names what was tried, not just "vendor wrapper".
        assert "vendor-blob@0x0" in str(excinfo.value)

    def test_entropy_distinguishes_random_from_text(self):
        import random

        text = (b"configuration value = 1\n" * 200)
        noise = random.Random(7).randbytes(4096)
        low = binwalk.entropy_profile(text)
        high = binwalk.entropy_profile(noise)
        assert max(low) < 6.0
        assert min(high) > 7.5

    def test_pick_target_binary_prefers_known_names(self):
        fs = SimpleFS()
        fs.add_file("/bin/busybox", b"\x7fELF" + b"\x00" * 5000)
        fs.add_file("/usr/sbin/httpd", b"\x7fELF" + b"\x00" * 100)
        path, data = binwalk.pick_target_binary(fs)
        assert path == "/usr/sbin/httpd"

    def test_pick_target_binary_falls_back_to_largest(self):
        fs = SimpleFS()
        fs.add_file("/bin/a", b"\x7fELF" + b"\x00" * 100)
        fs.add_file("/bin/b", b"\x7fELF" + b"\x00" * 5000)
        path, _ = binwalk.pick_target_binary(fs)
        assert path == "/bin/b"

    def test_pick_target_binary_matches_basename_only(self):
        # Regression: the bare endswith() match let /bin/foohttpd
        # shadow the real httpd — a preferred name must only match a
        # path's final component.
        fs = SimpleFS()
        fs.add_file("/bin/foohttpd", b"\x7fELF" + b"\x00" * 5000)
        fs.add_file("/usr/sbin/httpd", b"\x7fELF" + b"\x00" * 100)
        path, _ = binwalk.pick_target_binary(fs)
        assert path == "/usr/sbin/httpd"

    def test_no_elf_raises(self):
        fs = SimpleFS()
        fs.add_file("/etc/motd", b"hello")
        with pytest.raises(FirmwareError):
            binwalk.pick_target_binary(fs)


def _craft_trx(kernel_off, rootfs_off, loader_off=0, body_pad=64):
    """A TRX whose CRC is valid but whose offsets are attacker-chosen."""
    body = struct.pack("<IIII", 1, loader_off, kernel_off, rootfs_off)
    body += bytes(range(body_pad % 251)) * (body_pad // max(body_pad % 251, 1) + 1)
    body = body[:16 + body_pad]
    total = 12 + len(body)
    return TRX_MAGIC + struct.pack(
        "<II", total, zlib.crc32(body) & 0xFFFFFFFF
    ) + body


def _craft_uimage_rootfs_off(rootfs_off):
    """A uImage with valid CRCs whose payload declares ``rootfs_off``."""
    image = bytearray(pack_uimage(b"kernkern", b"rootroot"))
    struct.pack_into(">I", image, UIMAGE_HEADER_SIZE, rootfs_off)
    payload = bytes(image[UIMAGE_HEADER_SIZE:])
    struct.pack_into(">I", image, 24, zlib.crc32(payload) & 0xFFFFFFFF)
    header = bytearray(image[:UIMAGE_HEADER_SIZE])
    header[4:8] = b"\x00" * 4
    struct.pack_into(">I", image, 4, zlib.crc32(bytes(header)) & 0xFFFFFFFF)
    return bytes(image)


def _craft_parts(entries):
    """A PTBL with valid CRC and attacker-chosen entry offsets."""
    count = len(entries)
    table_size = 12 + 16 * count
    table = b"".join(
        struct.pack("<8sII", name.encode("utf-8")[:8].ljust(8, b"\x00"),
                    off, size)
        for name, off, size in entries
    )
    end = max([table_size] + [off + size for _n, off, size in entries])
    blob = bytearray(end)
    blob[12:12 + len(table)] = table
    for index in range(table_size, end):
        blob[index] = index & 0xFF
    body = bytes(blob[12:end])
    blob[0:12] = struct.pack("<4sII", b"PTBL", count,
                             zlib.crc32(body) & 0xFFFFFFFF)
    return bytes(blob)


class TestAdversarialContainers:
    """Crafted containers must raise FirmwareError, never produce
    silently-empty or aliased slices (the §IV trust boundary)."""

    def test_trx_valid_craft_parses(self):
        # The crafting helper itself must produce parseable images,
        # or the negative tests below prove nothing.
        image = parse_trx(_craft_trx(kernel_off=32, rootfs_off=48))
        assert len(image.kernel) == 16

    def test_trx_inverted_partition_offsets_raise(self):
        # Regression: kernel_off > rootfs_off used to slice an empty
        # kernel and garbage rootfs without complaint.
        with pytest.raises(FirmwareError) as excinfo:
            parse_trx(_craft_trx(kernel_off=60, rootfs_off=32))
        assert "out of order" in str(excinfo.value)

    def test_trx_rootfs_offset_past_total_raises(self):
        with pytest.raises(FirmwareError):
            parse_trx(_craft_trx(kernel_off=32, rootfs_off=4096))

    def test_trx_kernel_offset_inside_header_raises(self):
        with pytest.raises(FirmwareError):
            parse_trx(_craft_trx(kernel_off=4, rootfs_off=48))

    def test_trx_loader_offset_outside_window_raises(self):
        with pytest.raises(FirmwareError):
            parse_trx(_craft_trx(kernel_off=32, rootfs_off=48,
                                 loader_off=4))

    def test_uimage_valid_craft_parses(self):
        parsed = parse_uimage(_craft_uimage_rootfs_off(8))
        assert len(parsed.kernel) == 4

    def test_uimage_rootfs_offset_past_payload_raises(self):
        # Regression: the offset is read from attacker-controlled
        # payload byte 0 and used to slice without validation.
        with pytest.raises(FirmwareError) as excinfo:
            parse_uimage(_craft_uimage_rootfs_off(0xFFFF))
        assert "rootfs offset" in str(excinfo.value)

    def test_uimage_rootfs_offset_inside_length_field_raises(self):
        with pytest.raises(FirmwareError):
            parse_uimage(_craft_uimage_rootfs_off(2))

    def test_parts_valid_craft_parses(self):
        parts, span = parse_parts(_craft_parts(
            [("boot", 44, 16), ("app", 60, 16)]
        ))
        assert [name for name, _data in parts] == ["boot", "app"]
        assert span == 76

    def test_parts_overlapping_partitions_raise(self):
        with pytest.raises(FirmwareError) as excinfo:
            parse_parts(_craft_parts([("boot", 44, 20), ("app", 50, 16)]))
        assert "overlapping" in str(excinfo.value)

    def test_parts_out_of_order_offsets_raise(self):
        with pytest.raises(FirmwareError):
            parse_parts(_craft_parts([("boot", 64, 16), ("app", 44, 16)]))

    def test_parts_entry_inside_table_raises(self):
        with pytest.raises(FirmwareError):
            parse_parts(_craft_parts([("boot", 8, 30)]))

    def test_magic_inside_file_content_stays_content(self):
        # A container magic in the *middle* of a filesystem file is
        # data, not a nested image: file regions only match offset 0.
        from repro.firmware.unpack import unpack

        fs = SimpleFS()
        fs.add_file("/etc/notes", b"see also " + TRX_MAGIC + b" format")
        fs.add_file("/bin/cgibin", b"\x7fELF\x01" + b"\x00" * 64)
        tree = unpack(pack_trx(b"KERNEL", fs.pack()), name="decoy")
        nodes = dict(tree.walk())
        note_node = next(n for p, n in nodes.items()
                         if n.label == "/etc/notes")
        assert note_node.parser == "data"
        assert not note_node.children

    def test_truncation_falls_through_to_intact_candidate(self):
        # Cutting the tail kills the partition table at offset 0 but
        # leaves the vendor-blob partition intact; the carve driver
        # must fall through to it instead of dying on the first hit.
        from repro.corpus.matryoshka import build_matryoshka
        from repro.firmware.unpack import unpack

        blob = build_matryoshka(seed=3, name="trunc").blob
        tree = unpack(blob[:int(len(blob) * 0.8)], name="trunc")
        assert tree.root.parser == "vendor-blob"
        assert any("parts@0x0" in note for note in tree.root.notes)
        assert [e for e in tree.elves()]

    def test_truncated_nested_payload_raises_typed(self):
        # Cut deep enough that no candidate survives: every failed
        # parse is enumerated in one typed error.
        from repro.corpus.matryoshka import build_matryoshka
        from repro.firmware.unpack import unpack

        blob = build_matryoshka(seed=3, name="trunc").blob
        with pytest.raises(FirmwareError) as excinfo:
            unpack(blob[:len(blob) // 2], name="trunc")
        message = str(excinfo.value)
        assert "no parseable container" in message
        assert "parts@0x0" in message
        assert "vendor-blob@0x6c" in message

    def test_depth_bomb_trips_budget(self):
        from repro.firmware.image import pack_gzip
        from repro.firmware.unpack import unpack

        data = b"\x7fELF\x01" + b"\x00" * 32
        for _ in range(12):
            data = pack_gzip(data)
        with pytest.raises(FirmwareError) as excinfo:
            unpack(data, name="bomb")
        assert "deeper" in str(excinfo.value)

    def test_inflate_bomb_trips_budget(self):
        from repro.firmware.image import pack_gzip
        from repro.firmware.unpack import unpack

        bomb = pack_gzip(b"\x00" * (8 << 20))
        with pytest.raises(FirmwareError):
            unpack(bomb, name="bomb", max_total_bytes=1 << 20)

    def test_fanout_bomb_trips_budget(self):
        from repro.corpus.matryoshka import build_matryoshka
        from repro.firmware.unpack import unpack

        blob = build_matryoshka(seed=4, name="fanout").blob
        with pytest.raises(FirmwareError) as excinfo:
            unpack(blob, name="fanout", max_nodes=5)
        assert "fan-out" in str(excinfo.value)


class TestFleetEmulation:
    def test_fleet_size_and_determinism(self):
        from repro.corpus.fleet import generate_fleet

        fleet_a = generate_fleet(size=500, seed=7)
        fleet_b = generate_fleet(size=500, seed=7)
        assert len(fleet_a) == 500
        assert [i.image_id for i in fleet_a] == [i.image_id for i in fleet_b]

    def test_boot_failure_reasons_match_paper(self):
        from repro.corpus.fleet import generate_fleet
        from repro.firmware.emulation import (
            EmulationHarness,
            failure_breakdown,
        )

        results = EmulationHarness().run_fleet(generate_fleet(size=2000))
        breakdown = failure_breakdown(results)
        # The paper's two headline causes must dominate: proprietary
        # hardware access and network init, plus unpack failures.
        assert breakdown.get("device-probe", 0) > 0
        assert breakdown.get("network", 0) > 0
        assert breakdown.get("unpack", 0) > 0

    def test_emulation_rate_is_low(self):
        from repro.corpus.fleet import generate_fleet
        from repro.firmware.emulation import EmulationHarness

        results = EmulationHarness().run_fleet(generate_fleet())
        rate = sum(r.success for r in results) / len(results)
        assert rate < 0.2, "most firmware must fail to emulate (paper: ~90%)"

    def test_histogram_covers_2009_to_2016(self):
        from repro.corpus.fleet import generate_fleet
        from repro.firmware.emulation import (
            EmulationHarness,
            figure1_histogram,
        )

        results = EmulationHarness().run_fleet(generate_fleet(size=3000))
        rows = figure1_histogram(results)
        years = [row["year"] for row in rows]
        assert years == list(range(2009, 2017))
        for row in rows:
            assert row["emulated"] <= row["total"]
