"""Firmware containers, SimpleFS, binwalk scanning, and extraction."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import FirmwareError
from repro.firmware import binwalk
from repro.firmware.image import (
    pack_trx,
    pack_uimage,
    pack_vendor_blob,
    parse_trx,
    parse_uimage,
)
from repro.firmware.simplefs import SimpleFS


def _sample_fs():
    fs = SimpleFS()
    fs.add_dir("/bin")
    fs.add_file("/bin/cgibin", b"\x7fELF" + b"\x01" * 200)
    fs.add_file("/etc/passwd", b"root::0:0:root:/root:/bin/sh\n")
    fs.add_file("/www/index.html", b"<html>" + b"A" * 500 + b"</html>")
    return fs


class TestSimpleFS:
    def test_pack_unpack_roundtrip(self):
        fs = _sample_fs()
        packed = fs.pack()
        back = SimpleFS.unpack(packed)
        assert back.paths() == fs.paths()
        assert back.read_file("/etc/passwd") == fs.read_file("/etc/passwd")
        assert back.read_file("/bin/cgibin")[:4] == b"\x7fELF"

    def test_compression_applied_to_large_files(self):
        fs = SimpleFS()
        fs.add_file("/big", b"A" * 10000)
        assert len(fs.pack()) < 2000

    def test_rejects_bad_magic(self):
        with pytest.raises(FirmwareError):
            SimpleFS.unpack(b"XXXX" + b"\x00" * 100)

    def test_rejects_corrupted_payload(self):
        packed = bytearray(_sample_fs().pack())
        packed[-10] ^= 0xFF
        with pytest.raises(FirmwareError):
            SimpleFS.unpack(bytes(packed))

    def test_relative_path_rejected(self):
        fs = SimpleFS()
        with pytest.raises(FirmwareError):
            fs.add_file("relative/path", b"x")

    def test_read_missing_file(self):
        with pytest.raises(FirmwareError):
            _sample_fs().read_file("/nope")

    @settings(max_examples=30, deadline=None)
    @given(
        st.dictionaries(
            st.text(
                alphabet="abcdefgh/", min_size=1, max_size=12
            ).map(lambda s: "/" + s.strip("/")).filter(lambda s: len(s) > 1),
            st.binary(min_size=0, max_size=300),
            min_size=1,
            max_size=8,
        )
    )
    def test_roundtrip_property(self, files):
        fs = SimpleFS()
        for path, data in files.items():
            fs.add_file(path, data)
        back = SimpleFS.unpack(fs.pack())
        for path, data in files.items():
            assert back.read_file(path) == data


class TestContainers:
    def test_trx_roundtrip(self):
        image = pack_trx(b"KERNEL" * 100, b"ROOTFS" * 100)
        parsed = parse_trx(image)
        assert parsed.kernel == b"KERNEL" * 100
        assert parsed.rootfs == b"ROOTFS" * 100

    def test_trx_crc_detects_corruption(self):
        image = bytearray(pack_trx(b"K" * 50, b"R" * 50))
        image[40] ^= 0x01
        with pytest.raises(FirmwareError):
            parse_trx(bytes(image))

    def test_uimage_roundtrip(self):
        image = pack_uimage(b"kernel" * 64, b"rootfs" * 64, name="DIR-645")
        parsed = parse_uimage(image)
        assert parsed.kernel == b"kernel" * 64
        assert parsed.rootfs == b"rootfs" * 64
        assert parsed.name == "DIR-645"
        assert parsed.load_addr == 0x80000000

    def test_uimage_data_crc(self):
        image = bytearray(pack_uimage(b"kern", b"root"))
        image[-1] ^= 0xFF
        with pytest.raises(FirmwareError):
            parse_uimage(bytes(image))


class TestBinwalk:
    def test_scan_finds_signatures(self):
        fs = _sample_fs()
        blob = b"\xde\xad" * 20 + pack_trx(b"KERN", fs.pack())
        kinds = {s.kind for s in binwalk.scan(blob)}
        assert "trx" in kinds
        assert "simplefs" in kinds
        # The ELF inside the fs is zlib-compressed, so its magic is
        # not visible to a raw scan — the extractor must unpack first.
        raw = b"junk" + b"\x7fELF\x01\x01\x01" + b"tail"
        assert "elf" in {s.kind for s in binwalk.scan(raw)}

    def test_extract_trx_filesystem(self):
        fs = _sample_fs()
        blob = pack_trx(b"KERNEL", fs.pack())
        extracted, container = binwalk.extract_filesystem(blob)
        assert container.container == "trx"
        assert extracted.read_file("/etc/passwd").startswith(b"root:")

    def test_extract_uimage_filesystem(self):
        fs = _sample_fs()
        blob = pack_uimage(b"KERNEL", fs.pack())
        extracted, container = binwalk.extract_filesystem(blob)
        assert container.container == "uimage"
        assert "/bin/cgibin" in extracted

    def test_vendor_blob_fails_extraction(self):
        blob = pack_vendor_blob(b"KERNEL", _sample_fs().pack())
        with pytest.raises(FirmwareError):
            binwalk.extract_filesystem(blob)

    def test_entropy_distinguishes_random_from_text(self):
        import random

        text = (b"configuration value = 1\n" * 200)
        noise = random.Random(7).randbytes(4096)
        low = binwalk.entropy_profile(text)
        high = binwalk.entropy_profile(noise)
        assert max(low) < 6.0
        assert min(high) > 7.5

    def test_pick_target_binary_prefers_known_names(self):
        fs = SimpleFS()
        fs.add_file("/bin/busybox", b"\x7fELF" + b"\x00" * 5000)
        fs.add_file("/usr/sbin/httpd", b"\x7fELF" + b"\x00" * 100)
        path, data = binwalk.pick_target_binary(fs)
        assert path == "/usr/sbin/httpd"

    def test_pick_target_binary_falls_back_to_largest(self):
        fs = SimpleFS()
        fs.add_file("/bin/a", b"\x7fELF" + b"\x00" * 100)
        fs.add_file("/bin/b", b"\x7fELF" + b"\x00" * 5000)
        path, _ = binwalk.pick_target_binary(fs)
        assert path == "/bin/b"

    def test_no_elf_raises(self):
        fs = SimpleFS()
        fs.add_file("/etc/motd", b"hello")
        with pytest.raises(FirmwareError):
            binwalk.pick_target_binary(fs)


class TestFleetEmulation:
    def test_fleet_size_and_determinism(self):
        from repro.corpus.fleet import generate_fleet

        fleet_a = generate_fleet(size=500, seed=7)
        fleet_b = generate_fleet(size=500, seed=7)
        assert len(fleet_a) == 500
        assert [i.image_id for i in fleet_a] == [i.image_id for i in fleet_b]

    def test_boot_failure_reasons_match_paper(self):
        from repro.corpus.fleet import generate_fleet
        from repro.firmware.emulation import (
            EmulationHarness,
            failure_breakdown,
        )

        results = EmulationHarness().run_fleet(generate_fleet(size=2000))
        breakdown = failure_breakdown(results)
        # The paper's two headline causes must dominate: proprietary
        # hardware access and network init, plus unpack failures.
        assert breakdown.get("device-probe", 0) > 0
        assert breakdown.get("network", 0) > 0
        assert breakdown.get("unpack", 0) > 0

    def test_emulation_rate_is_low(self):
        from repro.corpus.fleet import generate_fleet
        from repro.firmware.emulation import EmulationHarness

        results = EmulationHarness().run_fleet(generate_fleet())
        rate = sum(r.success for r in results) / len(results)
        assert rate < 0.2, "most firmware must fail to emulate (paper: ~90%)"

    def test_histogram_covers_2009_to_2016(self):
        from repro.corpus.fleet import generate_fleet
        from repro.firmware.emulation import (
            EmulationHarness,
            figure1_histogram,
        )

        results = EmulationHarness().run_fleet(generate_fleet(size=3000))
        rows = figure1_histogram(results)
        years = [row["year"] for row in rows]
        assert years == list(range(2009, 2017))
        for row in rows:
            assert row["emulated"] <= row["total"]
