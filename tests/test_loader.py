"""ELF writer/reader roundtrip and loader tests."""

import pytest

from repro.errors import ELFError
from repro.loader.binary import load_elf
from repro.loader.elf import ElfFile
from repro.loader.link import build_executable

ARM_SRC = r"""
.globl main
main:
    push {r4, lr}
    bl helper
    bl strcpy
    pop {r4, pc}
.globl helper
helper:
    ldr r0, =greeting
    bx lr
.ltorg
.rodata
.globl greeting
greeting: .asciz "hi there"
.data
counter: .word 7
"""

MIPS_SRC = r"""
.globl main
main:
    addiu $sp, $sp, -24
    sw $ra, 20($sp)
    jal helper
    nop
    jal memcpy
    nop
    lw $ra, 20($sp)
    jr $ra
    addiu $sp, $sp, 24
.globl helper
helper:
    jr $ra
    nop
"""


@pytest.fixture
def arm_binary():
    elf_bytes, program = build_executable("arm", ARM_SRC, imports=["strcpy"])
    return load_elf(elf_bytes), program


@pytest.fixture
def mips_binary():
    elf_bytes, program = build_executable("mips", MIPS_SRC, imports=["memcpy"])
    return load_elf(elf_bytes), program


def test_arm_elf_parses(arm_binary):
    binary, program = arm_binary
    assert binary.arch.name == "arm"
    assert binary.entry == program.symbols["main"]


def test_function_symbols_and_sizes(arm_binary):
    binary, program = arm_binary
    assert set(binary.functions) >= {"main", "helper", "strcpy"}
    main = binary.functions["main"]
    helper = binary.functions["helper"]
    assert main.addr == program.symbols["main"]
    assert main.size == helper.addr - main.addr
    assert not main.is_import


def test_imports_live_in_plt(arm_binary):
    binary, program = arm_binary
    strcpy = binary.functions["strcpy"]
    assert strcpy.is_import
    assert binary.import_name(strcpy.addr) == "strcpy"
    assert binary.imports[program.symbols["strcpy"]] == "strcpy"


def test_local_functions_excludes_imports(arm_binary):
    binary, _ = arm_binary
    names = {f.name for f in binary.local_functions}
    assert "strcpy" not in names
    assert {"main", "helper"} <= names


def test_segments_mapped_and_readable(arm_binary):
    binary, program = arm_binary
    greeting = program.symbols["greeting"]
    assert binary.read_cstring(greeting) == b"hi there"
    word = binary.read(program.symbols["main"], 4)
    assert word is not None
    assert binary.is_executable(program.symbols["main"])
    assert not binary.is_executable(greeting)


def test_read_unmapped_returns_none(arm_binary):
    binary, _ = arm_binary
    assert binary.read(0xDEAD0000, 4) is None
    assert binary.read_bytes(0xDEAD0000, 4) is None


def test_mips_elf_is_big_endian(mips_binary):
    binary, program = mips_binary
    assert binary.arch.name == "mips"
    assert binary.arch.is_big_endian
    # The first instruction of main is addiu $sp, $sp, -24 = 0x27BDFFE8.
    assert binary.read(program.symbols["main"], 4) == 0x27BDFFE8
    assert binary.functions["memcpy"].is_import


def test_elffile_rejects_garbage():
    with pytest.raises(ELFError):
        ElfFile.parse(b"not an elf")
    with pytest.raises(ELFError):
        ElfFile.parse(b"\x7fELF" + b"\x00" * 10)


def test_elffile_rejects_wrong_class(arm_binary):
    binary, _ = arm_binary
    corrupted = bytearray(binary.elf.data)
    corrupted[4] = 2  # ELFCLASS64
    with pytest.raises(ELFError):
        ElfFile.parse(bytes(corrupted))


def test_elf_sections_present(arm_binary):
    binary, _ = arm_binary
    names = set(binary.elf.sections)
    assert {".plt", ".text", ".rodata", ".data", ".symtab", ".strtab"} <= names


def test_data_symbols(arm_binary):
    binary, program = arm_binary
    assert binary.data_symbols.get("greeting") == program.symbols["greeting"]
