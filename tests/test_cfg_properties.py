"""Property tests for dominators and loops against networkx oracles."""

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cfg.dominators import compute_dominators, immediate_dominators
from repro.cfg.loops import natural_loops
from repro.cfg.model import BasicBlock, Function


def _function_from_edges(n_blocks, edges):
    """Build a synthetic Function with the given block graph."""
    function = Function(name="f", addr=0, size=4 * n_blocks)
    for i in range(n_blocks):
        function.blocks[i] = BasicBlock(addr=i, insns=[])
    for src, dst in edges:
        if dst not in function.blocks[src].successors:
            function.blocks[src].successors.append(dst)
    return function


graphs = st.integers(min_value=2, max_value=10).flatmap(
    lambda n: st.tuples(
        st.just(n),
        st.lists(
            st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
            max_size=3 * n,
        ),
    )
)


@settings(max_examples=120, deadline=None)
@given(graphs)
def test_immediate_dominators_match_networkx(graph_spec):
    n_blocks, edges = graph_spec
    # Ensure some connectivity from the entry.
    edges = [(0, min(1, n_blocks - 1))] + edges
    function = _function_from_edges(n_blocks, edges)

    ours = immediate_dominators(function)

    g = nx.DiGraph()
    g.add_nodes_from(range(n_blocks))
    g.add_edges_from((s, d) for s, d in edges)
    theirs = nx.immediate_dominators(g, 0)

    for node, idom in theirs.items():
        if node == 0:
            continue
        assert ours.get(node) == idom, (node, ours.get(node), idom)


@settings(max_examples=120, deadline=None)
@given(graphs)
def test_dominator_sets_are_consistent(graph_spec):
    n_blocks, edges = graph_spec
    edges = [(0, min(1, n_blocks - 1))] + edges
    function = _function_from_edges(n_blocks, edges)
    dom = compute_dominators(function)
    # Entry dominates itself and appears in every reachable node's set.
    g = nx.DiGraph()
    g.add_nodes_from(range(n_blocks))
    g.add_edges_from((s, d) for s, d in edges)
    reachable = nx.descendants(g, 0) | {0}
    for node in reachable:
        assert 0 in dom[node]
        assert node in dom[node]


@settings(max_examples=100, deadline=None)
@given(graphs)
def test_loop_bodies_contain_their_headers(graph_spec):
    n_blocks, edges = graph_spec
    edges = [(0, min(1, n_blocks - 1))] + edges
    function = _function_from_edges(n_blocks, edges)
    for loop in natural_loops(function):
        assert loop.header in loop.body
        source, dest = loop.back_edge
        assert dest == loop.header
        assert source in loop.body


def test_self_loop_detected():
    function = _function_from_edges(2, [(0, 1), (1, 1)])
    loops = natural_loops(function)
    assert len(loops) == 1
    assert loops[0].header == 1
    assert loops[0].body == {1}


def test_nested_loops_share_outer_body():
    # 0 -> 1 -> 2 -> 1 (inner), 2 -> 0? keep entry dominance: 0->1->2->3->1
    function = _function_from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 1),
                                        (2, 1)])
    loops = natural_loops(function)
    headers = {loop.header for loop in loops}
    assert headers == {1}
    (loop,) = loops
    assert {1, 2, 3} <= loop.body
