"""Unit tests for the symbolic state, memory, and IR layer."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ir.expr import Binop, Const, Get, ITE, Load, Ops, RdTmp, Unop
from repro.ir.irsb import IRBuilder, IRSB, JumpKind
from repro.ir.stmt import Exit, IMark, Put, Store, WrTmp
from repro.symexec.state import DefPair, SymMemory, SymState
from repro.symexec.value import SymConst, SymDeref, SymVar, mk_add, mk_deref

A = SymVar("arg0")
SP = SymVar("sp0")


class TestSymMemory:
    def test_write_then_read_hits(self):
        memory = SymMemory()
        addr = mk_add(SP, SymConst(-8))
        memory.write(addr, A, 4)
        value, hit = memory.read(addr, 4)
        assert hit and value == A

    def test_miss_returns_fresh_deref(self):
        memory = SymMemory()
        addr = mk_add(A, SymConst(0x4C))
        value, hit = memory.read(addr, 4)
        assert not hit
        assert value == mk_deref(addr, 4)

    def test_size_mismatch_misses(self):
        memory = SymMemory()
        addr = mk_add(SP, SymConst(-8))
        memory.write(addr, A, 4)
        value, hit = memory.read(addr, 1)
        assert not hit

    def test_copy_on_fork_is_isolated(self):
        parent = SymMemory()
        parent.write(SP, SymConst(1), 4)
        child = SymMemory(parent)
        child.write(SP, SymConst(2), 4)
        assert parent.read(SP, 4)[0] == SymConst(1)
        assert child.read(SP, 4)[0] == SymConst(2)


class TestSymState:
    def test_fork_isolates_registers_and_constraints(self):
        state = SymState()
        state.set_reg("r0", A)
        fork = state.fork()
        fork.set_reg("r0", SP)
        fork.constraints.append("c")
        assert state.get_reg("r0") == A
        assert state.constraints == []

    def test_visited_is_per_path(self):
        state = SymState()
        state.visited.add(0x1000)
        fork = state.fork()
        fork.visited.add(0x2000)
        assert 0x2000 not in state.visited
        assert 0x1000 in fork.visited


class TestIRBuilder:
    def test_tmp_numbering_and_count(self):
        builder = IRBuilder(0x1000)
        t0 = builder.tmp(Const(1))
        t1 = builder.tmp(Binop(Ops.ADD, t0, Const(2)))
        irsb = builder.finish(Const(0x1004), JumpKind.BORING)
        assert (t0.tmp, t1.tmp) == (0, 1)
        assert irsb.tmp_count() == 2

    def test_rejects_non_statements(self):
        builder = IRBuilder(0)
        with pytest.raises(TypeError):
            builder.add(Const(1))

    def test_instruction_addrs_from_imarks(self):
        builder = IRBuilder(0x1000)
        builder.imark(0x1000, 4)
        builder.imark(0x1004, 4)
        irsb = builder.finish(Const(0x1008), JumpKind.BORING)
        assert irsb.instruction_addrs == [0x1000, 0x1004]

    def test_pretty_prints_all_statements(self):
        builder = IRBuilder(0x1000)
        builder.imark(0x1000, 4)
        t = builder.tmp(Get("r0"))
        builder.add(Put("r1", t))
        builder.add(Store(t, Const(5), 4))
        builder.add(Exit(Const(1), 0x2000, JumpKind.BORING))
        irsb = builder.finish(Const(0x1004), JumpKind.CALL)
        text = irsb.pretty()
        assert "IMark" in text
        assert "PUT(r1)" in text
        assert "ST32" in text
        assert "goto 0x2000" in text
        assert "Ijk_Call" in text


class TestExprValidation:
    def test_binop_rejects_unknown_op(self):
        with pytest.raises(ValueError):
            Binop("Frobnicate", Const(1), Const(2))

    def test_unop_rejects_unknown_op(self):
        with pytest.raises(ValueError):
            Unop("Nope", Const(1))

    def test_walk_visits_subtrees(self):
        expr = Binop(Ops.ADD, Load(Get("r0"), 4), Const(1))
        nodes = list(expr.walk())
        assert any(isinstance(n, Get) for n in nodes)
        assert any(isinstance(n, Load) for n in nodes)

    def test_ite_walk(self):
        expr = ITE(Const(1), Get("r0"), Get("r1"))
        regs = {n.reg for n in expr.walk() if isinstance(n, Get)}
        assert regs == {"r0", "r1"}


@settings(max_examples=60, deadline=None)
@given(st.integers(min_value=0, max_value=0xFFFFFFFF),
       st.integers(min_value=0, max_value=0xFFFFFFFF))
def test_ir_interp_binops_agree_with_python(a, b):
    from repro.emu import Memory
    from repro.ir.interp import IRInterpreter

    interp = IRInterpreter({}, Memory())
    assert interp.eval_expr(
        Binop(Ops.ADD, Const(a), Const(b))
    ) == (a + b) & 0xFFFFFFFF
    assert interp.eval_expr(
        Binop(Ops.XOR, Const(a), Const(b))
    ) == a ^ b
    assert interp.eval_expr(
        Binop(Ops.CMP_LT_U, Const(a), Const(b))
    ) == int(a < b)


def test_ir_interp_rejects_unwritten_tmp():
    from repro.emu import Memory
    from repro.errors import SymExecError
    from repro.ir.interp import IRInterpreter

    interp = IRInterpreter({}, Memory())
    with pytest.raises(SymExecError):
        interp.eval_expr(RdTmp(3))


def test_defpair_hashable_and_comparable():
    pair_a = DefPair(dest=mk_deref(A), value=SymConst(1), site=4)
    pair_b = DefPair(dest=mk_deref(A), value=SymConst(1), site=4)
    assert pair_a == pair_b
    assert len({pair_a, pair_b}) == 1
