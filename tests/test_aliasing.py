"""Unit tests for Algorithm 1 (pointer-alias recognition)."""

from repro.core.aliasing import AliasEntry, alias_replace, find_aliases
from repro.core.types import infer_types
from repro.symexec.state import DefPair, FunctionSummary
from repro.symexec.value import (
    SymConst,
    SymVar,
    mk_add,
    mk_deref,
    pretty,
)

ARG0 = SymVar("arg0")
ARG1 = SymVar("arg1")


def _summary(pairs):
    summary = FunctionSummary(name="f", addr=0x1000)
    summary.def_pairs = list(pairs)
    return summary


def test_formula1_alias_found():
    """deref(arg0 + 0x4c) = arg1 + 0x10 is an alias entry."""
    dest = mk_deref(mk_add(ARG0, SymConst(0x4C)))
    value = mk_add(ARG1, SymConst(0x10))
    summary = _summary([
        DefPair(dest=dest, value=value, site=0),
        # arg1 used as a deref base => pointer evidence.
        DefPair(dest=mk_deref(ARG1), value=SymConst(1), site=4),
    ])
    aliases = find_aliases(summary.def_pairs, infer_types(summary))
    assert any(
        entry.alias == dest and entry.base == ARG1 and entry.offset == 0x10
        for entry in aliases
    )


def test_alias_rewrite_creates_second_name():
    """A write through arg1 also gets a name through the stored alias.

    deref(arg0+0x4c) = arg1;  deref(arg1+0x14) = taint
    => deref(deref(arg0+0x4c)+0x14) = taint  (paper's example shape)
    """
    stored = mk_deref(mk_add(ARG0, SymConst(0x4C)))
    summary = _summary([
        DefPair(dest=stored, value=ARG1, site=0),
        DefPair(dest=mk_deref(mk_add(ARG1, SymConst(0x14))),
                value=SymVar("taint"), site=4),
    ])
    added = alias_replace(summary, infer_types(summary))
    rendered = {pretty(p.dest) for p in added}
    assert "deref(deref(arg0 + 0x4c) + 0x14)" in rendered


def test_alias_with_offset_subtracts():
    """alias = base + 8: the rewrite uses alias - 8 for the base."""
    stored = mk_deref(ARG0)
    summary = _summary([
        DefPair(dest=stored, value=mk_add(ARG1, SymConst(8)), site=0),
        DefPair(dest=mk_deref(mk_add(ARG1, SymConst(0x20))),
                value=SymConst(7), site=4),
        DefPair(dest=mk_deref(ARG1), value=SymConst(0), site=8),
    ])
    added = alias_replace(summary, infer_types(summary))
    rendered = {pretty(p.dest) for p in added}
    # deref(arg1 + 0x20) == deref((alias - 8) + 0x20) == deref(alias + 0x18)
    assert "deref(deref(arg0) + 0x18)" in rendered


def test_symmetric_closure():
    """Imported defs through the stored name connect to local uses."""
    stored = mk_deref(mk_add(ARG0, SymConst(4)))
    summary = _summary([
        DefPair(dest=stored, value=ARG1, site=0),
        # A definition expressed through the *alias* name.
        DefPair(dest=mk_deref(mk_add(stored, SymConst(8))),
                value=SymVar("v"), site=4),
        DefPair(dest=mk_deref(ARG1), value=SymConst(0), site=8),
    ])
    added = alias_replace(summary, infer_types(summary))
    rendered = {pretty(p.dest) for p in added}
    assert "deref(arg1 + 0x8)" in rendered


def test_no_alias_for_integers():
    """Integer-typed stored values produce no alias entries."""
    summary = _summary([
        DefPair(dest=mk_deref(ARG0), value=SymConst(42), site=0),
    ])
    aliases = find_aliases(summary.def_pairs, infer_types(summary))
    assert aliases == []


def test_alias_replace_is_bounded():
    pairs = [DefPair(dest=mk_deref(mk_add(ARG0, SymConst(4 * i))),
                     value=ARG1, site=i) for i in range(40)]
    pairs.append(DefPair(dest=mk_deref(ARG1), value=SymConst(0), site=999))
    summary = _summary(pairs)
    added = alias_replace(summary, infer_types(summary), max_new=10)
    assert len(added) <= 10
