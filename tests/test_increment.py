"""The incremental fleet-analysis subsystem (`repro.increment`).

Acceptance properties:

* function fingerprints are position-independent: rebuilding an image
  with one patched handler leaves every untouched function's local and
  closure fingerprints equal even where its address shifted;
* a relocated cached summary is field-for-field equal to a freshly
  computed one, and stray (split-immediate / ro-fold) addresses are
  re-verified by content before reuse;
* re-scanning an unchanged image through the fleet index alone runs
  **zero** symbolic executions; a one-handler mutation re-runs exactly
  the changed Merkle closure;
* delta reports classify the injected patch as `fixed` with nothing
  spurious, and a self-delta is empty and byte-identical;
* `cache gc` prunes quarantine/tmp/stale-version files; ResultsStore
  writes are atomic under injected mid-write faults.
"""

import json
import os
import pickle

import pytest

from repro import profiling
from repro.core import DTaint, DTaintConfig
from repro.corpus.fleet import build_version_pair
from repro.corpus.profiles import analyzed_module_prefixes
from repro.errors import MalformedInput
from repro.increment import (
    FleetIndex,
    classify_functions,
    clear_binary_bundles,
    compute_delta,
    delta_fingerprint,
    fingerprint_functions,
    relocate_summary,
    stray_addresses,
    strays_compatible,
)
from repro.increment.reuse import open_incremental_cache
from repro.loader.binary import load_elf
from repro.loader.link import build_executable
from repro.pipeline import (
    FleetJob,
    binary_sha256,
    canonical_report,
    collect_garbage,
    execute_job,
    findings_fingerprint,
)
from repro.pipeline.cache import CACHE_FORMAT_VERSION, summary_fingerprint
from repro.pipeline.faultinject import injected
from repro.pipeline.results import ResultsStore

SCALE = 0.05
KEY = "dir645"


@pytest.fixture(scope="module")
def version_pair():
    return build_version_pair(KEY, scale=SCALE)


@pytest.fixture(scope="module")
def config():
    return DTaintConfig(modules=analyzed_module_prefixes(KEY))


def _fingerprint(built, config):
    detector = DTaint(built.binary, config=config, name=built.name)
    detector.analyze_functions()
    fps = fingerprint_functions(
        built.binary, detector.functions, detector.call_graph
    )
    return detector, fps


def _scan_image(built, cache_dir, config):
    sha = binary_sha256(built.elf_bytes)
    cache = open_incremental_cache(cache_dir, sha, config)
    report = DTaint(
        built.binary, config=config, name=built.name, summary_cache=cache
    ).run()
    cache.flush()
    return report, cache


# ---------------------------------------------------------------------------


class TestFingerprint:
    def test_position_independent_across_version_pair(
        self, version_pair, config
    ):
        old_built, new_built, flipped = version_pair
        _, old_fps = _fingerprint(old_built, config)
        _, new_fps = _fingerprint(new_built, config)
        assert old_fps[flipped].local != new_fps[flipped].local
        shifted = [
            name for name in old_fps
            if name != flipped and old_fps[name].addr != new_fps[name].addr
        ]
        assert shifted, "patch did not shift any function address"
        for name in shifted:
            assert old_fps[name].local == new_fps[name].local
            assert old_fps[name].closure == new_fps[name].closure

    def test_deterministic(self, version_pair, config):
        old_built, _, _ = version_pair
        _, first = _fingerprint(old_built, config)
        _, second = _fingerprint(old_built, config)
        assert first == second

    def test_closure_tracks_callees(self):
        def build(ret):
            asm = (
                ".globl caller\ncaller:\n    push {lr}\n    bl callee\n"
                "    pop {pc}\n"
                ".globl callee\ncallee:\n    mov r0, #%d\n    bx lr\n" % ret
            )
            elf, _ = build_executable("arm", asm, imports=[])
            return load_elf(elf)

        def fps(binary):
            detector = DTaint(binary, name="t")
            detector.analyze_functions()
            return fingerprint_functions(
                binary, detector.functions, detector.call_graph
            )

        one, two = fps(build(1)), fps(build(2))
        assert one["callee"].local != two["callee"].local
        assert one["caller"].local == two["caller"].local
        # The caller's own body is unchanged but its callee closure
        # moved underneath it — the summary-reuse invalidation signal.
        assert one["caller"].closure != two["caller"].closure


class TestRelocation:
    def test_relocated_equals_fresh(self, version_pair, config):
        old_built, new_built, flipped = version_pair
        old_det, old_fps = _fingerprint(old_built, config)
        new_det, new_fps = _fingerprint(new_built, config)
        moved = [
            name for name in old_det.summaries
            if name != flipped
            and name in new_fps
            and old_fps[name].addr != new_fps[name].addr
        ]
        assert moved
        for name in moved:
            stored = old_det.summaries[name]
            strays = stray_addresses(stored, old_built.binary,
                                     old_fps[name].literals)
            assert strays_compatible(new_built.binary, strays)
            relocated = relocate_summary(
                stored, name, new_fps[name].addr,
                old_fps[name].literals, new_fps[name].literals,
            )
            fresh = new_det.summaries[name]
            assert relocated is not None
            assert relocated.addr == fresh.addr
            assert relocated.def_pairs == fresh.def_pairs
            assert relocated.constraints == fresh.constraints
            assert relocated.ret_values == fresh.ret_values
            assert [c.addr for c in relocated.callsites] == [
                c.addr for c in fresh.callsites
            ]
            assert [c.args for c in relocated.callsites] == [
                c.args for c in fresh.callsites
            ]

    def test_stray_content_mismatch_refused(self, version_pair, config):
        old_built, _, _ = version_pair
        det, fps = _fingerprint(old_built, config)
        with_strays = [
            (name, stray_addresses(det.summaries[name], old_built.binary,
                                   fps[name].literals))
            for name in det.summaries
        ]
        name, strays = next(
            (n, s) for n, s in with_strays if s
        )
        assert strays_compatible(old_built.binary, strays)
        tampered = tuple((value, "deadbeef") for value, _tag in strays)
        assert not strays_compatible(old_built.binary, tampered)
        unmapped = tuple((0x7FFF0000, tag) for _v, tag in strays)
        assert not strays_compatible(old_built.binary, unmapped)


class TestFleetIndex:
    def test_round_trip(self, tmp_path, version_pair, config):
        old_built, _, _ = version_pair
        det, fps = _fingerprint(old_built, config)
        name = sorted(det.summaries)[0]
        fp = fps[name]
        strays = stray_addresses(det.summaries[name], old_built.binary,
                                 fp.literals)
        writer = FleetIndex(str(tmp_path), summary_fingerprint(config))
        writer.put_summary(fp.closure, det.summaries[name], fp.literals,
                           strays=strays)
        assert writer.stored == 1
        writer.flush()
        reader = FleetIndex(str(tmp_path), summary_fingerprint(config))
        hit = reader.get_summary(fp.closure)
        assert hit is not None
        summary, literals, read_strays = hit
        assert summary.name == name
        assert literals == fp.literals
        assert read_strays == strays
        assert reader.get_summary("0" * 32) is None
        assert reader.stats["fleet_hits"] == 1
        assert reader.stats["fleet_misses"] == 1

    def test_stale_version_quarantined(self, tmp_path):
        index = FleetIndex(str(tmp_path), "cfg")
        path = index._summary_path("ab" * 16)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "wb") as handle:
            pickle.dump({"version": CACHE_FORMAT_VERSION + 1}, handle)
        assert index.get_summary("ab" * 16) is None
        assert index.corrupt == 1
        assert not os.path.exists(path)
        assert os.path.exists(path + ".corrupt")


class TestIncrementalScan:
    def test_zero_symexec_on_fleet_only_rescan(
        self, tmp_path, version_pair, config
    ):
        old_built, _, _ = version_pair
        report, cold = _scan_image(old_built, str(tmp_path), config)
        assert cold.stats["fleet_stored"] > 0
        # Drop the binary-scoped bundles: the fleet layer must carry
        # the warm re-scan alone, via relocation at offset zero.
        assert clear_binary_bundles(str(tmp_path)) > 0
        before = profiling.PROFILER.snapshot()
        warm_report, warm = _scan_image(old_built, str(tmp_path), config)
        counters = profiling.delta(
            before, profiling.PROFILER.snapshot()
        )["counters"]
        assert counters.get("symexec_functions", 0) == 0
        assert counters.get("fingerprinted_functions", 0) > 0
        assert warm.stats["summary_misses"] == 0
        assert warm.stats["reuse_ratio"] == 1.0
        assert findings_fingerprint(warm_report.to_dict()) == \
            findings_fingerprint(report.to_dict())

    def test_mutation_reanalyzes_only_changed_closure(
        self, tmp_path, version_pair, config
    ):
        old_built, new_built, flipped = version_pair
        _scan_image(old_built, str(tmp_path), config)
        before = profiling.PROFILER.snapshot()
        report, cache = _scan_image(new_built, str(tmp_path), config)
        counters = profiling.delta(
            before, profiling.PROFILER.snapshot()
        )["counters"]
        _, new_fps = _fingerprint(new_built, config)
        _, old_fps = _fingerprint(old_built, config)
        changed = classify_functions(old_fps, new_fps)
        closure_size = len(
            changed["body_changed"] + changed["callee_changed"]
            + changed["added"]
        )
        assert flipped in changed["body_changed"]
        assert counters.get("symexec_functions", 0) == closure_size
        assert cache.stats["summary_misses"] == closure_size
        assert cache.stats["reuse_ratio"] >= 0.8
        # Differential soundness: the incremental scan must equal a
        # cold scan of the mutated image.
        cold_report, _ = _scan_image(
            new_built, str(tmp_path / "cold"), config
        )
        assert findings_fingerprint(report.to_dict()) == \
            findings_fingerprint(cold_report.to_dict())

    def test_execute_job_image_findings_reuse(self, tmp_path):
        job = FleetJob(job_id=KEY, kind="profile", key=KEY, scale=SCALE)
        cold = execute_job(job, cache_dir=str(tmp_path),
                           use_fleet_index=True, use_report_cache=False)
        assert cold["fingerprints"]
        assert not cold["cache"].get("image_findings_hit")
        warm = execute_job(job, cache_dir=str(tmp_path),
                           use_fleet_index=True, use_report_cache=False)
        assert warm["cache"]["image_findings_hit"]
        assert warm["fingerprints"] == cold["fingerprints"]
        assert findings_fingerprint(warm["report"]) == \
            findings_fingerprint(cold["report"])


class TestDelta:
    def _image(self, built, report):
        _, fps = _fingerprint(
            built, DTaintConfig(modules=analyzed_module_prefixes(KEY))
        )
        return {
            "name": built.name,
            "sha256": binary_sha256(built.elf_bytes),
            "findings": canonical_report(report.to_dict()),
            "fingerprints": {
                n: {"local": f.local, "closure": f.closure}
                for n, f in fps.items()
            },
        }

    def test_version_pair_delta_classifies_fix(
        self, tmp_path, version_pair, config
    ):
        old_built, new_built, flipped = version_pair
        old_report, _ = _scan_image(old_built, str(tmp_path), config)
        new_report, _ = _scan_image(new_built, str(tmp_path), config)
        doc = compute_delta(
            self._image(old_built, old_report),
            self._image(new_built, new_report),
        )
        assert doc["counts"]["new"] == 0
        assert doc["counts"]["fixed"] == 1
        assert doc["findings"]["fixed"][0]["function"] == flipped
        assert doc["function_counts"]["body_changed"] == 1
        assert flipped in doc["functions"]["body_changed"]
        assert doc["function_counts"]["added"] == 0
        assert doc["function_counts"]["removed"] == 0

    def test_self_delta_empty_and_byte_identical(
        self, tmp_path, version_pair, config
    ):
        old_built, _, _ = version_pair
        report_a, _ = _scan_image(old_built, str(tmp_path / "a"), config)
        report_b, _ = _scan_image(old_built, str(tmp_path / "b"), config)
        doc_ab = compute_delta(
            self._image(old_built, report_a),
            self._image(old_built, report_b),
        )
        doc_ba = compute_delta(
            self._image(old_built, report_b),
            self._image(old_built, report_a),
        )
        assert doc_ab["counts"]["new"] == 0
        assert doc_ab["counts"]["fixed"] == 0
        assert doc_ab["changed_closure"] == []
        assert delta_fingerprint(doc_ab) == delta_fingerprint(doc_ba)

    def test_classify_functions_accepts_plain_dicts(self):
        old = {
            "a": {"local": "1", "closure": "1"},
            "b": {"local": "2", "closure": "2"},
            "gone": {"local": "3", "closure": "3"},
        }
        new = {
            "a": {"local": "1", "closure": "9"},
            "b": {"local": "x", "closure": "y"},
            "fresh": {"local": "4", "closure": "4"},
        }
        out = classify_functions(old, new)
        assert out["callee_changed"] == ["a"]
        assert out["body_changed"] == ["b"]
        assert out["added"] == ["fresh"]
        assert out["removed"] == ["gone"]
        assert out["unchanged"] == []


class TestCacheGC:
    def _seed(self, root):
        os.makedirs(os.path.join(root, "summaries", "ab"), exist_ok=True)
        os.makedirs(os.path.join(root, "fleet", "sum", "cd"), exist_ok=True)
        corrupt = os.path.join(root, "summaries", "ab", "x.pkl.corrupt")
        with open(corrupt, "wb") as handle:
            handle.write(b"junk")
        tmp = os.path.join(root, "summaries", "ab", "y.pkl.tmp.123")
        with open(tmp, "wb") as handle:
            handle.write(b"half-written")
        stale_bundle = os.path.join(root, "summaries", "ab", "z.pkl")
        with open(stale_bundle, "wb") as handle:
            pickle.dump({0x1000: b"DTSUM" + bytes([255]) + b"old"}, handle)
        stale_fleet = os.path.join(root, "fleet", "sum", "cd", "w.pkl")
        with open(stale_fleet, "wb") as handle:
            pickle.dump({"version": CACHE_FORMAT_VERSION + 5}, handle)
        return corrupt, tmp, stale_bundle, stale_fleet

    def test_dry_run_touches_nothing(self, tmp_path):
        root = str(tmp_path)
        paths = self._seed(root)
        stats = collect_garbage(root, dry_run=True)
        assert stats["corrupt_removed"] == 1
        assert stats["tmp_removed"] == 1
        assert stats["files_removed"] >= 2
        assert stats["bytes_freed"] > 0
        for path in paths:
            assert os.path.exists(path)

    def test_gc_removes_stale_files(self, tmp_path):
        root = str(tmp_path)
        paths = self._seed(root)
        stats = collect_garbage(root)
        assert stats["corrupt_removed"] == 1
        assert stats["tmp_removed"] == 1
        assert stats["stale_summaries"] >= 1
        for path in paths:
            assert not os.path.exists(path)

    def test_gc_keeps_live_entries(self, tmp_path, version_pair, config):
        old_built, _, _ = version_pair
        _, cache = _scan_image(old_built, str(tmp_path), config)
        stored = cache.stats["fleet_stored"]
        assert stored > 0
        stats = collect_garbage(str(tmp_path))
        assert stats["files_removed"] == 0
        # The fleet layer still serves a full warm re-scan.
        clear_binary_bundles(str(tmp_path))
        _, warm = _scan_image(old_built, str(tmp_path), config)
        assert warm.stats["summary_misses"] == 0


class TestAtomicResults:
    def _result(self, tmp_path):
        job = FleetJob(job_id=KEY, kind="profile", key=KEY, scale=SCALE)
        payload = execute_job(job, cache_dir=str(tmp_path / "cache"))
        from repro.pipeline.scheduler import JobResult

        result = JobResult(job=job, status="ok", attempts=1,
                           report=payload["report"],
                           cache=payload["cache"],
                           resources=payload["resources"])
        return result

    def test_mid_write_fault_leaves_previous_file_intact(self, tmp_path):
        result = self._result(tmp_path)
        store = ResultsStore(str(tmp_path / "out"))
        first = store.write_rollup([result], 1.0)
        with open(first) as handle:
            before = handle.read()
        with injected(["malformed@results:fleet.json"]):
            with pytest.raises(MalformedInput):
                store.write_rollup([result], 2.0)
        with open(first) as handle:
            assert handle.read() == before
        leftovers = [
            name for name in os.listdir(str(tmp_path / "out"))
            if ".tmp." in name
        ]
        assert leftovers == []
        # The store recovers once the fault is gone.
        store.write_rollup([result], 3.0)
        with open(first) as handle:
            assert json.load(handle)["wall_seconds"] == 3.0

    def test_image_write_is_atomic_under_fault(self, tmp_path):
        result = self._result(tmp_path)
        store = ResultsStore(str(tmp_path / "out"))
        target = "%s.json" % result.job.job_id
        with injected(["malformed@results:%s" % target]):
            with pytest.raises(MalformedInput):
                store.write_image(result)
        images = os.listdir(str(tmp_path / "out" / "images"))
        assert images == []
        path = store.write_image(result)
        with open(path) as handle:
            assert json.load(handle)["status"] == "ok"


class TestCLI:
    def test_delta_cli(self, tmp_path, capsys, version_pair):
        from repro.cli import main

        old_built, new_built, _ = version_pair
        old_path, new_path = str(tmp_path / "old"), str(tmp_path / "new")
        with open(old_path, "wb") as handle:
            handle.write(old_built.elf_bytes)
        with open(new_path, "wb") as handle:
            handle.write(new_built.elf_bytes)
        code = main([
            "delta", old_path, new_path, "--modules", "cgi_",
            "--cache-dir", str(tmp_path / "cache"),
            "--out", str(tmp_path / "out"),
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "1 fixed" in out
        assert "0 new" in out
        with open(str(tmp_path / "out" / "delta.json")) as handle:
            doc = json.load(handle)
        assert doc["counts"]["fixed"] == 1

    def test_cache_gc_cli(self, tmp_path, capsys):
        from repro.cli import main

        root = str(tmp_path)
        os.makedirs(os.path.join(root, "reports"), exist_ok=True)
        with open(os.path.join(root, "reports", "x.json.corrupt"),
                  "w") as handle:
            handle.write("junk")
        code = main(["cache", "gc", "--cache-dir", root, "--dry-run"])
        assert code == 0
        assert "would remove 1 corrupt" in capsys.readouterr().out
        assert os.path.exists(os.path.join(root, "reports",
                                           "x.json.corrupt"))
        code = main(["cache", "gc", "--cache-dir", root])
        assert code == 0
        assert "removed 1 corrupt" in capsys.readouterr().out
        assert not os.path.exists(os.path.join(root, "reports",
                                               "x.json.corrupt"))
