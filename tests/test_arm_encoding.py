"""ARM32 encode/decode and assembler roundtrip tests."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.arch import get_arch
from repro.arch.arm import encoding as enc
from repro.errors import AssemblyError, DisassemblyError

regs = st.integers(min_value=0, max_value=14)  # avoid pc for generic ops
small_shift = st.integers(min_value=0, max_value=31)


def roundtrip(insn):
    word = enc.encode(insn)
    return enc.decode(word, insn.addr)


def test_encode_imm12_basic_values():
    assert enc.encode_imm12(0) == 0
    assert enc.encode_imm12(0xFF) == 0xFF
    assert enc.encode_imm12(0x100) is not None
    assert enc.encode_imm12(0x102) is None
    assert enc.encode_imm12(0xFF000000) is not None


@given(st.integers(min_value=0, max_value=0xFFFFFFFF))
def test_imm12_roundtrip(value):
    field = enc.encode_imm12(value)
    if field is not None:
        assert enc.decode_imm12(field) == value


@given(
    st.sampled_from(sorted(enc.DP_OPCODES)),
    regs, regs, regs, st.sampled_from([0, 1, 2, 3]), small_shift,
    st.booleans(),
)
def test_dp_register_roundtrip(mnem, rd, rn, rm, stype, samount, flags):
    insn = enc.ArmInsn(
        kind="dp", mnemonic=mnem,
        rd=None if mnem in enc.DP_COMPARE else rd,
        rn=None if mnem in enc.DP_UNARY else rn,
        rm=rm, uses_imm=False, shift_type=stype, shift_amount=samount,
        set_flags=flags,
    )
    back = roundtrip(insn)
    assert back.mnemonic == mnem
    assert back.rm == rm
    assert back.shift_type == stype
    assert back.shift_amount == samount
    if mnem not in enc.DP_COMPARE:
        assert back.rd == rd
    if mnem not in enc.DP_UNARY:
        assert back.rn == rn


@given(st.sampled_from(sorted(enc.DP_OPCODES)), regs, regs,
       st.integers(min_value=0, max_value=255))
def test_dp_immediate_roundtrip(mnem, rd, rn, imm):
    insn = enc.ArmInsn(
        kind="dp", mnemonic=mnem,
        rd=None if mnem in enc.DP_COMPARE else rd,
        rn=None if mnem in enc.DP_UNARY else rn,
        imm=imm, uses_imm=True,
    )
    back = roundtrip(insn)
    assert back.mnemonic == mnem
    assert back.imm == imm
    assert back.uses_imm


@given(regs, regs, st.integers(min_value=0, max_value=0xFFF),
       st.booleans(), st.booleans(), st.booleans())
def test_mem_imm_roundtrip(rd, rn, imm, load, byte, u_bit):
    insn = enc.ArmInsn(
        kind="mem", mnemonic=("ldr" if load else "str") + ("b" if byte else ""),
        load=load, byte=byte, rd=rd, rn=rn, imm=imm, uses_imm=True, u_bit=u_bit,
    )
    back = roundtrip(insn)
    assert (back.rd, back.rn, back.imm, back.load, back.byte, back.u_bit) == (
        rd, rn, imm, load, byte, u_bit
    )


@given(regs, regs, st.integers(min_value=0, max_value=0xFF),
       st.sampled_from(["ldrh", "strh", "ldrsb", "ldrsh"]))
def test_memh_roundtrip(rd, rn, imm, mnem):
    insn = enc.ArmInsn(
        kind="memh", mnemonic=mnem, load=mnem != "strh",
        signed="s" in mnem[3:], halfword=mnem.endswith("h"),
        rd=rd, rn=rn, imm=imm, uses_imm=True,
    )
    back = roundtrip(insn)
    assert back.mnemonic == mnem
    assert (back.rd, back.rn, back.imm) == (rd, rn, imm)


@given(st.integers(min_value=-(1 << 23), max_value=(1 << 23) - 1),
       st.booleans())
def test_branch_roundtrip(offset, link):
    insn = enc.ArmInsn(
        kind="branch", mnemonic="bl" if link else "b", imm=offset, addr=0x10000
    )
    back = roundtrip(insn)
    assert back.imm == offset
    assert back.mnemonic == insn.mnemonic


@given(st.lists(regs, min_size=1, max_size=8, unique=True), st.booleans())
def test_block_roundtrip(reglist, load):
    insn = enc.ArmInsn(
        kind="block", mnemonic="ldm" if load else "stm", load=load,
        rn=13, reglist=tuple(sorted(reglist)),
        p_bit=not load, u_bit=load, w_bit=True,
    )
    back = roundtrip(insn)
    assert back.reglist == tuple(sorted(reglist))
    assert back.load == load


@given(st.integers(min_value=0, max_value=0xFFFF), regs,
       st.sampled_from(["movw", "movt"]))
def test_movw_movt_roundtrip(imm, rd, mnem):
    insn = enc.ArmInsn(kind=mnem, mnemonic=mnem, rd=rd, imm=imm)
    back = roundtrip(insn)
    assert back.mnemonic == mnem
    assert (back.rd, back.imm) == (rd, imm)


def test_decode_rejects_nv_condition():
    with pytest.raises(DisassemblyError):
        enc.decode(0xF0000000)


def test_branch_target_computation():
    insn = enc.ArmInsn(kind="branch", mnemonic="b", imm=-2, addr=0x1000)
    assert insn.branch_target() == 0x1000  # addr + 8 - 8


def test_is_return_variants():
    bx_lr = enc.ArmInsn(kind="bx", mnemonic="bx", rm=14)
    assert bx_lr.is_return()
    pop_pc = enc.ArmInsn(
        kind="block", mnemonic="ldm", load=True, rn=13, reglist=(4, 15),
        w_bit=True, u_bit=True,
    )
    assert pop_pc.is_return()
    mov_pc_lr = enc.ArmInsn(
        kind="dp", mnemonic="mov", rd=15, rm=14, uses_imm=False
    )
    assert mov_pc_lr.is_return()


class TestAssemblerRoundtrip:
    """assemble -> disassemble -> text -> assemble is a fixpoint."""

    SNIPPETS = [
        "add r0, r1, r2",
        "subs r3, r4, #0x10",
        "mov r0, r1, lsl #3",
        "cmp r2, #0x40",
        "ldr r5, [r6, #0x4c]",
        "strb r1, [r2, r3, lsl #2]",
        "ldrh r1, [r2, #0x10]",
        "push {r4, r5, lr}",
        "pop {r4, r5, pc}",
        "mul r1, r2, r3",
        "bx lr",
        "movw r1, #0xabcd",
        "movt r1, #0x1234",
        "mvn r0, r1",
        "orr r2, r3, #0xff",
    ]

    @pytest.mark.parametrize("snippet", SNIPPETS)
    def test_fixpoint(self, snippet):
        arch = get_arch("arm")
        asm = arch.assembler()
        dis = arch.disassembler()

        prog1 = asm.assemble(".text\n%s\n" % snippet)
        base, data1 = prog1.sections[".text"]
        insn = dis.disasm_one(data1, 0, base)
        rendered = insn.text()
        prog2 = asm.assemble(".text\n%s\n" % rendered)
        assert prog2.sections[".text"][1] == data1, rendered


def test_assembler_conditional_mnemonics():
    arch = get_arch("arm")
    asm = arch.assembler()
    dis = arch.disassembler()
    # 'bls' must parse as b+ls (no S suffix on branches), 'blt' as b+lt,
    # 'bleq' as bl+eq.
    src = ".text\nstart:\n bls start\n blt start\n bleq start\n bl start\n"
    base, data = asm.assemble(src).sections[".text"]
    insns = list(dis.disasm_range(data, base))
    assert [i.mnemonic for i in insns] == ["b", "b", "bl", "bl"]
    assert [enc.CONDITIONS[i.cond] for i in insns] == ["ls", "lt", "eq", "al"]


def test_assembler_rejects_unencodable_immediate():
    asm = get_arch("arm").assembler()
    with pytest.raises(AssemblyError):
        asm.assemble(".text\nmov r0, #0x101\n")


def test_literal_pool_loads():
    arch = get_arch("arm")
    asm = arch.assembler()
    src = ".text\nf:\n ldr r0, =0x12345678\n ldr r1, =f\n bx lr\n.ltorg\n"
    prog = asm.assemble(src)
    base, data = prog.sections[".text"]
    # Pool starts after the 3 instructions.
    pool0 = int.from_bytes(data[12:16], "little")
    pool1 = int.from_bytes(data[16:20], "little")
    assert pool0 == 0x12345678
    assert pool1 == prog.symbols["f"]


def test_negative_immediate_canonicalisation():
    arch = get_arch("arm")
    asm = arch.assembler()
    dis = arch.disassembler()
    base, data = asm.assemble(".text\nadd r0, r0, #-4\ncmp r1, #-1\n").sections[
        ".text"
    ]
    insns = list(dis.disasm_range(data, base))
    assert insns[0].mnemonic == "sub" and insns[0].imm == 4
    assert insns[1].mnemonic == "cmn" and insns[1].imm == 1
