"""Service chaos smoke: kill -9 sweep, memory governor, dead-letter.

Three acceptance properties of the robustness layer, each enforced
(exit 1 on violation) and all evidence written to the triage artifact
the CI ``service-chaos`` job uploads:

* ``kill_sweep`` — SIGKILL the daemon at every ``service.*`` probe
  point (after claim, after compute, inside the publish transaction);
  after recovery every job is ``done``, no job published twice, and
  every ``findings_sha256`` is byte-identical to an uninterrupted
  baseline run;
* ``memory_governor`` — a 1 GiB allocation inside a worker governed
  by a 256 MiB ``RLIMIT_AS`` surfaces as a typed
  ``ResourceExhausted`` and the *same* worker process keeps serving
  (the pool stays warm — exhaustion degrades, it does not kill);
* ``dead_letter`` — repeated process-killing failures against one
  image fingerprint trip the persistent circuit breaker: the job
  dead-letters, resubmission reports ``quarantined``, and the
  dead-letter queue carries the breaker evidence an operator triages.

Usage:
    python benchmarks/bench_service_chaos.py [--quick] [--out out.json]
"""

import argparse
import json
import os
import platform
import shutil
import sys
import tempfile

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

REPO_ROOT = os.path.join(os.path.dirname(os.path.abspath(__file__)), "..")
DEFAULT_OUT = os.path.join(REPO_ROOT, "BENCH_service_chaos.json")


class PropertyViolation(AssertionError):
    """A chaos acceptance property failed."""


def _require(condition, message):
    if not condition:
        raise PropertyViolation(message)


def run_kill_sweep(work_dir, quick):
    from repro.service.chaos import chaos_sweep

    profiles = ("dir645",) if quick else ("dir645", "dgn1000")
    document = chaos_sweep(
        work_dir, profiles=profiles, workers=1 if quick else 2
    )
    for point in document["points"]:
        _require(
            point["killed"],
            "%s: daemon was not killed (%s)"
            % (point["point"], point["exit_detail"]),
        )
        _require(
            not point["lost"],
            "%s lost jobs: %s" % (point["point"], point["lost"]),
        )
        _require(
            not point["duplicated"],
            "%s published twice: %s"
            % (point["point"], point["duplicated"]),
        )
        _require(
            not point["mismatched"],
            "%s fingerprints diverged: %s"
            % (point["point"], point["mismatched"]),
        )
    return document


def run_memory_governor():
    from repro.pipeline import WorkerPool

    with WorkerPool(rlimits={"as_mb": 256}) as pool:
        worker = pool.acquire()
        governed_pid = worker.pid
        bomb = worker.control("alloc", 1 << 30, timeout=60)
        _require(
            bomb["ok"] is False
            and bomb["error_type"] == "ResourceExhausted",
            "memory bomb was not degraded typed: %s" % bomb,
        )
        pong = worker.control("ping")
        _require(
            pong["pid"] == governed_pid,
            "worker did not survive the memory bomb",
        )
        small = worker.control("alloc", 1 << 20, timeout=60)
        _require(small["ok"] is True,
                 "governed worker cannot serve after the bomb")
        pool.release(worker)
        _require(pool.warm_count == 1, "pool went cold after the bomb")
    return {
        "rlimit_as_mb": 256,
        "bomb_bytes": 1 << 30,
        "degraded_typed": True,
        "worker_survived": True,
    }


def run_dead_letter(work_dir):
    from repro.service import JobQueue, ResultsDB, job_spec

    db = ResultsDB(os.path.join(work_dir, "deadletter.sqlite"))
    try:
        queue = JobQueue(db, crash_threshold=2)
        spec = job_spec("profile", key="dir645", scale=0.05)
        job_id, _ = queue.submit(spec)
        for error_type in ("WorkerCrash", "WorkerStalled"):
            queue.submit(spec)
            queue.claim_batch()
            queue.fail(job_id, error="injected poison",
                       error_type=error_type)
        _require(
            queue.get(job_id)["state"] == "dead",
            "poison job did not dead-letter: %s" % queue.get(job_id),
        )
        _require(
            queue.submit(spec)[1] == "quarantined",
            "quarantined image was resubmittable",
        )
        letters = queue.dead_letter()
        _require(
            letters and letters[0]["quarantined"],
            "dead-letter queue missing breaker evidence: %s" % letters,
        )
        _require(
            queue.retry_dead(job_id) == "requeued",
            "operator revival failed",
        )
        return {
            "dead_letter": letters,
            "quarantined_images": queue.quarantined_images(),
            "revived": True,
        }
    finally:
        db.close()


def _render(results):
    lines = ["service chaos smoke"]
    sweep = results.get("kill_sweep")
    if sweep:
        for point in sweep["points"]:
            lines.append(
                "  %-18s killed=%s done=%d/%d ok=%s"
                % (point["point"], point["killed"], point["done"],
                   point["submitted"], point["ok"])
            )
        lines.append("  sweep wall: %.1fs" % sweep["wall_seconds"])
    if "memory_governor" in results:
        lines.append("  memory governor: 1 GiB bomb under 256 MiB "
                     "rlimit degraded typed, worker stayed warm")
    if "dead_letter" in results:
        entry = results["dead_letter"]["dead_letter"][0]
        lines.append(
            "  dead letter: job %d quarantined after %d crashes, "
            "operator revival ok"
            % (entry["job_id"], entry["crash_count"])
        )
    return "\n".join(lines)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="one profile, one worker (CI smoke size)")
    parser.add_argument("--out", default=DEFAULT_OUT,
                        help="result JSON path (default %(default)s)")
    args = parser.parse_args(argv)

    work_dir = tempfile.mkdtemp(prefix="bench-service-chaos-")
    results = {
        "python": platform.python_version(),
        "machine": platform.machine(),
    }
    code = 0
    try:
        results["kill_sweep"] = run_kill_sweep(work_dir, args.quick)
        results["memory_governor"] = run_memory_governor()
        results["dead_letter"] = run_dead_letter(work_dir)
    except PropertyViolation as exc:
        print("PROPERTY VIOLATED: %s" % exc, file=sys.stderr)
        results["violation"] = str(exc)
        code = 1
    finally:
        # The triage document is the artifact CI uploads; keep it next
        # to the result JSON regardless of pass/fail.
        triage = os.path.join(work_dir, "chaos-triage.json")
        if os.path.exists(triage):
            shutil.copy(triage, os.path.join(
                os.path.dirname(os.path.abspath(args.out)) or ".",
                "chaos-triage.json",
            ))
        shutil.rmtree(work_dir, ignore_errors=True)
    if code == 0:
        print(_render(results))
    with open(args.out, "w") as handle:
        json.dump(results, handle, indent=2, sort_keys=True)
    print("wrote %s" % args.out)
    return code


if __name__ == "__main__":
    sys.exit(main())
