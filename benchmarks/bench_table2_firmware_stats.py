"""Table II: per-image size / functions / blocks / call-graph edges.

Paper targets (at REPRO_SCALE=1.0 the function counts match 1:1; at
smaller scales the *proportions* between images must hold).
"""

from repro.corpus.profiles import PROFILES, PROFILE_ORDER
from repro.eval.tables import format_table, table2_firmware_stats


def test_table2_firmware_stats(benchmark, context):
    rows = benchmark.pedantic(
        table2_firmware_stats, args=(context,), rounds=1, iterations=1
    )
    headers = ["#", "vendor", "version", "arch", "binary", "KB",
               "functions", "blocks", "edges",
               "(paper fn)", "(paper blk)", "(paper edges)"]
    table = [
        [r["index"], r["manufacturer"], r["firmware_version"],
         r["architecture"], r["binary"], r["size_kb"], r["functions"],
         r["blocks"], r["call_graph_edges"], r["paper_functions"],
         r["paper_blocks"], r["paper_call_graph_edges"]]
        for r in rows
    ]
    print("\n" + format_table(
        headers, table,
        title="Table II (scale=%.2f)" % context.scale,
    ))

    # Shape: complexity ordering across images must match the paper.
    functions = [r["functions"] for r in rows]
    assert functions == sorted(functions), (
        "function counts must grow from D-Link to Hikvision"
    )
    for row in rows:
        assert row["blocks"] > row["functions"]
        assert row["call_graph_edges"] > 0
    # At full scale the function counts match Table II exactly.
    if abs(context.scale - 1.0) < 1e-9:
        for row, key in zip(rows, PROFILE_ORDER):
            assert row["functions"] == PROFILES[key].functions
