"""Service benchmark: warm-pool submit->done latency vs one-shot runs.

Two acceptance properties of the ``repro.service`` subsystem:

* ``latency`` — steady-state daemon submissions reuse warm workers, so
  the per-job submit->done latency must not pay the per-process
  start-up cost a one-shot ``fleet-scan`` (fresh scheduler, fresh
  fork) pays on every invocation; the warm pool must fork exactly once
  for the whole series;
* ``fidelity`` — every job's canonical-findings fingerprint is
  byte-identical across the daemon, the one-shot scheduler, and a
  plain in-process run.

``--smoke`` additionally runs the CI end-to-end check: start a real
``dtaint serve`` subprocess, submit an image over HTTP, assert the
findings fingerprint matches an in-process run byte-for-byte, and shut
the daemon down cleanly.  Any violated property exits nonzero — the CI
``service-smoke`` job runs ``--smoke --quick`` exactly this way.

Usage:
    python benchmarks/bench_service.py [--quick] [--smoke] [--out out.json]
"""

import argparse
import json
import os
import platform
import re
import shutil
import statistics
import subprocess
import sys
import tempfile
import time

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro.pipeline import (  # noqa: E402
    FleetJob,
    FleetScheduler,
    execute_job,
    findings_fingerprint,
)

REPO_ROOT = os.path.join(os.path.dirname(os.path.abspath(__file__)), "..")
DEFAULT_OUT = os.path.join(REPO_ROOT, "BENCH_service.json")

# One taint-style handler per job; the env-var name makes each binary
# byte-distinct so daemon submissions don't dedup against each other.
_HANDLER_ASM = (
    ".globl main\nmain:\n    push {lr}\n    ldr r0, =n\n"
    "    bl getenv\n    bl system\n    pop {pc}\n.ltorg\n"
    ".rodata\nn: .asciz \"%s\"\n"
)


class PropertyViolation(AssertionError):
    """A service acceptance property failed."""


def _require(condition, message):
    if not condition:
        raise PropertyViolation(message)


def _build_targets(work_dir, count):
    from repro.loader.link import build_executable

    paths = []
    for index in range(count):
        elf_bytes, _ = build_executable(
            "arm", _HANDLER_ASM % ("CMD%d" % index),
            imports=["getenv", "system"],
        )
        path = os.path.join(work_dir, "handler%d.elf" % index)
        with open(path, "wb") as handle:
            handle.write(elf_bytes)
        paths.append(path)
    return paths


# ---------------------------------------------------------------------------
# Latency: warm daemon vs one-shot scheduler.


def run_latency(work_dir, jobs):
    from repro.service import AnalysisDaemon, job_spec

    targets = _build_targets(work_dir, jobs)
    reference = {
        path: findings_fingerprint(
            execute_job(FleetJob(job_id="ref", kind="elf", path=path))
            ["report"]
        )
        for path in targets
    }

    # One-shot: a fresh scheduler (fresh worker fork) per job — the
    # cost a CLI invocation pays every time.
    oneshot = []
    for path in targets:
        start = time.perf_counter()
        scheduler = FleetScheduler(jobs=1)
        with scheduler:
            result = scheduler.run(
                [FleetJob(job_id="one", kind="elf", path=path)]
            )[0]
        oneshot.append(time.perf_counter() - start)
        _require(result.ok, "one-shot job failed: %s" % result.error)
        _require(
            findings_fingerprint(result.report) == reference[path],
            "one-shot fingerprint diverged for %s" % path,
        )

    # Warm daemon: one persistent pool serves the whole series.
    warm = []
    with AnalysisDaemon(
        os.path.join(work_dir, "dtaint.sqlite"), workers=1
    ) as daemon:
        for path in targets:
            start = time.perf_counter()
            job = daemon.submit(job_spec("elf", path=path))
            _require(daemon.run_once() == 1, "daemon claimed nothing")
            warm.append(time.perf_counter() - start)
            finished = daemon.job_status(job["job_id"])
            _require(
                finished["state"] == "done",
                "daemon job %s: %s" % (finished["state"],
                                       finished["error"]),
            )
            findings = daemon.job_findings(job["job_id"])
            _require(
                findings["findings_sha256"] == reference[path],
                "daemon fingerprint diverged for %s" % path,
            )
        spawned = daemon.scheduler.pool.spawned_total
    _require(
        spawned == 1,
        "warm pool forked %d times for %d jobs" % (spawned, jobs),
    )
    return {
        "jobs": jobs,
        "oneshot_median_s": round(statistics.median(oneshot), 4),
        "oneshot_mean_s": round(statistics.fmean(oneshot), 4),
        "warm_median_s": round(statistics.median(warm), 4),
        "warm_mean_s": round(statistics.fmean(warm), 4),
        "speedup_median": round(
            statistics.median(oneshot) / max(statistics.median(warm), 1e-9),
            2,
        ),
        "workers_forked_warm": spawned,
        "fingerprints_matched": jobs,
    }


# ---------------------------------------------------------------------------
# Smoke: a real daemon subprocess, driven over HTTP.


def run_smoke(work_dir):
    from repro.alias import ENGINE_NAMES
    from repro.service import ServiceClient

    target = _build_targets(work_dir, 1)[0]
    # One in-process reference per alias engine: the daemon must
    # reproduce each byte-for-byte, and must treat the engines as
    # distinct jobs (engine choice is dedup identity).
    reference = {
        engine: findings_fingerprint(
            execute_job(FleetJob(job_id="ref-" + engine, kind="elf",
                                 path=target, alias_engine=engine))
            ["report"]
        )
        for engine in ENGINE_NAMES
    }
    db_path = os.path.join(work_dir, "serve.sqlite")
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve",
         "--host", "127.0.0.1", "--port", "0", "--db", db_path,
         "--workers", "1", "--no-cache", "--allow-shutdown"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        env={**os.environ, "PYTHONPATH": os.path.join(REPO_ROOT, "src")},
        cwd=REPO_ROOT,
    )
    try:
        # The daemon announces its bound (ephemeral) port on stdout.
        match = None
        deadline = time.monotonic() + 60
        while match is None and time.monotonic() < deadline:
            line = process.stdout.readline()
            if not line:
                break
            match = re.search(r"listening on http://([\d.]+):(\d+)", line)
        _require(match is not None, "daemon never announced its port")
        client = ServiceClient(
            "http://%s:%s" % (match.group(1), match.group(2))
        )
        _require(client.healthz()["ok"], "healthz failed")
        per_engine = {}
        job_ids = set()
        start = time.perf_counter()
        for engine, expected in sorted(reference.items()):
            job = client.submit(kind="elf", path=target,
                                alias_engine=engine)
            _require(job["outcome"] == "created",
                     "%s submission not created" % engine)
            job_ids.add(job["job_id"])
            finished = client.wait(job["job_id"], timeout=180)
            _require(
                finished["state"] == "done",
                "%s job finished %s: %s"
                % (engine, finished["state"], finished["error"]),
            )
            findings = client.findings(job["job_id"])
            _require(
                findings["findings_sha256"] == expected,
                "HTTP %s findings fingerprint %r != in-process %r"
                % (engine, findings["findings_sha256"], expected),
            )
            events = client.events(job["job_id"])
            _require(
                any(e["event"] == "job_finish" for e in events),
                "%s progress stream missing job_finish" % engine,
            )
            per_engine[engine] = findings["findings_sha256"]
        elapsed = time.perf_counter() - start
        _require(
            len(job_ids) == len(reference),
            "engines dedup'd into one job: %s" % sorted(job_ids),
        )
        client.shutdown()
        process.wait(30)
        _require(
            process.returncode == 0,
            "daemon exited %r after shutdown" % process.returncode,
        )
        return {
            "submit_to_done_s": round(elapsed, 4),
            "findings_sha256": per_engine,
            "fingerprint_match": True,
            "clean_shutdown": True,
        }
    finally:
        if process.poll() is None:
            process.terminate()
            try:
                process.wait(10)
            except subprocess.TimeoutExpired:
                process.kill()
        process.stdout.close()


# ---------------------------------------------------------------------------


def _render(results):
    lines = ["service benchmark"]
    latency = results.get("latency")
    if latency:
        lines.append(
            "  latency over %d jobs: one-shot %.3fs -> warm %.3fs "
            "(median, %.1fx); pool forked %d worker(s)"
            % (latency["jobs"], latency["oneshot_median_s"],
               latency["warm_median_s"], latency["speedup_median"],
               latency["workers_forked_warm"])
        )
    smoke = results.get("smoke")
    if smoke:
        rendered = "  ".join(
            "%s=%s..." % (engine, sha[:12])
            for engine, sha in sorted(smoke["findings_sha256"].items())
        )
        lines.append(
            "  smoke: HTTP submit->done %.3fs (both engines), %s, "
            "clean shutdown"
            % (smoke["submit_to_done_s"], rendered)
        )
    return "\n".join(lines)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="fewer jobs (CI smoke size)")
    parser.add_argument("--smoke", action="store_true",
                        help="also run the end-to-end daemon subprocess "
                             "check")
    parser.add_argument("--no-latency", action="store_true",
                        help="skip the latency comparison")
    parser.add_argument("--out", default=DEFAULT_OUT,
                        help="result JSON path (default %(default)s)")
    args = parser.parse_args(argv)

    work_dir = tempfile.mkdtemp(prefix="bench-service-")
    results = {
        "python": platform.python_version(),
        "machine": platform.machine(),
    }
    try:
        if not args.no_latency:
            results["latency"] = run_latency(
                work_dir, jobs=3 if args.quick else 8
            )
        if args.smoke:
            results["smoke"] = run_smoke(work_dir)
    except PropertyViolation as exc:
        print("PROPERTY VIOLATED: %s" % exc, file=sys.stderr)
        return 1
    finally:
        shutil.rmtree(work_dir, ignore_errors=True)
    print(_render(results))
    with open(args.out, "w") as handle:
        json.dump(results, handle, indent=2, sort_keys=True)
    print("wrote %s" % args.out)
    return 0


if __name__ == "__main__":
    sys.exit(main())
