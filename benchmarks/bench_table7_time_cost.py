"""Table VII: SSA and DDG time — DTaint vs the top-down baseline.

Paper (seconds):
    program    angr SSA  angr DDG    DTaint SSA  DTaint DDG
    cgibin     134.49    16463.32    62.34       10.48
    setup.cgi   39.17      539.68    33.85        1.205
    httpd      106.92    22195.45    60.92        8.87
    openssl    102.94     7345.56    47.33        3.09

The *shape* to reproduce: the baseline's DDG construction is slower
than DTaint's by a large factor, because it re-analyses callees per
calling context; the gap grows with binary complexity.
"""

from repro.eval.tables import format_table, table7_time_cost


def test_table7_time_cost(benchmark, context):
    rows = benchmark.pedantic(
        table7_time_cost, args=(context,), rounds=1, iterations=1
    )
    headers = ["program", "DTaint SSA", "DTaint DDG", "baseline SSA",
               "baseline DDG", "contexts", "re-analyses",
               "(paper angr DDG)", "(paper DTaint DDG)"]
    table = [
        [r["program"], r["dtaint_ssa_s"], r["dtaint_ddg_s"],
         r["baseline_ssa_s"], r["baseline_ddg_s"], r["baseline_contexts"],
         r["baseline_reanalyses"], r["paper_angr_ddg_s"],
         r["paper_dtaint_ddg_s"]]
        for r in rows
    ]
    print("\n" + format_table(
        headers, table, title="Table VII (scale=%.2f)" % context.scale
    ))

    for row in rows:
        total_baseline = row["baseline_ssa_s"] + row["baseline_ddg_s"]
        total_dtaint = row["dtaint_ssa_s"] + row["dtaint_ddg_s"]
        # The baseline must pay for per-context re-analysis.
        assert row["baseline_reanalyses"] > 0, row["program"]
        if row["program"] != "openssl":
            # The mini-OpenSSL has five functions — too small for the
            # gap to show; on the firmware binaries it must.
            assert total_baseline > total_dtaint, (
                "%s: baseline %.2fs vs DTaint %.2fs"
                % (row["program"], total_baseline, total_dtaint)
            )
