"""Figures 2-3: Heartbleed at the binary level.

Paper §II-B: the inlined ``n2s`` macro and memory-borne data flow make
Heartbleed undetectable to prior binary taint analyses; DTaint's
pointer aliasing + interprocedural definition updating finds it.
"""

from repro.core import DTaint
from repro.corpus.openssl import build_openssl
from repro.eval.figures import figure3_heartbleed_disassembly


def _detect():
    built = build_openssl()
    report = DTaint(built.binary, name="openssl").run()
    return built, report


def test_figure23_heartbleed_detection(benchmark):
    built, report = benchmark.pedantic(_detect, rounds=1, iterations=1)

    listing = figure3_heartbleed_disassembly()
    print("\nFigure 3 (regenerated disassembly, excerpts):")
    for name, lines in listing.items():
        print("  <%s>" % name)
        for line in lines[:6]:
            print("    " + line)

    memcpy_findings = [f for f in report.findings if f.sink_name == "memcpy"]
    print("\nfindings:")
    for finding in report.findings:
        print("  " + finding.describe())

    assert len(memcpy_findings) == 1, "exactly the Heartbleed memcpy"
    heartbeat = built.binary.functions["tls1_process_heartbeat"]
    assert heartbeat.addr <= memcpy_findings[0].sink_addr < (
        heartbeat.addr + heartbeat.size
    )
    fixed = built.binary.functions["tls1_process_heartbeat_fixed"]
    for finding in report.findings:
        assert not (fixed.addr <= finding.sink_addr < fixed.addr + fixed.size)
