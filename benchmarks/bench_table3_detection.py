"""Table III: the headline detection run over all six firmware images.

Paper: 21 vulnerabilities total across the six images, with the
vulnerable-path count exceeding the confirmed-vulnerability count per
image; at scale 1.0 the path/vulnerability columns reproduce exactly.
"""

from repro.corpus.profiles import PROFILES, PROFILE_ORDER
from repro.eval.tables import format_table, table3_detection


def test_table3_detection(benchmark, context):
    rows = benchmark.pedantic(
        table3_detection, args=(context,), rounds=1, iterations=1
    )
    headers = ["firmware", "functions", "sinks", "minutes", "paths",
               "vulns", "(paper paths)", "(paper vulns)"]
    table = [
        [r["firmware"], r["analysis_functions"], r["sinks_count"],
         r["execution_time_minutes"], r["vulnerable_paths"],
         r["vulnerabilities"], r["paper_vulnerable_paths"],
         r["paper_vulnerabilities"]]
        for r in rows
    ]
    print("\n" + format_table(
        headers, table, title="Table III (scale=%.2f)" % context.scale
    ))

    total_vulns = sum(r["vulnerabilities"] for r in rows)
    total_paper = sum(r["paper_vulnerabilities"] for r in rows)
    print("total vulnerabilities: %d (paper: %d)" % (total_vulns, total_paper))

    for row in rows:
        # Paths >= vulnerabilities (the paper's FP gap), per image.
        assert row["vulnerable_paths"] >= row["vulnerabilities"]
        # The planted path/vuln counts are scale-independent.
        assert row["vulnerable_paths"] == row["paper_vulnerable_paths"]
        assert row["vulnerabilities"] == row["paper_vulnerabilities"]
    assert total_vulns == 21
