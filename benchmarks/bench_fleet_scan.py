"""Fleet scan: cold vs warm vs parallel runs over the six profiles.

Beyond the paper: the orchestration layer (`repro.pipeline`) that
makes the 6,529-image corpus workload tractable.  The bench runs the
six Table II images through the fleet scheduler four ways:

    cold       serial, empty cache       — the baseline cost
    warm       serial, summary cache     — >90% summary hits, less wall
    hot        serial, report cache      — analysis skipped entirely
    parallel   4 workers, no cache       — byte-identical findings

plus a chaos row: a job injected to crash every attempt must be
retried, quarantined, and must not disturb the rest of the fleet.
"""

import pytest

from repro.corpus.profiles import PROFILE_ORDER
from repro.eval.runner import get_scale
from repro.eval.tables import format_table
from repro.pipeline import (
    FleetJob,
    FleetScheduler,
    Telemetry,
    findings_fingerprint,
    read_events,
)


def _jobs(scale, **kwargs):
    return [
        FleetJob(job_id=key, kind="profile", key=key, scale=scale, **kwargs)
        for key in PROFILE_ORDER
    ]


def _run(scale, workers, cache_dir=None, use_report_cache=True,
         telemetry=None):
    scheduler = FleetScheduler(
        jobs=workers, cache_dir=cache_dir,
        use_report_cache=use_report_cache,
        telemetry=telemetry,
    )
    import time

    start = time.perf_counter()
    results = scheduler.run(_jobs(scale))
    return results, time.perf_counter() - start


def _cache_totals(results):
    hits = sum(r.cache.get("summary_hits", 0) for r in results)
    misses = sum(r.cache.get("summary_misses", 0) for r in results)
    return hits, misses


def test_fleet_cold_warm_parallel(benchmark, tmp_path):
    scale = get_scale()
    cache_dir = str(tmp_path / "cache")
    telemetry_path = str(tmp_path / "telemetry.jsonl")

    with Telemetry(telemetry_path) as telemetry:
        cold, cold_wall = benchmark.pedantic(
            _run, args=(scale, 1),
            kwargs={"cache_dir": cache_dir, "telemetry": telemetry},
            rounds=1, iterations=1,
        )
    warm, warm_wall = _run(scale, 1, cache_dir=cache_dir,
                           use_report_cache=False)
    hot, hot_wall = _run(scale, 1, cache_dir=cache_dir)
    parallel, parallel_wall = _run(scale, 4)

    rows = []
    for label, results, wall in (
        ("cold serial", cold, cold_wall),
        ("warm summaries", warm, warm_wall),
        ("warm reports", hot, hot_wall),
        ("parallel x4", parallel, parallel_wall),
    ):
        hits, misses = _cache_totals(results)
        lookups = hits + misses
        rows.append([
            label,
            "%.2f" % wall,
            "%.2fx" % (cold_wall / wall if wall else 0.0),
            "%d/%d" % (hits, lookups),
            sum(len(r.report.get("vulnerable_paths", []))
                for r in results),
            sum(len(r.report.get("vulnerabilities", []))
                for r in results),
        ])
    print("\n" + format_table(
        ["run", "wall_s", "speedup", "cache", "paths", "vulns"], rows,
        title="Fleet scan cold/warm/parallel (scale=%.2f, 6 images)"
              % scale,
    ))

    assert all(r.ok for r in cold + warm + hot + parallel)

    # (a) Parallelism must not change a single finding byte.
    for serial_result, parallel_result in zip(cold, parallel):
        assert findings_fingerprint(serial_result.report) == \
            findings_fingerprint(parallel_result.report), \
            serial_result.job.job_id

    # (b) Warm summary cache: >90% hits and measurably lower wall time.
    hits, misses = _cache_totals(warm)
    assert hits / (hits + misses) > 0.9, (hits, misses)
    assert warm_wall < cold_wall, (warm_wall, cold_wall)
    # Warm report cache skips the analysis outright.
    assert all(r.cache.get("report_cache_hit") for r in hot)
    assert hot_wall < warm_wall, (hot_wall, warm_wall)

    # The cold run's lifecycle is visible in the telemetry stream.
    kinds = [e["event"] for e in read_events(telemetry_path)]
    assert kinds.count("job_finish") == len(PROFILE_ORDER)
    assert "cache_report" in kinds and "run_finish" in kinds


def test_fleet_crash_isolation(benchmark):
    """(c) A crashing job is retried, quarantined, and isolated."""
    scale = get_scale()
    jobs = _jobs(scale)[:2]
    jobs[1].fault = "crash"
    jobs[1].fault_attempts = 10 ** 6
    scheduler = FleetScheduler(jobs=2, retries=1)
    results = benchmark.pedantic(
        scheduler.run, args=(jobs,), rounds=1, iterations=1
    )
    healthy, doomed = results
    assert healthy.ok and healthy.report is not None
    assert doomed.status == "quarantined"
    assert doomed.attempts == 2
    assert doomed.error_type == "WorkerCrash"
    print("\ncrash isolation: %s ok in %.2fs; %s quarantined after "
          "%d attempts (%s)"
          % (healthy.job.job_id, healthy.elapsed, doomed.job.job_id,
             doomed.attempts, doomed.error_type))
