"""Figures 5-7: the foo/woo running example.

Regenerates the paper's assembly listing (Fig. 5), the symbolic
definition pairs (Fig. 6) and the recv→memcpy data flow (Fig. 7).
"""

from repro.eval.figures import figure567_foo_woo


def test_figure567_foo_woo(benchmark):
    data = benchmark.pedantic(figure567_foo_woo, rounds=1, iterations=1)

    print("\nFigure 5 (assembly):")
    for name in ("foo", "woo"):
        print("  <%s>" % name)
        for line in data["assembly"][name]:
            print("    " + line)
    print("Figure 6 (definition pairs):")
    for name in ("foo", "woo"):
        print("  <%s>" % name)
        for line in data["definitions"][name]:
            print("    " + line)
    print("Figure 7 (data flow):")
    for flow in data["data_flow"]:
        print("    %s" % flow)

    # The paper's definition pair and flow must both be present.
    assert any(
        "deref(arg0 + 0x4c) = deref(arg1 + 0x24)" in line
        for line in data["definitions"]["woo"]
    )
    assert any("memcpy" in str(flow) for flow in data["data_flow"])
    report = data["report"]
    assert len(report.vulnerabilities) == 1
