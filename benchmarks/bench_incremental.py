"""Incremental-analysis benchmark: cold scan, warm rescan, one-line patch.

Measures and *asserts* the three acceptance properties of the
``repro.increment`` subsystem:

* ``cold``  — first scan of an image populates the fleet index;
* ``warm``  — re-scanning the byte-identical image through the fleet
  layer alone (per-binary bundles cleared) runs **zero** symbolic
  executions and reproduces the findings fingerprint exactly;
* ``patched`` — rebuilding the image with one handler patched
  re-analyses only that handler's Merkle closure (reuse ratio >= 0.8)
  and the delta report classifies the patch as ``fixed`` with no
  spurious ``new`` findings.

Results are written to ``BENCH_incremental.json`` at the repo root so
later PRs have a reuse trajectory to regress against.  Any violated
property exits nonzero — the CI ``incremental-smoke`` job runs
``--quick`` exactly this way.

Usage:
    python benchmarks/bench_incremental.py [--quick] [--out out.json]
"""

import argparse
import json
import os
import platform
import shutil
import sys
import tempfile
import time

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro import profiling  # noqa: E402
from repro.core import DTaint, DTaintConfig  # noqa: E402
from repro.corpus.fleet import build_version_pair  # noqa: E402
from repro.corpus.profiles import analyzed_module_prefixes  # noqa: E402
from repro.increment import (  # noqa: E402
    classify_functions,
    clear_binary_bundles,
    compute_delta,
)
from repro.increment.reuse import open_incremental_cache  # noqa: E402
from repro.pipeline import (  # noqa: E402
    binary_sha256,
    canonical_report,
    findings_fingerprint,
)

REPO_ROOT = os.path.join(os.path.dirname(os.path.abspath(__file__)), "..")
DEFAULT_OUT = os.path.join(REPO_ROOT, "BENCH_incremental.json")


class PropertyViolation(AssertionError):
    """An incremental-analysis acceptance property failed."""


def _require(condition, message):
    if not condition:
        raise PropertyViolation(message)


def _scan(built, cache_dir, config):
    """One incremental scan; returns (report, cache, seconds, counters)."""
    before = profiling.PROFILER.snapshot()
    start = time.perf_counter()
    sha = binary_sha256(built.elf_bytes)
    cache = open_incremental_cache(cache_dir, sha, config)
    report = DTaint(
        built.binary, config=config, name=built.name, summary_cache=cache
    ).run()
    cache.flush()
    elapsed = time.perf_counter() - start
    counters = profiling.delta(
        before, profiling.PROFILER.snapshot()
    )["counters"]
    return report, cache, elapsed, counters


def _image_doc(built, report, config):
    detector = DTaint(built.binary, config=config, name=built.name)
    detector.analyze_functions()
    from repro.increment import fingerprint_functions

    fps = fingerprint_functions(
        built.binary, detector.functions, detector.call_graph
    )
    return {
        "name": built.name,
        "sha256": binary_sha256(built.elf_bytes),
        "findings": canonical_report(report.to_dict()),
        "fingerprints": {
            name: {"local": fp.local, "closure": fp.closure}
            for name, fp in fps.items()
        },
    }


def run_suite(key, scale, cache_dir):
    old_built, new_built, flipped = build_version_pair(key, scale=scale)
    config = DTaintConfig(modules=analyzed_module_prefixes(key))

    # -- cold ---------------------------------------------------------------
    cold_report, cold_cache, cold_seconds, cold_counters = _scan(
        old_built, cache_dir, config
    )
    functions = cold_counters.get("fingerprinted_functions", 0)
    _require(cold_cache.stats["fleet_stored"] > 0,
             "cold scan stored no fleet summaries")

    # -- warm: fleet layer alone, zero symbolic executions ------------------
    cleared = clear_binary_bundles(cache_dir)
    _require(cleared > 0, "cold scan left no binary bundles to clear")
    warm_report, warm_cache, warm_seconds, warm_counters = _scan(
        old_built, cache_dir, config
    )
    warm_symexec = warm_counters.get("symexec_functions", 0)
    _require(warm_symexec == 0,
             "warm rescan ran %d symbolic executions, expected 0"
             % warm_symexec)
    _require(warm_cache.stats["reuse_ratio"] == 1.0,
             "warm rescan reuse ratio %.4f, expected 1.0"
             % warm_cache.stats["reuse_ratio"])
    _require(
        findings_fingerprint(warm_report.to_dict())
        == findings_fingerprint(cold_report.to_dict()),
        "warm rescan changed the findings fingerprint",
    )

    # -- patched: one handler flipped, one closure re-analysed --------------
    patched_report, patched_cache, patched_seconds, patched_counters = _scan(
        new_built, cache_dir, config
    )
    patched_symexec = patched_counters.get("symexec_functions", 0)
    changed = classify_functions(
        _image_doc(old_built, cold_report, config)["fingerprints"],
        _image_doc(new_built, patched_report, config)["fingerprints"],
    )
    closure_size = len(
        changed["body_changed"] + changed["callee_changed"]
        + changed["added"]
    )
    reuse = patched_cache.stats["reuse_ratio"]
    _require(flipped in changed["body_changed"],
             "patched handler %r not classified body_changed" % flipped)
    _require(patched_symexec == closure_size,
             "patched rescan ran %d symbolic executions, expected the "
             "changed closure of %d" % (patched_symexec, closure_size))
    _require(reuse >= 0.8,
             "patched rescan reuse ratio %.4f below the 0.8 floor" % reuse)

    delta = compute_delta(
        _image_doc(old_built, cold_report, config),
        _image_doc(new_built, patched_report, config),
    )
    _require(delta["counts"]["new"] == 0,
             "delta reported %d spurious new findings"
             % delta["counts"]["new"])
    _require(delta["counts"]["fixed"] == 1,
             "delta reported %d fixed findings, expected exactly the "
             "patched handler" % delta["counts"]["fixed"])
    _require(delta["findings"]["fixed"][0]["function"] == flipped,
             "delta attributed the fix to %r, expected %r"
             % (delta["findings"]["fixed"][0]["function"], flipped))

    return {
        "profile": key,
        "scale": scale,
        "functions": functions,
        "flipped_handler": flipped,
        "cold": {
            "seconds": round(cold_seconds, 4),
            "symexec_functions": cold_counters.get("symexec_functions", 0),
            "fleet_stored": cold_cache.stats["fleet_stored"],
        },
        "warm": {
            "seconds": round(warm_seconds, 4),
            "symexec_functions": warm_symexec,
            "reuse_ratio": warm_cache.stats["reuse_ratio"],
            "speedup_vs_cold": round(cold_seconds / warm_seconds, 2)
            if warm_seconds else None,
        },
        "patched": {
            "seconds": round(patched_seconds, 4),
            "symexec_functions": patched_symexec,
            "changed_closure_size": closure_size,
            "reuse_ratio": reuse,
            "delta_counts": {
                "new": delta["counts"]["new"],
                "fixed": delta["counts"]["fixed"],
                "persisting": delta["counts"]["persisting"],
            },
            "function_counts": delta["function_counts"],
        },
    }


def _render(results):
    lines = ["bench_incremental (%s mode, python %s)"
             % (results["mode"], results["python"])]
    for suite in results["suites"]:
        lines.append("  %s @ scale %s (%d functions, patched: %s)"
                     % (suite["profile"], suite["scale"],
                        suite["functions"], suite["flipped_handler"]))
        lines.append("    cold   : %8.3fs  (%d symexec, %d stored)"
                     % (suite["cold"]["seconds"],
                        suite["cold"]["symexec_functions"],
                        suite["cold"]["fleet_stored"]))
        lines.append("    warm   : %8.3fs  (%d symexec, reuse %.0f%%, "
                     "%.1fx vs cold)"
                     % (suite["warm"]["seconds"],
                        suite["warm"]["symexec_functions"],
                        100 * suite["warm"]["reuse_ratio"],
                        suite["warm"]["speedup_vs_cold"] or 0.0))
        counts = suite["patched"]["delta_counts"]
        lines.append("    patched: %8.3fs  (%d symexec, reuse %.0f%%; "
                     "delta: %d new, %d fixed, %d persisting)"
                     % (suite["patched"]["seconds"],
                        suite["patched"]["symexec_functions"],
                        100 * suite["patched"]["reuse_ratio"],
                        counts["new"], counts["fixed"],
                        counts["persisting"]))
    return "\n".join(lines)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="one profile at small scale (CI smoke)")
    parser.add_argument("--out", default=DEFAULT_OUT,
                        help="write the measurement document to this path")
    args = parser.parse_args(argv)

    if args.quick:
        plan = [("dir645", 0.05)]
    else:
        plan = [("dir645", 0.25), ("dir890l", 0.25)]

    suites = []
    status = 0
    for key, scale in plan:
        cache_dir = tempfile.mkdtemp(prefix="dtaint-bench-inc-")
        try:
            suites.append(run_suite(key, scale, cache_dir))
        except PropertyViolation as exc:
            print("PROPERTY VIOLATION [%s]: %s" % (key, exc),
                  file=sys.stderr)
            status = 1
        finally:
            shutil.rmtree(cache_dir, ignore_errors=True)

    results = {
        "schema": 1,
        "mode": "quick" if args.quick else "full",
        "python": platform.python_version(),
        "suites": suites,
    }
    print(_render(results))
    if args.out:
        with open(args.out, "w") as handle:
            json.dump(results, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print("wrote %s" % args.out)
    return status


if __name__ == "__main__":
    sys.exit(main())
