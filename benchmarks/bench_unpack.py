"""Recursive-extraction benchmark: matryoshka fleet through the driver.

Times the recursive UnpackParser driver over the seeded matryoshka
corpus (deeply nested: partition table → XOR vendor blob → TRX →
LZMA kernel + SimpleFS → cramfs → SimpleFS/logfs → ELFs) and gates
the two correctness properties the extraction subsystem promises:

* **manifest determinism** — unpacking the same image twice yields a
  byte-identical canonical manifest (the CI ``unpack-smoke`` job runs
  this whole bench twice and compares the *artifacts* byte-for-byte);
* **member/flat identity** — analysing an ELF through
  ``FleetJob(kind='firmware')`` produces the same binary sha and the
  same findings fingerprint as analysing the identical loose ELF,
  because a member's cache identity is the extracted bytes' sha256.

Usage:
    python benchmarks/bench_unpack.py [--quick] [--out out.json]
"""

import argparse
import hashlib
import json
import os
import platform
import sys
import tempfile
import time

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro.corpus.matryoshka import (  # noqa: E402
    generate_matryoshka_fleet,
    tiny_elf,
)
from repro.firmware.binwalk import extract_tree  # noqa: E402
from repro.firmware.image import pack_trx  # noqa: E402
from repro.firmware.simplefs import SimpleFS  # noqa: E402
from repro.pipeline.results import findings_fingerprint  # noqa: E402
from repro.pipeline.scheduler import FleetJob, execute_job  # noqa: E402


def _manifest_fingerprint(manifest):
    blob = json.dumps(
        manifest, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()


def bench_extraction(count, seed):
    """Unpack the fleet twice; returns per-image stats + determinism."""
    fleet = generate_matryoshka_fleet(count=count, seed=seed)
    images = []
    timings = {}
    deterministic = True
    for image in fleet:
        start = time.perf_counter()
        tree = extract_tree(image.blob, name=image.name)
        wall = time.perf_counter() - start
        first = _manifest_fingerprint(tree.manifest())
        second = _manifest_fingerprint(
            extract_tree(image.blob, name=image.name).manifest()
        )
        deterministic = deterministic and first == second
        elves = [display for _m, display, _d in tree.elves()]
        if sorted(elves) != sorted(image.expected_elves):
            raise SystemExit(
                "extraction of %s missed members: %s != %s"
                % (image.name, sorted(elves), sorted(image.expected_elves))
            )
        images.append({
            "name": image.name,
            "bytes": len(image.blob),
            "depth": tree.max_depth,
            "nodes": len(tree.nodes()),
            "elves": len(elves),
            "manifest_sha256": first,
        })
        timings[image.name] = round(wall, 4)
    return images, timings, deterministic


def bench_member_identity(workdir):
    """Firmware-member scan vs flat-ELF scan of the same binary."""
    elf_bytes = tiny_elf(0xBEEF)
    fs = SimpleFS()
    fs.add_file("/bin/httpd", elf_bytes)
    image_path = os.path.join(workdir, "flat.trx")
    with open(image_path, "wb") as handle:
        handle.write(pack_trx(b"KERNELKERNEL", fs.pack()))
    elf_path = os.path.join(workdir, "httpd.elf")
    with open(elf_path, "wb") as handle:
        handle.write(elf_bytes)

    fw = execute_job(FleetJob("fw", kind="firmware", path=image_path))
    flat = execute_job(FleetJob("flat", kind="elf", path=elf_path))

    def nameless_fingerprint(report):
        # The canonical document carries the display name ("image!member"
        # vs the loose ELF's path), which is *supposed* to differ; the
        # identity gate is about the analysis output.
        trimmed = dict(report)
        trimmed["binary"] = ""
        return findings_fingerprint(trimmed)

    fw_fp = nameless_fingerprint(fw["report"])
    flat_fp = nameless_fingerprint(flat["report"])
    return {
        "sha_identical": fw["sha256"] == flat["sha256"],
        "findings_identical": fw_fp == flat_fp,
        "findings_fingerprint": fw_fp,
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="2 images instead of 4")
    parser.add_argument("--seed", type=int, default=20180625)
    parser.add_argument("--out", default="",
                        help="write the JSON artifact here")
    args = parser.parse_args(argv)

    count = 2 if args.quick else 4
    images, timings, deterministic = bench_extraction(count, args.seed)
    with tempfile.TemporaryDirectory() as workdir:
        identity = bench_member_identity(workdir)

    # Everything except "timings" is a pure function of the image
    # bytes; the CI unpack-smoke job runs this bench twice and asserts
    # the timing-stripped artifacts compare equal.
    artifact = {
        "quick": bool(args.quick),
        "seed": args.seed,
        "images": images,
        "timings": timings,
        "manifests_deterministic": deterministic,
        "member_scan": identity,
        "host": {
            "machine": platform.machine(),
            "python": platform.python_version(),
        },
    }
    payload = json.dumps(artifact, indent=2, sort_keys=True)
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(payload + "\n")
    print(payload)

    ok = (deterministic and identity["sha_identical"]
          and identity["findings_identical"])
    if not ok:
        print("FAIL: determinism or member-identity gate broken",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
