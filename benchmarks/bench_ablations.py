"""Ablation benches for the design choices DESIGN.md calls out.

(a) pointer aliasing on/off — without Algorithm 1 the Heartbleed flow
    through ``rrec.data = rbuf.buf`` must degrade;
(b) structure-similarity indirect-call resolution on/off — without it
    the dispatcher-based flows are lost;
(c) bottom-up vs top-down traversal — the Table VII cost gap;
(d) the loop-block-once heuristic — loops must terminate and still
    expose loop-copy sinks.
"""

from repro.core import DTaint, DTaintConfig


def _dispatch_target():
    from repro.loader.binary import load_elf
    from repro.loader.link import build_executable
    from tests.test_structure_similarity import DISPATCH_SRC

    elf_bytes, _ = build_executable(
        "arm", DISPATCH_SRC, imports=["strcpy", "getenv"], entry="main"
    )
    return load_elf(elf_bytes)


def test_ablation_structure_similarity(benchmark):
    """(b): turning similarity off loses the indirect-call finding."""
    binary = _dispatch_target()

    def run(enabled):
        config = DTaintConfig(enable_structure_similarity=enabled)
        return DTaint(binary, config=config, name="dispatch").run()

    with_similarity = benchmark.pedantic(
        run, args=(True,), rounds=1, iterations=1
    )
    without_similarity = run(False)

    with_hits = [f for f in with_similarity.findings
                 if f.sink_name == "strcpy"]
    without_hits = [f for f in without_similarity.findings
                    if f.sink_name == "strcpy"]
    print("\nindirect-call ablation: with=%d findings, without=%d"
          % (len(with_hits), len(without_hits)))
    assert with_similarity.indirect_resolved == 1
    assert without_similarity.indirect_resolved == 0
    assert len(with_hits) == 1
    assert len(without_hits) == 0


def test_ablation_pointer_aliasing(benchmark):
    """(a): without Algorithm 1 the Heartbleed memcpy is lost."""
    from repro.corpus.openssl import build_openssl

    built = build_openssl()

    def run(enabled):
        config = DTaintConfig(enable_aliasing=enabled)
        return DTaint(built.binary, config=config, name="openssl").run()

    with_alias = benchmark.pedantic(run, args=(True,), rounds=1, iterations=1)
    without_alias = run(False)

    with_hits = [f for f in with_alias.findings if f.sink_name == "memcpy"]
    without_hits = [f for f in without_alias.findings
                    if f.sink_name == "memcpy"]
    print("\naliasing ablation: with=%d findings, without=%d"
          % (len(with_hits), len(without_hits)))
    assert len(with_hits) == 1
    # Without aliasing the n2s chain cannot be rebased through the
    # stored pointer; detection must not improve.
    assert len(without_hits) <= len(with_hits)


def test_ablation_bottom_up_vs_top_down(benchmark, context):
    """(c): bottom-up analyses each function once; top-down re-analyses."""
    import time

    from repro.baseline import TopDownDDG

    built = context.built("dir645")
    detector = DTaint(built.binary, name="dir645")
    detector.build_cfg()

    start = time.perf_counter()
    detector.analyze_functions()
    detector.run_dataflow()
    bottom_up = time.perf_counter() - start

    def run_baseline():
        baseline = TopDownDDG(
            binary=built.binary, functions=detector.functions,
            call_graph=detector.call_graph,
        )
        baseline.build()
        return baseline

    baseline = benchmark.pedantic(run_baseline, rounds=1, iterations=1)
    top_down = baseline.stats.ssa_seconds + baseline.stats.ddg_seconds
    functions = len([f for f in detector.functions.values()
                     if not f.is_import])
    print("\ntraversal ablation: bottom-up %.2fs (%d functions, each once) "
          "vs top-down %.2fs (%d contexts, %d re-analyses)"
          % (bottom_up, functions, top_down,
             baseline.stats.contexts_analyzed, baseline.stats.reanalyses))
    assert baseline.stats.contexts_analyzed > functions
    assert top_down > bottom_up


def test_ablation_loop_heuristic(benchmark):
    """(d): the loop-once heuristic terminates and finds loop sinks."""
    from repro.corpus import vulnpatterns as vp
    from repro.corpus.builder import build_binary
    from repro.corpus.minicc import compiler_for

    funcs, _truth = vp.zero_day_loop_copy()
    compiler = compiler_for("arm", "loops")
    source, imports = compiler.compile_module(funcs)
    built = build_binary("loops", "arm", source, imports,
                         entry=funcs[0].name)

    def run():
        return DTaint(built.binary, name="loops").run()

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    loop_findings = [f for f in report.findings if f.sink_name == "loop"]
    print("\nloop-heuristic ablation: %d loop-copy findings"
          % len(loop_findings))
    assert loop_findings
