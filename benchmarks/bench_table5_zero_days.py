"""Table V: the thirteen zero-day vulnerabilities.

Paper's split: Hikvision 6 buffer overflows, Uniview 1 buffer
overflow, DIR-645 1 command injection, Netgear DGN1000 4 command
injections + 1 buffer overflow — 13 in total.  Every planted zero-day
pattern must be detected.
"""

from repro.eval.tables import format_table, table5_zero_days


def test_table5_zero_days(benchmark, context):
    grouped, detailed = benchmark.pedantic(
        table5_zero_days, args=(context,), rounds=1, iterations=1
    )
    headers = ["firmware", "type", "bugs", "detected"]
    table = [
        [r["firmware"], r["types"], r["bugs"], r["detected"]]
        for r in grouped
    ]
    print("\n" + format_table(headers, table, title="Table V"))

    total_functions = {
        (r["firmware"], r["function"]) for r in detailed
    }
    print("distinct zero-day functions: %d (paper: 13 zero-days)"
          % len(total_functions))

    for row in detailed:
        assert row["detected"], "missed zero-day in %s" % row["function"]
    assert len(total_functions) == 13
    kinds = {r["types"] for r in grouped}
    assert "Buffer Overflow" in kinds
    assert "Command Injection" in kinds
    by_key = {(r["firmware"], r["types"]): r["bugs"] for r in grouped}
    # The paper's split (Netgear's fifth zero-day lives in DGN2200,
    # the reading consistent with Tables III and IV).
    assert by_key[("DS-2CD6233F", "Buffer Overflow")] == 6
    assert by_key[("IPC_6201", "Buffer Overflow")] == 1
    assert by_key[("DIR-645_1.03", "Command Injection")] == 1
