"""Hot-path benchmark: end-to-end corpus scan + microbenchmarks.

Measures the costs the hash-consing/indexing overhaul attacks:

* ``end_to_end``   — cold, single-process ``DTaint`` scan of the
  synthetic vendor corpus (no caches), the number every fleet worker
  pays per image;
* ``expr_construction`` — symbolic-expression construction, equality
  and hashing (the symexec inner loop shape);
* ``alias_query``  — Algorithm 1 alias recognition over a synthetic
  summary with many pointer stores;
* ``similarity_matrix`` — pairwise Formula 2 layout similarity.

Results are written as machine-readable JSON so later PRs have a perf
trajectory to regress against.  With a committed ``BENCH_hotpath.json``
present, the run compares its end-to-end time against the recorded
reference for the same mode and exits nonzero past ``--fail-threshold``
(the CI smoke job runs ``--quick`` exactly this way).

Usage:
    python benchmarks/bench_hotpath.py [--quick] [--out out.json]
    python benchmarks/bench_hotpath.py --record after   # update baseline
"""

import argparse
import json
import os
import platform
import sys
import time

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro.core import DTaint, DTaintConfig  # noqa: E402
from repro.core.aliasing import alias_replace  # noqa: E402
from repro.core.structure import extract_layouts, similarity  # noqa: E402
from repro.core.types import infer_types  # noqa: E402
from repro.symexec.state import DefPair, FunctionSummary  # noqa: E402
from repro.symexec.value import (  # noqa: E402
    SymConst,
    SymVar,
    mk_add,
    mk_deref,
    mk_mul,
    mk_sub,
)

REPO_ROOT = os.path.join(os.path.dirname(os.path.abspath(__file__)), "..")
DEFAULT_BASELINE = os.path.join(REPO_ROOT, "BENCH_hotpath.json")


# ---------------------------------------------------------------------------
# Microbenchmarks.

def bench_expr_construction(iterations):
    """Build/canonicalise expressions + hash them into sets (ops/s)."""
    args = [SymVar("arg%d" % i) for i in range(4)]
    seen = set()
    table = {}
    start = time.perf_counter()
    for i in range(iterations):
        base = args[i & 3]
        addr = mk_add(base, SymConst(i & 0xFF))
        cell = mk_deref(addr)
        expr = mk_sub(mk_add(cell, SymConst(8)), SymConst(i & 0xFF))
        scaled = mk_add(mk_mul(SymConst(4), base), SymConst(i & 0x3F))
        seen.add(expr)
        table[cell] = scaled
        if scaled in seen:          # pragma: no cover - rare by shape
            seen.discard(scaled)
        hash(addr)
    elapsed = time.perf_counter() - start
    return {
        "seconds": round(elapsed, 4),
        "iterations": iterations,
        "ops_per_second": round(iterations / elapsed) if elapsed else None,
    }


def _synthetic_alias_summary(stores, derefs_per_base):
    """A summary full of pointer stores + field accesses through them."""
    summary = FunctionSummary(name="bench_alias", addr=0x1000)
    sp0 = SymVar("sp0")
    for i in range(stores):
        base = SymVar("arg%d" % (i % 4))
        slot = mk_deref(mk_sub(sp0, SymConst(8 + 4 * i)))
        summary.def_pairs.append(
            DefPair(dest=slot, value=mk_add(base, SymConst(4 * (i % 8))),
                    site=0x1000 + i)
        )
        for j in range(derefs_per_base):
            field = mk_deref(mk_add(base, SymConst(0x10 + 4 * j)))
            summary.def_pairs.append(
                DefPair(dest=field, value=SymConst(j), site=0x2000 + i + j)
            )
    return summary


def bench_alias_query(rounds, stores=48, derefs_per_base=6):
    """Algorithm 1 alias recognition over a synthetic summary."""
    start = time.perf_counter()
    added_total = 0
    for _ in range(rounds):
        summary = _synthetic_alias_summary(stores, derefs_per_base)
        types = infer_types(summary)
        added_total += len(alias_replace(summary, types))
    elapsed = time.perf_counter() - start
    return {
        "seconds": round(elapsed, 4),
        "rounds": rounds,
        "def_pairs": stores * (derefs_per_base + 1),
        "added_pairs_per_round": added_total // max(rounds, 1),
    }


def _synthetic_layout_summary(index, fields):
    """A summary whose arg0 layout partially overlaps its neighbours."""
    summary = FunctionSummary(name="layout_%d" % index, addr=0x4000 + index)
    root = SymVar("arg0")
    for j in range(fields):
        offset = 4 * ((index + j) % (fields + 4))
        cell = mk_deref(mk_add(root, SymConst(offset)))
        summary.def_pairs.append(
            DefPair(dest=cell, value=SymConst(j), site=0x4000 + j)
        )
        inner = mk_deref(mk_add(cell, SymConst(8)))
        summary.def_pairs.append(
            DefPair(dest=inner, value=SymConst(j), site=0x5000 + j)
        )
    return summary


def bench_similarity_matrix(layouts_count, fields=12, repeats=1):
    """Pairwise Formula 2 similarity over ``layouts_count`` layouts."""
    summaries = [
        _synthetic_layout_summary(i, fields) for i in range(layouts_count)
    ]
    arg0 = SymVar("arg0")
    extracted = [extract_layouts(s).get(arg0) for s in summaries]
    start = time.perf_counter()
    comparisons = 0
    total = 0.0
    for _ in range(repeats):
        for a in extracted:
            for b in extracted:
                total += similarity(a, b)
                comparisons += 1
    elapsed = time.perf_counter() - start
    return {
        "seconds": round(elapsed, 4),
        "comparisons": comparisons,
        "score_sum": round(total, 2),
    }


# ---------------------------------------------------------------------------
# End-to-end corpus scan.

def bench_end_to_end(profiles, scale):
    """Cold single-process scans (no caches) over the vendor corpus."""
    from repro.corpus.profiles import analyzed_module_prefixes, build_firmware

    per_image = {}
    total = 0.0
    findings = 0
    for key in profiles:
        built = build_firmware(key, scale=scale)
        config = DTaintConfig(modules=analyzed_module_prefixes(key))
        start = time.perf_counter()
        report = DTaint(built.binary, config=config, name=key).run()
        elapsed = time.perf_counter() - start
        per_image[key] = round(elapsed, 4)
        total += elapsed
        findings += len(report.vulnerabilities)
    return {
        "seconds": round(total, 4),
        "scale": scale,
        "profiles": list(profiles),
        "per_image_seconds": per_image,
        "vulnerabilities": findings,
    }


# ---------------------------------------------------------------------------
# Harness.

def run_suite(quick=False):
    from repro.corpus.profiles import PROFILE_ORDER

    if quick:
        profiles = list(PROFILE_ORDER)[:2]
        scale = 0.1
        expr_iters = 50_000
        alias_rounds = 20
        layout_count = 24
    else:
        profiles = list(PROFILE_ORDER)
        scale = 0.25
        expr_iters = 200_000
        alias_rounds = 60
        layout_count = 48
    results = {
        "mode": "quick" if quick else "full",
        "python": platform.python_version(),
        "end_to_end": bench_end_to_end(profiles, scale),
        "micro": {
            "expr_construction": bench_expr_construction(expr_iters),
            "alias_query": bench_alias_query(alias_rounds),
            "similarity_matrix": bench_similarity_matrix(layout_count),
        },
    }
    return results


def _render(results):
    lines = ["bench_hotpath (%s mode, python %s)"
             % (results["mode"], results["python"])]
    e2e = results["end_to_end"]
    lines.append("  end_to_end          : %8.3fs  (%d profiles @ scale %s)"
                 % (e2e["seconds"], len(e2e["profiles"]), e2e["scale"]))
    for name, micro in results["micro"].items():
        note = ""
        if "ops_per_second" in micro and micro["ops_per_second"]:
            note = "  (%d ops/s)" % micro["ops_per_second"]
        lines.append("  %-20s: %8.3fs%s" % (name, micro["seconds"], note))
    return "\n".join(lines)


def _load_baseline(path):
    try:
        with open(path, "r") as handle:
            return json.load(handle)
    except (OSError, ValueError):
        return None


def _reference_for(baseline, mode):
    """The recorded post-optimization numbers for this mode, if any."""
    if not baseline:
        return None
    key = "after_quick" if mode == "quick" else "after"
    reference = baseline.get(key)
    if reference and "end_to_end" in reference:
        return reference
    return None


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small corpus subset + fewer iterations")
    parser.add_argument("--out", default=None,
                        help="write the measurement document to this path")
    parser.add_argument("--baseline", default=DEFAULT_BASELINE,
                        help="committed baseline JSON to regress against")
    parser.add_argument("--record", choices=["before", "after", "after_quick"],
                        help="merge this run into the baseline file under "
                             "the given section instead of checking")
    parser.add_argument("--fail-threshold", type=float, default=2.0,
                        help="fail when end_to_end exceeds reference * N")
    args = parser.parse_args(argv)

    results = run_suite(quick=args.quick)
    print(_render(results))

    if args.record:
        baseline = _load_baseline(args.baseline) or {"schema": 1}
        baseline[args.record] = results
        before = baseline.get("before", {}).get("end_to_end", {})
        after = baseline.get("after", {}).get("end_to_end", {})
        if before.get("seconds") and after.get("seconds"):
            baseline["speedup_end_to_end"] = round(
                before["seconds"] / after["seconds"], 2
            )
        with open(args.baseline, "w") as handle:
            json.dump(baseline, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print("recorded %r into %s" % (args.record, args.baseline))
        return 0

    document = {"schema": 1, "current": results}
    baseline = _load_baseline(args.baseline)
    reference = _reference_for(baseline, results["mode"])
    status = 0
    if reference is not None:
        current = results["end_to_end"]["seconds"]
        recorded = reference["end_to_end"]["seconds"]
        ratio = current / recorded if recorded else 0.0
        document["reference_end_to_end_seconds"] = recorded
        document["ratio_vs_reference"] = round(ratio, 3)
        document["fail_threshold"] = args.fail_threshold
        print("end_to_end vs committed reference: %.3fs / %.3fs = %.2fx"
              % (current, recorded, ratio))
        if ratio > args.fail_threshold:
            print("PERF REGRESSION: %.2fx exceeds the %.1fx threshold"
                  % (ratio, args.fail_threshold), file=sys.stderr)
            status = 1
    else:
        print("no committed reference for %s mode; check skipped"
              % results["mode"])

    if args.out:
        with open(args.out, "w") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print("wrote %s" % args.out)
    return status


if __name__ == "__main__":
    sys.exit(main())
