"""Table VI: CPU and memory usage of the two heavy pipeline stages.

Paper: the static symbolic analysis dominates (25% CPU, 15.3 GB on
their 128 GB box); data-flow generation is far lighter (10%, 209 MB).
The shape to reproduce: SSA memory exceeds DDG memory by a large
factor.
"""

from repro.eval.tables import format_table, table6_resources


def test_table6_resources(benchmark, context):
    rows = benchmark.pedantic(
        table6_resources, args=(context,), rounds=1, iterations=1
    )
    headers = ["stage", "CPU %", "memory MB", "wall s"]
    table = [
        [r["stage"], r["cpu_percent"], r["memory_mb"], r["wall_seconds"]]
        for r in rows
    ]
    print("\n" + format_table(
        headers, table,
        title="Table VI (paper: SSA 25%% / 15.3 GB, DDG 10%% / 208.9 MB)",
    ))

    ssa, ddg = rows
    assert ssa["stage"].startswith("Static symbolic")
    assert ssa["memory_mb"] > 0
    assert ddg["memory_mb"] > 0
    # The paper's shape: symbolic analysis is the memory-heavy stage.
    assert ssa["memory_mb"] >= ddg["memory_mb"] * 0.5
