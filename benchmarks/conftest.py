"""Shared fixtures for the table/figure benchmarks.

``REPRO_SCALE`` (default 0.25) sizes the generated firmware; set it to
1.0 to reproduce Table II's function counts exactly (slower).
"""

import pytest

from repro.eval.runner import shared_context


@pytest.fixture(scope="session")
def context():
    return shared_context()


def print_block(text):
    print("\n" + text + "\n")
