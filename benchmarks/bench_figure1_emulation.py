"""Figure 1: the FIRMADYNE emulation study over the 6,529-image fleet.

Paper: fewer than 670 of 6,529 images boot (~90% fail), failures
dominated by proprietary hardware access and network-init problems;
5,023 images ship no source code (§II-A).
"""

from repro.eval.figures import figure1_emulation, render_figure1


def test_figure1_emulation_histogram(benchmark):
    data = benchmark.pedantic(
        figure1_emulation, rounds=1, iterations=1
    )
    print("\n" + render_figure1(data))
    print("failure breakdown:", data["failures"])
    print("source availability:", data["source_availability"],
          "(paper: 5023 without source)")

    # Shape assertions: ~90% must fail, across every year.
    rate = data["emulated"] / data["total"]
    assert rate < 0.2
    assert data["emulated"] > 0
    for row in data["histogram"]:
        assert row["emulated"] < row["total"]
    # Both headline failure causes present.
    assert data["failures"].get("device-probe", 0) > 0
    assert data["failures"].get("network", 0) > 0
