"""Table IV: the seven previously reported vulnerabilities.

Paper: CVE-2013-7389 (x2), CVE-2015-2051, CVE-2016-5681,
EDB-ID:43055, CVE-2017-6334, CVE-2017-6077 — all found, all without a
security check on the path.
"""

from repro.eval.tables import format_table, table4_known_vulnerabilities

EXPECTED_LABELS = {
    "CVE-2013-7389", "CVE-2015-2051", "CVE-2016-5681",
    "EDB-ID:43055", "CVE-2017-6334", "CVE-2017-6077",
}


def test_table4_known_vulnerabilities(benchmark, context):
    rows = benchmark.pedantic(
        table4_known_vulnerabilities, args=(context,), rounds=1, iterations=1
    )
    headers = ["vulnerability", "sink", "source", "check", "detected"]
    table = [
        [r["vulnerability"], r["sink"], r["source"],
         r["security_check"], "Y" if r["detected"] else "MISS"]
        for r in rows
    ]
    print("\n" + format_table(headers, table, title="Table IV"))

    labels = {r["vulnerability"] for r in rows}
    assert labels == EXPECTED_LABELS
    assert len(rows) == 7  # CVE-2013-7389 counts twice
    for row in rows:
        assert row["detected"], "missed %s" % row["vulnerability"]
        assert row["security_check"] == "N"
