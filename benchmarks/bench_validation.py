"""PoC validation bench (beyond the paper's tables).

The paper confirmed its findings on physical devices; this bench
closes the same loop in emulation: every Table IV/V pattern is
*executed* with attacker input on the concrete CPU, and the
vulnerability must exhibit a real effect — control-flow hijack, stack
canary corruption, or shell-metacharacter injection — while every
sanitized decoy survives the same input.
"""

from repro.core.validate import validate_ground_truth
from repro.corpus import vulnpatterns as vp
from repro.corpus.builder import build_binary
from repro.corpus.minicc import compiler_for
from repro.eval.tables import format_table

PATTERNS = [
    (vp.cve_2013_7389_strncpy, {}),
    (vp.cve_2013_7389_sprintf, {}),
    (vp.cve_2015_2051, {}),
    (vp.cve_2016_5681, {}),
    (vp.cve_2017_6334, {}),
    (vp.cve_2017_6077, {}),
    (vp.edb_43055, {}),
    (vp.zero_day_read_memcpy, {}),
    (vp.zero_day_loop_copy, {}),
    (vp.zero_day_sscanf, {}),
    (vp.zero_day_fgets_strcpy, {}),
    (vp.cve_2015_2051, {"name": "safe_soap", "vulnerable": False}),
    (vp.zero_day_read_memcpy, {"name": "safe_frame", "vulnerable": False}),
    (vp.zero_day_loop_copy, {"name": "safe_loop", "vulnerable": False}),
    (vp.cve_2016_5681, {"name": "safe_cookie", "vulnerable": False}),
]


def _build(arch):
    funcs, truth = [], []
    for factory, kwargs in PATTERNS:
        f, g = factory(**kwargs)
        funcs += f
        truth += g
    compiler = compiler_for(arch, "poc")
    source, imports = compiler.compile_module(funcs)
    return build_binary("poc", arch, source, imports, entry=funcs[0].name,
                        ground_truth=truth)


def _validate_both():
    results = {}
    for arch in ("arm", "mips"):
        built = _build(arch)
        results[arch] = (built, validate_ground_truth(built))
    return results


def test_poc_validation(benchmark):
    results = benchmark.pedantic(_validate_both, rounds=1, iterations=1)
    for arch, (built, outcome) in results.items():
        want = {}
        for item in built.ground_truth:
            want.setdefault(item.function, item.vulnerable)
        rows = [
            [name, "vulnerable" if want[name] else "sanitized",
             "CONFIRMED" if result.confirmed else "no effect",
             result.effect[:48]]
            for name, result in outcome.items()
        ]
        print("\n" + format_table(
            ["function", "ground truth", "validation", "effect"], rows,
            title="PoC validation (%s)" % arch,
        ))
        for name, result in outcome.items():
            assert result.confirmed == want[name], (arch, name, result.effect)
