"""Intra-image shard-scheduling benchmark: hikvision split over a pool.

Measures what the shard scheduler buys on the fleet's hot image
(hikvision dominates ``BENCH_hotpath.json``'s fleet scan):

* ``unsharded``  — the whole-image baseline every fleet worker used to
  pay (1 job slot, no sharding);
* ``sharded_1w`` — the sharded task graph (plan → N exec shards →
  merge) run on a single worker: the 1-worker sharded baseline, whose
  per-task walls also feed the schedule model;
* ``sharded_4w`` — the same task graph run on a 4-worker pool.

Speedup methodology: shard exec tasks are independent worker
processes, so on a host with >= 4 cores the 4-worker makespan is the
serial prefix/suffix (plan + merge) plus an LPT packing of the
measured exec walls onto 4 workers.  On hosts with fewer cores (CI
containers are often throttled to one) the actually-measured 4-worker
wall only reflects timeslicing, so the benchmark records BOTH the
measured wall and the schedule-modeled speedup, uses the model as the
headline ``speedup`` when cores < 4, and says so in the artifact
(``speedup_modeled``/``cores`` fields).

Measurement hygiene: every configuration runs in its own fresh
subprocess, so each one starts from identical cold interpreter state —
no run inherits intern pools, allocator arenas, or page-cache warmth
from a predecessor, and ordering artifacts cannot favour one config
over another.  The timed ``sharded_1w`` configuration (whose task
walls feed both sides of the schedule model) additionally runs
``--trials`` times and each task slot keeps its minimum wall across
trials — the standard timeit rationale: variance above the minimum is
interference from the host, not variability in the code under test.

Identity gate: the findings fingerprints of all three runs must be
byte-identical — sharding may only ever change the schedule, never the
findings.  A divergence exits nonzero regardless of flags.

Usage:
    python benchmarks/bench_fleet_shard.py [--quick] [--out out.json]
    python benchmarks/bench_fleet_shard.py --record    # update baseline
"""

import argparse
import json
import os
import platform
import subprocess
import sys
import tempfile
import time

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro.corpus.profiles import (  # noqa: E402
    analyzed_module_prefixes,
    build_firmware,
)
from repro.pipeline.results import findings_fingerprint  # noqa: E402
from repro.pipeline.scheduler import FleetJob, FleetScheduler  # noqa: E402
from repro.pipeline.telemetry import Telemetry  # noqa: E402

REPO_ROOT = os.path.join(os.path.dirname(os.path.abspath(__file__)), "..")
DEFAULT_BASELINE = os.path.join(REPO_ROOT, "BENCH_fleet_shard.json")

IMAGE = "hikvision"


def _run_config(elf_path, modules, shards, jobs):
    """One fleet run; returns (fingerprint, wall, task walls, report)."""
    events = []
    telemetry = Telemetry()
    telemetry.add_sink(lambda record: events.append(dict(record)))
    scheduler = FleetScheduler(jobs=jobs, retries=1, telemetry=telemetry)
    try:
        start = time.perf_counter()
        results = scheduler.run([
            FleetJob(job_id="bench", kind="elf", path=elf_path,
                     modules=modules, shards=shards),
        ])
        wall = time.perf_counter() - start
    finally:
        scheduler.close()
    result = results[0]
    if not result.ok:
        raise SystemExit("bench run failed: %s" % result.error)

    starts, execs = {}, []
    plan = merge = 0.0
    for event in events:
        kind = event.get("event")
        if kind == "shard_task_start":
            starts[(event.get("phase"), event.get("shard"))] = event["ts"]
        elif kind == "shard_task_finish":
            execs.append(event["ts"] - starts[("exec", event.get("shard"))])
        elif kind == "shard_plan":
            plan = event["ts"] - starts[("plan", -1)]
        elif kind == "shard_merge_finish":
            merge = event["ts"] - starts[("merge", -1)]
    tasks = {"plan": plan, "exec": sorted(execs, reverse=True),
             "merge": merge}
    return findings_fingerprint(result.report), wall, tasks, result.report


def _run_isolated(elf_path, modules, shards, jobs):
    """Run one configuration in a fresh interpreter; returns its stats.

    Fresh-process isolation keeps every configuration's measurement
    honest: an in-process predecessor run leaves warmed intern pools
    and a grown allocator heap behind, which measurably shifts the
    walls of whatever runs next.
    """
    handle, result_path = tempfile.mkstemp(
        suffix=".json", dir=os.path.dirname(elf_path)
    )
    os.close(handle)
    command = [
        sys.executable, os.path.abspath(__file__), "--one-config",
        "--elf", elf_path, "--modules", ",".join(modules),
        "--one-shards", str(shards), "--one-jobs", str(jobs),
        "--result-out", result_path,
    ]
    status = subprocess.run(command).returncode
    if status != 0:
        raise SystemExit(
            "bench subprocess (shards=%d jobs=%d) failed with status %d"
            % (shards, jobs, status)
        )
    with open(result_path) as stream:
        data = json.load(stream)
    os.unlink(result_path)
    return data["fingerprint"], data["wall"], data["tasks"]


def _min_tasks(trials):
    """Per-slot minimum across trials (timeit's least-interference rule)."""
    base = min(
        trials, key=lambda t: t["plan"] + sum(t["exec"]) + t["merge"]
    )
    if any(len(t["exec"]) != len(base["exec"]) for t in trials):
        return base        # shard count diverged: keep the best trial
    return {
        "plan": min(t["plan"] for t in trials),
        "merge": min(t["merge"] for t in trials),
        "exec": [
            min(t["exec"][slot] for t in trials)
            for slot in range(len(base["exec"]))
        ],
    }


def _modeled_makespan(tasks, workers):
    """Plan + LPT packing of exec walls onto ``workers`` + merge."""
    loads = [0.0] * workers
    for span in tasks["exec"]:
        slot = min(range(workers), key=lambda index: loads[index])
        loads[slot] += span
    return tasks["plan"] + max(loads + [0.0]) + tasks["merge"]


def run_bench(scale, shards, workers, quick=False, trials=1):
    built = build_firmware(IMAGE, scale=scale)
    workdir = tempfile.mkdtemp(prefix="dtaint-bench-shard-")
    elf_path = os.path.join(workdir, "%s.elf" % IMAGE)
    with open(elf_path, "wb") as handle:
        handle.write(built.elf_bytes)
    modules = analyzed_module_prefixes(IMAGE)

    fp_ref, wall_ref, _tasks = _run_isolated(elf_path, modules, 0, 1)
    one_trials = [
        _run_isolated(elf_path, modules, shards, 1)
        for _ in range(max(1, trials))
    ]
    fp_one = one_trials[0][0]
    if any(trial[0] != fp_one for trial in one_trials):
        raise SystemExit("sharded_1w trials disagree on the fingerprint")
    wall_one = min(trial[1] for trial in one_trials)
    tasks_one = _min_tasks([trial[2] for trial in one_trials])
    fp_many, wall_many, _tasks_many = _run_isolated(
        elf_path, modules, shards, workers
    )

    identical = fp_ref == fp_one == fp_many
    cores = os.cpu_count() or 1
    t1 = tasks_one["plan"] + sum(tasks_one["exec"]) + tasks_one["merge"]
    t_modeled = _modeled_makespan(tasks_one, workers)
    speedup_modeled = t1 / t_modeled if t_modeled else 0.0
    speedup_measured = wall_one / wall_many if wall_many else 0.0
    # With fewer physical cores than workers the measured wall only
    # shows timeslicing; the schedule model (exact for independent
    # processes) is the meaningful number there.
    speedup = speedup_measured if cores >= workers else speedup_modeled
    return {
        "image": IMAGE,
        "scale": scale,
        "shards": shards,
        "workers": workers,
        "cores": cores,
        "quick": quick,
        "trials": max(1, trials),
        "fingerprints": {
            "unsharded": fp_ref,
            "sharded_1w": fp_one,
            "sharded_%dw" % workers: fp_many,
        },
        "findings_identical": identical,
        "wall_seconds": {
            "unsharded": round(wall_ref, 3),
            "sharded_1w": round(wall_one, 3),
            "sharded_%dw" % workers: round(wall_many, 3),
        },
        "tasks_1w": {
            "plan": round(tasks_one["plan"], 3),
            "merge": round(tasks_one["merge"], 3),
            "exec": [round(span, 3) for span in tasks_one["exec"]],
        },
        "speedup": round(speedup, 3),
        "speedup_modeled": round(speedup_modeled, 3),
        "speedup_measured": round(speedup_measured, 3),
        "speedup_is_modeled": cores < workers,
    }


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="small scale + identity gate only (CI)")
    parser.add_argument("--out", help="also write results JSON here")
    parser.add_argument("--record", action="store_true",
                        help="update %s" % os.path.basename(DEFAULT_BASELINE))
    parser.add_argument("--scale", type=float, default=None)
    parser.add_argument("--shards", type=int, default=None)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--min-speedup", type=float, default=2.5,
                        help="full-mode gate on the headline speedup")
    parser.add_argument("--trials", type=int, default=None,
                        help="sharded_1w timing trials (default 3, 1 "
                             "with --quick)")
    # Internal single-configuration mode used for fresh-process
    # isolation; the parent invokes this script recursively with it.
    parser.add_argument("--one-config", action="store_true",
                        help=argparse.SUPPRESS)
    parser.add_argument("--elf", help=argparse.SUPPRESS)
    parser.add_argument("--modules", help=argparse.SUPPRESS)
    parser.add_argument("--one-shards", type=int, help=argparse.SUPPRESS)
    parser.add_argument("--one-jobs", type=int, help=argparse.SUPPRESS)
    parser.add_argument("--result-out", help=argparse.SUPPRESS)
    args = parser.parse_args()

    if args.one_config:
        modules = [m for m in (args.modules or "").split(",") if m]
        fingerprint, wall, tasks, _ = _run_config(
            args.elf, modules, args.one_shards, args.one_jobs
        )
        with open(args.result_out, "w") as handle:
            json.dump({"fingerprint": fingerprint, "wall": wall,
                       "tasks": tasks}, handle)
        return 0

    scale = args.scale if args.scale is not None else (
        0.1 if args.quick else 0.25
    )
    shards = args.shards if args.shards is not None else (
        4 if args.quick else 16
    )
    workers = 2 if args.quick and args.workers == 4 else args.workers
    trials = args.trials if args.trials is not None else (
        1 if args.quick else 3
    )

    results = run_bench(scale, shards, workers, quick=args.quick,
                        trials=trials)
    results["host"] = {
        "python": platform.python_version(),
        "machine": platform.machine(),
    }
    blob = json.dumps(results, indent=2, sort_keys=True) + "\n"
    print(blob)
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(blob)
    if args.record:
        with open(DEFAULT_BASELINE, "w") as handle:
            handle.write(blob)

    if not results["findings_identical"]:
        print("FAIL: sharded findings diverge from the unsharded run",
              file=sys.stderr)
        return 1
    if not args.quick and results["speedup"] < args.min_speedup:
        print("FAIL: speedup %.2fx below gate %.2fx"
              % (results["speedup"], args.min_speedup), file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
