"""Alias-engine showdown benchmark: precision/recall/runtime per engine.

Runs :func:`repro.alias.compare.compare_engines` — seeded labeled
programs, the alias-stress fixtures, and the vendor corpus at the
golden scale — and enforces the subsystem's acceptance gates:

* ``dtaint_golden_identical`` — the default engine's canonical vendor
  reports are byte-identical to the committed golden corpus (engine
  selection must be a no-op for ``--alias-engine dtaint``);
* ``sse_fixture_fp_reduction`` — the sse engine reports strictly fewer
  false positives than dtaint on the seeded fixtures;
* ``sse_recall_preserved`` — sse recall over all ground-truth
  vulnerable fragments is at least dtaint's.

The measurement document is written to ``BENCH_alias_engines.json`` at
the repo root with ``--record`` (the committed artifact), and the run
exits nonzero when any gate fails.

Usage:
    python benchmarks/bench_alias_engines.py [--quick] [--out out.json]
    python benchmarks/bench_alias_engines.py --record   # update artifact
"""

import argparse
import json
import os
import platform
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro.alias.compare import (  # noqa: E402
    compare_engines,
    render_comparison,
)

REPO_ROOT = os.path.join(os.path.dirname(os.path.abspath(__file__)), "..")
DEFAULT_ARTIFACT = os.path.join(REPO_ROOT, "BENCH_alias_engines.json")

# Every gate the comparison computes as a boolean must hold.
REQUIRED_GATES = (
    "dtaint_golden_identical",
    "sse_fixture_fp_reduction",
    "sse_recall_preserved",
)


def run_suite(quick=False, seed=1):
    comparison = compare_engines(
        seed=seed,
        count=20 if quick else 50,
        vendor=not quick,
        log=print,
    )
    return {
        "mode": "quick" if quick else "full",
        "python": platform.python_version(),
        "comparison": comparison,
    }


def check_gates(results):
    """Returns the list of failed gate names (empty = all green)."""
    gates = results["comparison"].get("gates", {})
    failed = []
    for name in REQUIRED_GATES:
        value = gates.get(name)
        if value is None:
            # The golden gate is None when the vendor leg was skipped
            # (--quick) or the golden corpus is absent; not a failure.
            continue
        if value is not True:
            failed.append(name)
    return failed


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="fewer programs, skip the vendor leg")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--out", default=None,
                        help="write the measurement document to this path")
    parser.add_argument("--record", action="store_true",
                        help="write the committed artifact (%s)"
                             % os.path.basename(DEFAULT_ARTIFACT))
    args = parser.parse_args(argv)

    results = run_suite(quick=args.quick, seed=args.seed)
    print(render_comparison(results["comparison"]))

    failed = check_gates(results)
    document = {"schema": 1}
    document.update(results)
    document["gates_failed"] = failed

    for path in filter(None, [args.out,
                              DEFAULT_ARTIFACT if args.record else None]):
        with open(path, "w") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print("wrote %s" % path)

    if failed:
        print("GATES FAILED: %s" % ", ".join(failed), file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
