"""Vulnerability verdicts from the top-down baseline.

:class:`~repro.baseline.topdown.TopDownDDG` reproduces the angr-style
cost model (per-context re-analysis) but only builds a def-use graph —
it never says "vulnerable".  This module derives per-function verdicts
from its raw per-context summaries: a function is flagged when any of
its contexts shows a sink's dangerous argument reachable (by bounded
backward substitution over the context's definition pairs) from a
source call's return value or source-filled buffer.

Deliberately *not* shared with the DTaint detector: the point of the
differential harness is an independent second opinion, so the flow
check here is the simple textbook one — no aliasing, no structure
similarity, and no sanitization modeling (the baseline flags a
guarded flow too; those show up as informational disagreements).
"""

from repro.baseline.topdown import TopDownDDG
from repro.core import libc
from repro.symexec.value import base_offset, derefs_in, substitute, walk

_MAX_REWRITES = 200
_MAX_DEFS_PER_VAR = 8


def baseline_flagged(binary, functions, call_graph, **ddg_kwargs):
    """Names the top-down baseline considers vulnerable.

    Builds the DDG (per-context re-analysis and all) and judges each
    analysed context independently; a function is flagged if *any*
    context exposes a source-to-sink flow.
    """
    ddg = TopDownDDG(binary=binary, functions=functions,
                     call_graph=call_graph, **ddg_kwargs)
    ddg.build()
    flagged = set()
    for (name, _context), summary in ddg.analyzed.items():
        if name not in flagged and _summary_has_flow(summary):
            flagged.add(name)
    return flagged


def _taint_introductions(summary):
    """(roots, objects): source return values and source-filled buffers."""
    roots = set()
    objects = set()
    for callsite in summary.callsites:
        target = callsite.target
        if not isinstance(target, str):
            continue
        model = libc.model_for(target)
        if model is None or target not in libc.SOURCE_NAMES:
            continue
        if model.taints_ret or model.ret_attacker_len:
            # The engine parks SymRet(addr) in the return register
            # after every summarised call, so the raw summary already
            # links uses of the result to this callsite.
            from repro.symexec.value import SymRet

            roots.add(SymRet(callsite.addr))
        for index in model.taints_args:
            if index < len(callsite.args):
                pointer = callsite.args[index]
                if pointer is not None:
                    objects.add(pointer)
    return roots, objects


def _dangerous_exprs(summary):
    """Sink-side expressions whose taintedness means a vulnerability."""
    dangerous = []
    for callsite in summary.callsites:
        target = callsite.target
        if not isinstance(target, str):
            continue
        model = libc.model_for(target)
        if model is None or model.sink is None:
            continue
        _kind, indices = model.sink
        for index in indices:
            if index < len(callsite.args):
                expr = callsite.args[index]
                if expr is not None:
                    dangerous.append(expr)
    # The structural "loop" sink: a byte stored inside a loop whose
    # value came from memory (the unbounded-copy shape).
    for _site, _dest, value in summary.loop_stores:
        dangerous.append(value)
    return dangerous


def _mentions_taint(expr, roots, objects):
    for node in walk(expr):
        if node in roots or node in objects:
            return True
    for deref in derefs_in(expr):
        candidates = [deref.addr]
        view = base_offset(deref.addr)
        if view is not None and view[0] is not None:
            candidates.append(view[0])
        if any(pointer in objects for pointer in candidates):
            return True
    return False


def _summary_has_flow(summary):
    roots, objects = _taint_introductions(summary)
    if not roots and not objects:
        return False
    defs_by_dest = {}
    for pair in summary.def_pairs:
        defs_by_dest.setdefault(pair.dest, []).append(pair.value)

    for start in _dangerous_exprs(summary):
        # Bounded backward rewriting: replace derefs with their
        # reaching definitions until a taint introduction surfaces.
        frontier = [start]
        seen = {start}
        rewrites = 0
        while frontier and rewrites < _MAX_REWRITES:
            expr = frontier.pop()
            if _mentions_taint(expr, roots, objects):
                return True
            for deref in derefs_in(expr):
                for value in defs_by_dest.get(deref, ())[
                        :_MAX_DEFS_PER_VAR]:
                    rewrites += 1
                    rewritten = substitute(expr, {deref: value})
                    if rewritten not in seen:
                        seen.add(rewritten)
                        frontier.append(rewritten)
    return False
