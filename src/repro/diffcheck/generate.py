"""Seeded generation of labeled differential-test programs.

Programs are composed from the vulnerability patterns in
:mod:`repro.corpus.vulnpatterns` — each fragment carries its own
``vulnerable`` switch and ground-truth label — plus procedurally
generated filler functions (safe call-graph noise).  A
:class:`ProgramSpec` is a pure value: the same spec always builds the
same binary, which is what makes shrunk reproducers meaningful.
"""

import random
from dataclasses import dataclass

from repro.corpus import vulnpatterns as vp
from repro.corpus.builder import build_binary
from repro.corpus.minicc import compiler_for
from repro.corpus.profiles import make_filler

ARCHES = ("arm", "mips")


def _cmdi_generic(name, vulnerable=True):
    return vp.zero_day_cmdi(name, vulnerable=vulnerable)


# Every pattern behind the uniform signature (name, vulnerable) ->
# (functions, ground_truth).  Keys are stable: they appear in triage
# reports and shrunk reproducers.
PATTERNS = {
    "strncpy_post": vp.cve_2013_7389_strncpy,
    "sprintf_cookie": vp.cve_2013_7389_sprintf,
    "system_soap": vp.cve_2015_2051,
    "strcpy_cookie": vp.cve_2016_5681,
    "system_hostname": vp.cve_2017_6334,
    "system_ping": vp.cve_2017_6077,
    "popen_cmd": vp.edb_43055,
    "cmdi_generic": _cmdi_generic,
    "memcpy_frame": vp.zero_day_read_memcpy,
    "loop_copy": vp.zero_day_loop_copy,
    "sscanf_session": vp.zero_day_sscanf,
    "fgets_strcpy": vp.zero_day_fgets_strcpy,
}

PATTERN_ORDER = tuple(sorted(PATTERNS))


class _FillerShape:
    """The profile knobs make_filler reads, sized for tiny programs."""

    branches_per_filler = (1, 3)
    calls_per_filler = (0, 2)
    sink_call_rate = 0.25


@dataclass(frozen=True)
class FragmentSpec:
    """One vulnerability-pattern instance inside a program."""

    pattern: str              # key into PATTERNS
    function: str             # unique function name for this instance
    vulnerable: bool

    def to_dict(self):
        return {
            "pattern": self.pattern,
            "function": self.function,
            "vulnerable": self.vulnerable,
        }

    @classmethod
    def from_dict(cls, data):
        return cls(pattern=data["pattern"], function=data["function"],
                   vulnerable=bool(data["vulnerable"]))


@dataclass(frozen=True)
class ProgramSpec:
    """A deterministic recipe for one labeled test program."""

    name: str
    arch: str
    fragments: tuple          # of FragmentSpec
    fillers: int = 0
    filler_seed: int = 0

    def to_dict(self):
        return {
            "name": self.name,
            "arch": self.arch,
            "fragments": [f.to_dict() for f in self.fragments],
            "fillers": self.fillers,
            "filler_seed": self.filler_seed,
        }

    @classmethod
    def from_dict(cls, data):
        return cls(
            name=data["name"],
            arch=data["arch"],
            fragments=tuple(
                FragmentSpec.from_dict(f) for f in data["fragments"]
            ),
            fillers=int(data.get("fillers", 0)),
            filler_seed=int(data.get("filler_seed", 0)),
        )

    # Reduction steps for the shrinker -------------------------------

    def without_fragment(self, index):
        fragments = tuple(
            f for i, f in enumerate(self.fragments) if i != index
        )
        return ProgramSpec(name=self.name, arch=self.arch,
                           fragments=fragments, fillers=self.fillers,
                           filler_seed=self.filler_seed)

    def without_fillers(self):
        return ProgramSpec(name=self.name, arch=self.arch,
                           fragments=self.fragments, fillers=0,
                           filler_seed=self.filler_seed)


def generate_specs(seed, count, arches=ARCHES, max_fragments=3,
                   max_fillers=2):
    """``count`` seeded program specs; same (seed, count) -> same list."""
    rng = random.Random(seed)
    specs = []
    for index in range(count):
        arch = rng.choice(list(arches))
        n_fragments = rng.randint(1, max_fragments)
        keys = rng.sample(PATTERN_ORDER, n_fragments)
        fragments = tuple(
            FragmentSpec(
                pattern=key,
                function="h%d_%s" % (i, key),
                vulnerable=rng.random() < 0.6,
            )
            for i, key in enumerate(keys)
        )
        specs.append(ProgramSpec(
            name="dc%04d_%s" % (index, arch),
            arch=arch,
            fragments=fragments,
            fillers=rng.randint(0, max_fillers),
            filler_seed=rng.randrange(2 ** 31),
        ))
    return specs


def build_program(spec):
    """Assemble a spec into a loaded BuiltBinary with ground truth."""
    functions = []
    ground_truth = []
    for fragment in spec.fragments:
        factory = PATTERNS[fragment.pattern]
        frag_functions, frag_truth = factory(
            name=fragment.function, vulnerable=fragment.vulnerable
        )
        functions.extend(frag_functions)
        ground_truth.extend(frag_truth)
    rng = random.Random(spec.filler_seed)
    filler_names = []
    for i in range(spec.fillers):
        name = "fill%02d_%s" % (i, spec.name)
        functions.append(
            make_filler(name, rng, list(filler_names), _FillerShape())
        )
        filler_names.append(name)
    compiler = compiler_for(spec.arch, spec.name)
    source, imports = compiler.compile_module(functions)
    return build_binary(
        spec.name, spec.arch, source, imports,
        entry=functions[0].name, ground_truth=ground_truth,
    )
