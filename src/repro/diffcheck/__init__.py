"""Differential correctness harness.

Cross-validates the static detector against two independent judges on
randomized-but-seeded labeled programs: the concrete-execution oracle
(:mod:`repro.diffcheck.oracle`, built on :mod:`repro.emu`) and the
top-down baseline (:mod:`repro.diffcheck.baselinecheck`, built on
:mod:`repro.baseline`).  Divergences are classified and shrunk into
minimal reproducers (:mod:`repro.diffcheck.triage`,
:mod:`repro.diffcheck.harness`).
"""

from repro.diffcheck.generate import (
    ARCHES,
    PATTERNS,
    FragmentSpec,
    ProgramSpec,
    build_program,
    generate_specs,
)
from repro.diffcheck.harness import DiffCheck, run_diffcheck, shrink_spec
from repro.diffcheck.oracle import oracle_check, oracle_verdicts
from repro.diffcheck.baselinecheck import baseline_flagged
from repro.diffcheck.triage import Divergence, TriageReport

__all__ = [
    "ARCHES",
    "PATTERNS",
    "FragmentSpec",
    "ProgramSpec",
    "build_program",
    "generate_specs",
    "DiffCheck",
    "run_diffcheck",
    "shrink_spec",
    "oracle_check",
    "oracle_verdicts",
    "baseline_flagged",
    "Divergence",
    "TriageReport",
]
