"""Divergence records and the triage report.

Divergence taxonomy (static verdicts are judged against the concrete
oracle, not against the generator's labels — execution is the ground
truth of record):

* ``static-fn`` — the oracle exploited the function but the static
  detector reported no unsanitized path.  The serious class: unless
  explained, it fails the run.
* ``static-fp`` — the static detector reported a vulnerable path the
  oracle could not exploit.
* ``baseline-disagreement`` — the top-down baseline's verdict differs
  from the static detector's (informational; the baseline models no
  sanitization, so sanitized decoys routinely land here).
* ``oracle-mismatch`` — the oracle's verdict contradicts the
  generator's ground-truth label: a generator or emulation bug, never
  blamed on the detector (but reported loudly — a broken judge
  invalidates the whole comparison).
"""

from dataclasses import dataclass, field

# (divergence kind, pattern key) -> why this divergence is understood
# and tolerated.  Entries here keep CI green; every entry must carry a
# real explanation, which the triage report prints alongside the
# divergence.
EXPLAINED = {}

SEVERITY = ("oracle-mismatch", "static-fn", "static-fp",
            "baseline-disagreement")


@dataclass
class Divergence:
    """One disagreement between two of the three verdict sources."""

    kind: str                 # one of SEVERITY
    program: str
    function: str
    pattern: str = ""         # fragment pattern key ('' for fillers)
    expected: object = None   # generator label (None for fillers)
    static: object = None     # bool: unsanitized path reported
    oracle: object = None     # bool: exploit confirmed in emulation
    baseline: object = None   # bool: baseline flagged (None if skipped)
    detail: str = ""
    explained: str = ""       # non-empty -> tolerated, with the reason
    reproducer: dict = field(default_factory=dict)   # minimized spec
    shrink_steps: int = 0

    def to_dict(self):
        return {
            "kind": self.kind,
            "program": self.program,
            "function": self.function,
            "pattern": self.pattern,
            "expected": self.expected,
            "static": self.static,
            "oracle": self.oracle,
            "baseline": self.baseline,
            "detail": self.detail,
            "explained": self.explained,
            "reproducer": self.reproducer,
            "shrink_steps": self.shrink_steps,
        }

    def describe(self):
        verdicts = "static=%s oracle=%s baseline=%s expected=%s" % (
            self.static, self.oracle, self.baseline, self.expected,
        )
        note = " [explained: %s]" % self.explained if self.explained else ""
        return "[%s] %s/%s (%s): %s%s" % (
            self.kind, self.program, self.function,
            self.pattern or "filler", verdicts, note,
        )


@dataclass
class TriageReport:
    """Everything one differential sweep learned."""

    seed: int
    count: int
    programs: int = 0
    functions_checked: int = 0
    divergences: list = field(default_factory=list)
    elapsed_seconds: float = 0.0

    @property
    def counts(self):
        tally = {kind: 0 for kind in SEVERITY}
        for divergence in self.divergences:
            tally[divergence.kind] = tally.get(divergence.kind, 0) + 1
        return tally

    @property
    def unexplained_static_fns(self):
        return [
            d for d in self.divergences
            if d.kind == "static-fn" and not d.explained
        ]

    @property
    def ok(self):
        """The CI gate: no unexplained missed vulnerability."""
        return not self.unexplained_static_fns

    def to_dict(self):
        return {
            "seed": self.seed,
            "count": self.count,
            "programs": self.programs,
            "functions_checked": self.functions_checked,
            "counts": self.counts,
            "unexplained_static_fns": len(self.unexplained_static_fns),
            "ok": self.ok,
            "elapsed_seconds": self.elapsed_seconds,
            "divergences": [
                d.to_dict() for d in sorted(
                    self.divergences,
                    key=lambda d: (SEVERITY.index(d.kind), d.program,
                                   d.function),
                )
            ],
        }

    def render(self):
        counts = self.counts
        lines = [
            "diffcheck: seed=%d, %d programs, %d functions checked, %.1fs"
            % (self.seed, self.programs, self.functions_checked,
               self.elapsed_seconds),
            "  static-FN            : %d (%d unexplained)" % (
                counts["static-fn"], len(self.unexplained_static_fns)),
            "  static-FP            : %d" % counts["static-fp"],
            "  baseline-disagreement: %d" % counts["baseline-disagreement"],
            "  oracle-mismatch      : %d" % counts["oracle-mismatch"],
        ]
        for divergence in sorted(
            self.divergences,
            key=lambda d: (SEVERITY.index(d.kind), d.program, d.function),
        ):
            lines.append("  " + divergence.describe())
        lines.append(
            "verdict: %s" % ("OK" if self.ok
                             else "UNEXPLAINED STATIC FALSE NEGATIVES")
        )
        return "\n".join(lines)
