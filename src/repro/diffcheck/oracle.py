"""The concrete-execution oracle.

A function's vulnerability verdict comes from actually *running* it on
the emulated CPU (:mod:`repro.emu`) under attacker-controlled input —
every environment variable, socket read and config line resolves to an
overlong hostile payload — and watching for the observable effect: a
hijacked program counter, a trampled stack canary, or a shell
metacharacter reaching ``system``/``popen``.  That machinery lives in
:mod:`repro.core.validate`; this module packages it as the judge the
differential harness trusts over both static analyses.
"""

from repro.core.validate import validate_function, validate_ground_truth

# Generated programs are a handful of tiny handlers; a lower step
# budget than full PoC validation keeps 50-program sweeps quick while
# still letting unbounded copy loops run to their overflow.
DEFAULT_MAX_STEPS = 200_000


def oracle_verdicts(built, max_steps=DEFAULT_MAX_STEPS):
    """Concrete verdicts for every ground-truth function.

    Returns ``{function_name: ValidationResult}``; ``confirmed`` is
    the oracle's vulnerability verdict.  Each function runs with its
    ground truth's protocol-shaped PoC input when one is recorded.
    """
    return validate_ground_truth(built, max_steps=max_steps)


def oracle_check(built, function, kind, poc_input=b"",
                 max_steps=DEFAULT_MAX_STEPS):
    """Concrete verdict for one function (e.g. a static-flagged filler)."""
    return validate_function(
        built.binary, function, kind,
        input_bytes=poc_input, max_steps=max_steps,
    )
