"""The differential harness: generate, run all three judges, triage.

For every generated program the harness collects up to three verdicts
per function — the static detector's, the top-down baseline's, and the
concrete-execution oracle's — classifies each disagreement (see
:mod:`repro.diffcheck.triage`), and greedily shrinks each divergent
program by dropping fragments/fillers while the divergence persists,
so the reproducer attached to a divergence is minimal.
"""

import time

from repro.core import DTaint, DTaintConfig
from repro.diffcheck.baselinecheck import baseline_flagged
from repro.diffcheck.generate import (
    ARCHES,
    ProgramSpec,
    build_program,
    generate_specs,
)
from repro.diffcheck.oracle import (
    DEFAULT_MAX_STEPS,
    oracle_check,
    oracle_verdicts,
)
from repro.diffcheck.triage import EXPLAINED, Divergence, TriageReport


def _reductions(spec):
    """Candidate one-step reductions, cheapest first."""
    if spec.fillers:
        yield spec.without_fillers()
    for index in range(len(spec.fragments)):
        if len(spec.fragments) > 1 or spec.fillers:
            yield spec.without_fragment(index)


def shrink_spec(spec, predicate, max_rounds=6):
    """Greedy shrink: apply reductions while ``predicate`` holds.

    Returns ``(minimized_spec, steps_taken)``.  ``predicate`` is asked
    whether a candidate still exhibits the divergence; a candidate
    that fails to build counts as not exhibiting it.
    """
    current = spec
    steps = 0
    improved = True
    while improved and steps < max_rounds:
        improved = False
        for candidate in _reductions(current):
            if predicate(candidate):
                current = candidate
                steps += 1
                improved = True
                break
    return current, steps


class DiffCheck:
    """One seeded differential sweep."""

    def __init__(self, seed=0, count=20, arches=ARCHES, max_fragments=3,
                 max_fillers=2, run_baseline=True, shrink=True,
                 telemetry=None, max_steps=DEFAULT_MAX_STEPS,
                 alias_engine="dtaint"):
        self.seed = seed
        self.count = count
        self.arches = tuple(arches)
        self.max_fragments = max_fragments
        self.max_fillers = max_fillers
        self.run_baseline = run_baseline
        self.shrink = shrink
        self.telemetry = telemetry
        self.max_steps = max_steps
        self.alias_engine = alias_engine

    # ------------------------------------------------------------------

    def run(self):
        started = time.perf_counter()
        report = TriageReport(seed=self.seed, count=self.count)
        self._emit("diffcheck_start", seed=self.seed, count=self.count,
                   baseline=self.run_baseline)
        specs = generate_specs(
            self.seed, self.count, arches=self.arches,
            max_fragments=self.max_fragments, max_fillers=self.max_fillers,
        )
        for spec in specs:
            checked, divergences = self._check_program(
                spec, need_oracle=True, need_baseline=self.run_baseline,
            )
            report.programs += 1
            report.functions_checked += checked
            for divergence in divergences:
                if self.shrink:
                    minimized, steps = self._shrink(spec, divergence)
                    divergence.reproducer = minimized.to_dict()
                    divergence.shrink_steps = steps
                else:
                    divergence.reproducer = spec.to_dict()
                report.divergences.append(divergence)
                self._emit(
                    "diffcheck_divergence", kind=divergence.kind,
                    program=divergence.program,
                    function=divergence.function,
                    pattern=divergence.pattern,
                    explained=bool(divergence.explained),
                )
            self._emit("diffcheck_program", program=spec.name,
                       arch=spec.arch, functions=checked,
                       divergences=len(divergences))
        report.elapsed_seconds = time.perf_counter() - started
        counts = report.counts
        self._emit(
            "diffcheck_done", programs=report.programs,
            functions=report.functions_checked, ok=report.ok,
            static_fn=counts["static-fn"], static_fp=counts["static-fp"],
            baseline_disagreement=counts["baseline-disagreement"],
            oracle_mismatch=counts["oracle-mismatch"],
            unexplained_static_fn=len(report.unexplained_static_fns),
            elapsed_seconds=round(report.elapsed_seconds, 3),
        )
        return report

    # ------------------------------------------------------------------

    def _check_program(self, spec, need_oracle, need_baseline):
        """Run the judges over one program.

        Returns ``(functions_checked, [Divergence, ...])``.
        """
        built = build_program(spec)
        detector = DTaint(
            built.binary, name=spec.name,
            config=DTaintConfig(alias_engine=self.alias_engine),
        )
        static_report = detector.run()
        static_vuln = set()
        static_kinds = {}
        for finding in static_report.findings:
            if not finding.sanitized:
                static_vuln.add(finding.function)
                static_kinds.setdefault(finding.function, finding.kind)

        truth = {g.function: g for g in built.ground_truth}
        patterns = {f.function: f.pattern for f in spec.fragments}

        oracle = {}
        if need_oracle:
            oracle = oracle_verdicts(built, max_steps=self.max_steps)
            # A static finding in a non-ground-truth function (a
            # filler) still gets its day in court.
            for name in sorted(static_vuln - set(oracle)):
                oracle[name] = oracle_check(
                    built, name, static_kinds[name],
                    max_steps=self.max_steps,
                )

        baseline = None
        if need_baseline:
            baseline = baseline_flagged(
                built.binary, detector.functions, detector.call_graph,
            )

        divergences = []
        checked = sorted(set(truth) | static_vuln)
        for name in checked:
            divergences.extend(self._classify(
                spec, name,
                expected=(truth[name].vulnerable if name in truth
                          else None),
                static=name in static_vuln,
                oracle=(oracle[name].confirmed if name in oracle
                        else None),
                baseline=(name in baseline if baseline is not None
                          else None),
                pattern=patterns.get(name, ""),
                effect=(oracle[name].effect if name in oracle else ""),
            ))
        return len(checked), divergences

    def _classify(self, spec, name, expected, static, oracle, baseline,
                  pattern, effect):
        def divergence(kind, detail):
            return Divergence(
                kind=kind, program=spec.name, function=name,
                pattern=pattern, expected=expected, static=static,
                oracle=oracle, baseline=baseline, detail=detail,
                explained=EXPLAINED.get((kind, pattern), ""),
                reproducer=spec.to_dict(),
            )

        found = []
        if oracle is not None and expected is not None \
                and oracle != expected:
            found.append(divergence(
                "oracle-mismatch",
                "generator label %s but concrete execution says %s (%s)"
                % (expected, oracle, effect or "no effect"),
            ))
        if oracle is not None and oracle and not static:
            found.append(divergence(
                "static-fn",
                "exploited in emulation (%s) but no unsanitized static "
                "path" % effect,
            ))
        if oracle is not None and static and not oracle:
            found.append(divergence(
                "static-fp",
                "static vulnerable path but the exploit attempt showed "
                "no effect",
            ))
        if baseline is not None and baseline != static:
            found.append(divergence(
                "baseline-disagreement",
                "baseline %s vs static %s" % (
                    "flags" if baseline else "misses",
                    "flags" if static else "misses",
                ),
            ))
        return found

    # ------------------------------------------------------------------

    def _shrink(self, spec, divergence):
        need_oracle = divergence.kind != "baseline-disagreement"
        need_baseline = divergence.kind == "baseline-disagreement"

        def predicate(candidate):
            try:
                _checked, divergences = self._check_program(
                    candidate, need_oracle=need_oracle,
                    need_baseline=need_baseline,
                )
            except Exception:
                return False
            return any(
                d.kind == divergence.kind
                and d.function == divergence.function
                for d in divergences
            )

        return shrink_spec(spec, predicate)

    # ------------------------------------------------------------------

    def _emit(self, event, **fields):
        if self.telemetry is not None:
            self.telemetry.emit(event, **fields)


def run_diffcheck(seed=0, count=20, **kwargs):
    """Convenience wrapper: one sweep, returns the TriageReport."""
    return DiffCheck(seed=seed, count=count, **kwargs).run()
