"""IR expression nodes.

Expressions are immutable and hashable so they can key dictionaries in
the dataflow analyses.  Sizes are byte counts (1, 2 or 4); every
expression evaluates to a 32-bit value unless noted otherwise.
"""

from dataclasses import dataclass


class Ops:
    """Operation names shared by :class:`Binop` and :class:`Unop`.

    The ``32`` suffix mirrors VEX naming; all arithmetic is modulo
    2**32.  Comparison ops yield 0 or 1.
    """

    ADD = "Add32"
    SUB = "Sub32"
    MUL = "Mul32"
    AND = "And32"
    OR = "Or32"
    XOR = "Xor32"
    SHL = "Shl32"
    SHR = "Shr32"            # logical shift right
    SAR = "Sar32"            # arithmetic shift right
    ROR = "Ror32"
    CMP_EQ = "CmpEQ32"
    CMP_NE = "CmpNE32"
    CMP_LT_S = "CmpLT32S"
    CMP_LE_S = "CmpLE32S"
    CMP_LT_U = "CmpLT32U"
    CMP_LE_U = "CmpLE32U"
    # Unary.
    NOT = "Not32"
    NEG = "Neg32"
    U8_TO_32 = "8Uto32"
    S8_TO_32 = "8Sto32"
    U16_TO_32 = "16Uto32"
    S16_TO_32 = "16Sto32"
    TO_8 = "32to8"
    TO_16 = "32to16"

    BINOPS = frozenset(
        [ADD, SUB, MUL, AND, OR, XOR, SHL, SHR, SAR, ROR,
         CMP_EQ, CMP_NE, CMP_LT_S, CMP_LE_S, CMP_LT_U, CMP_LE_U]
    )
    UNOPS = frozenset(
        [NOT, NEG, U8_TO_32, S8_TO_32, U16_TO_32, S16_TO_32, TO_8, TO_16]
    )
    COMPARISONS = frozenset(
        [CMP_EQ, CMP_NE, CMP_LT_S, CMP_LE_S, CMP_LT_U, CMP_LE_U]
    )


@dataclass(frozen=True)
class Expr:
    """Base class for IR expressions."""

    def walk(self):
        """Yield this node and all sub-expressions, pre-order."""
        yield self


@dataclass(frozen=True)
class Const(Expr):
    """A literal constant (unsigned, already reduced mod 2**32)."""

    value: int
    size: int = 4

    def __str__(self):
        return "0x%x" % self.value


@dataclass(frozen=True)
class RdTmp(Expr):
    """Read of a block-local temporary."""

    tmp: int

    def __str__(self):
        return "t%d" % self.tmp


@dataclass(frozen=True)
class Get(Expr):
    """Read of a guest register (canonical lowercase name)."""

    reg: str

    def __str__(self):
        return "GET(%s)" % self.reg


@dataclass(frozen=True)
class Load(Expr):
    """Little/big-endianness is resolved by the lifter; ``size`` bytes."""

    addr: Expr
    size: int = 4
    signed: bool = False

    def walk(self):
        yield self
        yield from self.addr.walk()

    def __str__(self):
        sign = "S" if self.signed else ""
        return "LD%s%d(%s)" % (sign, self.size * 8, self.addr)


@dataclass(frozen=True)
class Binop(Expr):
    op: str
    left: Expr
    right: Expr

    def __post_init__(self):
        if self.op not in Ops.BINOPS:
            raise ValueError("unknown binop %r" % self.op)

    def walk(self):
        yield self
        yield from self.left.walk()
        yield from self.right.walk()

    def __str__(self):
        return "%s(%s,%s)" % (self.op, self.left, self.right)


@dataclass(frozen=True)
class Unop(Expr):
    op: str
    arg: Expr

    def __post_init__(self):
        if self.op not in Ops.UNOPS:
            raise ValueError("unknown unop %r" % self.op)

    def walk(self):
        yield self
        yield from self.arg.walk()

    def __str__(self):
        return "%s(%s)" % (self.op, self.arg)


@dataclass(frozen=True)
class ITE(Expr):
    """If-then-else expression (used for conditional ARM instructions)."""

    cond: Expr
    iftrue: Expr
    iffalse: Expr

    def walk(self):
        yield self
        yield from self.cond.walk()
        yield from self.iftrue.walk()
        yield from self.iffalse.walk()

    def __str__(self):
        return "ITE(%s,%s,%s)" % (self.cond, self.iftrue, self.iffalse)
