"""IR super-blocks: one straight-line guest basic block, lifted."""

from dataclasses import dataclass, field

from repro.ir.expr import Expr
from repro.ir.stmt import Exit, IMark, Stmt, WrTmp


class JumpKind:
    """Block-ending control transfer kinds (VEX naming)."""

    BORING = "Ijk_Boring"
    CALL = "Ijk_Call"
    RET = "Ijk_Ret"
    NO_DECODE = "Ijk_NoDecode"


@dataclass
class IRSB:
    """An IR super-block.

    ``next_expr`` is the fall-through/jump target evaluated when no
    guarded :class:`~repro.ir.stmt.Exit` fires; ``jumpkind`` describes
    the final transfer.  For ``Ijk_Call`` blocks ``return_addr`` holds
    the address execution resumes at after the callee returns.
    """

    addr: int
    stmts: list = field(default_factory=list)
    next_expr: Expr = None
    jumpkind: str = JumpKind.BORING
    return_addr: int = None

    @property
    def instruction_addrs(self):
        return [s.addr for s in self.stmts if isinstance(s, IMark)]

    @property
    def exits(self):
        return [s for s in self.stmts if isinstance(s, Exit)]

    def tmp_count(self):
        return 1 + max(
            (s.tmp for s in self.stmts if isinstance(s, WrTmp)), default=-1
        )

    def pretty(self):
        """Render the block the way ``pyvex``'s pretty printer does."""
        lines = ["IRSB @ 0x%x {" % self.addr]
        for stmt in self.stmts:
            lines.append("    %s" % stmt)
        lines.append("    NEXT: %s [%s]" % (self.next_expr, self.jumpkind))
        lines.append("}")
        return "\n".join(lines)

    def __str__(self):
        return self.pretty()


class IRBuilder:
    """Helper used by the lifters to build an :class:`IRSB` incrementally."""

    def __init__(self, addr):
        self.irsb = IRSB(addr=addr)
        self._next_tmp = 0

    def add(self, stmt):
        if not isinstance(stmt, Stmt):
            raise TypeError("expected Stmt, got %r" % (stmt,))
        self.irsb.stmts.append(stmt)

    def tmp(self, expr):
        """Bind ``expr`` to a fresh temporary and return the RdTmp expr."""
        from repro.ir.expr import RdTmp

        index = self._next_tmp
        self._next_tmp += 1
        self.irsb.stmts.append(WrTmp(index, expr))
        return RdTmp(index)

    def imark(self, addr, length):
        self.irsb.stmts.append(IMark(addr, length))

    def finish(self, next_expr, jumpkind, return_addr=None):
        self.irsb.next_expr = next_expr
        self.irsb.jumpkind = jumpkind
        self.irsb.return_addr = return_addr
        return self.irsb
