"""Concrete IRSB interpreter.

Executes one lifted block against a concrete register file and byte
memory.  Used by the differential tests to check that the lifters'
semantics agree with the independent instruction-level emulator in
:mod:`repro.emu`.
"""

from repro.errors import SymExecError
from repro.ir.expr import Binop, Const, Get, ITE, Load, Ops, RdTmp, Unop
from repro.ir.stmt import Exit, IMark, Put, Store, WrTmp
from repro.utils.bits import ror32, sign_extend, to_signed32, to_unsigned32

_MASK32 = 0xFFFFFFFF


def _eval_binop(op, a, b):
    if op == Ops.ADD:
        return (a + b) & _MASK32
    if op == Ops.SUB:
        return (a - b) & _MASK32
    if op == Ops.MUL:
        return (a * b) & _MASK32
    if op == Ops.AND:
        return a & b
    if op == Ops.OR:
        return a | b
    if op == Ops.XOR:
        return a ^ b
    if op == Ops.SHL:
        shift = b & 0xFF
        return (a << shift) & _MASK32 if shift < 32 else 0
    if op == Ops.SHR:
        shift = b & 0xFF
        return (a >> shift) if shift < 32 else 0
    if op == Ops.SAR:
        shift = b & 0xFF
        if shift >= 32:
            shift = 31
        return to_unsigned32(to_signed32(a) >> shift)
    if op == Ops.ROR:
        return ror32(a, b & 0x1F)
    if op == Ops.CMP_EQ:
        return int(a == b)
    if op == Ops.CMP_NE:
        return int(a != b)
    if op == Ops.CMP_LT_S:
        return int(to_signed32(a) < to_signed32(b))
    if op == Ops.CMP_LE_S:
        return int(to_signed32(a) <= to_signed32(b))
    if op == Ops.CMP_LT_U:
        return int(a < b)
    if op == Ops.CMP_LE_U:
        return int(a <= b)
    raise SymExecError("unhandled binop %s" % op)


def _eval_unop(op, a):
    if op == Ops.NOT:
        return a ^ _MASK32
    if op == Ops.NEG:
        return (-a) & _MASK32
    if op == Ops.U8_TO_32:
        return a & 0xFF
    if op == Ops.S8_TO_32:
        return to_unsigned32(sign_extend(a & 0xFF, 8))
    if op == Ops.U16_TO_32:
        return a & 0xFFFF
    if op == Ops.S16_TO_32:
        return to_unsigned32(sign_extend(a & 0xFFFF, 16))
    if op == Ops.TO_8:
        return a & 0xFF
    if op == Ops.TO_16:
        return a & 0xFFFF
    raise SymExecError("unhandled unop %s" % op)


class IRInterpreter:
    """Interprets IRSBs over a register dict and a memory object.

    ``memory`` must provide ``read(addr, size) -> int`` and
    ``write(addr, value, size)`` with the target's endianness already
    applied (the emulator's RAM object is reused directly).
    """

    def __init__(self, registers, memory):
        self.registers = registers
        self.memory = memory
        self._tmps = {}

    def eval_expr(self, expr):
        if isinstance(expr, Const):
            return to_unsigned32(expr.value)
        if isinstance(expr, RdTmp):
            try:
                return self._tmps[expr.tmp]
            except KeyError:
                raise SymExecError("read of unwritten temporary t%d" % expr.tmp)
        if isinstance(expr, Get):
            return to_unsigned32(self.registers.get(expr.reg, 0))
        if isinstance(expr, Load):
            addr = self.eval_expr(expr.addr)
            value = self.memory.read(addr, expr.size)
            if expr.signed:
                value = to_unsigned32(sign_extend(value, expr.size * 8))
            return value
        if isinstance(expr, Binop):
            return _eval_binop(
                expr.op, self.eval_expr(expr.left), self.eval_expr(expr.right)
            )
        if isinstance(expr, Unop):
            return _eval_unop(expr.op, self.eval_expr(expr.arg))
        if isinstance(expr, ITE):
            if self.eval_expr(expr.cond):
                return self.eval_expr(expr.iftrue)
            return self.eval_expr(expr.iffalse)
        raise SymExecError("cannot evaluate %r" % (expr,))

    def run(self, irsb):
        """Execute ``irsb``; return ``(next_pc, jumpkind)``."""
        self._tmps = {}
        for stmt in irsb.stmts:
            if isinstance(stmt, IMark):
                continue
            if isinstance(stmt, WrTmp):
                self._tmps[stmt.tmp] = self.eval_expr(stmt.expr)
            elif isinstance(stmt, Put):
                self.registers[stmt.reg] = self.eval_expr(stmt.expr)
            elif isinstance(stmt, Store):
                addr = self.eval_expr(stmt.addr)
                self.memory.write(addr, self.eval_expr(stmt.data), stmt.size)
            elif isinstance(stmt, Exit):
                if self.eval_expr(stmt.guard):
                    return stmt.target, stmt.jumpkind
            else:
                raise SymExecError("unhandled statement %r" % (stmt,))
        return self.eval_expr(irsb.next_expr), irsb.jumpkind
