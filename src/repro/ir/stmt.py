"""IR statement nodes."""

from dataclasses import dataclass

from repro.ir.expr import Expr


@dataclass(frozen=True)
class Stmt:
    """Base class for IR statements."""


@dataclass(frozen=True)
class IMark(Stmt):
    """Marks the start of the translation of one guest instruction."""

    addr: int
    length: int

    def __str__(self):
        return "------ IMark(0x%x, %d) ------" % (self.addr, self.length)


@dataclass(frozen=True)
class WrTmp(Stmt):
    """Assign an expression to a block-local temporary (written once)."""

    tmp: int
    expr: Expr

    def __str__(self):
        return "t%d = %s" % (self.tmp, self.expr)


@dataclass(frozen=True)
class Put(Stmt):
    """Write a guest register."""

    reg: str
    expr: Expr

    def __str__(self):
        return "PUT(%s) = %s" % (self.reg, self.expr)


@dataclass(frozen=True)
class Store(Stmt):
    """Write ``size`` bytes of ``data`` to memory at ``addr``."""

    addr: Expr
    data: Expr
    size: int = 4

    def __str__(self):
        return "ST%d(%s) = %s" % (self.size * 8, self.addr, self.data)


@dataclass(frozen=True)
class Exit(Stmt):
    """Guarded side-exit: if ``guard`` is non-zero, jump to ``target``."""

    guard: Expr
    target: int
    jumpkind: str

    def __str__(self):
        return "if (%s) goto 0x%x [%s]" % (self.guard, self.target, self.jumpkind)
