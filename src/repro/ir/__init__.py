"""A VEX-flavoured intermediate representation.

The paper lifts firmware binaries to Valgrind's VEX IR via angr.  This
package provides the same shape of IR: temporaries written once per
block, ``Get``/``Put`` register accesses, explicit ``Load``/``Store``
memory operations, and guarded ``Exit`` statements, grouped into IR
super-blocks (:class:`~repro.ir.irsb.IRSB`).

Condition flags follow the VEX "thunk" convention: comparison
instructions store their operands into the pseudo-registers ``cc_op``,
``cc_dep1`` and ``cc_dep2``; conditional branches materialise the
condition from the thunk.  This keeps branch constraints recoverable by
the symbolic engine without bit-level flag arithmetic.
"""

from repro.ir.expr import Binop, Const, Get, ITE, Load, Ops, RdTmp, Unop
from repro.ir.irsb import IRSB, JumpKind
from repro.ir.stmt import Exit, IMark, Put, Store, WrTmp

__all__ = [
    "Binop",
    "Const",
    "Exit",
    "Get",
    "IMark",
    "IRSB",
    "ITE",
    "JumpKind",
    "Load",
    "Ops",
    "Put",
    "RdTmp",
    "Store",
    "Unop",
    "WrTmp",
]
