"""Assemble a corpus target into a loadable binary with ground truth."""

from dataclasses import dataclass, field

from repro.loader.binary import load_elf
from repro.loader.link import build_executable


@dataclass(frozen=True)
class GroundTruth:
    """One planted vulnerability (or deliberately safe pattern)."""

    function: str
    kind: str                # 'buffer-overflow' | 'command-injection'
    sink: str                # sink function name or 'loop'
    source: str
    cve: str = ""            # CVE/EDB label, or '' for zero-days
    vulnerable: bool = True  # False marks a sanitized decoy
    # Protocol-shaped attack input for PoC validation (e.g. an RTSP
    # request); empty means the generic byte-flood payload.
    poc_input: bytes = b""


@dataclass
class BuiltBinary:
    """An assembled target: ELF bytes, loaded form, and ground truth."""

    name: str
    arch: str
    elf_bytes: bytes
    binary: object
    program: object
    ground_truth: list = field(default_factory=list)

    @property
    def size_kb(self):
        return len(self.elf_bytes) / 1024.0

    def expected_vulnerabilities(self):
        return [g for g in self.ground_truth if g.vulnerable]

    def expected_safe(self):
        return [g for g in self.ground_truth if not g.vulnerable]


def build_binary(name, arch, source, imports, entry="main", ground_truth=()):
    """Assemble ``source`` and return a :class:`BuiltBinary`."""
    elf_bytes, program = build_executable(
        arch, source, imports=sorted(set(imports)), entry=entry
    )
    return BuiltBinary(
        name=name,
        arch=arch,
        elf_bytes=elf_bytes,
        binary=load_elf(elf_bytes),
        program=program,
        ground_truth=list(ground_truth),
    )
