"""The paper's running example: ``foo``/``woo`` (Figs. 5-7).

``woo`` stores ``deref(arg1+0x24)`` into ``deref(arg0+0x4c)`` and
fills the buffer from ``recv``; ``foo`` then copies ``ret_woo`` bytes
from that buffer with ``memcpy`` — the interprocedural recv→memcpy
flow Figure 7 draws.
"""

from repro.corpus.builder import GroundTruth, build_binary

FOO_WOO_SRC = r"""
.globl foo
foo:
    push {r4, r5, lr}
    sub sp, sp, #0x118
    mov r5, r0
    mov r4, r1
    bl woo
    mov r2, r0                @ n = ret_woo
    ldr r1, [r5, #0x4c]       @ src = deref(arg0 + 0x4c)
    add r0, sp, #0x18         @ dest = sp - 0x100 (paper's layout)
    bl memcpy                 @ sink
    add sp, sp, #0x118
    pop {r4, r5, pc}

.globl woo
woo:
    push {r5, lr}
    ldr r5, [r1, #0x24]       @ buf = deref(arg1 + 0x24)
    str r5, [r0, #0x4c]       @ deref(arg0 + 0x4c) = buf
    mov r2, #0x200
    mov r1, r5
    bl recv                   @ source
    pop {r5, pc}
"""

GROUND_TRUTH = [
    GroundTruth(function="foo", kind="buffer-overflow", sink="memcpy",
                source="recv"),
]


def build_foo_woo():
    """Build the Fig. 5 binary with its ground truth."""
    return build_binary(
        name="foo-woo", arch="arm", source=FOO_WOO_SRC,
        imports=["memcpy", "recv"], entry="foo",
        ground_truth=GROUND_TRUTH,
    )
