"""Mini-OpenSSL: the Heartbleed data flow at binary level (Figs. 2-3).

The binary preserves every property that makes Heartbleed hard for
binary taint analysis (paper §II-B):

* the ``n2s`` macro is inlined as ``LDRB``/``LDRB``/``ORR ..., LSL #8``
  — there is no ``n2s`` symbol to anchor on;
* the record buffer travels through nested structure fields:
  ``s->s3`` at offset 0x58, ``rbuf.buf`` at ``s3+0xEC``, and
  ``rrec.data`` at ``s3+0x118`` — a pointer *stored to memory*
  (Algorithm 1's second alias kind);
* the source (``BIO_read`` in OpenSSL, modelled by Table I's ``read``)
  and the sink (``memcpy`` in ``tls1_process_heartbeat``) live in
  *sibling* callees of ``ssl3_read_bytes``, so only interprocedural
  definition updating connects them.

Substitution note: the real OpenSSL pulls bytes via ``BIO_read``; we
call ``read`` (same signature shape, and a Table I source) so the
pipeline exercises the identical code path.
"""

from repro.corpus.builder import GroundTruth, build_binary

# Structure offsets copied from the paper's Fig. 3 disassembly.
OFF_S3 = 0x58          # SSL* -> SSL3_STATE*
OFF_RBUF_BUF = 0xEC    # SSL3_STATE* -> rbuf.buf
OFF_RREC_DATA = 0x118  # SSL3_STATE* -> rrec.data
OFF_RREC_LEN = 0x4C    # SSL3_STATE* -> rrec.length

OPENSSL_SRC = r"""
.globl ssl3_read_n
ssl3_read_n:                      @ (SSL *s, int n)
    push {r4, r8, r9, lr}
    mov r11, r0
    ldr r8, [r11, #0x58]          @ s3 = s->s3
    ldr r9, [r8, #0xec]           @ rbuf.buf
    str r9, [r8, #0x118]          @ rrec.data = rbuf.buf   (stored pointer)
    mov r0, r11
    ldr r0, [r11, #0x44]          @ fd = s->rbio_fd
    mov r1, r9                    @ buf
    mov r2, #0x200                @ len
    bl read                       @ BIO_read in real OpenSSL (source)
    str r0, [r8, #0x4c]           @ rrec.length = read_n
    pop {r4, r8, r9, pc}

.globl tls1_process_heartbeat
tls1_process_heartbeat:           @ (SSL *s)
    push {r4, r5, r6, r7, lr}
    sub sp, sp, #0x20
    ldr r3, [r0, #0x58]           @ s3
    ldr r5, [r3, #0x118]          @ p = rrec.data
    ldrb r6, [r5, #1]             @ n2s, inlined: hi byte
    ldrb r2, [r5, #2]             @ n2s, inlined: lo byte
    orr r6, r2, r6, lsl #8        @ payload = (hi << 8) | lo
    mov r0, #0x4000
    bl malloc                     @ bp = buffer for the response
    mov r7, r0
    add r0, r7, #3                @ bp + header
    add r1, r5, #3                @ pl = p + 3
    mov r2, r6                    @ n = payload  -- NO bounds check
    bl memcpy                     @ Heartbleed
    mov r0, r7
    bl ssl3_write_bytes
    mov r0, #0
    add sp, sp, #0x20
    pop {r4, r5, r6, r7, pc}

.globl tls1_process_heartbeat_fixed
tls1_process_heartbeat_fixed:     @ the patched version, for contrast
    push {r4, r5, r6, r7, lr}
    sub sp, sp, #0x20
    ldr r3, [r0, #0x58]
    ldr r4, [r3, #0x4c]           @ rrec.length
    ldr r5, [r3, #0x118]
    ldrb r6, [r5, #1]
    ldrb r2, [r5, #2]
    orr r6, r2, r6, lsl #8
    add r2, r6, #0x13             @ 1 + 2 + payload + 16
    cmp r2, r4                    @ if (1 + 2 + payload + 16 > s->s3->rrec.length)
    bgt hb_silently_discard
    mov r0, #0x4000
    bl malloc
    mov r7, r0
    add r0, r7, #3
    add r1, r5, #3
    mov r2, r6
    bl memcpy                     @ bounded by the check above
    mov r0, r7
    bl ssl3_write_bytes
hb_silently_discard:
    mov r0, #0
    add sp, sp, #0x20
    pop {r4, r5, r6, r7, pc}

.globl ssl3_read_bytes
ssl3_read_bytes:                  @ (SSL *s)
    push {r4, r11, lr}
    mov r11, r0
    mov r0, r11
    bl ssl3_read_n
    mov r0, r11
    bl tls1_process_heartbeat
    mov r0, r11
    bl tls1_process_heartbeat_fixed
    mov r0, #0
    pop {r4, r11, pc}

.globl ssl3_write_bytes
ssl3_write_bytes:
    push {lr}
    bl write
    pop {pc}
"""

IMPORTS = ["read", "write", "memcpy", "malloc"]

GROUND_TRUTH = [
    GroundTruth(
        function="tls1_process_heartbeat", kind="buffer-overflow",
        sink="memcpy", source="read", cve="CVE-2014-0160",
    ),
    GroundTruth(
        function="tls1_process_heartbeat_fixed", kind="buffer-overflow",
        sink="memcpy", source="read", vulnerable=False,
    ),
]


def build_openssl():
    """Build the mini-OpenSSL target with its ground truth."""
    return build_binary(
        name="openssl", arch="arm", source=OPENSSL_SRC,
        imports=IMPORTS, entry="ssl3_read_bytes",
        ground_truth=GROUND_TRUTH,
    )
