"""Synthetic firmware corpus.

Real vendor firmware is proprietary and unavailable offline, so the
evaluation targets are generated: genuine ARM/MIPS machine code in
genuine ELF containers, with handler functions reproducing the exact
source→sink shapes of the paper's CVEs (Tables IV/V), a mini-OpenSSL
with the Heartbleed data flow (Figs. 2-3), procedurally generated
filler functions scaled to Table II, and a 6,529-image fleet model for
Figure 1.  Ground truth is known exactly, which lets the benchmarks
measure recall the paper could only sample by hand.
"""

from repro.corpus.builder import BuiltBinary, build_binary

__all__ = ["BuiltBinary", "build_binary"]
