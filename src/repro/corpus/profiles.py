"""The six evaluation firmware images (paper Tables II-V).

Each profile names the vendor image, its architecture, the Table II
shape targets (functions / blocks / call-graph edges / size), the
module layout (Uniview and Hikvision are analysed per-module, paper
§V-A), and the planted vulnerabilities from Tables IV and V.  Filler
functions are generated procedurally (seeded, reproducible) around the
handler functions so the binaries reach the paper's scale; sink-count
targets are met by giving fillers safe calls to Table I sink functions.

``scale`` shrinks every count proportionally for quick runs; the
planted vulnerabilities are never scaled away.
"""

import random
from dataclasses import dataclass, field

from repro.corpus import vulnpatterns as vp
from repro.corpus.builder import GroundTruth, build_binary
from repro.corpus.minicc import (
    Addr,
    Arg,
    BinOp,
    Call,
    CallPtr,
    DeclBuf,
    DeclVar,
    Glob,
    If,
    Imm,
    Load,
    MiniFunc,
    Ret,
    Set,
    Store,
    Str,
    Var,
    While,
    compiler_for,
)

BO = "buffer-overflow"
CMDI = "command-injection"


@dataclass
class FirmwareProfile:
    """Shape and contents of one synthetic vendor image."""

    index: int
    vendor: str
    version: str
    arch: str
    binary_name: str
    # Table II targets.
    size_kb: int
    functions: int
    blocks: int
    call_edges: int
    # Module prefixes; analysed modules power the Table III subset.
    modules: tuple
    analyzed_modules: tuple
    analyzed_functions: int
    # Table III targets.
    sinks_count: int
    vulnerable_paths: int
    vulnerabilities: int
    # Pattern factories: (factory, kwargs, module_prefix)
    handlers: list = field(default_factory=list)
    # Filler shape.
    calls_per_filler: tuple = (2, 6)
    branches_per_filler: tuple = (2, 5)
    sink_call_rate: float = 0.8
    seed: int = 0


def multi_source_cmdi(name, sources, sink="system", vulnerable=True, cve=""):
    """One sink reachable from several sources on different branches.

    Produces ``len(sources)`` vulnerable paths but a single distinct
    vulnerability — the mechanism behind Table III's path surplus.
    """
    body = [DeclVar("cmd", Imm(0)), DeclVar("mode", Arg(1))]
    ladder = []
    for index, source in enumerate(sources):
        get = (
            Call("cmd", "getenv", [Str("VAR_%s_%d" % (name, index))])
            if source == "getenv"
            else Call("cmd", source, [Arg(0), Str("f_%s_%d" % (name, index))])
        )
        ladder.append(
            If(Var("mode"), "eq", Imm(index), [get])
        )
    body += ladder
    run = [Call(None, sink, [Var("cmd")] +
                ([Str("r")] if sink == "popen" else []))]
    if vulnerable:
        body += run
    else:
        body += vp._semicolon_guard("cmd", run)
    body += [Ret(Imm(0))]
    truth = [
        GroundTruth(function=name, kind=CMDI, sink=sink, source=source,
                    cve=cve, vulnerable=vulnerable)
        for source in sources
    ]
    return [MiniFunc(name, 2, body)], truth


def multi_source_bo(name, source_count, sink="sscanf", vulnerable=True):
    """A parse sink fed by several read callsites (path surplus, BO).

    Each mode branch reads into its *own* buffer and points the parse
    cursor at it, so every explored path carries a distinct taint
    object and source callsite — one sink, ``source_count`` paths.
    """
    body = [
        DeclBuf("out", 180),
        DeclVar("mode", Arg(1)),
        DeclVar("p", Imm(0)),
    ]
    # An else-if ladder: branches are mutually exclusive, so the
    # explored path count stays linear in source_count.
    ladder = None
    for index in reversed(range(source_count)):
        buf = "wire%d" % index
        body.append(DeclBuf(buf, 256))
        branch = If(Var("mode"), "eq", Imm(index), [
            Call(None, "read", [Arg(0), Addr(buf), Imm(256)]),
            Set("p", Addr(buf)),
        ], [ladder] if ladder is not None else [])
        ladder = branch
    body.append(ladder)
    if sink == "sscanf":
        parse = [Call(None, "sscanf", [Var("p"), Str("Session: %254s"),
                                       Addr("out")])]
    else:
        body.append(DeclVar("n"))
        body.append(Set("n", vp.Load(Var("p"), 0)))
        parse = [Call(None, sink, [Addr("out"), Var("p"), Var("n")])]
    if vulnerable:
        body += parse
    else:
        body += [DeclVar("k"), Call("k", "strlen", [Var("p")]),
                 If(Var("k"), "lt", Imm(64), parse)]
    body += [Ret(Imm(0))]
    truth = [
        GroundTruth(function=name, kind=BO, sink=sink, source="read",
                    vulnerable=vulnerable)
        for _ in range(source_count)
    ]
    return [MiniFunc(name, 2, body)], truth


def indirect_dispatch_bo(name, source_count, vulnerable=True):
    """The Hikvision URL-parse shape: alias + structure similarity.

    A parser fills a request struct (tainted buffer pointer at +0,
    embedded length at +4) and hands it to a dispatcher, which calls a
    handler through a function pointer kept in *writable* data — only
    data-structure layout similarity (Formula 2) identifies the callee,
    and only the stored-pointer alias connects the struct fields.
    Returns (functions, ground_truth, extra_data_lines).
    """
    slot = "%s_slot" % name
    handler_name = "%s_handler" % name
    decoy_name = "%s_decoy" % name
    # A per-family field offset so different dispatch families have
    # distinguishable request layouts (real structs differ too).
    tag_offset = 0x10 + 4 * (sum(map(ord, name)) % 8)

    copy = [Call(None, "memcpy", [Addr("frame"), Var("q"), Var("n")])]
    handler_body = [
        DeclBuf("frame", 48),
        DeclVar("q", Load(Arg(0), 0)),       # req->data (char*)
        DeclVar("n", Load(Arg(0), 4)),       # req->len  (embedded length)
        DeclVar("tag", Load(Arg(0), tag_offset)),
    ]
    if vulnerable:
        handler_body += copy
    else:
        handler_body += [If(Var("n"), "ltu", Imm(48), copy)]
    handler_body += [Ret(Imm(0))]
    handler = MiniFunc(handler_name, 1, handler_body)

    decoy = MiniFunc(decoy_name, 1, [
        DeclVar("flags", Load(Arg(0), 8)),   # touches a different field
        Ret(Var("flags")),
    ])

    dispatch_name = "%s_dispatch" % name
    dispatch = MiniFunc(dispatch_name, 1, [
        DeclVar("q", Load(Arg(0), 0)),       # touch req->data: layout evidence
        DeclVar("n", Load(Arg(0), 4)),
        DeclVar("tag", Load(Arg(0), tag_offset)),
        DeclVar("fp", Load(Glob(slot))),     # writable slot: no const folding
        CallPtr(None, Var("fp"), [Arg(0)]),
        Ret(Imm(0)),
    ])

    parser_body = [
        DeclBuf("req", 64),
        DeclVar("mode", Arg(1)),
        DeclVar("p", Imm(0)),
    ]
    ladder = None
    for index in reversed(range(source_count)):
        buf = "wire%d" % index
        parser_body.append(DeclBuf(buf, 256))
        ladder = If(Var("mode"), "eq", Imm(index), [
            Call(None, "read", [Arg(0), Addr(buf), Imm(256)]),
            Set("p", Addr(buf)),
        ], [ladder] if ladder is not None else [])
    parser_body.append(ladder)
    parser_body += [
        DeclVar("n", Load(Var("p"), 0)),
        Store(Addr("req"), 0, Var("p")),     # req->data = p (stored pointer)
        Store(Addr("req"), 4, Var("n")),
        Store(Addr("req"), tag_offset, Imm(1)),
        Call(None, dispatch_name, [Addr("req")]),
        Ret(Imm(0)),
    ]
    parser = MiniFunc(name, 2, parser_body)

    truth = [
        GroundTruth(function=handler_name, kind=BO, sink="memcpy",
                    source="read", vulnerable=vulnerable)
        for _ in range(source_count)
    ]
    extra_data = ["%s: .word %s" % (slot, handler_name)]
    return [parser, dispatch, handler, decoy], truth, extra_data


# ---------------------------------------------------------------------------
# Filler generation.

_SAFE_SINK_CALLS = (
    ("strcpy", lambda rng: [Addr("fbuf"), Str("const-value")]),
    ("memcpy", lambda rng: [Addr("fbuf"), Str("const-value"),
                            Imm(rng.randrange(4, 16))]),
    ("sprintf", lambda rng: [Addr("fbuf"), Str("v=%d"),
                             Imm(rng.randrange(100))]),
    ("strncpy", lambda rng: [Addr("fbuf"), Str("const"), Imm(8)]),
    ("strcat", lambda rng: [Addr("fbuf"), Str("suffix")]),
    ("system", lambda rng: [Str("/bin/true")]),
)
_HELPER_CALLS = ("strlen", "strcmp", "atoi", "memset", "close")


def make_filler(name, rng, callees, profile):
    """One procedurally generated function.

    Shape: locals + a buffer, arithmetic, conditionals, a loop in a
    third of the functions, calls to other fillers (call-graph edges)
    and — at ``sink_call_rate`` — one safe call to a Table I sink
    (the untainted sink population behind Table III's sink counts).
    """
    body = [
        DeclBuf("fbuf", 4 * rng.randrange(4, 17)),
        DeclVar("x", Arg(0)),
        DeclVar("y", Imm(rng.randrange(1, 255))),
    ]
    branch_lo, branch_hi = profile.branches_per_filler
    for b in range(rng.randrange(branch_lo, branch_hi + 1)):
        op = rng.choice(["+", "-", "&", "|", "^"])
        then_body = [Set("y", BinOp(op, Var("y"), Var("x")))]
        else_body = [Set("y", BinOp("+", Var("y"), Imm(rng.randrange(1, 64))))]
        body.append(
            If(Var("x"), rng.choice(["lt", "gt", "eq", "ne"]),
               Imm(rng.randrange(256)), then_body, else_body)
        )
    if rng.random() < 0.34:
        body += [
            DeclVar("i%d" % rng.randrange(1000), Imm(0)) if False else
            DeclVar("cnt", Imm(0)),
            While(Var("cnt"), "lt", Var("x"), [
                Set("cnt", BinOp("+", Var("cnt"), Imm(1))),
                Set("y", BinOp("^", Var("y"), Var("cnt"))),
            ]),
        ]
    call_lo, call_hi = profile.calls_per_filler
    n_calls = rng.randrange(call_lo, call_hi + 1)
    chosen = rng.sample(callees, min(n_calls, len(callees))) if callees else []
    for callee in chosen:
        body.append(Call(None, callee, [Var("y")]))
    # sink_call_rate is the expected number of (safe) sink calls per
    # filler; rates above 1.0 emit several.
    sink_calls = int(profile.sink_call_rate)
    if rng.random() < profile.sink_call_rate - sink_calls:
        sink_calls += 1
    for _ in range(sink_calls):
        sink_name, arg_factory = rng.choice(_SAFE_SINK_CALLS)
        body.append(Call(None, sink_name, arg_factory(rng)))
    if rng.random() < 0.3:
        body.append(Call(None, rng.choice(_HELPER_CALLS), [Addr("fbuf")]))
    body.append(Ret(Var("y")))
    return MiniFunc(name, 1, body)


# ---------------------------------------------------------------------------
# The six profiles.


def _dlink_645_handlers():
    return [
        (vp.cve_2013_7389_strncpy, {"name": "cgi_set_password"}, "cgi_"),
        (vp.cve_2013_7389_sprintf, {"name": "cgi_render_cookie"}, "cgi_"),
        (vp.cve_2016_5681, {"name": "cgi_session_check",
                            "vulnerable": False}, "cgi_"),
        (vp.cve_2015_2051, {"name": "cgi_soap_action"}, "cgi_"),
        (multi_source_cmdi, {"name": "cgi_do_cmd",
                             "sources": ["getenv", "websGetVar",
                                         "websGetVar", "find_var"]}, "cgi_"),
        (vp.cve_2015_2051, {"name": "cgi_soap_safe",
                            "vulnerable": False}, "cgi_"),
    ]


def _dlink_890_handlers():
    return [
        (vp.cve_2016_5681, {"name": "cgi_session_cookie"}, "cgi_"),
        (multi_source_cmdi, {"name": "cgi_soap_action",
                             "cve": "CVE-2015-2051",
                             "sources": ["getenv", "getenv", "getenv",
                                         "getenv"]}, "cgi_"),
        (vp.cve_2013_7389_strncpy, {"name": "cgi_password_safe",
                                    "vulnerable": False}, "cgi_"),
    ]


def _netgear_1000_handlers():
    return [
        (multi_source_cmdi, {"name": "setup_hostname",
                             "cve": "CVE-2017-6334",
                             "sources": ["websGetVar"] * 4}, "setup_"),
        (multi_source_cmdi, {"name": "setup_ping",
                             "cve": "CVE-2017-6077",
                             "sources": ["websGetVar"] * 4}, "setup_"),
        (multi_source_cmdi, {"name": "setup_dns",
                             "sources": ["websGetVar"] * 4}, "setup_"),
        (multi_source_cmdi, {"name": "setup_route",
                             "sources": ["getenv"] * 3}, "setup_"),
        (multi_source_cmdi, {"name": "setup_ntp",
                             "sources": ["websGetVar"] * 3}, "setup_"),
        (vp.zero_day_fgets_strcpy, {"name": "setup_read_config"}, "setup_"),
        (multi_source_cmdi, {"name": "setup_safe_cmd",
                             "sources": ["websGetVar"] * 2,
                             "vulnerable": False}, "setup_"),
        (vp.zero_day_loop_copy, {"name": "setup_copy_bounded",
                                 "vulnerable": False}, "setup_"),
    ]


def _netgear_2200_handlers():
    return [
        (multi_source_cmdi, {"name": "httpd_exec_cmd", "sink": "popen",
                             "cve": "EDB-ID:43055",
                             "sources": ["find_val"] * 7}, "httpd_"),
        (multi_source_cmdi, {"name": "httpd_tracert",
                             "sources": ["websGetVar"] * 7}, "httpd_"),
        (multi_source_cmdi, {"name": "httpd_safe_filter",
                             "sources": ["websGetVar"] * 3,
                             "vulnerable": False}, "httpd_"),
        (vp.zero_day_read_memcpy, {"name": "httpd_frame_safe",
                                   "vulnerable": False}, "httpd_"),
    ]


def _uniview_handlers():
    return [
        (multi_source_bo, {"name": "rtsp_parse_session",
                           "source_count": 10}, "rtsp_"),
        (vp.zero_day_sscanf, {"name": "rtsp_parse_safe",
                              "vulnerable": False}, "rtsp_"),
        (multi_source_cmdi, {"name": "http_safe_cmd",
                             "sources": ["getenv"] * 2,
                             "vulnerable": False}, "http_"),
    ]


def _hikvision_handlers():
    return [
        (multi_source_bo, {"name": "isapi_parse_frame", "sink": "memcpy",
                           "source_count": 6}, "isapi_"),
        (multi_source_bo, {"name": "http_parse_uri", "sink": "sscanf",
                           "source_count": 6}, "http_"),
        (multi_source_bo, {"name": "onvif_parse_soap", "sink": "sscanf",
                           "source_count": 6}, "onvif_"),
        (vp.zero_day_loop_copy, {"name": "rtsp_copy_describe"}, "rtsp_"),
        (vp.zero_day_loop_copy, {"name": "rtsp_copy_setup"}, "rtsp_"),
        (indirect_dispatch_bo, {"name": "http_parse_args",
                                "source_count": 10}, "http_"),
        (vp.zero_day_read_memcpy, {"name": "isapi_frame_safe",
                                   "vulnerable": False}, "isapi_"),
        (vp.zero_day_loop_copy, {"name": "rtsp_copy_safe",
                                 "vulnerable": False}, "rtsp_"),
    ]


PROFILES = {
    "dir645": FirmwareProfile(
        index=1, vendor="D-Link", version="DIR-645_1.03", arch="mips",
        binary_name="cgibin", size_kb=156, functions=237, blocks=3414,
        call_edges=1087, modules=("cgi_",), analyzed_modules=(),
        analyzed_functions=237, sinks_count=176, vulnerable_paths=7,
        vulnerabilities=4, handlers=_dlink_645_handlers(),
        calls_per_filler=(3, 6), branches_per_filler=(3, 6),
        sink_call_rate=0.72, seed=645,
    ),
    "dir890l": FirmwareProfile(
        index=2, vendor="D-Link", version="DIR-890L_1.03", arch="arm",
        binary_name="cgibin", size_kb=151, functions=358, blocks=3913,
        call_edges=1418, modules=("cgi_",), analyzed_modules=(),
        analyzed_functions=358, sinks_count=276, vulnerable_paths=5,
        vulnerabilities=2, handlers=_dlink_890_handlers(),
        calls_per_filler=(3, 5), branches_per_filler=(2, 4),
        sink_call_rate=0.76, seed=890,
    ),
    "dgn1000": FirmwareProfile(
        index=3, vendor="Netgear", version="DGN1000-V1.1.00.46", arch="mips",
        binary_name="setup.cgi", size_kb=331, functions=732, blocks=4943,
        call_edges=2457, modules=("setup_",), analyzed_modules=(),
        analyzed_functions=732, sinks_count=958, vulnerable_paths=19,
        vulnerabilities=6, handlers=_netgear_1000_handlers(),
        calls_per_filler=(2, 5), branches_per_filler=(1, 3),
        sink_call_rate=1.31, seed=1000,
    ),
    "dgn2200": FirmwareProfile(
        index=4, vendor="Netgear", version="DGN2200-V1.0.0.50", arch="mips",
        binary_name="httpd", size_kb=994, functions=796, blocks=11183,
        call_edges=4497, modules=("httpd_",), analyzed_modules=(),
        analyzed_functions=796, sinks_count=1264, vulnerable_paths=14,
        vulnerabilities=2, handlers=_netgear_2200_handlers(),
        calls_per_filler=(4, 7), branches_per_filler=(4, 7),
        sink_call_rate=1.59, seed=2200,
    ),
    "uniview": FirmwareProfile(
        index=5, vendor="Uniview", version="IPC_6201", arch="arm",
        binary_name="mwareserver", size_kb=4813, functions=6714,
        blocks=99958, call_edges=32495,
        modules=("rtsp_", "http_", "media_", "ptz_", "store_", "sys_"),
        analyzed_modules=("rtsp_", "http_"), analyzed_functions=430,
        sinks_count=447, vulnerable_paths=10, vulnerabilities=1,
        handlers=_uniview_handlers(),
        calls_per_filler=(3, 7), branches_per_filler=(3, 6),
        sink_call_rate=1.06, seed=6201,
    ),
    "hikvision": FirmwareProfile(
        index=6, vendor="Hikvision", version="DS-2CD6233F", arch="arm",
        binary_name="centaurus", size_kb=13199, functions=14035,
        blocks=219945, call_edges=68974,
        modules=("rtsp_", "http_", "onvif_", "isapi_", "init_", "fsupd_",
                 "proto_", "media_"),
        analyzed_modules=("rtsp_", "http_", "onvif_", "isapi_"),
        analyzed_functions=3233, sinks_count=2052, vulnerable_paths=30,
        vulnerabilities=6, handlers=_hikvision_handlers(),
        calls_per_filler=(3, 7), branches_per_filler=(3, 6),
        sink_call_rate=0.65, seed=6233,
    ),
}

PROFILE_ORDER = ("dir645", "dir890l", "dgn1000", "dgn2200", "uniview",
                 "hikvision")


def build_firmware(key, scale=1.0, profile=None):
    """Build one profile's binary at ``scale``; returns a BuiltBinary.

    Handler (vulnerable + decoy) functions are always included; filler
    counts, and therefore blocks/edges/sinks, scale linearly.  An
    explicit ``profile`` overrides the registry entry for ``key`` —
    version-pair fixtures patch one handler and rebuild.
    """
    profile = profile or PROFILES[key]
    rng = random.Random(profile.seed)

    handler_funcs = []
    ground_truth = []
    handler_modules = []
    extra_data = []
    for factory, kwargs, module in profile.handlers:
        produced = factory(**kwargs)
        if len(produced) == 3:
            funcs, truth, data_lines = produced
            extra_data.extend(data_lines)
        else:
            funcs, truth = produced
        handler_funcs.extend(funcs)
        ground_truth.extend(truth)
        handler_modules.extend([module] * len(funcs))

    total_functions = max(
        int(profile.functions * scale), len(handler_funcs) + 4
    )
    filler_total = total_functions - len(handler_funcs)

    # Distribute fillers over modules; analysed modules receive the
    # Table III fraction.
    analyzed_target = max(
        int(profile.analyzed_functions * scale), len(handler_funcs) + 2
    )
    fillers_analyzed = max(analyzed_target - len(handler_funcs), 2)
    analyzed_mods = profile.analyzed_modules or profile.modules
    other_mods = [m for m in profile.modules if m not in analyzed_mods]

    filler_specs = []
    for index in range(filler_total):
        if index < fillers_analyzed or not other_mods:
            module = analyzed_mods[index % len(analyzed_mods)]
        else:
            module = other_mods[index % len(other_mods)]
        filler_specs.append("%sfn_%04d" % (module, index))

    functions = []
    for index, name in enumerate(filler_specs):
        # Callees: earlier fillers only (keeps the call graph acyclic),
        # preferring nearby ones the way compilation units cluster.
        window = filler_specs[max(0, index - 40):index]
        functions.append(make_filler(name, rng, window, profile))
    functions.extend(handler_funcs)

    compiler = compiler_for(profile.arch, key)
    source, imports = compiler.compile_module(functions,
                                              extra_data=extra_data)
    built = build_binary(
        name="%s/%s" % (profile.version, profile.binary_name),
        arch=profile.arch,
        source=source,
        imports=imports,
        entry=functions[0].name,
        ground_truth=ground_truth,
    )
    built.profile = profile
    built.scale = scale
    return built


def analyzed_module_prefixes(key):
    """Module prefixes DTaint should analyse for this image."""
    profile = PROFILES[key]
    prefixes = list(profile.analyzed_modules or profile.modules)
    # Handlers keep their own prefixes.
    for _factory, kwargs, module in profile.handlers:
        if module not in prefixes:
            prefixes.append(module)
    return tuple(prefixes)
