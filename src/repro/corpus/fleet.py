"""The 6,529-image firmware fleet (paper §II-A, Figure 1).

The paper crawled 6,529 firmware images from 12 manufacturers
(2009-2016) and found that FIRMADYNE could boot fewer than 670 of them;
5,023 had no source code available.  This module generates that fleet
as metadata records with per-image *hardware traits* (container
format, encryption, proprietary peripherals, NVRAM defaults, network
init) drawn from seeded vendor-specific distributions, so the boot
model in :mod:`repro.firmware.emulation` fails for the same modeled
reasons the paper reports — not from a hard-coded table.
"""

import random
from dataclasses import dataclass, field

VENDORS = (
    # (name, share, peripheral_risk, nvram_risk, open_source_rate)
    ("D-Link", 0.14, 0.45, 0.50, 0.30),
    ("Netgear", 0.13, 0.50, 0.55, 0.28),
    ("TP-Link", 0.12, 0.55, 0.50, 0.25),
    ("Linksys", 0.09, 0.50, 0.45, 0.30),
    ("Tenda", 0.07, 0.60, 0.60, 0.15),
    ("Zyxel", 0.07, 0.55, 0.55, 0.20),
    ("Belkin", 0.06, 0.55, 0.50, 0.20),
    ("Hikvision", 0.09, 0.80, 0.70, 0.05),
    ("Dahua", 0.07, 0.80, 0.70, 0.05),
    ("Uniview", 0.05, 0.80, 0.70, 0.05),
    ("Axis", 0.06, 0.70, 0.60, 0.15),
    ("Foscam", 0.05, 0.75, 0.65, 0.10),
)

# Release-year distribution 2009-2016 (embedded shipments grew).
YEAR_WEIGHTS = {
    2009: 0.05, 2010: 0.07, 2011: 0.09, 2012: 0.11,
    2013: 0.13, 2014: 0.16, 2015: 0.13, 2016: 0.26,
}

FLEET_SIZE = 6529
DEFAULT_SEED = 20180625  # DSN'18 camera-ready week


@dataclass
class FleetImage:
    """Metadata + hardware traits for one crawled firmware image."""

    index: int
    vendor: str
    product: str
    version: str
    year: int
    arch: str                    # 'arm' | 'mips'
    endianness: str
    is_linux: bool
    container: str               # 'trx' | 'uimage' | 'vendor-blob'
    encrypted: bool
    has_source_release: bool
    # Boot-relevant traits (see firmware.emulation).
    peripherals: tuple = ()      # proprietary devices the kernel probes
    nvram_defaults_present: bool = True
    network_init_ok: bool = True
    kernel_supported: bool = True

    @property
    def image_id(self):
        return "%s-%s-%s" % (self.vendor.lower(), self.product, self.version)


_PERIPHERAL_POOL = (
    "vendor-watchdog", "crypto-engine", "dsp-offload", "custom-nand",
    "sensor-i2c", "ptz-motor", "poe-controller", "dsl-phy",
)


def _choice_weighted(rng, pairs):
    total = sum(weight for _value, weight in pairs)
    pick = rng.random() * total
    for value, weight in pairs:
        pick -= weight
        if pick <= 0:
            return value
    return pairs[-1][0]


def generate_fleet(size=FLEET_SIZE, seed=DEFAULT_SEED):
    """Generate the seeded fleet; deterministic for a given seed."""
    rng = random.Random(seed)
    vendor_pairs = [(v, v[1]) for v in VENDORS]
    year_pairs = list(YEAR_WEIGHTS.items())
    images = []
    for index in range(size):
        vendor = _choice_weighted(rng, vendor_pairs)
        (name, _share, peripheral_risk, nvram_risk, open_rate) = vendor
        year = _choice_weighted(rng, year_pairs)
        arch = rng.choice(["arm", "mips", "mips", "arm"])  # roughly even
        is_linux = rng.random() < 0.87
        container = rng.choices(
            ["trx", "uimage", "vendor-blob"], weights=[0.38, 0.38, 0.24]
        )[0]
        # Encrypted/obfuscated images rose over the years.
        encrypted = rng.random() < (0.08 + 0.03 * (year - 2009))
        peripheral_count = 0
        if rng.random() < peripheral_risk:
            peripheral_count = rng.randrange(1, 4)
        peripherals = tuple(
            rng.sample(_PERIPHERAL_POOL, peripheral_count)
        )
        images.append(
            FleetImage(
                index=index,
                vendor=name,
                product="model-%03d" % rng.randrange(400),
                version="%d.%02d" % (rng.randrange(1, 4), rng.randrange(100)),
                year=year,
                arch=arch,
                endianness="big" if arch == "mips" else "little",
                is_linux=is_linux,
                container=container,
                encrypted=encrypted,
                has_source_release=rng.random() < open_rate,
                peripherals=peripherals,
                nvram_defaults_present=rng.random() > nvram_risk * 0.9,
                network_init_ok=rng.random() > 0.25,
                kernel_supported=rng.random() > 0.10,
            )
        )
    return images


def source_availability(images):
    """The §II-A static-analysis statistic: images without source."""
    without = sum(1 for image in images if not image.has_source_release)
    return {"total": len(images), "no_source": without}


# ---------------------------------------------------------------------------
# Firmware-version pairs (incremental-analysis fixtures).


def build_version_pair(key, scale=0.25, flip=None):
    """Build two releases of one vendor image differing in ONE handler.

    The "new" release is the same profile with a bumped version string
    and the ``vulnerable`` flag of one handler toggled — the minimal
    realistic patch: a vendor fixes (or introduces) one bug and every
    function address downstream of the edit shifts.  Returns
    ``(old_built, new_built, flipped_handler_name)``.

    ``flip`` names the handler to toggle; default: the first handler
    that is vulnerable in the base profile (so the delta reads as a
    vendor *fix*).
    """
    from dataclasses import replace

    from repro.corpus.profiles import PROFILES, build_firmware

    profile = PROFILES[key]
    flipped = None
    new_handlers = []
    for factory, kwargs, module in profile.handlers:
        name = kwargs.get("name", "")
        vulnerable = kwargs.get("vulnerable", True)
        if flipped is None and (name == flip or
                                (flip is None and vulnerable)):
            kwargs = dict(kwargs)
            kwargs["vulnerable"] = not vulnerable
            flipped = name
        new_handlers.append((factory, kwargs, module))
    if flipped is None:
        raise ValueError("no handler to flip in profile %r (flip=%r)"
                         % (key, flip))
    new_profile = replace(
        profile,
        version="%s-patched" % profile.version,
        handlers=new_handlers,
    )
    old_built = build_firmware(key, scale=scale)
    new_built = build_firmware(key, scale=scale, profile=new_profile)
    return old_built, new_built, flipped
