"""Matryoshka firmware images: nested fixtures for the extractor.

Real crawled firmware (paper §II-A) is rarely one container around
one filesystem: vendors ship partition tables whose entries are
obfuscated wrappers around TRX images whose rootfs files are
themselves filesystem images.  This module builds such images out of
the repo's own packers — every blob is a real, fully parseable nest
that exercises every registered UnpackParser (PTBL, vendor-blob, TRX,
uImage, gzip, LZMA, SimpleFS, cramfs, logfs, ELF) — with real
loadable ELFs at the leaves so the downstream analysis has genuine
targets.

Determinism matters: fleet fingerprints compare manifests across
runs, so everything here derives from the seed (or an image id), and
nothing reads clocks or global randomness.
"""

import random
from dataclasses import dataclass, field
from functools import lru_cache

from repro.firmware import cramfs, logfs
from repro.firmware import image as img
from repro.firmware.simplefs import SimpleFS
from repro.loader.link import build_executable

# A tiny but real ARM program; the %#010x literal makes each variant
# byte-distinct, so every ELF in a nest has its own fingerprint.
_ELF_SRC = r"""
.globl main
main:
    push {r4, lr}
    ldr r0, =%#010x
    bl strcpy
    pop {r4, pc}
.globl handler
handler:
    mov r0, #1
    bx lr
.ltorg
"""


@lru_cache(maxsize=64)
def tiny_elf(tag):
    """A small real ARM ELF whose bytes depend on ``tag``."""
    elf_bytes, _program = build_executable(
        "arm", _ELF_SRC % (tag & 0xFFFFFFFF), imports=("strcpy",)
    )
    return elf_bytes


@dataclass
class MatryoshkaImage:
    """One built nested image plus what extraction must find."""

    name: str
    blob: bytes
    target: str                  # display path of the main target ELF
    expected_elves: tuple        # all display paths, extraction order
    depth: int = 0               # nesting depth the blob was built with
    meta: dict = field(default_factory=dict)


def build_matryoshka(seed=0, name="matryoshka", target_name="httpd"):
    """Build one deeply nested image (≥3 levels, every parser used).

    Layout::

        PTBL
        ├── loader            raw data
        ├── firmware          vendor-blob(XOR key from seed)
        │   └── TRX
        │       ├── kernel    LZMA(raw kernel text)
        │       └── rootfs    SimpleFS
        │           ├── /bin/<target>           ELF  (the target)
        │           ├── /data/store.cram        cramfs
        │           │   ├── /images/inner.sfs   SimpleFS → ELF
        │           │   └── /images/journal.lf  logfs   → ELF
        │           └── /etc/* config files
        └── recovery          gzip(uImage(kernel, logfs → ELF))
    """
    rng = random.Random(seed)
    tag = rng.randrange(1 << 32)
    xor_key = rng.randrange(1, 256)

    target_elf = tiny_elf(tag)
    busybox_elf = tiny_elf(tag ^ 0x1)
    helper_elf = tiny_elf(tag ^ 0x2)
    recover_elf = tiny_elf(tag ^ 0x3)

    journal = logfs.pack([
        ("/bin/logd", helper_elf),
        ("/etc/journal.conf", b"rotate=%d\n" % rng.randrange(3, 9)),
    ])
    inner_sfs = SimpleFS()
    inner_sfs.add_file("/bin/busybox", busybox_elf)
    store = cramfs.pack({
        "/images/inner.sfs": inner_sfs.pack(),
        "/images/journal.lf": journal,
    })

    rootfs = SimpleFS()
    rootfs.add_dir("/bin")
    rootfs.add_dir("/etc")
    rootfs.add_file("/bin/%s" % target_name, target_elf)
    rootfs.add_file("/data/store.cram", store)
    rootfs.add_file("/etc/version", b"%s build %d\n" % (
        name.encode("utf-8"), seed))

    kernel_text = (b"\x00" * 64
                   + b"Linux version 2.6.%d (%s)" % (rng.randrange(20, 40),
                                                     name.encode("utf-8"))
                   + bytes(rng.randrange(256) for _ in range(96)))
    trx = img.pack_trx(img.pack_lzma(kernel_text), rootfs.pack())
    firmware = img.pack_vendor_blob(inner=trx, xor_key=xor_key)

    recovery_fs = logfs.pack([("/sbin/recover", recover_elf)])
    recovery = img.pack_gzip(
        img.pack_uimage(b"recovery-kernel-stub" * 3, recovery_fs,
                        name="recovery")
    )

    blob = img.pack_parts([
        ("loader", bytes(rng.randrange(256) for _ in range(48))),
        ("firmware", firmware),
        ("recovery", recovery),
    ])
    return MatryoshkaImage(
        name=name,
        blob=blob,
        target="/bin/%s" % target_name,
        expected_elves=(
            "/bin/%s" % target_name,
            "/bin/busybox",
            "/bin/logd",
            "/sbin/recover",
        ),
        depth=6,
        meta={"xor_key": xor_key, "seed": seed},
    )


_TARGET_NAMES = ("httpd", "cgibin", "setup.cgi", "mwareserver", "centaurus")


def generate_matryoshka_fleet(count=4, seed=20180625):
    """``count`` deterministic nested images, varied targets/keys."""
    rng = random.Random(seed)
    images = []
    for index in range(count):
        images.append(
            build_matryoshka(
                seed=rng.randrange(1 << 30),
                name="matryoshka-%03d" % index,
                target_name=_TARGET_NAMES[index % len(_TARGET_NAMES)],
            )
        )
    return images


def build_image_blob(fleet_image, target_name="httpd"):
    """A concrete firmware blob for one metadata :class:`FleetImage`.

    The fleet module models the crawl as metadata with a ``container``
    trait; this turns a record into actual bytes whose outermost
    format honours that trait, seeded from ``image_id`` so repeated
    builds are byte-identical.
    """
    seed = hash_seed(fleet_image.image_id)
    rng = random.Random(seed)
    elf = tiny_elf(rng.randrange(1 << 32))
    fs = SimpleFS()
    fs.add_dir("/bin")
    fs.add_file("/bin/%s" % target_name, elf)
    fs.add_file("/etc/board", fleet_image.image_id.encode("utf-8"))
    kernel = b"\x00" * 32 + b"kernel " + fleet_image.image_id.encode("utf-8")
    if fleet_image.container == "uimage":
        blob = img.pack_uimage(kernel, fs.pack(),
                               name=fleet_image.product[:31])
    else:
        blob = img.pack_trx(kernel, fs.pack())
    if fleet_image.container == "vendor-blob" or fleet_image.encrypted:
        blob = img.pack_vendor_blob(inner=blob,
                                    xor_key=rng.randrange(1, 256))
    return blob


def hash_seed(text):
    """Stable 32-bit seed from a string (no PYTHONHASHSEED exposure)."""
    import hashlib

    return int.from_bytes(
        hashlib.sha256(text.encode("utf-8")).digest()[:4], "big"
    )
