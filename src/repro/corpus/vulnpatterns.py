"""The paper's vulnerabilities as generator patterns (Tables IV & V).

Each factory returns ``(functions, ground_truth)``: minicc functions
reproducing the CVE's source→sink shape, plus the expected-finding
labels.  Patterns take a ``vulnerable`` switch — the safe variant adds
exactly the sanitization whose absence makes the CVE (a ';' scan for
command injections, a length check for overflows), which gives the
detector's constraint checker real negatives to prove itself on.
"""

from repro.corpus.builder import GroundTruth
from repro.corpus.minicc import (
    Addr,
    Arg,
    Call,
    DeclBuf,
    DeclVar,
    If,
    Imm,
    Load,
    MiniFunc,
    Ret,
    Set,
    Store,
    Str,
    Var,
    While,
)

BO = "buffer-overflow"
CMDI = "command-injection"


def _semicolon_guard(cmd_var, body):
    """index-scan ``cmd`` for ';' and only run ``body`` if absent.

    Compiles to the byte-compare-with-0x3b constraint the paper's
    command-injection check looks for.
    """
    return [
        DeclVar("ch", Imm(1)),
        DeclVar("bad", Imm(0)),
        DeclVar("p", Var(cmd_var)),
        While(Var("ch"), "ne", Imm(0), [
            Set("ch", Load(Var("p"), 0, size=1)),
            If(Var("ch"), "eq", Imm(0x3B), [
                Set("bad", Imm(1)),
                Set("ch", Imm(0)),
            ]),
            Set("p", _plus(Var("p"), 1)),
        ]),
        If(Var("bad"), "eq", Imm(0), body),
    ]


def _plus(expr, k):
    from repro.corpus.minicc import BinOp

    return BinOp("+", expr, Imm(k))


# ---------------------------------------------------------------------------
# Table IV — previously known vulnerabilities.


def cve_2013_7389_strncpy(name="cgi_set_password", vulnerable=True):
    """Stack overflow: POST 'password' via read, strncpy of tainted n."""
    body = [
        # password sits above postbuf: the unchecked copy runs into
        # the saved registers (the exploitable layout the CVE had).
        DeclBuf("postbuf", 1024),
        DeclBuf("password", 64),
        DeclVar("n"),
        Call("n", "read", [Imm(0), Addr("postbuf"), Imm(1024)]),
    ]
    copy = [Call(None, "strncpy", [Addr("password"), Addr("postbuf"),
                                   Var("n")])]
    if vulnerable:
        body += copy
    else:
        body += [If(Var("n"), "lt", Imm(64), copy)]
    body += [Ret(Imm(0))]
    return (
        [MiniFunc(name, 0, body)],
        [GroundTruth(function=name, kind=BO, sink="strncpy", source="read",
                     cve="CVE-2013-7389" if vulnerable else "",
                     vulnerable=vulnerable)],
    )


def cve_2013_7389_sprintf(name="cgi_render_cookie", vulnerable=True):
    """Stack overflow: overlong cookie via getenv into sprintf %s."""
    body = [
        DeclBuf("line", 128),
        DeclVar("cookie"),
        Call("cookie", "getenv", [Str("HTTP_COOKIE")]),
    ]
    emit = [Call(None, "sprintf",
                 [Addr("line"), Str("Set-Cookie: %s"), Var("cookie")])]
    if vulnerable:
        body += emit
    else:
        body += [
            DeclVar("len"),
            Call("len", "strlen", [Var("cookie")]),
            If(Var("len"), "lt", Imm(100), emit),
        ]
    body += [Ret(Imm(0))]
    return (
        [MiniFunc(name, 0, body)],
        [GroundTruth(function=name, kind=BO, sink="sprintf", source="getenv",
                     cve="CVE-2013-7389" if vulnerable else "",
                     vulnerable=vulnerable)],
    )


def cve_2015_2051(name="cgi_soap_action", vulnerable=True):
    """Command injection: SOAPAction header straight into system()."""
    body = [
        DeclVar("action"),
        Call("action", "getenv", [Str("HTTP_SOAPACTION")]),
    ]
    run = [Call(None, "system", [Var("action")])]
    if vulnerable:
        body += run
    else:
        body += _semicolon_guard("action", run)
    body += [Ret(Imm(0))]
    return (
        [MiniFunc(name, 0, body)],
        [GroundTruth(function=name, kind=CMDI, sink="system", source="getenv",
                     cve="CVE-2015-2051" if vulnerable else "",
                     vulnerable=vulnerable)],
    )


def cve_2016_5681(name="cgi_session_cookie", vulnerable=True):
    """Stack overflow: long session cookie into a 152-byte strcpy."""
    body = [
        DeclBuf("session", 152),
        DeclVar("cookie"),
        Call("cookie", "getenv", [Str("HTTP_COOKIE")]),
    ]
    copy = [Call(None, "strcpy", [Addr("session"), Var("cookie")])]
    if vulnerable:
        body += copy
    else:
        body += [
            DeclVar("len"),
            Call("len", "strlen", [Var("cookie")]),
            If(Var("len"), "lt", Imm(152), copy),
        ]
    body += [Ret(Imm(0))]
    return (
        [MiniFunc(name, 0, body)],
        [GroundTruth(function=name, kind=BO, sink="strcpy", source="getenv",
                     cve="CVE-2016-5681" if vulnerable else "",
                     vulnerable=vulnerable)],
    )


def cve_2017_6334(name="setup_hostname", vulnerable=True):
    """Command injection: websGetVar('host_name') into system()."""
    body = [
        DeclVar("host"),
        Call("host", "websGetVar", [Arg(0), Str("host_name")]),
    ]
    run = [Call(None, "system", [Var("host")])]
    if vulnerable:
        body += run
    else:
        body += _semicolon_guard("host", run)
    body += [Ret(Imm(0))]
    return (
        [MiniFunc(name, 1, body)],
        [GroundTruth(function=name, kind=CMDI, sink="system",
                     source="websGetVar",
                     cve="CVE-2017-6334" if vulnerable else "",
                     vulnerable=vulnerable)],
    )


def cve_2017_6077(name="setup_ping", vulnerable=True):
    """Command injection: websGetVar('ping_IPAddr') into system()."""
    body = [
        DeclVar("ip"),
        Call("ip", "websGetVar", [Arg(0), Str("ping_IPAddr")]),
    ]
    run = [Call(None, "system", [Var("ip")])]
    if vulnerable:
        body += run
    else:
        body += _semicolon_guard("ip", run)
    body += [Ret(Imm(0))]
    return (
        [MiniFunc(name, 1, body)],
        [GroundTruth(function=name, kind=CMDI, sink="system",
                     source="websGetVar",
                     cve="CVE-2017-6077" if vulnerable else "",
                     vulnerable=vulnerable)],
    )


def edb_43055(name="setup_exec_cmd", vulnerable=True):
    """Command injection: find_val('cmd') into popen()."""
    body = [
        DeclVar("cmd"),
        Call("cmd", "find_val", [Arg(0), Str("cmd")]),
    ]
    run = [DeclVar("fp"), Call("fp", "popen", [Var("cmd"), Str("r")])]
    if vulnerable:
        body += run
    else:
        body += _semicolon_guard("cmd", run)
    body += [Ret(Imm(0))]
    return (
        [MiniFunc(name, 1, body)],
        [GroundTruth(function=name, kind=CMDI, sink="popen",
                     source="find_val",
                     cve="EDB-ID:43055" if vulnerable else "",
                     vulnerable=vulnerable)],
    )


# ---------------------------------------------------------------------------
# Table V — zero-day shapes.


def zero_day_cmdi(name, source="websGetVar", sink="system", varname="value",
                  vulnerable=True):
    """Generic unknown command injection (Netgear/D-Link zero-days)."""
    get = (
        Call(varname, "getenv", [Str(varname.upper())])
        if source == "getenv"
        else Call(varname, source, [Arg(0), Str(varname)])
    )
    body = [DeclVar(varname), get]
    run = [Call(None, sink, [Var(varname)] +
                ([Str("r")] if sink == "popen" else []))]
    if vulnerable:
        body += run
    else:
        body += _semicolon_guard(varname, run)
    body += [Ret(Imm(0))]
    return (
        [MiniFunc(name, 1 if source != "getenv" else 0, body)],
        [GroundTruth(function=name, kind=CMDI, sink=sink, source=source,
                     vulnerable=vulnerable)],
    )


def zero_day_read_memcpy(name="hik_parse_frame", bufsize=48, vulnerable=True):
    """Hikvision #1: read into a buffer, memcpy with embedded length."""
    body = [
        DeclBuf("frame", 48),
        DeclBuf("wire", 2048),
        DeclVar("n"),
        Call(None, "read", [Arg(0), Addr("wire"), Imm(2048)]),
        Set("n", Load(Addr("wire"), 0)),      # length field inside payload
    ]
    copy = [Call(None, "memcpy", [Addr("frame"), _plus(Addr("wire"), 4),
                                  Var("n")])]
    if vulnerable:
        body += copy
    else:
        body += [If(Var("n"), "ltu", Imm(bufsize), copy)]
    body += [Ret(Imm(0))]
    return (
        [MiniFunc(name, 1, body)],
        [GroundTruth(function=name, kind=BO, sink="memcpy", source="read",
                     vulnerable=vulnerable)],
    )


def zero_day_loop_copy(name="hik_copy_uri", vulnerable=True):
    """Hikvision #2/#3: loop byte-copy of a read() buffer, no bound."""
    body = [
        # Scalars first, then wire, then uri on top: an unterminated
        # copy runs off the top of uri straight into the saved
        # registers without trampling its own loop variables — the
        # classic stack-smash layout.
        DeclVar("i", Imm(0)),
        DeclVar("ch", Imm(1)),
        DeclVar("src", Imm(0)),
        DeclVar("dst", Imm(0)),
        DeclVar("end", Imm(0)),
        DeclBuf("wire", 2048),
        DeclBuf("uri", 64),
        Call(None, "read", [Arg(0), Addr("wire"), Imm(2048)]),
    ]
    loop_body = [
        Set("ch", Load(Var("src"), 0, size=1)),
        Store(Var("dst"), 0, Var("ch"), size=1),
        Set("src", _plus(Var("src"), 1)),
        Set("dst", _plus(Var("dst"), 1)),
    ]
    if vulnerable:
        guard = While(Var("ch"), "ne", Imm(0), loop_body)
    else:
        # Bounded the way real code bounds it: while (dst < end).
        guard = While(Var("dst"), "ltu", Var("end"), loop_body + [
            If(Var("ch"), "eq", Imm(0), [Set("dst", Var("end"))]),
        ])
    body += [
        Set("src", Addr("wire")),
        Set("dst", Addr("uri")),
        Set("end", _plus(Addr("uri"), 63)),
        guard,
        Ret(Imm(0)),
    ]
    return (
        [MiniFunc(name, 1, body)],
        [GroundTruth(function=name, kind=BO, sink="loop", source="read",
                     vulnerable=vulnerable)],
    )


def zero_day_sscanf(name="uv_rtsp_session", vulnerable=True):
    """Uniview: RTSP Session header through sscanf into a small stack buf."""
    body = [
        DeclBuf("wire", 1024),
        DeclBuf("session", 180),
        Call(None, "read", [Arg(0), Addr("wire"), Imm(1024)]),
    ]
    fmt = "%254s" if vulnerable else "%64s"
    parse = [Call(None, "sscanf", [Addr("wire"), Str("Session: " + fmt),
                                   Addr("session")])]
    if vulnerable:
        body += parse
    else:
        # The safe variant also length-checks before parsing.
        body += [
            DeclVar("n"),
            Call("n", "strlen", [Addr("wire")]),
            If(Var("n"), "lt", Imm(64), parse),
        ]
    body += [Ret(Imm(0))]
    return (
        [MiniFunc(name, 1, body)],
        [GroundTruth(function=name, kind=BO, sink="sscanf", source="read",
                     vulnerable=vulnerable,
                     poc_input=b"Session: " + b"A" * 254 + b"\x00")],
    )


def zero_day_fgets_strcpy(name="net_read_config", vulnerable=True):
    """Netgear zero-day BO: fgets line into an unbounded strcpy."""
    body = [
        DeclBuf("line", 512),
        DeclBuf("value", 32),
        Call(None, "fgets", [Addr("line"), Imm(512), Arg(0)]),
    ]
    copy = [Call(None, "strcpy", [Addr("value"), Addr("line")])]
    if vulnerable:
        body += copy
    else:
        body += [
            DeclVar("n"),
            Call("n", "strlen", [Addr("line")]),
            If(Var("n"), "lt", Imm(32), copy),
        ]
    body += [Ret(Imm(0))]
    return (
        [MiniFunc(name, 1, body)],
        [GroundTruth(function=name, kind=BO, sink="strcpy", source="fgets",
                     vulnerable=vulnerable)],
    )
