"""minicc: a tiny structured code generator targeting both ISAs.

The corpus needs the same vulnerability pattern expressed in ARM and
MIPS machine code (the paper's six firmware images span both).  minicc
compiles a small statement AST to our assembler dialect:

* locals live on the stack; incoming register arguments are spilled to
  the frame in the prologue, so ``arg(i)`` stays valid across calls;
* expressions are depth-one (operands are immediates, locals, argument
  spills, field loads, or address-of) — enough for handler-shaped code
  while keeping the register allocation trivial;
* string literals are pooled into ``.rodata``.

Used by :mod:`repro.corpus.vulnpatterns` for the CVE handlers and by
:mod:`repro.corpus.profiles` for procedurally generated filler
functions.
"""

from dataclasses import dataclass, field

from repro.errors import CorpusError
from repro.utils.bits import align_up

# ---------------------------------------------------------------------------
# Expression AST.


@dataclass(frozen=True)
class Imm:
    value: int


@dataclass(frozen=True)
class Var:
    """Value of a local variable (4-byte slot)."""

    name: str


@dataclass(frozen=True)
class Arg:
    """Value of the i-th incoming argument (from its spill slot)."""

    index: int


@dataclass(frozen=True)
class Addr:
    """Address of a local buffer."""

    name: str


@dataclass(frozen=True)
class Str:
    """Address of a pooled string literal."""

    text: str


@dataclass(frozen=True)
class Glob:
    """Address of a global symbol (a ``.data``/``.rodata`` label)."""

    name: str


@dataclass(frozen=True)
class Load:
    """``*(base + offset)`` where base is a local/arg value."""

    base: object
    offset: int = 0
    size: int = 4


@dataclass(frozen=True)
class BinOp:
    """``left <op> right`` with op in +,-,&,|,^,<<,>>."""

    op: str
    left: object
    right: object


def imm(value):
    return Imm(value)


def var(name):
    return Var(name)


def arg(index):
    return Arg(index)


def addr(name):
    return Addr(name)


def str_(text):
    return Str(text)


def load(base, offset=0, size=4):
    return Load(base, offset, size)


def binop(op, left, right):
    return BinOp(op, left, right)


# ---------------------------------------------------------------------------
# Statement AST.


@dataclass
class DeclBuf:
    name: str
    size: int


@dataclass
class DeclVar:
    name: str
    init: object = None


@dataclass
class Set:
    name: str
    value: object


@dataclass
class Call:
    dest: str          # local name receiving the return value, or None
    function: str
    args: list


@dataclass
class CallPtr:
    """Indirect call through a function-pointer expression."""

    dest: str          # local receiving the return value, or None
    target: object     # expression evaluating to the callee address
    args: list


@dataclass
class Store:
    """``*(base + offset) = value``."""

    base: object
    offset: int
    value: object
    size: int = 4


@dataclass
class If:
    left: object
    cond: str          # eq, ne, lt, le, gt, ge, ltu, leu, gtu, geu
    right: object
    then_body: list
    else_body: list = field(default_factory=list)


@dataclass
class While:
    left: object
    cond: str
    right: object
    body: list


@dataclass
class Ret:
    value: object = None


@dataclass
class MiniFunc:
    """One function: name, declared parameter count, body statements."""

    name: str
    params: int
    body: list
    exported: bool = True


# ---------------------------------------------------------------------------
# Shared compilation helpers.


class _Frame:
    """Stack slot assignment: buffers and 4-byte locals."""

    def __init__(self, reserve=0):
        self._slots = {}
        self._cursor = reserve

    def declare(self, name, size):
        if name in self._slots:
            raise CorpusError("duplicate local %r" % name)
        self._cursor = align_up(self._cursor, 4)
        self._slots[name] = self._cursor
        self._cursor += align_up(size, 4)

    def offset(self, name):
        try:
            return self._slots[name]
        except KeyError:
            raise CorpusError("undeclared local %r" % name)

    def __contains__(self, name):
        return name in self._slots

    @property
    def size(self):
        return align_up(self._cursor, 8)


class _Strings:
    """Pools string literals shared across one module."""

    def __init__(self, prefix):
        self.prefix = prefix
        self._by_text = {}

    def label(self, text):
        if text not in self._by_text:
            self._by_text[text] = "%s_str%d" % (self.prefix, len(self._by_text))
        return self._by_text[text]

    def rodata(self):
        lines = []
        for text, label in self._by_text.items():
            escaped = (
                text.replace("\\", "\\\\").replace('"', '\\"')
                .replace("\n", "\\n").replace("\t", "\\t")
            )
            lines.append('%s: .asciz "%s"' % (label, escaped))
            lines.append(".align 2")
        return lines


class _LabelMaker:
    def __init__(self, function_name):
        self.base = ".L%s" % function_name
        self.counter = 0

    def fresh(self, tag):
        self.counter += 1
        return "%s_%s%d" % (self.base, tag, self.counter)


def _collect_frame(func, reserve):
    """Walk the body once to lay out the frame (plus arg spills)."""
    frame = _Frame(reserve=reserve)
    for index in range(func.params):
        frame.declare("__arg%d" % index, 4)

    def walk(statements):
        for statement in statements:
            if isinstance(statement, DeclBuf):
                frame.declare(statement.name, statement.size)
            elif isinstance(statement, DeclVar):
                frame.declare(statement.name, 4)
            elif isinstance(statement, If):
                walk(statement.then_body)
                walk(statement.else_body)
            elif isinstance(statement, While):
                walk(statement.body)

    walk(func.body)
    return frame


COND_NEGATION = {
    "eq": "ne", "ne": "eq",
    "lt": "ge", "ge": "lt", "gt": "le", "le": "gt",
    "ltu": "geu", "geu": "ltu", "gtu": "leu", "leu": "gtu",
}


class Compiler:
    """Base class; subclasses provide the per-ISA instruction shapes."""

    def __init__(self, module_name):
        self.strings = _Strings(module_name)
        self.module_name = module_name

    def compile_module(self, functions, extra_rodata=(), extra_data=()):
        """Compile functions; return (text_source, import_names)."""
        lines = []
        imports = set()
        defined = {f.name for f in functions}
        for func in functions:
            lines.extend(self.compile_function(func, defined, imports))
            lines.append("")
        rodata = self.strings.rodata()
        source = "\n".join(lines)
        if rodata or extra_rodata:
            source += "\n.rodata\n" + "\n".join(
                list(extra_rodata) + rodata
            ) + "\n"
        if extra_data:
            source += "\n.data\n" + "\n".join(extra_data) + "\n"
        return source, sorted(imports)

    def compile_function(self, func, defined, imports):
        raise NotImplementedError


# ---------------------------------------------------------------------------
# ARM backend.


class ArmCompiler(Compiler):
    """Emits AAPCS-shaped ARM32."""

    arch = "arm"

    def compile_function(self, func, defined, imports):
        frame = _collect_frame(func, reserve=0)
        labels = _LabelMaker(func.name)
        out = []
        if func.exported:
            out.append(".globl %s" % func.name)
        out.append("%s:" % func.name)
        out.append("    push {r4, r5, r6, r7, lr}")
        if frame.size:
            self._emit_sp_adjust(out, "sub", frame.size)
        for index in range(min(func.params, 4)):
            out.append("    str r%d, [sp, #%d]"
                       % (index, frame.offset("__arg%d" % index)))

        end_label = labels.fresh("end")
        self._body(out, func.body, frame, labels, end_label, defined, imports)
        out.append("%s:" % end_label)
        if frame.size:
            self._emit_sp_adjust(out, "add", frame.size)
        out.append("    pop {r4, r5, r6, r7, pc}")
        out.append(".ltorg")
        return out

    def _emit_sp_adjust(self, out, op, size):
        # Split into rotate-encodable (8-bit, even-rotation) chunks.
        remaining = size
        while remaining:
            shift = max(0, remaining.bit_length() - 8)
            shift += shift % 2
            chunk = remaining & (0xFF << shift)
            out.append("    %s sp, sp, #0x%x" % (op, chunk))
            remaining -= chunk

    @staticmethod
    def _add_imm(out, dst, src, value):
        """``dst = src + value`` with rotate-encodable chunking."""
        remaining = value
        current = src
        while remaining:
            shift = max(0, remaining.bit_length() - 8)
            shift += shift % 2
            chunk = remaining & (0xFF << shift)
            out.append("    add %s, %s, #0x%x" % (dst, current, chunk))
            current = dst
            remaining -= chunk

    # -- expressions -----------------------------------------------------

    def _eval(self, out, expr, reg, frame):
        """Materialise ``expr`` into register ``reg``."""
        if isinstance(expr, Imm):
            if 0 <= expr.value <= 0xFF:
                out.append("    mov %s, #%d" % (reg, expr.value))
            else:
                out.append("    ldr %s, =0x%x" % (reg, expr.value & 0xFFFFFFFF))
        elif isinstance(expr, Var):
            out.append("    ldr %s, [sp, #%d]" % (reg, frame.offset(expr.name)))
        elif isinstance(expr, Arg):
            out.append("    ldr %s, [sp, #%d]"
                       % (reg, frame.offset("__arg%d" % expr.index)))
        elif isinstance(expr, Addr):
            offset = frame.offset(expr.name)
            if offset:
                self._add_imm(out, reg, "sp", offset)
            else:
                out.append("    mov %s, sp" % reg)
        elif isinstance(expr, Str):
            out.append("    ldr %s, =%s" % (reg, self.strings.label(expr.text)))
        elif isinstance(expr, Glob):
            out.append("    ldr %s, =%s" % (reg, expr.name))
        elif isinstance(expr, Load):
            self._eval(out, expr.base, reg, frame)
            op = {1: "ldrb", 2: "ldrh", 4: "ldr"}[expr.size]
            if expr.offset:
                out.append("    %s %s, [%s, #%d]" % (op, reg, reg, expr.offset))
            else:
                out.append("    %s %s, [%s]" % (op, reg, reg))
        elif isinstance(expr, BinOp):
            if reg == "r7":
                raise CorpusError("r7 is the BinOp scratch register")
            self._eval(out, expr.left, reg, frame)
            if expr.op == "<<":
                if not isinstance(expr.right, Imm):
                    raise CorpusError("only constant shifts are supported")
                out.append("    mov %s, %s, lsl #%d"
                           % (reg, reg, expr.right.value))
                return
            self._eval(out, expr.right, "r7", frame)
            mnem = {"+": "add", "-": "sub", "&": "and", "|": "orr",
                    "^": "eor"}.get(expr.op)
            if mnem is None:
                raise CorpusError("unsupported op %r" % expr.op)
            out.append("    %s %s, %s, r7" % (mnem, reg, reg))
        else:
            raise CorpusError("unsupported expression %r" % (expr,))

    # -- statements --------------------------------------------------------

    def _body(self, out, statements, frame, labels, end_label, defined,
              imports):
        for statement in statements:
            if isinstance(statement, (DeclBuf,)):
                continue
            if isinstance(statement, DeclVar):
                if statement.init is not None:
                    self._eval(out, statement.init, "r4", frame)
                    out.append("    str r4, [sp, #%d]"
                               % frame.offset(statement.name))
                continue
            if isinstance(statement, Set):
                self._eval(out, statement.value, "r4", frame)
                out.append("    str r4, [sp, #%d]"
                           % frame.offset(statement.name))
                continue
            if isinstance(statement, Call):
                if len(statement.args) > 4:
                    self._stack_args(out, statement.args[4:], frame)
                for index, argument in enumerate(statement.args[:4]):
                    self._eval(out, argument, "r%d" % index, frame)
                if statement.function not in defined:
                    imports.add(statement.function)
                out.append("    bl %s" % statement.function)
                if len(statement.args) > 4:
                    out.append("    add sp, sp, #%d"
                               % (4 * len(statement.args[4:])))
                if statement.dest is not None:
                    out.append("    str r0, [sp, #%d]"
                               % frame.offset(statement.dest))
                continue
            if isinstance(statement, CallPtr):
                self._eval(out, statement.target, "r6", frame)
                for index, argument in enumerate(statement.args[:4]):
                    self._eval(out, argument, "r%d" % index, frame)
                out.append("    blx r6")
                if statement.dest is not None:
                    out.append("    str r0, [sp, #%d]"
                               % frame.offset(statement.dest))
                continue
            if isinstance(statement, Store):
                self._eval(out, statement.value, "r4", frame)
                self._eval(out, statement.base, "r5", frame)
                op = {1: "strb", 2: "strh", 4: "str"}[statement.size]
                if statement.offset:
                    out.append("    %s r4, [r5, #%d]" % (op, statement.offset))
                else:
                    out.append("    %s r4, [r5]" % op)
                continue
            if isinstance(statement, If):
                else_label = labels.fresh("else")
                done_label = labels.fresh("done")
                self._branch_unless(out, statement, else_label, frame)
                self._body(out, statement.then_body, frame, labels,
                           end_label, defined, imports)
                if statement.else_body:
                    out.append("    b %s" % done_label)
                out.append("%s:" % else_label)
                if statement.else_body:
                    self._body(out, statement.else_body, frame, labels,
                               end_label, defined, imports)
                    out.append("%s:" % done_label)
                continue
            if isinstance(statement, While):
                head = labels.fresh("loop")
                exit_label = labels.fresh("break")
                out.append("%s:" % head)
                self._branch_unless(out, statement, exit_label, frame)
                self._body(out, statement.body, frame, labels, end_label,
                           defined, imports)
                out.append("    b %s" % head)
                out.append("%s:" % exit_label)
                continue
            if isinstance(statement, Ret):
                if statement.value is not None:
                    self._eval(out, statement.value, "r0", frame)
                out.append("    b %s" % end_label)
                continue
            raise CorpusError("unsupported statement %r" % (statement,))

    def _stack_args(self, out, extra, frame):
        out.append("    sub sp, sp, #%d" % (4 * len(extra)))
        for index, argument in enumerate(extra):
            self._eval(out, argument, "r4", frame)
            out.append("    str r4, [sp, #%d]" % (4 * index))

    def _branch_unless(self, out, statement, target, frame):
        """Branch to ``target`` when the condition is false."""
        self._eval(out, statement.left, "r4", frame)
        if isinstance(statement.right, Imm) and 0 <= statement.right.value <= 0xFF:
            out.append("    cmp r4, #%d" % statement.right.value)
        else:
            self._eval(out, statement.right, "r5", frame)
            out.append("    cmp r4, r5")
        negated = COND_NEGATION[statement.cond]
        suffix = {"ltu": "cc", "geu": "cs", "gtu": "hi", "leu": "ls"}.get(
            negated, negated
        )
        out.append("    b%s %s" % (suffix, target))


# ---------------------------------------------------------------------------
# MIPS backend.


class MipsCompiler(Compiler):
    """Emits o32-shaped big-endian MIPS32 with explicit delay slots."""

    arch = "mips"

    def compile_function(self, func, defined, imports):
        # o32: keep a 16-byte outgoing-argument home area + ra slot.
        frame = _collect_frame(func, reserve=24)
        labels = _LabelMaker(func.name)
        out = []
        if func.exported:
            out.append(".globl %s" % func.name)
        out.append("%s:" % func.name)
        out.append("    addiu $sp, $sp, -%d" % frame.size)
        out.append("    sw $ra, 20($sp)")
        for index in range(min(func.params, 4)):
            out.append("    sw $a%d, %d($sp)"
                       % (index, frame.offset("__arg%d" % index)))
        end_label = labels.fresh("end")
        self._body(out, func.body, frame, labels, end_label, defined, imports)
        out.append("%s:" % end_label)
        out.append("    lw $ra, 20($sp)")
        out.append("    jr $ra")
        out.append("    addiu $sp, $sp, %d" % frame.size)
        return out

    # -- expressions ---------------------------------------------------------

    def _eval(self, out, expr, reg, frame):
        if isinstance(expr, Imm):
            out.append("    li %s, %d" % (reg, expr.value))
        elif isinstance(expr, Var):
            out.append("    lw %s, %d($sp)" % (reg, frame.offset(expr.name)))
        elif isinstance(expr, Arg):
            out.append("    lw %s, %d($sp)"
                       % (reg, frame.offset("__arg%d" % expr.index)))
        elif isinstance(expr, Addr):
            out.append("    addiu %s, $sp, %d" % (reg, frame.offset(expr.name)))
        elif isinstance(expr, Str):
            out.append("    la %s, %s" % (reg, self.strings.label(expr.text)))
        elif isinstance(expr, Glob):
            out.append("    la %s, %s" % (reg, expr.name))
        elif isinstance(expr, Load):
            self._eval(out, expr.base, reg, frame)
            op = {1: "lbu", 2: "lhu", 4: "lw"}[expr.size]
            out.append("    %s %s, %d(%s)" % (op, reg, expr.offset, reg))
        elif isinstance(expr, BinOp):
            if reg == "$t7":
                raise CorpusError("$t7 is the BinOp scratch register")
            self._eval(out, expr.left, reg, frame)
            if expr.op == "<<":
                if not isinstance(expr.right, Imm):
                    raise CorpusError("only constant shifts are supported")
                out.append("    sll %s, %s, %d" % (reg, reg, expr.right.value))
                return
            self._eval(out, expr.right, "$t7", frame)
            mnem = {"+": "addu", "-": "subu", "&": "and", "|": "or",
                    "^": "xor"}.get(expr.op)
            if mnem is None:
                raise CorpusError("unsupported op %r" % expr.op)
            out.append("    %s %s, %s, $t7" % (mnem, reg, reg))
        else:
            raise CorpusError("unsupported expression %r" % (expr,))

    # -- statements --------------------------------------------------------------

    def _body(self, out, statements, frame, labels, end_label, defined,
              imports):
        for statement in statements:
            if isinstance(statement, DeclBuf):
                continue
            if isinstance(statement, DeclVar):
                if statement.init is not None:
                    self._eval(out, statement.init, "$t0", frame)
                    out.append("    sw $t0, %d($sp)"
                               % frame.offset(statement.name))
                continue
            if isinstance(statement, Set):
                self._eval(out, statement.value, "$t0", frame)
                out.append("    sw $t0, %d($sp)" % frame.offset(statement.name))
                continue
            if isinstance(statement, Call):
                for index, argument in enumerate(statement.args[:4]):
                    self._eval(out, argument, "$a%d" % index, frame)
                for index, argument in enumerate(statement.args[4:]):
                    self._eval(out, argument, "$t0", frame)
                    out.append("    sw $t0, %d($sp)" % (16 + 4 * index))
                if statement.function not in defined:
                    imports.add(statement.function)
                out.append("    jal %s" % statement.function)
                out.append("    nop")
                if statement.dest is not None:
                    out.append("    sw $v0, %d($sp)"
                               % frame.offset(statement.dest))
                continue
            if isinstance(statement, CallPtr):
                # o32 indirect calls go through $t9.
                self._eval(out, statement.target, "$t9", frame)
                for index, argument in enumerate(statement.args[:4]):
                    self._eval(out, argument, "$a%d" % index, frame)
                out.append("    jalr $t9")
                out.append("    nop")
                if statement.dest is not None:
                    out.append("    sw $v0, %d($sp)"
                               % frame.offset(statement.dest))
                continue
            if isinstance(statement, Store):
                self._eval(out, statement.value, "$t0", frame)
                self._eval(out, statement.base, "$t1", frame)
                op = {1: "sb", 2: "sh", 4: "sw"}[statement.size]
                out.append("    %s $t0, %d($t1)" % (op, statement.offset))
                continue
            if isinstance(statement, If):
                else_label = labels.fresh("else")
                done_label = labels.fresh("done")
                self._branch_unless(out, statement, else_label, frame)
                self._body(out, statement.then_body, frame, labels,
                           end_label, defined, imports)
                if statement.else_body:
                    out.append("    b %s" % done_label)
                    out.append("    nop")
                out.append("%s:" % else_label)
                if statement.else_body:
                    self._body(out, statement.else_body, frame, labels,
                               end_label, defined, imports)
                    out.append("%s:" % done_label)
                continue
            if isinstance(statement, While):
                head = labels.fresh("loop")
                exit_label = labels.fresh("break")
                out.append("%s:" % head)
                self._branch_unless(out, statement, exit_label, frame)
                self._body(out, statement.body, frame, labels, end_label,
                           defined, imports)
                out.append("    b %s" % head)
                out.append("    nop")
                out.append("%s:" % exit_label)
                continue
            if isinstance(statement, Ret):
                if statement.value is not None:
                    self._eval(out, statement.value, "$v0", frame)
                out.append("    b %s" % end_label)
                out.append("    nop")
                continue
            raise CorpusError("unsupported statement %r" % (statement,))

    def _branch_unless(self, out, statement, target, frame):
        self._eval(out, statement.left, "$t0", frame)
        self._eval(out, statement.right, "$t1", frame)
        cond = statement.cond
        # Compose from slt/sltu/beq/bne; branch when condition FAILS.
        if cond == "eq":
            out.append("    bne $t0, $t1, %s" % target)
        elif cond == "ne":
            out.append("    beq $t0, $t1, %s" % target)
        elif cond in ("lt", "ltu"):
            op = "slt" if cond == "lt" else "sltu"
            out.append("    %s $t2, $t0, $t1" % op)
            out.append("    beq $t2, $zero, %s" % target)
        elif cond in ("ge", "geu"):
            op = "slt" if cond == "ge" else "sltu"
            out.append("    %s $t2, $t0, $t1" % op)
            out.append("    bne $t2, $zero, %s" % target)
        elif cond in ("gt", "gtu"):
            op = "slt" if cond == "gt" else "sltu"
            out.append("    %s $t2, $t1, $t0" % op)
            out.append("    beq $t2, $zero, %s" % target)
        elif cond in ("le", "leu"):
            op = "slt" if cond == "le" else "sltu"
            out.append("    %s $t2, $t1, $t0" % op)
            out.append("    bne $t2, $zero, %s" % target)
        else:
            raise CorpusError("unsupported condition %r" % cond)
        out.append("    nop")


def compiler_for(arch_name, module_name):
    if arch_name == "arm":
        return ArmCompiler(module_name)
    if arch_name == "mips":
        return MipsCompiler(module_name)
    raise CorpusError("unknown arch %r" % arch_name)
