"""Exception hierarchy for the repro package.

Every subsystem raises a subclass of :class:`ReproError` so callers can
catch package failures without masking programming errors.
"""


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class AssemblyError(ReproError):
    """Raised when assembly source cannot be parsed or encoded."""

    def __init__(self, message, line=None):
        self.line = line
        if line is not None:
            message = "line %d: %s" % (line, message)
        super().__init__(message)


class DisassemblyError(ReproError):
    """Raised when a machine word cannot be decoded."""


class LiftError(ReproError):
    """Raised when an instruction cannot be translated to IR."""


class MalformedInput(ReproError):
    """Raised when an input file (ELF, container, filesystem entry) is
    structurally invalid.

    This is the typed per-file skip: a scan over many files treats any
    :class:`MalformedInput` as "this file is unanalysable", never as a
    reason to abort the run.  ``path`` identifies the offending file
    when known.
    """

    def __init__(self, message, path=None):
        self.path = path
        super().__init__(message)


class ELFError(MalformedInput):
    """Raised on malformed or unsupported ELF input."""


class FirmwareError(MalformedInput):
    """Raised on malformed firmware containers or filesystems."""


class CFGError(ReproError):
    """Raised when control-flow recovery fails."""


class SymExecError(ReproError):
    """Raised by the static symbolic execution engine."""


class EmulationError(ReproError):
    """Raised by the concrete CPU emulator."""


class CorpusError(ReproError):
    """Raised when a synthetic firmware target cannot be built."""


class AnalysisError(ReproError):
    """Raised by the DTaint analysis pipeline."""


class AnalysisFault(AnalysisError):
    """Base of the in-analysis fault taxonomy.

    A fault is scoped to **one function**: the detector catches it,
    records a ``DegradedFunction`` and keeps scanning the rest of the
    binary.  Every fault carries the function it hit (name + entry
    address) and the ``site`` (instruction/block address, or ``None``
    when the fault is not tied to one location).  ``phase`` names the
    pipeline stage the taxonomy attributes the fault to.
    """

    phase = "analysis"

    def __init__(self, message, function=None, addr=None, site=None):
        self.function = function
        self.addr = addr
        self.site = site
        where = ""
        if function:
            where = " in %s" % function
            if site is not None:
                where += " at 0x%x" % site
        super().__init__(message + where)


class DecodeFault(AnalysisFault, CFGError):
    """An instruction could not be decoded during CFG recovery."""

    phase = "decode"


class LiftFault(AnalysisFault, CFGError):
    """A decoded instruction could not be translated to IR."""

    phase = "lift"


class SymexecFault(AnalysisFault, SymExecError):
    """The static symbolic engine failed on one function."""

    phase = "symexec"


class DeadlineExceeded(AnalysisFault):
    """A per-function soft deadline expired.

    Unlike the other faults this one normally never propagates: the
    symbolic engine catches it (or observes the clock directly) and
    flags the summary ``truncated`` so the function still contributes
    everything explored before the deadline.
    """

    phase = "deadline"


class ResourceExhausted(AnalysisFault):
    """A per-job OS resource limit (memory, CPU, file size) was hit.

    Workers run under ``resource.setrlimit`` governance; when analysis
    of one function trips a limit (``MemoryError`` under RLIMIT_AS,
    ``SIGXCPU`` under RLIMIT_CPU) the function degrades to this typed
    fault and the scan continues, exactly like the other members of
    the taxonomy.  ``resource`` names the exhausted limit
    (``memory`` / ``cpu`` / ``filesize``).
    """

    phase = "resource"

    def __init__(self, message, function=None, addr=None, site=None,
                 resource="memory"):
        self.resource = resource
        super().__init__(message, function=function, addr=addr, site=site)


class PipelineError(ReproError):
    """Raised by the fleet orchestration layer (``repro.pipeline``)."""


class AnalysisTimeout(PipelineError):
    """A fleet job exceeded its wall-clock budget and was killed."""

    def __init__(self, job_id, timeout_seconds):
        self.job_id = job_id
        self.timeout_seconds = timeout_seconds
        super().__init__(
            "job %r exceeded %.1fs timeout" % (job_id, timeout_seconds)
        )


class WorkerCrash(PipelineError):
    """A fleet worker process died without delivering a result."""

    def __init__(self, job_id, exitcode=None):
        self.job_id = job_id
        self.exitcode = exitcode
        super().__init__(
            "worker for job %r crashed (exitcode=%s)" % (job_id, exitcode)
        )


class WorkerStalled(PipelineError):
    """A fleet worker stopped heartbeating while holding a job.

    Distinct from :class:`AnalysisTimeout` (the job-level deadline): a
    stall means the *process* is frozen — stopped, deadlocked in
    native code, or swapped to death — and the supervisor reaps it
    with SIGTERM→SIGKILL escalation independent of any job budget.
    """

    def __init__(self, job_id, silent_seconds):
        self.job_id = job_id
        self.silent_seconds = silent_seconds
        super().__init__(
            "worker for job %r silent for %.1fs (heartbeat lost)"
            % (job_id, silent_seconds)
        )


class QueueFull(PipelineError):
    """The job queue refused a submission under backpressure.

    ``retry_after`` is the server's hint (in seconds) for when the
    client should try again; the REST layer maps this to HTTP 429
    with a ``Retry-After`` header.
    """

    def __init__(self, depth, limit, retry_after=5.0):
        self.depth = depth
        self.limit = limit
        self.retry_after = retry_after
        super().__init__(
            "queue is full (%d pending >= limit %d); retry in %.0fs"
            % (depth, limit, retry_after)
        )
