"""Exception hierarchy for the repro package.

Every subsystem raises a subclass of :class:`ReproError` so callers can
catch package failures without masking programming errors.
"""


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class AssemblyError(ReproError):
    """Raised when assembly source cannot be parsed or encoded."""

    def __init__(self, message, line=None):
        self.line = line
        if line is not None:
            message = "line %d: %s" % (line, message)
        super().__init__(message)


class DisassemblyError(ReproError):
    """Raised when a machine word cannot be decoded."""


class LiftError(ReproError):
    """Raised when an instruction cannot be translated to IR."""


class ELFError(ReproError):
    """Raised on malformed or unsupported ELF input."""


class FirmwareError(ReproError):
    """Raised on malformed firmware containers or filesystems."""


class CFGError(ReproError):
    """Raised when control-flow recovery fails."""


class SymExecError(ReproError):
    """Raised by the static symbolic execution engine."""


class EmulationError(ReproError):
    """Raised by the concrete CPU emulator."""


class CorpusError(ReproError):
    """Raised when a synthetic firmware target cannot be built."""


class AnalysisError(ReproError):
    """Raised by the DTaint analysis pipeline."""


class PipelineError(ReproError):
    """Raised by the fleet orchestration layer (``repro.pipeline``)."""


class AnalysisTimeout(PipelineError):
    """A fleet job exceeded its wall-clock budget and was killed."""

    def __init__(self, job_id, timeout_seconds):
        self.job_id = job_id
        self.timeout_seconds = timeout_seconds
        super().__init__(
            "job %r exceeded %.1fs timeout" % (job_id, timeout_seconds)
        )


class WorkerCrash(PipelineError):
    """A fleet worker process died without delivering a result."""

    def __init__(self, job_id, exitcode=None):
        self.job_id = job_id
        self.exitcode = exitcode
        super().__init__(
            "worker for job %r crashed (exitcode=%s)" % (job_id, exitcode)
        )
