"""Lightweight phase-timing profiler for the analysis hot path.

A single per-process :class:`PhaseProfiler` accumulates wall-clock
seconds and event counters per analysis phase (``lift``, ``symexec``,
``alias``, ``similarity``, ``detect``, ``interproc``, ``increment`` —
the last covering fingerprinting and fleet-dedup work — plus the
shard-scheduling phases ``plan`` and ``merge``).  The hooks are
cheap enough to stay enabled permanently: one ``perf_counter`` pair
per timed region and one dict increment per counted event, so every
scan carries its own phase breakdown — ``dtaint scan --profile``
prints it, reports embed it, and fleet telemetry ships it per job.

The profiler is cumulative for the life of the process; callers that
need per-run numbers bracket the run with :meth:`snapshot` and
:func:`delta` (the detector does exactly that, so nested/fleet scans
in one process don't bleed into each other's reports).
"""

import time
from contextlib import contextmanager

PHASES = ("lift", "symexec", "alias", "similarity", "detect", "interproc",
          "increment", "plan", "merge")


class PhaseProfiler:
    """Accumulates per-phase seconds and counters."""

    __slots__ = ("seconds", "counters", "_stack")

    def __init__(self):
        self.seconds = {}
        self.counters = {}
        self._stack = []

    @contextmanager
    def phase(self, name):
        """Time a region: ``with profiler.phase("alias"): ...``.

        Nested phases account *exclusively*: a child region's elapsed
        time is subtracted from its enclosing phase, so e.g. alias
        work performed inside interproc summary application bills to
        ``alias``, not twice — phase seconds always sum to wall time.
        """
        start = time.perf_counter()
        self._stack.append(name)
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self._stack.pop()
            self.seconds[name] = self.seconds.get(name, 0.0) + elapsed
            if self._stack:
                parent = self._stack[-1]
                self.seconds[parent] = (
                    self.seconds.get(parent, 0.0) - elapsed
                )

    def add_seconds(self, name, elapsed):
        self.seconds[name] = self.seconds.get(name, 0.0) + elapsed

    def count(self, name, amount=1):
        """Count an event, e.g. ``count("symexec_functions")``."""
        self.counters[name] = self.counters.get(name, 0) + amount

    def snapshot(self):
        """Current cumulative state as a plain dict (JSON-safe)."""
        return {
            "seconds": dict(self.seconds),
            "counters": dict(self.counters),
        }

    def reset(self):
        self.seconds.clear()
        self.counters.clear()
        del self._stack[:]


def delta(before, after):
    """The profile accumulated between two :meth:`snapshot` calls."""
    out = {"seconds": {}, "counters": {}}
    for key, value in after.get("seconds", {}).items():
        diff = value - before.get("seconds", {}).get(key, 0.0)
        if diff > 1e-9:
            out["seconds"][key] = round(diff, 6)
    for key, value in after.get("counters", {}).items():
        diff = value - before.get("counters", {}).get(key, 0)
        if diff:
            out["counters"][key] = diff
    return out


def merge(profiles):
    """Sum a sequence of snapshot/delta dicts (fleet aggregation)."""
    out = {"seconds": {}, "counters": {}}
    for profile in profiles:
        if not profile:
            continue
        for key, value in profile.get("seconds", {}).items():
            out["seconds"][key] = out["seconds"].get(key, 0.0) + value
        for key, value in profile.get("counters", {}).items():
            out["counters"][key] = out["counters"].get(key, 0) + value
    return out


def render(profile, title="phase profile"):
    """Human-readable table: seconds, percentage, and counters."""
    seconds = profile.get("seconds", {})
    counters = profile.get("counters", {})
    total = sum(seconds.values())
    lines = ["%s (%.3fs timed)" % (title, total)]
    order = [p for p in PHASES if p in seconds] + sorted(
        k for k in seconds if k not in PHASES
    )
    for name in order:
        value = seconds[name]
        share = (100.0 * value / total) if total else 0.0
        lines.append("  %-12s %8.3fs  %5.1f%%" % (name, value, share))
    if counters:
        rendered = "  ".join(
            "%s=%d" % (key, counters[key]) for key in sorted(counters)
        )
        lines.append("  counters: %s" % rendered)
    return "\n".join(lines)


def phase_percentages(profile):
    """Phase -> share of total timed seconds, for summary tables."""
    seconds = profile.get("seconds", {})
    total = sum(seconds.values())
    if not total:
        return {}
    return {
        name: round(100.0 * value / total, 1)
        for name, value in seconds.items()
    }


PROFILER = PhaseProfiler()
