"""Natural-loop detection.

DTaint's path exploration analyses "blocks in the same loop only once"
(paper §III-B) and its sink detection recognises loop buffer copies
(Table I's ``loop`` sink), both of which need the loop membership this
module computes.
"""

from dataclasses import dataclass, field

from repro.cfg.dominators import compute_dominators


@dataclass
class Loop:
    header: int
    back_edge: tuple
    body: set = field(default_factory=set)  # block addrs, incl. header

    def __contains__(self, addr):
        return addr in self.body


def natural_loops(function):
    """Find the natural loops of ``function``.

    A back edge ``n -> h`` exists where ``h`` dominates ``n``; the loop
    body is every block that can reach ``n`` without passing through
    ``h``.  Loops sharing a header are merged.
    """
    dom = compute_dominators(function)
    predecessors = {addr: set() for addr in function.blocks}
    for source, dest in function.edges():
        predecessors[dest].add(source)

    loops = {}
    for source, dest in function.edges():
        if dest not in dom.get(source, set()):
            continue
        # source -> dest is a back edge with header dest.
        body = {dest, source}
        stack = [source]
        while stack:
            node = stack.pop()
            if node == dest:
                continue
            for pred in predecessors.get(node, ()):
                if pred not in body:
                    body.add(pred)
                    stack.append(pred)
        if dest in loops:
            loops[dest].body |= body
        else:
            loops[dest] = Loop(header=dest, back_edge=(source, dest), body=body)
    return list(loops.values())


def loop_membership(function):
    """Map block addr -> set of loop headers whose body contains it."""
    membership = {addr: set() for addr in function.blocks}
    for loop in natural_loops(function):
        for addr in loop.body:
            membership[addr].add(loop.header)
    return membership
