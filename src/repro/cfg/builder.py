"""Per-function CFG recovery by recursive traversal.

Blocks are discovered from each function's entry point following
branch targets and fall-throughs, so embedded data (ARM literal pools
between functions, jump pads) is never decoded as code.  MIPS branch
delay slots are kept with their branch.  Direct branches that leave the
function's symbol extent are modelled as tail calls.
"""

from repro import faultinject
from repro.profiling import PROFILER
from repro.cfg.model import BasicBlock, CallSite, Function
from repro.errors import (
    AnalysisFault,
    CFGError,
    DecodeFault,
    DisassemblyError,
    LiftFault,
)
from repro.ir.irsb import JumpKind


class _Scan:
    """Outcome of scanning one straight-line run."""

    __slots__ = ("insns", "successors", "call", "kind")

    def __init__(self, insns, successors, call, kind):
        self.insns = insns
        self.successors = successors
        self.call = call
        self.kind = kind


class CFGBuilder:
    """Builds :class:`~repro.cfg.model.Function` objects for a binary."""

    def __init__(self, binary):
        self.binary = binary
        self.arch = binary.arch
        self._disasm = binary.arch.disassembler()
        self._lifter = binary.arch.lifter()

    # ------------------------------------------------------------------

    def build_function(self, symbol):
        """Recover the CFG of one function symbol."""
        function = Function(
            name=symbol.name, addr=symbol.addr, size=symbol.size,
            is_import=symbol.is_import,
        )
        if symbol.is_import:
            return function
        faultinject.check("cfg", symbol.name)

        leaders = {symbol.addr}
        worklist = [symbol.addr]
        scans = {}
        while worklist:
            addr = worklist.pop()
            if addr in scans:
                continue
            scan = self._scan_run(function, addr)
            scans[addr] = scan
            for successor in scan.successors:
                if function.contains(successor):
                    leaders.add(successor)
                    if successor not in scans:
                        worklist.append(successor)

        # Split runs at leaders discovered later.
        ordered = sorted(leaders)
        for leader in ordered:
            scan = scans.get(leader)
            if scan is None:
                # Leader discovered inside another run: rescan from it.
                scan = self._scan_run(function, leader)
                scans[leader] = scan
            insns = scan.insns
            successors = list(scan.successors)
            call = scan.call
            # Truncate at the next leader that falls inside this run.
            end = leader + 4 * len(insns)
            cut = None
            for other in ordered:
                if leader < other < end:
                    cut = other
                    break
            if cut is not None:
                insns = insns[: (cut - leader) // 4]
                successors = [cut]
                call = None
            block = BasicBlock(addr=leader, insns=insns, call=call,
                               successors=successors)
            if call is not None:
                call.block_addr = leader
            faultinject.check("cfg.lift", function.name)
            try:
                with PROFILER.phase("lift"):
                    block.irsb = self._lifter.lift_block(
                        insns, mem_reader=self.binary.read_ro
                    )
                PROFILER.count("lift_blocks")
            except AnalysisFault:
                raise
            except Exception as exc:  # lift failures leave block unlifted
                raise LiftFault(
                    "cannot lift block: %s" % exc,
                    function=function.name, addr=function.addr, site=leader,
                )
            function.blocks[leader] = block
        # Prune successors that were never materialised (outside extent).
        for block in function.blocks.values():
            block.successors = [
                s for s in block.successors if s in function.blocks
            ]
        return function

    def build_all(self, functions=None, on_fault=None):
        """Build CFGs for the given symbols (default: all local functions).

        With ``on_fault`` set, a per-function recovery failure calls
        ``on_fault(symbol, exc)`` and skips that one function instead
        of aborting the whole build — the fault-isolation mode the
        detector runs in.  Without it, faults propagate (the historical
        strict behaviour direct CFG users rely on).
        """
        if functions is None:
            functions = self.binary.local_functions
        built = {}
        for symbol in sorted(functions, key=lambda s: s.addr):
            if on_fault is None:
                built[symbol.name] = self.build_function(symbol)
                continue
            try:
                built[symbol.name] = self.build_function(symbol)
            except CFGError as exc:
                on_fault(symbol, exc)
        for symbol in self.binary.functions.values():
            if symbol.is_import and symbol.name not in built:
                built[symbol.name] = Function(
                    name=symbol.name, addr=symbol.addr, size=symbol.size,
                    is_import=True,
                )
        return built

    # ------------------------------------------------------------------

    def _decode(self, function, addr):
        data = self.binary.read_bytes(addr, 4)
        if data is None or len(data) < 4:
            raise DecodeFault(
                "code read out of bounds",
                function=function.name, addr=function.addr, site=addr,
            )
        try:
            return self._disasm.disasm_one(data, 0, addr)
        except DisassemblyError as exc:
            raise DecodeFault(
                str(exc),
                function=function.name, addr=function.addr, site=addr,
            )

    def _scan_run(self, function, start):
        if self.arch.name == "arm":
            return self._scan_run_arm(function, start)
        return self._scan_run_mips(function, start)

    def _scan_run_arm(self, function, start):
        insns = []
        addr = start
        limit = function.addr + function.size
        while addr < limit:
            insn = self._decode(function, addr)
            insns.append(insn)
            outcome = self._arm_flow(function, insn)
            if outcome is not None:
                return outcome(insns)
            addr += 4
        raise CFGError(
            "function %s runs past its extent at 0x%x" % (function.name, addr)
        )

    def _arm_flow(self, function, insn):
        """If ``insn`` ends the run, return a closure building the scan."""
        from repro.arch.arm import encoding as enc

        fall = insn.addr + 4

        if insn.kind == "branch":
            target = insn.branch_target()
            if insn.mnemonic == "bl":
                call = self._make_call(insn.addr, function, target, fall)
                return lambda insns: _Scan(insns, [fall], call, JumpKind.CALL)
            if not function.contains(target):
                # Direct tail call.
                call = self._make_call(insn.addr, function, target, None)
                if insn.cond == enc.COND_AL:
                    return lambda insns: _Scan(insns, [], call, JumpKind.CALL)
                return lambda insns: _Scan(insns, [fall], call, JumpKind.CALL)
            if insn.cond == enc.COND_AL:
                return lambda insns: _Scan(insns, [target], None, JumpKind.BORING)
            return lambda insns: _Scan(
                insns, [target, fall], None, JumpKind.BORING
            )
        if insn.kind == "bx":
            if insn.mnemonic == "blx":
                call = CallSite(addr=insn.addr, block_addr=None,
                                return_addr=fall)
                return lambda insns: _Scan(insns, [fall], call, JumpKind.CALL)
            if insn.rm == enc.LR:
                return lambda insns: _Scan(insns, [], None, JumpKind.RET)
            return lambda insns: _Scan(insns, [], None, JumpKind.BORING)
        if insn.is_return():
            return lambda insns: _Scan(insns, [], None, JumpKind.RET)
        writes_pc = (
            (insn.kind == "dp" and insn.rd == 15
             and insn.mnemonic not in enc.DP_COMPARE)
            or (insn.kind == "mem" and insn.load and insn.rd == 15)
            or (insn.kind == "block" and insn.load and 15 in insn.reglist)
        )
        if writes_pc:
            return lambda insns: _Scan(insns, [], None, JumpKind.BORING)
        return None

    def _scan_run_mips(self, function, start):
        insns = []
        addr = start
        limit = function.addr + function.size
        while addr < limit:
            insn = self._decode(function, addr)
            insns.append(insn)
            if insn.has_delay_slot():
                if addr + 4 >= limit:
                    raise CFGError("delay slot past extent at 0x%x" % addr)
                insns.append(self._decode(function, addr + 4))
                return self._mips_flow(function, insn, insns)
            addr += 4
        raise CFGError(
            "function %s runs past its extent at 0x%x" % (function.name, addr)
        )

    def _mips_flow(self, function, insn, insns):
        fall = insn.addr + 8
        m = insn.mnemonic
        if m == "jal":
            call = self._make_call(insn.addr, function, insn.target, fall)
            return _Scan(insns, [fall], call, JumpKind.CALL)
        if m == "jalr":
            call = CallSite(addr=insn.addr, block_addr=None, return_addr=fall)
            return _Scan(insns, [fall], call, JumpKind.CALL)
        if m == "j":
            if not function.contains(insn.target):
                call = self._make_call(insn.addr, function, insn.target, None)
                return _Scan(insns, [], call, JumpKind.CALL)
            return _Scan(insns, [insn.target], None, JumpKind.BORING)
        if m == "jr":
            if insn.is_return():
                return _Scan(insns, [], None, JumpKind.RET)
            return _Scan(insns, [], None, JumpKind.BORING)
        # Conditional branch.
        target = insn.branch_target()
        unconditional = m == "beq" and insn.rs == 0 and insn.rt == 0
        if not function.contains(target):
            call = self._make_call(insn.addr, function, target, None)
            successors = [] if unconditional else [fall]
            return _Scan(insns, successors, call, JumpKind.CALL)
        if unconditional:
            return _Scan(insns, [target], None, JumpKind.BORING)
        return _Scan(insns, [target, fall], None, JumpKind.BORING)

    def _make_call(self, addr, function, target, return_addr):
        name = None
        callee = None
        for symbol in self.binary.functions.values():
            if symbol.addr == target:
                callee = symbol
                break
        if callee is not None:
            name = callee.name
        return CallSite(
            addr=addr, block_addr=None, target_addr=target,
            target_name=name, return_addr=return_addr,
        )
