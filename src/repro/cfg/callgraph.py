"""Whole-binary call graph.

Direct call edges come from resolved call sites; indirect call sites
are kept aside for DTaint's data-structure-similarity resolution, which
adds edges later via :meth:`CallGraph.add_indirect_edge`.
"""

import networkx as nx

from repro.ir.irsb import JumpKind


class CallGraph:
    """A directed call graph over function names."""

    def __init__(self):
        self.graph = nx.DiGraph()
        self.indirect_sites = []  # (caller_name, CallSite)

    def add_function(self, function):
        self.graph.add_node(function.name, function=function)

    def add_edge(self, caller, callee, callsite=None):
        self.graph.add_edge(caller, callee)
        sites = self.graph.edges[caller, callee].setdefault("callsites", [])
        if callsite is not None:
            sites.append(callsite)

    def add_indirect_edge(self, caller, callee, callsite, similarity):
        """Record an indirect-call edge resolved by layout similarity."""
        self.add_edge(caller, callee, callsite)
        self.graph.edges[caller, callee]["similarity"] = similarity
        callsite.target_name = callee

    def callees(self, name):
        return list(self.graph.successors(name))

    def callers(self, name):
        return list(self.graph.predecessors(name))

    def function(self, name):
        return self.graph.nodes[name]["function"]

    @property
    def edge_count(self):
        return self.graph.number_of_edges()

    def bottom_up_order(self, names=None):
        """Functions in callees-before-callers order (paper §III-E).

        Cycles (recursion) are collapsed into SCCs whose members are
        emitted together in an arbitrary internal order.
        """
        graph = self.graph if names is None else self.graph.subgraph(names)
        condensed = nx.condensation(graph)
        order = []
        for scc_id in nx.topological_sort(condensed):
            members = condensed.nodes[scc_id]["members"]
            order.extend(sorted(members))
        # Topological order of the condensation is callers-first; we
        # want callees first.
        return list(reversed(order))


def build_call_graph(functions):
    """Build the call graph from recovered functions.

    ``functions`` maps name to :class:`~repro.cfg.model.Function`
    (imports included).  Returns a :class:`CallGraph`.
    """
    by_addr = {f.addr: f for f in functions.values()}
    call_graph = CallGraph()
    for function in functions.values():
        call_graph.add_function(function)
    for function in functions.values():
        for callsite in function.call_sites:
            if callsite.is_indirect:
                call_graph.indirect_sites.append((function.name, callsite))
                continue
            callee = by_addr.get(callsite.target_addr)
            if callee is None:
                continue
            callsite.target_name = callee.name
            call_graph.add_edge(function.name, callee.name, callsite)
    return call_graph
