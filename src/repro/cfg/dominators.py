"""Iterative dominator computation over a function CFG."""


def compute_dominators(function):
    """Return ``{block_addr: set_of_dominator_addrs}``.

    Standard iterative data-flow formulation; unreachable blocks get
    the full block set (vacuous truth), matching the textbook lattice.
    """
    addrs = sorted(function.blocks)
    entry = function.addr
    if entry not in function.blocks:
        return {}
    predecessors = {addr: set() for addr in addrs}
    for source, dest in function.edges():
        predecessors[dest].add(source)

    all_blocks = set(addrs)
    dom = {addr: set(all_blocks) for addr in addrs}
    dom[entry] = {entry}

    changed = True
    while changed:
        changed = False
        for addr in addrs:
            if addr == entry:
                continue
            preds = predecessors[addr]
            if preds:
                new = set(all_blocks)
                for pred in preds:
                    new &= dom[pred]
            else:
                new = set(all_blocks)
            new.add(addr)
            if new != dom[addr]:
                dom[addr] = new
                changed = True
    return dom


def immediate_dominators(function):
    """Return ``{block_addr: idom_addr}`` (entry maps to itself)."""
    dom = compute_dominators(function)
    idom = {}
    for addr, dominators in dom.items():
        strict = dominators - {addr}
        if not strict:
            idom[addr] = addr
            continue
        # The immediate dominator is the strict dominator that every
        # other strict dominator dominates (the closest one).
        for candidate in strict:
            if all(other in dom[candidate] for other in strict):
                idom[addr] = candidate
                break
    return idom
