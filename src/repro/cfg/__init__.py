"""Control-flow recovery: basic blocks, per-function CFGs, the call
graph, dominators and natural loops.

DTaint "performs a static analysis on the firmware to generate the CFG
for each function separately" (paper §III-B); function extents come
from the symbol table and blocks are discovered by recursive traversal
from each entry, which keeps embedded data (ARM literal pools) out of
the instruction stream.
"""

from repro.cfg.builder import CFGBuilder
from repro.cfg.callgraph import CallGraph, build_call_graph
from repro.cfg.dominators import compute_dominators
from repro.cfg.loops import natural_loops
from repro.cfg.model import BasicBlock, CallSite, Function

__all__ = [
    "BasicBlock",
    "CFGBuilder",
    "CallGraph",
    "CallSite",
    "Function",
    "build_call_graph",
    "compute_dominators",
    "natural_loops",
]
