"""CFG data model."""

from dataclasses import dataclass, field

from repro.ir.irsb import JumpKind


@dataclass
class CallSite:
    """A call instruction inside a block.

    ``target_addr`` is the callee entry for direct calls, or ``None``
    for indirect calls (``blx rX`` / ``jalr``), which DTaint resolves
    later via data-structure layout similarity.
    """

    addr: int
    block_addr: int
    target_addr: int = None
    target_name: str = None
    return_addr: int = None

    @property
    def is_indirect(self):
        return self.target_addr is None

    def __hash__(self):
        return hash((self.addr, self.block_addr))


@dataclass
class BasicBlock:
    """A basic block: decoded instructions plus the lifted IRSB."""

    addr: int
    insns: list
    irsb: object = None
    successors: list = field(default_factory=list)  # block addresses
    call: CallSite = None

    @property
    def size(self):
        return 4 * len(self.insns)

    @property
    def end(self):
        return self.addr + self.size

    @property
    def is_return_block(self):
        return self.irsb is not None and self.irsb.jumpkind == JumpKind.RET

    def __repr__(self):
        return "<BasicBlock 0x%x (%d insns)>" % (self.addr, len(self.insns))


@dataclass
class Function:
    """A recovered function: entry, blocks, intra-procedural edges."""

    name: str
    addr: int
    size: int
    blocks: dict = field(default_factory=dict)   # addr -> BasicBlock
    is_import: bool = False

    @property
    def entry_block(self):
        return self.blocks.get(self.addr)

    @property
    def block_count(self):
        return len(self.blocks)

    @property
    def call_sites(self):
        return [b.call for b in self.blocks.values() if b.call is not None]

    def edges(self):
        for block in self.blocks.values():
            for successor in block.successors:
                yield block.addr, successor

    def contains(self, addr):
        return self.addr <= addr < self.addr + self.size

    def __repr__(self):
        return "<Function %s @ 0x%x, %d blocks>" % (
            self.name, self.addr, len(self.blocks)
        )
