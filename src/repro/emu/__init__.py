"""Concrete CPU emulation.

An instruction-level interpreter for the ARM and MIPS subsets, written
independently of the IR lifters so the two can be differentially
tested against each other.  Also drives the FIRMADYNE-style boot model
in :mod:`repro.firmware.emulation`.
"""

from repro.emu.cpu import ArmCPU, MipsCPU, make_cpu
from repro.emu.mem import Memory

__all__ = ["ArmCPU", "Memory", "MipsCPU", "make_cpu"]
