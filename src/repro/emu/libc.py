"""Concrete libc emulation for PoC validation.

Installs Python implementations of the modelled library functions over
a binary's import stubs so handler functions can be *executed* with
attacker-controlled input.  Sources (``getenv``, ``read``, ``recv``,
``websGetVar``, ``find_val``…) serve bytes from an attacker-supplied
environment; command sinks record every command string they receive;
copies actually move bytes, so a planted overflow really smashes the
emulated stack.
"""

from dataclasses import dataclass, field

from repro.utils.bits import to_signed32

_HEAP_BASE = 0x60000000
_SCRATCH_BASE = 0x68000000


@dataclass
class LibcEnvironment:
    """Attacker-facing state + call records for one emulation run."""

    env: dict = field(default_factory=dict)         # getenv / websGetVar map
    input_bytes: bytes = b""                        # read/recv/fgets stream
    commands: list = field(default_factory=list)    # system/popen arguments
    heap_cursor: int = _HEAP_BASE
    input_cursor: int = 0
    scratch_cursor: int = _SCRATCH_BASE
    _interned: dict = field(default_factory=dict)

    def take_input(self, size):
        chunk = self.input_bytes[self.input_cursor:self.input_cursor + size]
        self.input_cursor += len(chunk)
        return chunk


class LibcEmulator:
    """Hooks a CPU's import stubs with concrete libc behaviour."""

    def __init__(self, cpu, binary, environment=None):
        self.cpu = cpu
        self.binary = binary
        self.env = environment or LibcEnvironment()

    # ------------------------------------------------------------------

    def install(self):
        """Hook every import the emulator models; returns hooked names."""
        hooked = []
        for addr, name in self.binary.imports.items():
            handler = getattr(self, "_do_%s" % name, None)
            if handler is None:
                handler = self._do_default
            self.cpu.hooks[addr] = self._wrap(handler)
            hooked.append(name)
        return hooked

    def _wrap(self, handler):
        def hook(cpu):
            handler()
        return hook

    # -- byte helpers ------------------------------------------------------

    def _read_cstring(self, addr, limit=8192):
        return self.cpu.memory.read_cstring(addr, limit)

    def _write_bytes(self, addr, data):
        self.cpu.memory.write_bytes(addr, data)

    def _intern_string(self, data):
        """Place ``data`` (NUL-terminated) in scratch memory."""
        if data in self.env._interned:
            return self.env._interned[data]
        addr = self.env.scratch_cursor
        self._write_bytes(addr, data + b"\x00")
        self.env.scratch_cursor += len(data) + 1
        self.env._interned[data] = addr
        return addr

    def _arg(self, index):
        return self.cpu.get_arg(index)

    def _ret(self, value):
        self.cpu.set_ret(value)

    # -- sources --------------------------------------------------------------

    def _env_lookup(self, name):
        value = self.env.env.get(name)
        if value is None:
            return 0
        if isinstance(value, str):
            value = value.encode("latin-1")
        return self._intern_string(value)

    def _do_getenv(self):
        name = self._read_cstring(self._arg(0)).decode("latin-1", "replace")
        self._ret(self._env_lookup(name))

    def _do_websGetVar(self):
        name = self._read_cstring(self._arg(1)).decode("latin-1", "replace")
        self._ret(self._env_lookup(name))

    def _do_find_var(self):
        self._do_websGetVar()

    def _do_find_val(self):
        self._do_websGetVar()

    def _do_read(self):
        buf, size = self._arg(1), self._arg(2)
        chunk = self.env.take_input(size)
        self._write_bytes(buf, chunk)
        self._ret(len(chunk))

    def _do_recv(self):
        self._do_read()

    def _do_recvfrom(self):
        self._do_read()

    def _do_recvmsg(self):
        self._ret(0)

    def _do_fgets(self):
        buf, size = self._arg(0), self._arg(1)
        chunk = self.env.take_input(max(size - 1, 0))
        newline = chunk.find(b"\n")
        if newline >= 0:
            keep = chunk[:newline + 1]
            self.env.input_cursor -= len(chunk) - len(keep)
            chunk = keep
        self._write_bytes(buf, chunk + b"\x00")
        self._ret(buf if chunk else 0)

    # -- copies / string ops ------------------------------------------------

    def _do_strcpy(self):
        dst, src = self._arg(0), self._arg(1)
        data = self._read_cstring(src)
        self._write_bytes(dst, data + b"\x00")
        self._ret(dst)

    def _do_strncpy(self):
        dst, src, count = self._arg(0), self._arg(1), self._arg(2)
        data = self._read_cstring(src)[:count]
        self._write_bytes(dst, data.ljust(count, b"\x00")[:count])
        self._ret(dst)

    def _do_strcat(self):
        dst, src = self._arg(0), self._arg(1)
        existing = self._read_cstring(dst)
        data = self._read_cstring(src)
        self._write_bytes(dst + len(existing), data + b"\x00")
        self._ret(dst)

    def _do_memcpy(self):
        dst, src, count = self._arg(0), self._arg(1), self._arg(2)
        count = min(count, 1 << 20)  # keep hostile sizes finite
        # Copy in chunks so a hostile length faults *after* the copy
        # has trampled everything mapped — the way a real overflow
        # corrupts the frame before the process dies.
        copied = 0
        while copied < count:
            chunk = min(4096, count - copied)
            try:
                data = self.cpu.memory.read_bytes(src + copied, chunk)
                self._write_bytes(dst + copied, data)
            except Exception:
                break
            copied += chunk
        self._ret(dst)

    def _do_memset(self):
        dst, value, count = self._arg(0), self._arg(1), self._arg(2)
        self._write_bytes(dst, bytes([value & 0xFF]) * min(count, 1 << 20))
        self._ret(dst)

    def _do_strlen(self):
        self._ret(len(self._read_cstring(self._arg(0))))

    def _do_strchr(self):
        data = self._read_cstring(self._arg(0))
        needle = self._arg(1) & 0xFF
        index = data.find(bytes([needle]))
        self._ret(self._arg(0) + index if index >= 0 else 0)

    def _do_strcmp(self):
        a = self._read_cstring(self._arg(0))
        b = self._read_cstring(self._arg(1))
        self._ret(0 if a == b else (1 if a > b else 0xFFFFFFFF))

    def _do_strncmp(self):
        count = self._arg(2)
        a = self._read_cstring(self._arg(0))[:count]
        b = self._read_cstring(self._arg(1))[:count]
        self._ret(0 if a == b else (1 if a > b else 0xFFFFFFFF))

    def _do_atoi(self):
        data = self._read_cstring(self._arg(0)).lstrip(b" \t")
        index = 0
        if index < len(data) and data[index:index + 1] in (b"+", b"-"):
            index += 1
        while index < len(data) and data[index:index + 1].isdigit():
            index += 1
        try:
            self._ret(int(data[:index]) & 0xFFFFFFFF)
        except ValueError:
            self._ret(0)

    def _do_sprintf(self):
        dst, fmt_addr = self._arg(0), self._arg(1)
        rendered = self._format(fmt_addr, first_vararg=2)
        self._write_bytes(dst, rendered + b"\x00")
        self._ret(len(rendered))

    def _do_snprintf(self):
        dst, _size, fmt_addr = self._arg(0), self._arg(1), self._arg(2)
        rendered = self._format(fmt_addr, first_vararg=3)[:self._arg(1) - 1]
        self._write_bytes(dst, rendered + b"\x00")
        self._ret(len(rendered))

    def _format(self, fmt_addr, first_vararg):
        """Minimal printf: %s, %d, %x, %c and %% are enough for firmware."""
        fmt = self._read_cstring(fmt_addr)
        out = bytearray()
        arg_index = first_vararg
        i = 0
        while i < len(fmt):
            ch = fmt[i]
            if ch != ord("%"):
                out.append(ch)
                i += 1
                continue
            # Skip width/flags.
            j = i + 1
            while j < len(fmt) and chr(fmt[j]) in "-+ #0123456789.":
                j += 1
            if j >= len(fmt):
                break
            spec = chr(fmt[j])
            if spec == "%":
                out.append(ord("%"))
            else:
                value = self._arg(arg_index)
                arg_index += 1
                if spec == "s":
                    out += self._read_cstring(value)
                elif spec in "di":
                    out += str(to_signed32(value)).encode()
                elif spec in "xX":
                    out += ("%x" % value).encode()
                elif spec == "c":
                    out.append(value & 0xFF)
                else:
                    out += b"?"
            i = j + 1
        return bytes(out)

    def _do_sscanf(self):
        """Minimal scanf: '%s' and '%Ns' against a literal prefix."""
        src = self._read_cstring(self._arg(0))
        fmt = self._read_cstring(self._arg(1))
        out_index = 2
        matched = 0
        src_pos = 0
        i = 0
        while i < len(fmt):
            ch = fmt[i]
            if ch == ord("%"):
                j = i + 1
                width = 0
                while j < len(fmt) and chr(fmt[j]).isdigit():
                    width = width * 10 + int(chr(fmt[j]))
                    j += 1
                spec = chr(fmt[j]) if j < len(fmt) else "?"
                if spec == "s":
                    end = src_pos
                    while end < len(src) and src[end] not in b" \t\n":
                        end += 1
                    token = src[src_pos:end]
                    if width:
                        token = token[:width]
                    self._write_bytes(self._arg(out_index), token + b"\x00")
                    out_index += 1
                    matched += 1
                    src_pos = end
                i = j + 1
                continue
            if ch in b" \t":
                while src_pos < len(src) and src[src_pos] in b" \t":
                    src_pos += 1
                i += 1
                continue
            if src_pos < len(src) and src[src_pos] == ch:
                src_pos += 1
                i += 1
                continue
            break
        self._ret(matched)

    # -- sinks / allocation / misc -----------------------------------------

    def _do_system(self):
        command = self._read_cstring(self._arg(0))
        self.env.commands.append(("system", command))
        self._ret(0)

    def _do_popen(self):
        command = self._read_cstring(self._arg(0))
        self.env.commands.append(("popen", command))
        self._ret(0)

    def _do_malloc(self):
        size = max(self._arg(0), 4)
        addr = self.env.heap_cursor
        self.cpu.memory.write_bytes(addr, b"\x00" * size)
        self.env.heap_cursor += (size + 15) & ~15
        self._ret(addr)

    def _do_calloc(self):
        size = max(self._arg(0) * self._arg(1), 4)
        addr = self.env.heap_cursor
        self.cpu.memory.write_bytes(addr, b"\x00" * size)
        self.env.heap_cursor += (size + 15) & ~15
        self._ret(addr)

    def _do_strdup(self):
        data = self._read_cstring(self._arg(0))
        addr = self.env.heap_cursor
        self._write_bytes(addr, data + b"\x00")
        self.env.heap_cursor += (len(data) + 16) & ~15
        self._ret(addr)

    def _do_free(self):
        self._ret(0)

    def _do_close(self):
        self._ret(0)

    def _do_socket(self):
        self._ret(3)

    def _do_write(self):
        self._ret(self._arg(2))

    def _do_printf(self):
        self._ret(0)

    def _do_exit(self):
        # Jump straight to the stop address.
        self.cpu.pc = self.cpu.STOP_ADDR

    def _do_default(self):
        self._ret(0)
