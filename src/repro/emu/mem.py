"""Sparse, page-granular byte memory for the emulator and IR interpreter."""

from repro.errors import EmulationError

_PAGE_SHIFT = 12
_PAGE_SIZE = 1 << _PAGE_SHIFT
_PAGE_MASK = _PAGE_SIZE - 1


class Memory:
    """A sparse 32-bit byte-addressable memory.

    Reads of unmapped pages raise unless the memory was created with
    ``fill_unmapped``; writes allocate pages on demand.  Endianness is
    applied at the integer read/write level.
    """

    def __init__(self, endness="little", fill_unmapped=None):
        if endness not in ("little", "big"):
            raise ValueError("bad endness %r" % endness)
        self.endness = endness
        self.fill_unmapped = fill_unmapped
        self._pages = {}

    def _page_for_read(self, page_index):
        page = self._pages.get(page_index)
        if page is None:
            if self.fill_unmapped is None:
                raise EmulationError(
                    "read of unmapped address 0x%x" % (page_index << _PAGE_SHIFT)
                )
            page = bytearray([self.fill_unmapped]) * _PAGE_SIZE
            self._pages[page_index] = page
        return page

    def _page_for_write(self, page_index):
        page = self._pages.get(page_index)
        if page is None:
            fill = self.fill_unmapped if self.fill_unmapped is not None else 0
            page = bytearray([fill]) * _PAGE_SIZE
            self._pages[page_index] = page
        return page

    def read_bytes(self, addr, size):
        out = bytearray()
        while size > 0:
            page = self._page_for_read(addr >> _PAGE_SHIFT)
            offset = addr & _PAGE_MASK
            chunk = min(size, _PAGE_SIZE - offset)
            out += page[offset:offset + chunk]
            addr += chunk
            size -= chunk
        return bytes(out)

    def write_bytes(self, addr, data):
        offset_in_data = 0
        size = len(data)
        while size > 0:
            page = self._page_for_write(addr >> _PAGE_SHIFT)
            offset = addr & _PAGE_MASK
            chunk = min(size, _PAGE_SIZE - offset)
            page[offset:offset + chunk] = data[
                offset_in_data:offset_in_data + chunk
            ]
            addr += chunk
            offset_in_data += chunk
            size -= chunk

    def read(self, addr, size):
        """Read ``size`` bytes as an unsigned integer."""
        return int.from_bytes(self.read_bytes(addr, size), self.endness)

    def write(self, addr, value, size):
        """Write ``value`` as ``size`` bytes."""
        self.write_bytes(
            addr, (value & ((1 << (8 * size)) - 1)).to_bytes(size, self.endness)
        )

    def read_cstring(self, addr, limit=4096):
        """Read a NUL-terminated byte string (without the NUL)."""
        out = bytearray()
        for i in range(limit):
            byte = self.read(addr + i, 1)
            if byte == 0:
                break
            out.append(byte)
        return bytes(out)

    def is_mapped(self, addr):
        return (addr >> _PAGE_SHIFT) in self._pages

    def snapshot(self):
        """Deep-copy the mapped pages (for state comparison in tests)."""
        return {index: bytes(page) for index, page in self._pages.items()}
