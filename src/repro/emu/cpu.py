"""Instruction-level ARM and MIPS interpreters.

These implement the architectural semantics directly from the decoded
instruction forms — deliberately *not* via the IR — so that lifter bugs
cannot hide: the differential tests run the same program through both
this module and :mod:`repro.ir.interp` and require identical results.
"""

from repro.arch.archinfo import MIPS_REG_NAMES
from repro.arch.arm import encoding as arm_enc
from repro.arch.mips import encoding as mips_enc
from repro.errors import EmulationError
from repro.utils.bits import ror32, sign_extend, to_signed32, to_unsigned32

_MASK32 = 0xFFFFFFFF


class CPUStopped(Exception):
    """Raised internally when execution reaches the stop address."""


class ArmCPU:
    """A concrete ARM32 interpreter over a :class:`~repro.emu.mem.Memory`.

    ``hooks`` maps addresses to callables invoked when the PC lands on
    them; a hook models an external function and returns control to
    ``lr`` (unless it changes the PC itself).
    """

    STOP_ADDR = 0xFFFF0000

    def __init__(self, memory):
        self.memory = memory
        self.regs = [0] * 16
        self.flag_n = False
        self.flag_z = False
        self.flag_c = False
        self.flag_v = False
        self.hooks = {}
        self.steps = 0
        self._insn_addr = 0

    # -- register helpers ------------------------------------------------

    @property
    def pc(self):
        return self.regs[15]

    @pc.setter
    def pc(self, value):
        self.regs[15] = value & _MASK32

    @property
    def sp(self):
        return self.regs[13]

    @sp.setter
    def sp(self, value):
        self.regs[13] = value & _MASK32

    @property
    def lr(self):
        return self.regs[14]

    @lr.setter
    def lr(self, value):
        self.regs[14] = value & _MASK32

    def read_reg(self, index, pc_offset=8):
        # Reads of R15 observe the architectural pipeline value,
        # relative to the *executing* instruction's address.
        if index == 15:
            return (self._insn_addr + pc_offset) & _MASK32
        return self.regs[index]

    # -- calling-convention accessors (used by libc hook handlers) -------

    def get_arg(self, index):
        if index < 4:
            return self.regs[index]
        return self.memory.read(self.sp + 4 * (index - 4), 4)

    def set_ret(self, value):
        self.regs[0] = value & _MASK32

    # -- condition evaluation ---------------------------------------------

    def condition_passed(self, cond):
        n, z, c, v = self.flag_n, self.flag_z, self.flag_c, self.flag_v
        table = (
            z, not z, c, not c, n, not n, v, not v,
            c and not z, (not c) or z, n == v, n != v,
            (not z) and n == v, z or n != v, True,
        )
        return table[cond]

    # -- execution ---------------------------------------------------------

    def step(self):
        """Fetch, decode and execute one instruction."""
        addr = self.pc
        if addr in self.hooks:
            self.hooks[addr](self)
            if self.pc == addr:
                self.pc = self.lr
            self.steps += 1
            return
        if addr == self.STOP_ADDR:
            raise CPUStopped()
        word = self.memory.read(addr, 4)
        insn = arm_enc.decode(word, addr)
        self._insn_addr = addr
        self.pc = addr + 4
        self.execute(insn)
        self.steps += 1

    def run(self, start, sp, max_steps=1_000_000, args=()):
        """Call ``start`` with ``args`` and run until it returns."""
        self.pc = start
        self.sp = sp
        self.lr = self.STOP_ADDR
        for i, value in enumerate(args[:4]):
            self.regs[i] = value & _MASK32
        try:
            for _ in range(max_steps):
                self.step()
        except CPUStopped:
            return self.regs[0]
        raise EmulationError("step budget exhausted at pc=0x%x" % self.pc)

    # -- per-kind handlers ---------------------------------------------------

    def execute(self, insn):
        if insn.cond != arm_enc.COND_AL and not self.condition_passed(insn.cond):
            return
        getattr(self, "_exec_%s" % insn.kind)(insn)

    def _operand2(self, insn):
        """Returns (value, shifter_carry)."""
        if insn.uses_imm:
            value = insn.imm & _MASK32
            carry = bool(value >> 31) if value > 0xFF else self.flag_c
            return value, carry
        rm = self.read_reg(insn.rm)
        stype, amount = insn.shift_type, insn.shift_amount
        if amount == 0 and stype == 0:
            return rm, self.flag_c
        if stype == 0:
            return (rm << amount) & _MASK32, bool((rm >> (32 - amount)) & 1)
        if stype == 1:
            eff = amount or 32
            if eff == 32:
                return 0, bool(rm >> 31)
            return rm >> eff, bool((rm >> (eff - 1)) & 1)
        if stype == 2:
            eff = amount or 32
            if eff == 32:
                return (to_unsigned32(to_signed32(rm) >> 31)), bool(rm >> 31)
            return to_unsigned32(to_signed32(rm) >> eff), bool((rm >> (eff - 1)) & 1)
        return ror32(rm, amount), bool((rm >> ((amount - 1) % 32)) & 1)

    def _set_nz(self, result):
        self.flag_n = bool(result >> 31)
        self.flag_z = result == 0

    def _add_with_flags(self, a, b, carry_in, set_flags):
        total = a + b + carry_in
        result = total & _MASK32
        if set_flags:
            self._set_nz(result)
            self.flag_c = total > _MASK32
            self.flag_v = bool((~(a ^ b) & (a ^ result)) >> 31)
        return result

    def _exec_dp(self, insn):
        mnem = insn.mnemonic
        op2, shifter_carry = self._operand2(insn)
        rn = self.read_reg(insn.rn) if insn.rn is not None else 0
        set_flags = insn.set_flags or mnem in arm_enc.DP_COMPARE

        if mnem in ("add", "cmn"):
            result = self._add_with_flags(rn, op2, 0, set_flags)
        elif mnem in ("sub", "cmp"):
            result = self._add_with_flags(rn, (~op2) & _MASK32, 1, set_flags)
        elif mnem == "rsb":
            result = self._add_with_flags(op2, (~rn) & _MASK32, 1, set_flags)
        elif mnem == "adc":
            result = self._add_with_flags(rn, op2, int(self.flag_c), set_flags)
        elif mnem == "sbc":
            result = self._add_with_flags(
                rn, (~op2) & _MASK32, int(self.flag_c), set_flags
            )
        elif mnem == "rsc":
            result = self._add_with_flags(
                op2, (~rn) & _MASK32, int(self.flag_c), set_flags
            )
        else:
            if mnem in ("and", "tst"):
                result = rn & op2
            elif mnem in ("eor", "teq"):
                result = rn ^ op2
            elif mnem == "orr":
                result = rn | op2
            elif mnem == "bic":
                result = rn & ~op2 & _MASK32
            elif mnem == "mov":
                result = op2
            elif mnem == "mvn":
                result = (~op2) & _MASK32
            else:
                raise EmulationError("unhandled dp op %r" % mnem)
            if set_flags:
                self._set_nz(result)
                self.flag_c = shifter_carry
        if mnem not in arm_enc.DP_COMPARE:
            if insn.rd == 15:
                self.pc = result
            else:
                self.regs[insn.rd] = result

    def _exec_mul(self, insn):
        result = (self.read_reg(insn.rm) * self.read_reg(insn.rs)) & _MASK32
        if insn.set_flags:
            self._set_nz(result)
        self.regs[insn.rd] = result

    def _mem_addr(self, insn):
        base = self.read_reg(insn.rn)
        if insn.uses_imm:
            offset = insn.imm
        else:
            offset, _ = self._operand2(
                arm_enc.ArmInsn(
                    kind="dp", mnemonic="mov", rm=insn.rm, uses_imm=False,
                    shift_type=insn.shift_type, shift_amount=insn.shift_amount,
                )
            )
        return (base + offset if insn.u_bit else base - offset) & _MASK32

    def _exec_mem(self, insn):
        addr = self._mem_addr(insn)
        size = 1 if insn.byte else 4
        if insn.load:
            value = self.memory.read(addr, size)
            if insn.rd == 15:
                self.pc = value
            else:
                self.regs[insn.rd] = value
        else:
            self.memory.write(addr, self.read_reg(insn.rd, pc_offset=12), size)

    def _exec_memh(self, insn):
        addr = self._mem_addr(insn)
        if insn.load:
            size = 2 if insn.halfword else 1
            value = self.memory.read(addr, size)
            if insn.signed:
                value = to_unsigned32(sign_extend(value, size * 8))
            self.regs[insn.rd] = value
        else:
            self.memory.write(addr, self.read_reg(insn.rd) & 0xFFFF, 2)

    def _exec_block(self, insn):
        base = self.read_reg(insn.rn)
        count = len(insn.reglist)
        if insn.u_bit:
            start = base + (4 if insn.p_bit else 0)
        else:
            start = base - (4 * count if insn.p_bit else 4 * (count - 1))
        for i, reg_index in enumerate(insn.reglist):
            slot = (start + 4 * i) & _MASK32
            if insn.load:
                value = self.memory.read(slot, 4)
                if reg_index == 15:
                    self.pc = value
                else:
                    self.regs[reg_index] = value
            else:
                self.memory.write(slot, self.read_reg(reg_index, pc_offset=12), 4)
        if insn.w_bit:
            delta = 4 * count
            self.regs[insn.rn] = (
                (base + delta) if insn.u_bit else (base - delta)
            ) & _MASK32

    def _exec_branch(self, insn):
        if insn.mnemonic == "bl":
            self.lr = insn.addr + 4
        self.pc = insn.branch_target()

    def _exec_bx(self, insn):
        target = self.read_reg(insn.rm)
        if insn.mnemonic == "blx":
            self.lr = insn.addr + 4
        self.pc = target & ~1  # ignore the Thumb bit

    def _exec_movw(self, insn):
        self.regs[insn.rd] = insn.imm & 0xFFFF

    def _exec_movt(self, insn):
        self.regs[insn.rd] = (self.regs[insn.rd] & 0xFFFF) | (
            (insn.imm & 0xFFFF) << 16
        )


class MipsCPU:
    """A concrete MIPS32 interpreter with architectural delay slots."""

    STOP_ADDR = 0xFFFF0000

    def __init__(self, memory):
        self.memory = memory
        self.regs = [0] * 32
        self.pc = 0
        self.hooks = {}
        self.steps = 0
        self._reg_index = {name: i for i, name in enumerate(MIPS_REG_NAMES)}

    def reg(self, name):
        return self.regs[self._reg_index[name]]

    def set_reg(self, name, value):
        index = self._reg_index[name]
        if index != 0:
            self.regs[index] = value & _MASK32

    def _read(self, index):
        return self.regs[index] if index else 0

    def _write(self, index, value):
        if index:
            self.regs[index] = value & _MASK32

    # -- calling-convention accessors (o32) -------------------------------

    def get_arg(self, index):
        if index < 4:
            return self.reg("a%d" % index)
        return self.memory.read(self.reg("sp") + 16 + 4 * (index - 4), 4)

    def set_ret(self, value):
        self.set_reg("v0", value)

    def step(self):
        addr = self.pc
        if addr in self.hooks:
            self.hooks[addr](self)
            if self.pc == addr:
                self.pc = self.reg("ra")
            self.steps += 1
            return
        if addr == self.STOP_ADDR:
            raise CPUStopped()
        word = self.memory.read(addr, 4)
        insn = mips_enc.decode(word, addr)
        self.steps += 1
        if insn.has_delay_slot():
            target = self._transfer_target(insn)
            # Execute the delay slot (it must not itself branch).
            slot_word = self.memory.read(addr + 4, 4)
            slot = mips_enc.decode(slot_word, addr + 4)
            if slot.has_delay_slot():
                raise EmulationError("branch in delay slot at 0x%x" % slot.addr)
            self._exec_simple(slot)
            self.pc = target if target is not None else addr + 8
            return
        self.pc = addr + 4
        self._exec_simple(insn)

    def run(self, start, sp, max_steps=1_000_000, args=()):
        self.pc = start
        self.set_reg("sp", sp)
        self.set_reg("ra", self.STOP_ADDR)
        for i, value in enumerate(args[:4]):
            self.set_reg("a%d" % i, value)
        try:
            for _ in range(max_steps):
                self.step()
        except CPUStopped:
            return self.reg("v0")
        raise EmulationError("step budget exhausted at pc=0x%x" % self.pc)

    def _transfer_target(self, insn):
        """Return the target address, or None for a not-taken branch."""
        m = insn.mnemonic
        if m == "j":
            return insn.target
        if m == "jal":
            self._write(31, insn.addr + 8)
            return insn.target
        if m == "jr":
            return self._read(insn.rs)
        if m == "jalr":
            target = self._read(insn.rs)
            self._write(insn.rd, insn.addr + 8)
            return target
        rs = self._read(insn.rs)
        if m == "beq":
            taken = rs == self._read(insn.rt)
        elif m == "bne":
            taken = rs != self._read(insn.rt)
        elif m == "blez":
            taken = to_signed32(rs) <= 0
        elif m == "bgtz":
            taken = to_signed32(rs) > 0
        elif m == "bltz":
            taken = to_signed32(rs) < 0
        elif m == "bgez":
            taken = to_signed32(rs) >= 0
        else:
            raise EmulationError("unhandled transfer %r" % m)
        return insn.branch_target() if taken else None

    def _exec_simple(self, insn):
        m = insn.mnemonic
        if insn.kind == "r":
            if m == "sll":
                self._write(insn.rd, self._read(insn.rt) << insn.shamt)
            elif m == "srl":
                self._write(insn.rd, self._read(insn.rt) >> insn.shamt)
            elif m == "sra":
                self._write(
                    insn.rd, to_unsigned32(to_signed32(self._read(insn.rt)) >> insn.shamt)
                )
            elif m == "sllv":
                self._write(
                    insn.rd, self._read(insn.rt) << (self._read(insn.rs) & 0x1F)
                )
            elif m == "srlv":
                self._write(
                    insn.rd, self._read(insn.rt) >> (self._read(insn.rs) & 0x1F)
                )
            elif m == "srav":
                self._write(
                    insn.rd,
                    to_unsigned32(
                        to_signed32(self._read(insn.rt))
                        >> (self._read(insn.rs) & 0x1F)
                    ),
                )
            elif m == "addu":
                self._write(insn.rd, self._read(insn.rs) + self._read(insn.rt))
            elif m == "subu":
                self._write(insn.rd, self._read(insn.rs) - self._read(insn.rt))
            elif m == "and":
                self._write(insn.rd, self._read(insn.rs) & self._read(insn.rt))
            elif m == "or":
                self._write(insn.rd, self._read(insn.rs) | self._read(insn.rt))
            elif m == "xor":
                self._write(insn.rd, self._read(insn.rs) ^ self._read(insn.rt))
            elif m == "nor":
                self._write(
                    insn.rd, ~(self._read(insn.rs) | self._read(insn.rt))
                )
            elif m == "slt":
                self._write(
                    insn.rd,
                    int(
                        to_signed32(self._read(insn.rs))
                        < to_signed32(self._read(insn.rt))
                    ),
                )
            elif m == "sltu":
                self._write(
                    insn.rd, int(self._read(insn.rs) < self._read(insn.rt))
                )
            else:
                raise EmulationError("unhandled R-type %r in slot" % m)
            return
        if m == "lui":
            self._write(insn.rt, (insn.imm & 0xFFFF) << 16)
        elif m == "addiu":
            self._write(insn.rt, self._read(insn.rs) + insn.imm)
        elif m == "slti":
            self._write(
                insn.rt, int(to_signed32(self._read(insn.rs)) < insn.imm)
            )
        elif m == "sltiu":
            self._write(
                insn.rt, int(self._read(insn.rs) < (insn.imm & _MASK32))
            )
        elif m == "andi":
            self._write(insn.rt, self._read(insn.rs) & (insn.imm & 0xFFFF))
        elif m == "ori":
            self._write(insn.rt, self._read(insn.rs) | (insn.imm & 0xFFFF))
        elif m == "xori":
            self._write(insn.rt, self._read(insn.rs) ^ (insn.imm & 0xFFFF))
        elif m in mips_enc.LOADS:
            addr = (self._read(insn.rs) + insn.imm) & _MASK32
            size = {"lb": 1, "lbu": 1, "lh": 2, "lhu": 2, "lw": 4}[m]
            value = self.memory.read(addr, size)
            if m in ("lb", "lh"):
                value = to_unsigned32(sign_extend(value, size * 8))
            self._write(insn.rt, value)
        elif m in mips_enc.STORES:
            addr = (self._read(insn.rs) + insn.imm) & _MASK32
            size = {"sb": 1, "sh": 2, "sw": 4}[m]
            self.memory.write(addr, self._read(insn.rt), size)
        else:
            raise EmulationError("unhandled instruction %r" % m)


def make_cpu(arch, memory):
    """Instantiate the right CPU class for an :class:`ArchInfo`."""
    if arch.name == "arm":
        return ArmCPU(memory)
    return MipsCPU(memory)
