"""Canonical symbolic values.

The paper describes variables "through the memory" with address
expressions of the form ``base + offset`` and ``deref`` for memory
access (§III-B, Fig. 6).  This module is that representation:

* :class:`SymVar` — free symbols: ``arg0``..``arg9``, the stack base
  ``sp0``, and initial register contents.
* :class:`SymRet` — the unique ``ret_{callsite}`` return symbols.
* :class:`SymDeref` — ``deref(addr)``, a memory read at a canonical
  address expression.
* :class:`SymLin` — a canonical linear combination ``Σ coef·atom +
  const``; all additive arithmetic normalises into it, which makes the
  ``base + offset`` view (:func:`base_offset`) syntactic.
* :class:`SymOp` — residual non-linear operations (comparisons keep
  their op names so the sanitization checker can read them back).
* :class:`SymTaint` — a taint source marker introduced when a source
  function (Table I) writes attacker-controlled data.
* :class:`SymHeap` — a heap object identified by the hash of its
  callsite chain (paper §III-E, Listing 1).

Everything is immutable and hashable; equality is structural, which is
exactly the aliasing notion the paper's Algorithm 1 extends.
"""

from dataclasses import dataclass

from repro.ir.expr import Ops

_MASK32 = 0xFFFFFFFF


@dataclass(frozen=True)
class SymExpr:
    """Base class for canonical symbolic values."""


@dataclass(frozen=True)
class SymConst(SymExpr):
    value: int


@dataclass(frozen=True)
class SymVar(SymExpr):
    name: str


@dataclass(frozen=True)
class SymRet(SymExpr):
    """The symbolic return value ``ret_{callsite}``."""

    callsite: int  # callsite address


@dataclass(frozen=True)
class SymDeref(SymExpr):
    addr: SymExpr
    size: int = 4


@dataclass(frozen=True)
class SymLin(SymExpr):
    """Canonical linear form: ``sum(coef * atom) + const``.

    ``terms`` is a sorted tuple of ``(atom, coef)`` with non-zero
    integer coefficients; invariant: at least one term, and not the
    degenerate single-term/coef-1/const-0 case (that is just the atom).
    """

    terms: tuple
    const: int


@dataclass(frozen=True)
class SymOp(SymExpr):
    """Residual operation over canonical operands."""

    op: str
    args: tuple


@dataclass(frozen=True)
class SymTaint(SymExpr):
    """Attacker-controlled data introduced by ``source`` at a callsite."""

    source: str
    callsite: int


@dataclass(frozen=True)
class SymHeap(SymExpr):
    """A heap pointer, unique per callsite chain (hashed)."""

    chain_hash: int
    label: str = "heap"


UNKNOWN = SymVar("<unknown>")


# ---------------------------------------------------------------------------
# Linear canonicalisation.

def _sort_key(atom):
    return (type(atom).__name__, pretty(atom))


def _to_linear(expr):
    """Decompose ``expr`` into ``(dict atom->coef, const)``.

    Constants enter linear arithmetic as signed values so that
    ``sp0 + 0xffffff00`` canonicalises to ``sp0 - 0x100``; pure
    constants renormalise to unsigned on the way out.
    """
    if isinstance(expr, SymConst):
        return {}, _signed(expr.value)
    if isinstance(expr, SymLin):
        return dict(expr.terms), expr.const
    return {expr: 1}, 0


def _from_linear(terms, const):
    terms = {atom: coef for atom, coef in terms.items() if coef != 0}
    if not terms:
        # Pure constants are canonically unsigned 32-bit; symbolic
        # offsets stay signed inside SymLin.const.
        return SymConst(const & _MASK32)
    if len(terms) == 1 and const == 0:
        (atom, coef), = terms.items()
        if coef == 1:
            return atom
    ordered = tuple(sorted(terms.items(), key=lambda kv: _sort_key(kv[0])))
    return SymLin(terms=ordered, const=const)


def mk_add(a, b):
    ta, ca = _to_linear(a)
    tb, cb = _to_linear(b)
    for atom, coef in tb.items():
        ta[atom] = ta.get(atom, 0) + coef
    return _from_linear(ta, ca + cb)


def mk_neg(a):
    terms, const = _to_linear(a)
    return _from_linear({atom: -coef for atom, coef in terms.items()}, -const)


def mk_sub(a, b):
    return mk_add(a, mk_neg(b))


def mk_mul(a, b):
    if isinstance(a, SymConst) and isinstance(b, SymConst):
        return SymConst((a.value * b.value) & _MASK32)
    for const, other in ((a, b), (b, a)):
        if isinstance(const, SymConst):
            terms, c = _to_linear(other)
            return _from_linear(
                {atom: coef * const.value for atom, coef in terms.items()},
                c * const.value,
            )
    return SymOp(Ops.MUL, (a, b))


def mk_deref(addr, size=4):
    return SymDeref(addr=addr, size=size)


_CONST_FOLD = {
    Ops.AND: lambda a, b: a & b,
    Ops.OR: lambda a, b: a | b,
    Ops.XOR: lambda a, b: a ^ b,
    Ops.SHL: lambda a, b: (a << (b & 0xFF)) & _MASK32 if (b & 0xFF) < 32 else 0,
    Ops.SHR: lambda a, b: (a & _MASK32) >> (b & 0xFF) if (b & 0xFF) < 32 else 0,
    Ops.CMP_EQ: lambda a, b: int(a == b),
    Ops.CMP_NE: lambda a, b: int(a != b),
    Ops.CMP_LT_U: lambda a, b: int((a & _MASK32) < (b & _MASK32)),
    Ops.CMP_LE_U: lambda a, b: int((a & _MASK32) <= (b & _MASK32)),
}


def _signed(value):
    value &= _MASK32
    return value - (1 << 32) if value >= (1 << 31) else value


def mk_binop(op, a, b):
    """Build ``op(a, b)`` with canonicalisation and constant folding."""
    if op == Ops.ADD:
        return mk_add(a, b)
    if op == Ops.SUB:
        return mk_sub(a, b)
    if op == Ops.MUL:
        return mk_mul(a, b)
    if isinstance(a, SymConst) and isinstance(b, SymConst):
        if op in _CONST_FOLD:
            return SymConst(_CONST_FOLD[op](a.value, b.value) & _MASK32)
        if op == Ops.CMP_LT_S:
            return SymConst(int(_signed(a.value) < _signed(b.value)))
        if op == Ops.CMP_LE_S:
            return SymConst(int(_signed(a.value) <= _signed(b.value)))
        if op == Ops.SAR:
            return SymConst(_signed(a.value) >> (b.value & 0x1F) & _MASK32)
        if op == Ops.ROR:
            amount = b.value & 0x1F
            value = a.value & _MASK32
            return SymConst(((value >> amount) | (value << (32 - amount))) & _MASK32)
    # Shift-left by a constant is linear.
    if op == Ops.SHL and isinstance(b, SymConst) and b.value < 32:
        return mk_mul(a, SymConst(1 << b.value))
    # x & 0xffffffff and x | 0 are identities.
    if op == Ops.AND and isinstance(b, SymConst) and b.value == _MASK32:
        return a
    if op == Ops.OR and isinstance(b, SymConst) and b.value == 0:
        return a
    if op == Ops.XOR and a == b:
        return SymConst(0)
    return SymOp(op, (a, b))


def mk_unop(op, a):
    if isinstance(a, SymConst):
        value = a.value & _MASK32
        if op == Ops.NOT:
            return SymConst(value ^ _MASK32)
        if op == Ops.NEG:
            return SymConst((-value) & _MASK32)
        if op == Ops.U8_TO_32 or op == Ops.TO_8:
            return SymConst(value & 0xFF)
        if op == Ops.U16_TO_32 or op == Ops.TO_16:
            return SymConst(value & 0xFFFF)
        if op == Ops.S8_TO_32:
            value &= 0xFF
            return SymConst((value - 0x100 if value >= 0x80 else value) & _MASK32)
        if op == Ops.S16_TO_32:
            value &= 0xFFFF
            return SymConst(
                (value - 0x10000 if value >= 0x8000 else value) & _MASK32
            )
    if op == Ops.NEG:
        return mk_neg(a)
    # Width adjustments of loads and taint are no-ops for the tracker:
    # zero-extending a narrow load, or truncating to a width the value
    # already has, keeps the canonical shape.
    if op in (Ops.U8_TO_32, Ops.U16_TO_32) and isinstance(
        a, (SymTaint, SymDeref)
    ):
        return a
    if op == Ops.TO_8 and isinstance(a, SymDeref) and a.size == 1:
        return a
    if op == Ops.TO_16 and isinstance(a, SymDeref) and a.size <= 2:
        return a
    if op in (Ops.TO_8, Ops.TO_16) and isinstance(a, SymTaint):
        return a
    return SymOp(op, (a,))


def mk_ite(cond, iftrue, iffalse):
    if isinstance(cond, SymConst):
        return iftrue if cond.value else iffalse
    if iftrue == iffalse:
        return iftrue
    return SymOp("ite", (cond, iftrue, iffalse))


# ---------------------------------------------------------------------------
# Structure helpers.

def base_offset(expr):
    """View ``expr`` as ``base + offset``.

    Returns ``(base_atom, offset)``; for an absolute address the base is
    ``None``; returns ``None`` when the expression is not of that shape
    (multiple symbolic terms or scaled bases).
    """
    if isinstance(expr, SymConst):
        return None, expr.value
    if isinstance(expr, SymLin):
        if len(expr.terms) == 1 and expr.terms[0][1] == 1:
            return expr.terms[0][0], expr.const
        return None
    if isinstance(expr, (SymVar, SymRet, SymDeref, SymHeap, SymOp, SymTaint)):
        return expr, 0
    return None


def walk(expr):
    """Yield ``expr`` and every sub-expression, pre-order."""
    yield expr
    if isinstance(expr, SymDeref):
        yield from walk(expr.addr)
    elif isinstance(expr, SymLin):
        for atom, _coef in expr.terms:
            yield from walk(atom)
    elif isinstance(expr, SymOp):
        for arg in expr.args:
            yield from walk(arg)


def substitute(expr, mapping):
    """Rewrite ``expr`` bottom-up, replacing exact matches via ``mapping``.

    Replacement applies to whole sub-expressions after their children
    were rewritten, so ``deref(arg0+4)`` maps correctly even when both
    ``arg0`` and the full deref appear as keys.
    """
    if not mapping:
        return expr

    def rewrite(node):
        if isinstance(node, SymDeref):
            new = SymDeref(rewrite(node.addr), node.size)
        elif isinstance(node, SymLin):
            acc = SymConst(node.const)
            for atom, coef in node.terms:
                acc = mk_add(acc, mk_mul(SymConst(coef), rewrite(atom)))
            new = acc
        elif isinstance(node, SymOp):
            new = SymOp(node.op, tuple(rewrite(a) for a in node.args))
        else:
            new = node
        return mapping.get(new, new)

    return rewrite(expr)


def contains(expr, needle):
    """True when ``needle`` occurs anywhere inside ``expr``."""
    return any(node == needle for node in walk(expr))


def derefs_in(expr):
    """All :class:`SymDeref` nodes inside ``expr`` (including itself)."""
    return [node for node in walk(expr) if isinstance(node, SymDeref)]


def taints_in(expr):
    return [node for node in walk(expr) if isinstance(node, SymTaint)]


# ---------------------------------------------------------------------------
# Rendering (paper-style notation).

_OP_SYMBOLS = {
    Ops.AND: "&", Ops.OR: "|", Ops.XOR: "^",
    Ops.SHL: "<<", Ops.SHR: ">>u", Ops.SAR: ">>s", Ops.MUL: "*",
    Ops.CMP_EQ: "==", Ops.CMP_NE: "!=",
    Ops.CMP_LT_S: "<s", Ops.CMP_LE_S: "<=s",
    Ops.CMP_LT_U: "<u", Ops.CMP_LE_U: "<=u",
}


def pretty(expr):
    """Render in the paper's notation, e.g. ``deref(arg0 + 0x4c)``."""
    if isinstance(expr, SymConst):
        return "0x%x" % (expr.value & _MASK32) if expr.value >= 0 else (
            "-0x%x" % (-expr.value)
        )
    if isinstance(expr, SymVar):
        return expr.name
    if isinstance(expr, SymRet):
        return "ret_{0x%x}" % expr.callsite
    if isinstance(expr, SymDeref):
        return "deref(%s)" % pretty(expr.addr)
    if isinstance(expr, SymTaint):
        return "taint<%s@0x%x>" % (expr.source, expr.callsite)
    if isinstance(expr, SymHeap):
        return "%s_%08x" % (expr.label, expr.chain_hash & 0xFFFFFFFF)
    if isinstance(expr, SymLin):
        parts = []
        for atom, coef in expr.terms:
            if coef == 1:
                parts.append(pretty(atom))
            elif coef == -1:
                parts.append("-%s" % pretty(atom))
            else:
                parts.append("%d*%s" % (coef, pretty(atom)))
        rendered = " + ".join(parts).replace("+ -", "- ")
        if expr.const > 0:
            rendered += " + 0x%x" % expr.const
        elif expr.const < 0:
            rendered += " - 0x%x" % (-expr.const)
        return rendered
    if isinstance(expr, SymOp):
        if expr.op == "ite":
            return "ite(%s, %s, %s)" % tuple(pretty(a) for a in expr.args)
        if len(expr.args) == 2 and expr.op in _OP_SYMBOLS:
            return "(%s %s %s)" % (
                pretty(expr.args[0]), _OP_SYMBOLS[expr.op], pretty(expr.args[1])
            )
        return "%s(%s)" % (expr.op, ", ".join(pretty(a) for a in expr.args))
    return repr(expr)
