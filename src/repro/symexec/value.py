"""Canonical symbolic values, hash-consed.

The paper describes variables "through the memory" with address
expressions of the form ``base + offset`` and ``deref`` for memory
access (§III-B, Fig. 6).  This module is that representation:

* :class:`SymVar` — free symbols: ``arg0``..``arg9``, the stack base
  ``sp0``, and initial register contents.
* :class:`SymRet` — the unique ``ret_{callsite}`` return symbols.
* :class:`SymDeref` — ``deref(addr)``, a memory read at a canonical
  address expression.
* :class:`SymLin` — a canonical linear combination ``Σ coef·atom +
  const``; all additive arithmetic normalises into it, which makes the
  ``base + offset`` view (:func:`base_offset`) syntactic.
* :class:`SymOp` — residual non-linear operations (comparisons keep
  their op names so the sanitization checker can read them back).
* :class:`SymTaint` — a taint source marker introduced when a source
  function (Table I) writes attacker-controlled data.
* :class:`SymHeap` — a heap object identified by the hash of its
  callsite chain (paper §III-E, Listing 1).

Everything is immutable; structural equality — the aliasing notion the
paper's Algorithm 1 extends — is **identity**: every constructor
interns into a per-class arena, so two structurally equal expressions
are the same object, ``==`` is a pointer comparison, and ``hash`` is
the constant-time default identity hash instead of a recursive walk.
The arenas also back memo tables for the hot structural queries
(:func:`base_offset`, :func:`walk`, :func:`pretty`, sub-node sets for
:func:`substitute`), which are computed once per distinct expression.

The arenas are per-process and grow monotonically; fleet workers are
per-job processes, so nothing outlives the scan that built it.
Construction is not thread-safe in general but uses atomic
``dict.setdefault`` publication, so concurrent construction can never
yield two live objects for one structural value.  Pickling round-trips
through the constructors (``__reduce__``), re-interning on load.
"""

from repro.ir.expr import Ops

_MASK32 = 0xFFFFFFFF


class SymExpr:
    """Base class for canonical (interned) symbolic values."""

    __slots__ = ()

    def __setattr__(self, name, value):
        raise AttributeError(
            "%s is immutable (interned)" % type(self).__name__
        )

    def __delattr__(self, name):
        raise AttributeError(
            "%s is immutable (interned)" % type(self).__name__
        )

    # Interned values are shared freely: copying is identity.
    def __copy__(self):
        return self

    def __deepcopy__(self, memo):
        return self


def _intern(pool, key, candidate):
    """Publish ``candidate`` under ``key`` unless a twin won the race."""
    return pool.setdefault(key, candidate)


class SymConst(SymExpr):
    __slots__ = ("value",)
    _pool = {}

    def __new__(cls, value):
        self = cls._pool.get(value)
        if self is None:
            self = object.__new__(cls)
            object.__setattr__(self, "value", value)
            self = _intern(cls._pool, value, self)
        return self

    def __reduce__(self):
        return (SymConst, (self.value,))

    def __repr__(self):
        return "SymConst(value=%r)" % (self.value,)


class SymVar(SymExpr):
    __slots__ = ("name",)
    _pool = {}

    def __new__(cls, name):
        self = cls._pool.get(name)
        if self is None:
            self = object.__new__(cls)
            object.__setattr__(self, "name", name)
            self = _intern(cls._pool, name, self)
        return self

    def __reduce__(self):
        return (SymVar, (self.name,))

    def __repr__(self):
        return "SymVar(name=%r)" % (self.name,)


class SymRet(SymExpr):
    """The symbolic return value ``ret_{callsite}``."""

    __slots__ = ("callsite",)
    _pool = {}

    def __new__(cls, callsite):
        self = cls._pool.get(callsite)
        if self is None:
            self = object.__new__(cls)
            object.__setattr__(self, "callsite", callsite)
            self = _intern(cls._pool, callsite, self)
        return self

    def __reduce__(self):
        return (SymRet, (self.callsite,))

    def __repr__(self):
        return "SymRet(callsite=%r)" % (self.callsite,)


class SymDeref(SymExpr):
    __slots__ = ("addr", "size")
    _pool = {}

    def __new__(cls, addr, size=4):
        key = (addr, size)
        self = cls._pool.get(key)
        if self is None:
            self = object.__new__(cls)
            object.__setattr__(self, "addr", addr)
            object.__setattr__(self, "size", size)
            self = _intern(cls._pool, key, self)
        return self

    def __reduce__(self):
        return (SymDeref, (self.addr, self.size))

    def __repr__(self):
        return "SymDeref(addr=%r, size=%r)" % (self.addr, self.size)


class SymLin(SymExpr):
    """Canonical linear form: ``sum(coef * atom) + const``.

    ``terms`` is a tuple of ``(atom, coef)`` pairs sorted by the
    canonical atom order, with non-zero integer coefficients;
    invariant: at least one term, and not the degenerate
    single-term/coef-1/const-0 case (that is just the atom).  The
    constructor asserts the invariant — build through
    :func:`make_linear` (or the ``mk_*`` arithmetic) rather than
    assembling term tuples by hand.
    """

    __slots__ = ("terms", "const")
    _pool = {}

    def __new__(cls, terms, const):
        key = (terms, const)
        self = cls._pool.get(key)
        if self is None:
            assert _valid_linear(terms, const), (
                "non-canonical SymLin: terms=%r const=%r" % (terms, const)
            )
            self = object.__new__(cls)
            object.__setattr__(self, "terms", terms)
            object.__setattr__(self, "const", const)
            self = _intern(cls._pool, key, self)
        return self

    def __reduce__(self):
        return (SymLin, (self.terms, self.const))

    def __repr__(self):
        return "SymLin(terms=%r, const=%r)" % (self.terms, self.const)


class SymOp(SymExpr):
    """Residual operation over canonical operands."""

    __slots__ = ("op", "args")
    _pool = {}

    def __new__(cls, op, args):
        key = (op, args)
        self = cls._pool.get(key)
        if self is None:
            self = object.__new__(cls)
            object.__setattr__(self, "op", op)
            object.__setattr__(self, "args", args)
            self = _intern(cls._pool, key, self)
        return self

    def __reduce__(self):
        return (SymOp, (self.op, self.args))

    def __repr__(self):
        return "SymOp(op=%r, args=%r)" % (self.op, self.args)


class SymTaint(SymExpr):
    """Attacker-controlled data introduced by ``source`` at a callsite."""

    __slots__ = ("source", "callsite")
    _pool = {}

    def __new__(cls, source, callsite):
        key = (source, callsite)
        self = cls._pool.get(key)
        if self is None:
            self = object.__new__(cls)
            object.__setattr__(self, "source", source)
            object.__setattr__(self, "callsite", callsite)
            self = _intern(cls._pool, key, self)
        return self

    def __reduce__(self):
        return (SymTaint, (self.source, self.callsite))

    def __repr__(self):
        return "SymTaint(source=%r, callsite=%r)" % (
            self.source, self.callsite,
        )


class SymHeap(SymExpr):
    """A heap pointer, unique per callsite chain (hashed)."""

    __slots__ = ("chain_hash", "label")
    _pool = {}

    def __new__(cls, chain_hash, label="heap"):
        key = (chain_hash, label)
        self = cls._pool.get(key)
        if self is None:
            self = object.__new__(cls)
            object.__setattr__(self, "chain_hash", chain_hash)
            object.__setattr__(self, "label", label)
            self = _intern(cls._pool, key, self)
        return self

    def __reduce__(self):
        return (SymHeap, (self.chain_hash, self.label))

    def __repr__(self):
        return "SymHeap(chain_hash=%r, label=%r)" % (
            self.chain_hash, self.label,
        )


# Small-constant pool: the offsets/immediates that dominate real code
# are interned eagerly so the hot path's first lookup always hits.
for _v in range(257):
    SymConst(_v)
for _v in (0xFF, 0xFFFF, 0xFFFFFF, _MASK32, 0x1000, 0x8000):
    SymConst(_v)
del _v

UNKNOWN = SymVar("<unknown>")


def export_arena_seed(max_items=8192):
    """A picklable seed of this process's atom arenas (bytes).

    Covers the atoms every scan re-creates identically: the eager
    small-constant pool plus whatever constants and variable names
    this process interned so far.  The fleet scheduler publishes the
    seed once as a read-only shared-memory block and every pool
    worker attaches it (:func:`attach_arena_seed`), so worker arenas
    start warm instead of being rebuilt per process.  Interning is
    content-addressed, so seeding is pure optimisation — it can never
    change an analysis result, only skip allocations.
    """
    import pickle

    return pickle.dumps(
        {
            "consts": list(SymConst._pool)[:max_items],
            "vars": list(SymVar._pool)[:max_items],
        },
        protocol=4,
    )


def attach_arena_seed(buf):
    """Re-intern a seed from :func:`export_arena_seed`; returns count."""
    import pickle

    seed = pickle.loads(bytes(buf))
    consts = seed.get("consts", ())
    names = seed.get("vars", ())
    for value in consts:
        SymConst(value)
    for name in names:
        SymVar(name)
    return len(consts) + len(names)


def _valid_linear(terms, const):
    """The documented SymLin canonical-form invariant."""
    if not isinstance(terms, tuple) or not terms:
        return False
    if not isinstance(const, int):
        return False
    if len(terms) == 1 and terms[0][1] == 1 and const == 0:
        return False  # degenerate: just the atom
    previous = None
    for entry in terms:
        if not (isinstance(entry, tuple) and len(entry) == 2):
            return False
        atom, coef = entry
        if not isinstance(coef, int) or coef == 0:
            return False
        if isinstance(atom, (SymConst, SymLin)):
            return False  # constants fold into const; no nested linears
        key = _sort_key(atom)
        if previous is not None and key < previous:
            return False  # terms must be sorted canonically
        previous = key
    return True


# ---------------------------------------------------------------------------
# Memo tables.  Interning makes every expression a stable dict key with
# a constant-time hash, so each structural query is computed once per
# distinct expression for the life of the process.

_SORT_KEYS = {}      # atom -> (type name, rendered form)
_PRETTY = {}         # expr -> paper-notation string
_NODES = {}          # expr -> pre-order tuple of sub-expressions
_NODE_SETS = {}      # expr -> frozenset of sub-expressions
_BASE_OFFSET = {}    # expr -> (base, offset) | None
_DEREFS = {}         # expr -> tuple of SymDeref sub-expressions
_TAINTS = {}         # expr -> tuple of SymTaint sub-expressions


def _sort_key(atom):
    key = _SORT_KEYS.get(atom)
    if key is None:
        key = (type(atom).__name__, pretty(atom))
        _SORT_KEYS[atom] = key
    return key


# ---------------------------------------------------------------------------
# Linear canonicalisation.

def _to_linear(expr):
    """Decompose ``expr`` into ``(dict atom->coef, const)``.

    Constants enter linear arithmetic as signed values so that
    ``sp0 + 0xffffff00`` canonicalises to ``sp0 - 0x100``; pure
    constants renormalise to unsigned on the way out.
    """
    if isinstance(expr, SymConst):
        return {}, _signed(expr.value)
    if isinstance(expr, SymLin):
        return dict(expr.terms), expr.const
    return {expr: 1}, 0


def _from_linear(terms, const):
    terms = {atom: coef for atom, coef in terms.items() if coef != 0}
    if not terms:
        # Pure constants are canonically unsigned 32-bit; symbolic
        # offsets stay signed inside SymLin.const.
        return SymConst(const & _MASK32)
    if len(terms) == 1 and const == 0:
        (atom, coef), = terms.items()
        if coef == 1:
            return atom
    ordered = tuple(sorted(terms.items(), key=lambda kv: _sort_key(kv[0])))
    return SymLin(terms=ordered, const=const)


def make_linear(terms, const):
    """Build the canonical form of ``Σ coef·atom + const``.

    ``terms`` maps atoms to integer coefficients (zeros allowed — they
    are dropped); the result is a :class:`SymLin`, a bare atom, or a
    :class:`SymConst`, whichever the invariant dictates.  This is the
    single entry point that assembles term tuples (one pass, one
    sort); nothing else constructs :class:`SymLin` directly.
    """
    return _from_linear(terms, const)


def mk_add(a, b):
    # Fast path: adding a constant never changes the term tuple, so the
    # dominant ``base + offset`` shape skips the dict rebuild + re-sort.
    if isinstance(b, SymConst):
        if isinstance(a, SymConst):
            return SymConst((a.value + b.value) & _MASK32)
        delta = _signed(b.value)
        if delta == 0:
            return a
        if isinstance(a, SymLin):
            const = a.const + delta
            if const == 0 and len(a.terms) == 1 and a.terms[0][1] == 1:
                return a.terms[0][0]
            return SymLin(a.terms, const)
        return SymLin(((a, 1),), delta)
    if isinstance(a, SymConst):
        return mk_add(b, a)
    ta, ca = _to_linear(a)
    tb, cb = _to_linear(b)
    for atom, coef in tb.items():
        ta[atom] = ta.get(atom, 0) + coef
    return _from_linear(ta, ca + cb)


def mk_neg(a):
    if isinstance(a, SymConst):
        return SymConst((-a.value) & _MASK32)
    terms, const = _to_linear(a)
    return _from_linear({atom: -coef for atom, coef in terms.items()}, -const)


def mk_sub(a, b):
    return mk_add(a, mk_neg(b))


def mk_mul(a, b):
    if isinstance(a, SymConst) and isinstance(b, SymConst):
        return SymConst((a.value * b.value) & _MASK32)
    for const, other in ((a, b), (b, a)):
        if isinstance(const, SymConst):
            terms, c = _to_linear(other)
            return _from_linear(
                {atom: coef * const.value for atom, coef in terms.items()},
                c * const.value,
            )
    return SymOp(Ops.MUL, (a, b))


def mk_deref(addr, size=4):
    return SymDeref(addr, size)


_CONST_FOLD = {
    Ops.AND: lambda a, b: a & b,
    Ops.OR: lambda a, b: a | b,
    Ops.XOR: lambda a, b: a ^ b,
    Ops.SHL: lambda a, b: (a << (b & 0xFF)) & _MASK32 if (b & 0xFF) < 32 else 0,
    Ops.SHR: lambda a, b: (a & _MASK32) >> (b & 0xFF) if (b & 0xFF) < 32 else 0,
    Ops.CMP_EQ: lambda a, b: int(a == b),
    Ops.CMP_NE: lambda a, b: int(a != b),
    Ops.CMP_LT_U: lambda a, b: int((a & _MASK32) < (b & _MASK32)),
    Ops.CMP_LE_U: lambda a, b: int((a & _MASK32) <= (b & _MASK32)),
}


def _signed(value):
    value &= _MASK32
    return value - (1 << 32) if value >= (1 << 31) else value


def mk_binop(op, a, b):
    """Build ``op(a, b)`` with canonicalisation and constant folding."""
    if op == Ops.ADD:
        return mk_add(a, b)
    if op == Ops.SUB:
        return mk_sub(a, b)
    if op == Ops.MUL:
        return mk_mul(a, b)
    if isinstance(a, SymConst) and isinstance(b, SymConst):
        if op in _CONST_FOLD:
            return SymConst(_CONST_FOLD[op](a.value, b.value) & _MASK32)
        if op == Ops.CMP_LT_S:
            return SymConst(int(_signed(a.value) < _signed(b.value)))
        if op == Ops.CMP_LE_S:
            return SymConst(int(_signed(a.value) <= _signed(b.value)))
        if op == Ops.SAR:
            return SymConst(_signed(a.value) >> (b.value & 0x1F) & _MASK32)
        if op == Ops.ROR:
            amount = b.value & 0x1F
            value = a.value & _MASK32
            return SymConst(((value >> amount) | (value << (32 - amount))) & _MASK32)
    # Shift-left by a constant is linear.
    if op == Ops.SHL and isinstance(b, SymConst) and b.value < 32:
        return mk_mul(a, SymConst(1 << b.value))
    # x & 0xffffffff and x | 0 are identities.
    if op == Ops.AND and isinstance(b, SymConst) and b.value == _MASK32:
        return a
    if op == Ops.OR and isinstance(b, SymConst) and b.value == 0:
        return a
    if op == Ops.XOR and a is b:
        return SymConst(0)
    return SymOp(op, (a, b))


def mk_unop(op, a):
    if isinstance(a, SymConst):
        value = a.value & _MASK32
        if op == Ops.NOT:
            return SymConst(value ^ _MASK32)
        if op == Ops.NEG:
            return SymConst((-value) & _MASK32)
        if op == Ops.U8_TO_32 or op == Ops.TO_8:
            return SymConst(value & 0xFF)
        if op == Ops.U16_TO_32 or op == Ops.TO_16:
            return SymConst(value & 0xFFFF)
        if op == Ops.S8_TO_32:
            value &= 0xFF
            return SymConst((value - 0x100 if value >= 0x80 else value) & _MASK32)
        if op == Ops.S16_TO_32:
            value &= 0xFFFF
            return SymConst(
                (value - 0x10000 if value >= 0x8000 else value) & _MASK32
            )
    if op == Ops.NEG:
        return mk_neg(a)
    # Width adjustments of loads and taint are no-ops for the tracker:
    # zero-extending a narrow load, or truncating to a width the value
    # already has, keeps the canonical shape.
    if op in (Ops.U8_TO_32, Ops.U16_TO_32) and isinstance(
        a, (SymTaint, SymDeref)
    ):
        return a
    if op == Ops.TO_8 and isinstance(a, SymDeref) and a.size == 1:
        return a
    if op == Ops.TO_16 and isinstance(a, SymDeref) and a.size <= 2:
        return a
    if op in (Ops.TO_8, Ops.TO_16) and isinstance(a, SymTaint):
        return a
    return SymOp(op, (a,))


def mk_ite(cond, iftrue, iffalse):
    if isinstance(cond, SymConst):
        return iftrue if cond.value else iffalse
    if iftrue is iffalse:
        return iftrue
    return SymOp("ite", (cond, iftrue, iffalse))


# ---------------------------------------------------------------------------
# Structure helpers.

def base_offset(expr):
    """View ``expr`` as ``base + offset``.

    Returns ``(base_atom, offset)``; for an absolute address the base is
    ``None``; returns ``None`` when the expression is not of that shape
    (multiple symbolic terms or scaled bases).
    """
    try:
        return _BASE_OFFSET[expr]
    except KeyError:
        pass
    except TypeError:
        return _base_offset_uncached(expr)  # non-interned input
    view = _base_offset_uncached(expr)
    _BASE_OFFSET[expr] = view
    return view


def _base_offset_uncached(expr):
    if isinstance(expr, SymConst):
        return None, expr.value
    if isinstance(expr, SymLin):
        if len(expr.terms) == 1 and expr.terms[0][1] == 1:
            return expr.terms[0][0], expr.const
        return None
    if isinstance(expr, (SymVar, SymRet, SymDeref, SymHeap, SymOp, SymTaint)):
        return expr, 0
    return None


def nodes(expr):
    """``expr`` and every sub-expression, pre-order, as a cached tuple."""
    cached = _NODES.get(expr)
    if cached is None:
        out = [expr]
        if isinstance(expr, SymDeref):
            out.extend(nodes(expr.addr))
        elif isinstance(expr, SymLin):
            for atom, _coef in expr.terms:
                out.extend(nodes(atom))
        elif isinstance(expr, SymOp):
            for arg in expr.args:
                out.extend(nodes(arg))
        cached = tuple(out)
        _NODES[expr] = cached
    return cached


def node_set(expr):
    """The cached set of ``expr``'s sub-expressions (including itself)."""
    cached = _NODE_SETS.get(expr)
    if cached is None:
        cached = frozenset(nodes(expr))
        _NODE_SETS[expr] = cached
    return cached


def walk(expr):
    """Yield ``expr`` and every sub-expression, pre-order."""
    return iter(nodes(expr))


def substitute(expr, mapping):
    """Rewrite ``expr`` bottom-up, replacing exact matches via ``mapping``.

    Replacement applies to whole sub-expressions after their children
    were rewritten, so ``deref(arg0+4)`` maps correctly even when both
    ``arg0`` and the full deref appear as keys.  Sub-trees that contain
    no mapping key are returned as-is (identity), making the common
    no-op case a set-intersection check.
    """
    if not mapping or node_set(expr).isdisjoint(mapping):
        return expr

    def rewrite(node):
        if node_set(node).isdisjoint(mapping):
            return node
        if isinstance(node, SymDeref):
            new = SymDeref(rewrite(node.addr), node.size)
        elif isinstance(node, SymLin):
            terms = {}
            const = node.const
            for atom, coef in node.terms:
                new_atom = rewrite(atom)
                if new_atom is atom:
                    terms[atom] = terms.get(atom, 0) + coef
                    continue
                # A replaced atom may itself be linear or constant:
                # fold it in one accumulation pass instead of chaining
                # mk_add over intermediate tuples.
                sub_terms, sub_const = _to_linear(new_atom)
                for sub_atom, sub_coef in sub_terms.items():
                    terms[sub_atom] = terms.get(sub_atom, 0) + coef * sub_coef
                const += coef * sub_const
            new = _from_linear(terms, const)
        elif isinstance(node, SymOp):
            new = SymOp(node.op, tuple(rewrite(a) for a in node.args))
        else:
            new = node
        return mapping.get(new, new)

    return rewrite(expr)


def contains(expr, needle):
    """True when ``needle`` occurs anywhere inside ``expr``."""
    return needle in node_set(expr)


def derefs_in(expr):
    """All :class:`SymDeref` nodes inside ``expr`` (including itself)."""
    cached = _DEREFS.get(expr)
    if cached is None:
        cached = tuple(
            node for node in nodes(expr) if isinstance(node, SymDeref)
        )
        _DEREFS[expr] = cached
    return cached


def taints_in(expr):
    cached = _TAINTS.get(expr)
    if cached is None:
        cached = tuple(
            node for node in nodes(expr) if isinstance(node, SymTaint)
        )
        _TAINTS[expr] = cached
    return cached


# ---------------------------------------------------------------------------
# Rendering (paper-style notation).

_OP_SYMBOLS = {
    Ops.AND: "&", Ops.OR: "|", Ops.XOR: "^",
    Ops.SHL: "<<", Ops.SHR: ">>u", Ops.SAR: ">>s", Ops.MUL: "*",
    Ops.CMP_EQ: "==", Ops.CMP_NE: "!=",
    Ops.CMP_LT_S: "<s", Ops.CMP_LE_S: "<=s",
    Ops.CMP_LT_U: "<u", Ops.CMP_LE_U: "<=u",
}


def pretty(expr):
    """Render in the paper's notation, e.g. ``deref(arg0 + 0x4c)``."""
    cached = _PRETTY.get(expr)
    if cached is None:
        cached = _pretty_uncached(expr)
        _PRETTY[expr] = cached
    return cached


def _pretty_uncached(expr):
    if isinstance(expr, SymConst):
        return "0x%x" % (expr.value & _MASK32) if expr.value >= 0 else (
            "-0x%x" % (-expr.value)
        )
    if isinstance(expr, SymVar):
        return expr.name
    if isinstance(expr, SymRet):
        return "ret_{0x%x}" % expr.callsite
    if isinstance(expr, SymDeref):
        return "deref(%s)" % pretty(expr.addr)
    if isinstance(expr, SymTaint):
        return "taint<%s@0x%x>" % (expr.source, expr.callsite)
    if isinstance(expr, SymHeap):
        return "%s_%08x" % (expr.label, expr.chain_hash & 0xFFFFFFFF)
    if isinstance(expr, SymLin):
        parts = []
        for atom, coef in expr.terms:
            if coef == 1:
                parts.append(pretty(atom))
            elif coef == -1:
                parts.append("-%s" % pretty(atom))
            else:
                parts.append("%d*%s" % (coef, pretty(atom)))
        rendered = " + ".join(parts).replace("+ -", "- ")
        if expr.const > 0:
            rendered += " + 0x%x" % expr.const
        elif expr.const < 0:
            rendered += " - 0x%x" % (-expr.const)
        return rendered
    if isinstance(expr, SymOp):
        if expr.op == "ite":
            return "ite(%s, %s, %s)" % tuple(pretty(a) for a in expr.args)
        if len(expr.args) == 2 and expr.op in _OP_SYMBOLS:
            return "(%s %s %s)" % (
                pretty(expr.args[0]), _OP_SYMBOLS[expr.op], pretty(expr.args[1])
            )
        return "%s(%s)" % (expr.op, ", ".join(pretty(a) for a in expr.args))
    return repr(expr)
