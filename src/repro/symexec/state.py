"""Symbolic machine state and the per-function analysis records."""

from dataclasses import dataclass, field

from repro.symexec.value import SymDeref, mk_deref


@dataclass(frozen=True)
class DefPair:
    """The paper's definition pair ``(d, u)``.

    ``dest`` is what was defined (a ``deref(...)`` for memory writes,
    a :class:`~repro.symexec.value.SymVar` named ``ret`` for the return
    value); ``value`` is the defining expression; ``site`` the
    instruction/block address it came from.
    """

    dest: object
    value: object
    site: int = 0


@dataclass(frozen=True)
class VarUse:
    """A use of a memory variable (a load that found no definition)."""

    var: object
    site: int = 0


@dataclass(frozen=True)
class Constraint:
    """A path constraint: branch guard ``expr`` evaluated to ``taken``."""

    expr: object
    taken: bool
    site: int = 0


@dataclass
class CallSiteSummary:
    """One observed call: target, evaluated arguments, machine context."""

    addr: int
    target: object            # function name (str) or a symbolic expr
    args: list
    return_addr: int = None
    constraints: tuple = ()
    stack_args: list = field(default_factory=list)

    @property
    def is_indirect(self):
        return not isinstance(self.target, str)


class SymMemory:
    """Symbolic memory: canonical address expression -> value.

    Matching is syntactic, which is exactly the paper's model — its
    Algorithm 1 exists to recover the aliases this model misses.
    """

    def __init__(self, parent=None):
        self._store = dict(parent._store) if parent is not None else {}

    def write(self, addr_expr, value, size=4):
        self._store[addr_expr] = (value, size)

    def read(self, addr_expr, size=4):
        """Return the stored value, or a fresh ``deref`` on a miss."""
        hit = self._store.get(addr_expr)
        if hit is not None:
            value, stored_size = hit
            if stored_size == size:
                return value, True
        return mk_deref(addr_expr, size), False

    def items(self):
        return self._store.items()

    def __len__(self):
        return len(self._store)


class SymState:
    """Registers + memory + path records for one exploration path."""

    def __init__(self, parent=None):
        if parent is not None:
            self.regs = dict(parent.regs)
            self.memory = SymMemory(parent.memory)
            self.constraints = list(parent.constraints)
            self.visited = set(parent.visited)
        else:
            self.regs = {}
            self.memory = SymMemory()
            self.constraints = []
            self.visited = set()

    def fork(self):
        return SymState(parent=self)

    def get_reg(self, name, default=None):
        return self.regs.get(name, default)

    def set_reg(self, name, value):
        self.regs[name] = value


@dataclass
class FunctionSummary:
    """Everything the interprocedural layers need about one function."""

    name: str
    addr: int
    def_pairs: list = field(default_factory=list)
    uses: list = field(default_factory=list)
    callsites: list = field(default_factory=list)
    constraints: list = field(default_factory=list)
    ret_values: list = field(default_factory=list)
    paths_explored: int = 0
    truncated: bool = False
    deadline_hit: bool = False   # truncation caused by the soft deadline
    loop_stores: list = field(default_factory=list)  # (site, dest, value)
    register_defs: list = field(default_factory=list)  # (reg, site, value)
    _def_index: set = field(default_factory=set, repr=False, compare=False)

    def __getstate__(self):
        # The dedup index is derivable; keep cached blobs lean.
        state = dict(self.__dict__)
        state["_def_index"] = set()
        return state

    def add_def(self, pair):
        if pair not in self._def_set():
            self.def_pairs.append(pair)
            self._def_index.add(pair)

    def _def_set(self):
        # Incremental: def_pairs is append-mostly, so the set is grown
        # to match rather than rebuilt per insertion.  Code that extends
        # def_pairs directly (aliasing, enrichment) is still covered —
        # the delta is absorbed on the next call.
        index = self._def_index
        if len(index) != len(self.def_pairs):
            index = self._def_index = set(self.def_pairs)
        return index

    def defs_of(self, dest):
        return [p for p in self.def_pairs if p.dest == dest]

    def memory_defs(self):
        return [p for p in self.def_pairs if isinstance(p.dest, SymDeref)]
