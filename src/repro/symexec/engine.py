"""Per-function static symbolic execution (paper §III-B).

Every function is analysed separately: argument registers are
initialised with the symbols ``arg0..arg3``, stack arguments
``arg4..arg9`` are pre-stored at their o32/AAPCS slots, the stack
pointer becomes the symbol ``sp0``, and every callee is "hooked" — the
call is summarised, a unique ``ret_{callsite}`` symbol lands in the
return register, and execution continues at the return site.

Both directions of each conditional branch are explored, and blocks
are analysed at most once per path (the paper's loop heuristic), so a
basic block can contribute several distinct symbolic states.
"""

import time

from repro import faultinject
from repro.errors import DeadlineExceeded, SymExecError
from repro.profiling import PROFILER
from repro.ir.expr import Binop, Const, Get, ITE, Load, RdTmp, Unop
from repro.ir.irsb import JumpKind
from repro.ir.stmt import Exit, IMark, Put, Store, WrTmp
from repro.symexec.state import (
    CallSiteSummary,
    Constraint,
    DefPair,
    FunctionSummary,
    SymState,
    VarUse,
)
from repro.symexec.value import (
    SymConst,
    SymRet,
    SymVar,
    mk_binop,
    mk_deref,
    mk_ite,
    mk_unop,
)

SP0 = SymVar("sp0")
RETURN_SENTINEL = SymVar("<return>")


class SymbolicEngine:
    """Runs the static symbolic analysis over recovered functions."""

    def __init__(self, binary, max_paths=64, max_blocks_per_path=256,
                 track_register_defs=False, deadline_seconds=None):
        self.binary = binary
        self.arch = binary.arch
        self.cc = binary.arch.cc
        self.max_paths = max_paths
        self.max_blocks_per_path = max_blocks_per_path
        # Soft per-function wall-clock budget.  The path/block caps
        # bound the *shape* of exploration but not its duration on
        # pathological functions (wide fork fans of cheap paths); the
        # deadline bounds time directly.  Hitting it flags the summary
        # ``truncated`` — everything explored so far still counts.
        self.deadline_seconds = deadline_seconds or None
        # The top-down baseline mirrors angr's DDG, which "builds data
        # dependence on every variable (in the register and memory)";
        # DTaint itself keeps register flow implicit in the symbols.
        self.track_register_defs = track_register_defs

    # ------------------------------------------------------------------

    def initial_state(self):
        state = SymState()
        for i, reg in enumerate(self.cc.arg_regs):
            state.set_reg(reg, SymVar("arg%d" % i))
        state.set_reg(self.cc.sp_reg, SP0)
        state.set_reg(self.cc.ra_reg, RETURN_SENTINEL)
        # Stack arguments arg4..arg9 live above the frame.
        base = self.cc.stack_arg_offset
        for i in range(4, self.cc.max_args):
            slot = mk_binop(
                "Add32", SP0, SymConst(base + 4 * (i - 4))
            )
            state.memory.write(slot, SymVar("arg%d" % i), 4)
        # Flag thunk starts neutral.
        for reg in self.arch.flag_registers:
            state.set_reg(reg, SymConst(0))
        return state

    def analyze_function(self, function):
        """Explore ``function``; return its :class:`FunctionSummary`."""
        # The phase counter lives *here*, not in the detector, so a
        # summary served from cache never registers as symbolic
        # execution — warm fleet runs must show symexec_functions == 0.
        with PROFILER.phase("symexec"):
            PROFILER.count("symexec_functions")
            return self._analyze_function(function)

    def _analyze_function(self, function):
        faultinject.check("symexec", function.name)
        summary = FunctionSummary(name=function.name, addr=function.addr)
        if function.is_import or function.entry_block is None:
            return summary

        from repro.cfg.loops import loop_membership

        loops = loop_membership(function)
        defs_seen = set()
        uses_seen = set()
        constraints_seen = set()

        deadline = None
        if self.deadline_seconds:
            deadline = time.monotonic() + self.deadline_seconds

        stack = [(function.addr, self.initial_state())]
        while stack:
            if summary.paths_explored >= self.max_paths:
                summary.truncated = True
                break
            if self._deadline_hit(deadline, function.name):
                summary.truncated = True
                summary.deadline_hit = True
                break
            block_addr, state = stack.pop()
            path_ended = True
            steps = 0
            current = block_addr
            while current is not None:
                steps += 1
                if steps > self.max_blocks_per_path:
                    summary.truncated = True
                    break
                if deadline is not None and time.monotonic() > deadline:
                    summary.truncated = True
                    summary.deadline_hit = True
                    break
                block = function.blocks.get(current)
                if block is None or current in state.visited:
                    break
                state.visited.add(current)
                in_loop = bool(loops.get(current))
                successors = self._execute_block(
                    block, state, summary, defs_seen, uses_seen,
                    constraints_seen, in_loop, function,
                )
                if not successors:
                    current = None
                    continue
                # Depth-first: continue into the first successor, fork
                # the rest.
                current = successors[0][0]
                state = successors[0][1]
                for addr, forked in successors[1:]:
                    stack.append((addr, forked))
            summary.paths_explored += 1
        return summary

    def _deadline_hit(self, deadline, function_name):
        """True when the soft deadline expired (or one was injected)."""
        try:
            faultinject.check("symexec.deadline", function_name)
        except DeadlineExceeded:
            return True
        return deadline is not None and time.monotonic() > deadline

    # ------------------------------------------------------------------

    def _execute_block(self, block, state, summary, defs_seen, uses_seen,
                       constraints_seen, in_loop, function):
        """Run one IRSB; returns list of (successor_addr, state)."""
        irsb = block.irsb
        tmps = {}
        site = block.addr
        successors = []

        def eval_expr(expr):
            if isinstance(expr, Const):
                return SymConst(expr.value)
            if isinstance(expr, RdTmp):
                return tmps[expr.tmp]
            if isinstance(expr, Get):
                value = state.get_reg(expr.reg)
                if value is None:
                    value = SymVar("init_%s" % expr.reg)
                    state.set_reg(expr.reg, value)
                return value
            if isinstance(expr, Load):
                addr = eval_expr(expr.addr)
                value, hit = state.memory.read(addr, expr.size)
                if not hit:
                    folded = self._read_global(addr, expr.size)
                    if folded is not None:
                        return folded
                    use = VarUse(var=value, site=site)
                    if use not in uses_seen:
                        uses_seen.add(use)
                        summary.uses.append(use)
                return value
            if isinstance(expr, Binop):
                return mk_binop(expr.op, eval_expr(expr.left),
                                eval_expr(expr.right))
            if isinstance(expr, Unop):
                return mk_unop(expr.op, eval_expr(expr.arg))
            if isinstance(expr, ITE):
                return mk_ite(
                    eval_expr(expr.cond), eval_expr(expr.iftrue),
                    eval_expr(expr.iffalse),
                )
            raise SymExecError("cannot evaluate %r" % (expr,))

        for stmt in irsb.stmts:
            if isinstance(stmt, IMark):
                site = stmt.addr
                continue
            if isinstance(stmt, WrTmp):
                tmps[stmt.tmp] = eval_expr(stmt.expr)
            elif isinstance(stmt, Put):
                value = eval_expr(stmt.expr)
                state.set_reg(stmt.reg, value)
                if self.track_register_defs:
                    summary.register_defs.append((stmt.reg, site, value))
            elif isinstance(stmt, Store):
                addr = eval_expr(stmt.addr)
                value = eval_expr(stmt.data)
                state.memory.write(addr, value, stmt.size)
                pair = DefPair(dest=mk_deref(addr, stmt.size), value=value,
                               site=site)
                if pair not in defs_seen:
                    defs_seen.add(pair)
                    summary.def_pairs.append(pair)
                if in_loop:
                    summary.loop_stores.append((site, pair.dest, value))
            elif isinstance(stmt, Exit):
                guard = eval_expr(stmt.guard)
                if isinstance(guard, SymConst):
                    if guard.value:
                        # Unconditionally taken.
                        if stmt.target in function.blocks:
                            return [(stmt.target, state)]
                        return []
                    continue
                if stmt.target in function.blocks:
                    forked = state.fork()
                    taken = Constraint(expr=guard, taken=True, site=site)
                    forked.constraints.append(taken)
                    self._record_constraint(
                        taken, summary, constraints_seen
                    )
                    successors.append((stmt.target, forked))
                fallthrough = Constraint(expr=guard, taken=False, site=site)
                state.constraints.append(fallthrough)
                self._record_constraint(fallthrough, summary, constraints_seen)
            else:
                raise SymExecError("unhandled statement %r" % (stmt,))

        # Block-ending transfer.
        if irsb.jumpkind == JumpKind.RET:
            summary.ret_values.append(
                state.get_reg(self.cc.ret_reg, SymConst(0))
            )
            return successors
        if block.call is not None:
            # Regular calls lift as Ijk_Call; direct tail calls lift as
            # plain jumps but carry a CallSite from CFG recovery.
            self._summarize_call(block, irsb, state, summary, eval_expr)
            if block.successors:
                successors.insert(0, (block.successors[0], state))
            else:
                # Tail call: the callee's return value is ours.
                summary.ret_values.append(SymRet(block.call.addr))
            return successors

        next_value = eval_expr(irsb.next_expr)
        if isinstance(next_value, SymConst) and (
            next_value.value in function.blocks
        ):
            successors.insert(0, (next_value.value, state))
        elif block.successors:
            remaining = [
                s for s in block.successors
                if all(s != addr for addr, _ in successors)
            ]
            if remaining:
                successors.insert(0, (remaining[0], state))
        return successors

    def _record_constraint(self, constraint, summary, seen):
        key = (constraint.expr, constraint.taken)
        if key not in seen:
            seen.add(key)
            summary.constraints.append(constraint)

    def _read_global(self, addr, size):
        """Fold loads from read-only globals (e.g. function-pointer tables)."""
        if not isinstance(addr, SymConst):
            return None
        value = self.binary.read_ro(addr.value, size)
        if value is None:
            return None
        return SymConst(value)

    def _summarize_call(self, block, irsb, state, summary, eval_expr):
        callsite = block.call
        if callsite is None:
            raise SymExecError("call block 0x%x without call info" % block.addr)
        if callsite.target_name is not None:
            target = callsite.target_name
        else:
            target = eval_expr(irsb.next_expr)
            if isinstance(target, SymConst):
                symbol = self._function_at(target.value)
                if symbol is not None:
                    target = symbol.name
                    callsite.target_addr = symbol.addr
                    callsite.target_name = symbol.name
        args = [
            state.get_reg(reg, SymVar("init_%s" % reg))
            for reg in self.cc.arg_regs
        ]
        sp = state.get_reg(self.cc.sp_reg, SP0)
        stack_args = []
        for i in range(4):
            slot = mk_binop(
                "Add32", sp, SymConst(self.cc.stack_arg_offset + 4 * i)
            )
            value, hit = state.memory.read(slot, 4)
            stack_args.append(value if hit else None)
        info = CallSiteSummary(
            addr=callsite.addr,
            target=target,
            args=args,
            return_addr=callsite.return_addr,
            constraints=tuple(state.constraints),
            stack_args=stack_args,
        )
        summary.callsites.append(info)
        # Hook the callee: unique return symbol, continue at the return
        # site (paper §III-B).
        state.set_reg(self.cc.ret_reg, SymRet(callsite.addr))

    def _function_at(self, addr):
        for symbol in self.binary.functions.values():
            if symbol.addr == addr:
                return symbol
        return None
