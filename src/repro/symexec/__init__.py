"""Static symbolic analysis (the paper's SIMUVEX replacement).

Per-function symbolic execution over the IR with the calling
convention initialised to the symbols ``arg0..arg9``, a stack base
``sp0``, and per-callsite return symbols ``ret_{callsite}``; produces
the definition pairs, constraints and callsite summaries that DTaint's
data-flow layers consume.
"""

from repro.symexec.engine import FunctionSummary, SymbolicEngine
from repro.symexec.state import Constraint, DefPair, SymState, VarUse
from repro.symexec.value import (
    SymConst,
    SymDeref,
    SymExpr,
    SymHeap,
    SymLin,
    SymOp,
    SymRet,
    SymTaint,
    SymVar,
    base_offset,
    mk_add,
    mk_binop,
    mk_deref,
    mk_ite,
    mk_neg,
    mk_sub,
    mk_unop,
    pretty,
    substitute,
    walk,
)

__all__ = [
    "Constraint",
    "DefPair",
    "FunctionSummary",
    "SymConst",
    "SymDeref",
    "SymExpr",
    "SymHeap",
    "SymLin",
    "SymOp",
    "SymRet",
    "SymState",
    "SymTaint",
    "SymVar",
    "SymbolicEngine",
    "VarUse",
    "base_offset",
    "mk_add",
    "mk_binop",
    "mk_deref",
    "mk_ite",
    "mk_neg",
    "mk_sub",
    "mk_unop",
    "pretty",
    "substitute",
    "walk",
]
