"""Selectable alias-analysis engines behind a common interface.

``get_engine("dtaint")`` is the paper's Algorithm-1 heuristics (the
default, byte-identical to the historical pipeline); ``get_engine
("sse")`` is the sparse-symbolic-execution engine from the authors'
follow-up paper.  See ``base.py`` for the interface contract and
``compare.py`` for the precision/recall/runtime showdown harness.
"""

from repro.alias.base import (
    DEFAULT_ENGINE,
    ENGINE_NAMES,
    AliasEngine,
    AliasResult,
    get_engine,
)

__all__ = [
    "DEFAULT_ENGINE",
    "ENGINE_NAMES",
    "AliasEngine",
    "AliasResult",
    "get_engine",
]
