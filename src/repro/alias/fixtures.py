"""Seeded alias-stress fixtures with hand-assigned ground truth.

Each fixture is a tiny two-function program built around the
interprocedural dead-store pattern the dtaint engine cannot see
through: a callee stores a pointer into a struct field of its
argument, *overwrites* the field with a second pointer, and taints
exactly one of the two buffers; the caller loads the field and passes
it to ``strcpy``.

* ``dead_store_fp`` taints the buffer only reachable through the
  *dead* store.  Algorithm 1 keeps the stale alias, exports it, and
  the caller reports a vulnerable path that no execution can take — a
  seeded false positive.  The sse engine kills the dead store before
  export, so the program scans clean.
* ``dead_store_recall`` is the twin with the *live* buffer tainted: a
  genuine vulnerability both engines must report (the recall gate).
* ``distinct_cells`` writes two *different* field offsets — identical
  cells only by a sloppy analysis — and taints through the first.
  Also genuinely vulnerable: it proves the sse engine's kill is keyed
  on interned cell identity, not on "same base pointer".

These are static-level labels (the diffcheck oracle is not run here);
the labels follow from the construction and are pinned by tests.
"""

from repro.corpus.builder import GroundTruth, build_binary
from repro.corpus.minicc import (
    Addr,
    Arg,
    Call,
    DeclBuf,
    DeclVar,
    Imm,
    Load,
    MiniFunc,
    Ret,
    Set,
    Store,
    Var,
    compiler_for,
)

BO = "buffer-overflow"
FIELD = 0x4C
FIELD2 = 0x50


def _fill_and_use(name, taint_dead, second_offset=FIELD):
    """The two-function skeleton shared by every fixture.

    ``<name>_fill(req)`` stores ``&stale`` then ``&fresh`` into
    ``req+FIELD`` (the second store at ``second_offset``), then
    ``read`` taints one buffer.  ``<name>(req)`` loads ``req+FIELD``
    and strcpy's it into a 16-byte local.
    """
    tainted = "stale" if taint_dead else "fresh"
    fill = MiniFunc(name + "_fill", 1, [
        DeclBuf("stale", 64),
        DeclBuf("fresh", 64),
        DeclVar("n"),
        Store(Arg(0), FIELD, Addr("stale")),
        Store(Arg(0), second_offset, Addr("fresh")),
        Call("n", "read", [Imm(0), Addr(tainted), Imm(64)]),
        Ret(Imm(0)),
    ])
    handler = MiniFunc(name, 1, [
        DeclBuf("small", 16),
        DeclVar("p"),
        Call(None, fill.name, [Arg(0)]),
        Set("p", Load(Arg(0), FIELD)),
        Call(None, "strcpy", [Addr("small"), Var("p")]),
        Ret(Imm(0)),
    ])
    return [handler, fill]


def dead_store_fp(name="alias_dead_store"):
    """Field overwritten; taint only behind the dead store: clean."""
    functions = _fill_and_use(name, taint_dead=True)
    truth = [GroundTruth(function=name, kind=BO, sink="strcpy",
                         source="read", cve="", vulnerable=False)]
    return functions, truth


def dead_store_recall(name="alias_live_store"):
    """Field overwritten; taint behind the live store: vulnerable."""
    functions = _fill_and_use(name, taint_dead=False)
    truth = [GroundTruth(function=name, kind=BO, sink="strcpy",
                         source="read", cve="", vulnerable=True)]
    return functions, truth


def distinct_cells(name="alias_distinct_cells"):
    """Second store hits a different field: no kill, vulnerable."""
    functions = _fill_and_use(name, taint_dead=True, second_offset=FIELD2)
    truth = [GroundTruth(function=name, kind=BO, sink="strcpy",
                         source="read", cve="", vulnerable=True)]
    return functions, truth


FIXTURES = {
    "dead_store_fp": dead_store_fp,
    "dead_store_recall": dead_store_recall,
    "distinct_cells": distinct_cells,
}


def build_fixture(key, arch="arm"):
    """Build one fixture into a loaded BuiltBinary with ground truth."""
    functions, ground_truth = FIXTURES[key]()
    module = "ax_%s_%s" % (key, arch)
    compiler = compiler_for(arch, module)
    source, imports = compiler.compile_module(functions)
    return build_binary(
        module, arch, source, imports,
        entry=functions[0].name, ground_truth=ground_truth,
    )
