"""The alias-engine showdown: precision/recall/runtime per engine.

One harness, three legs, shared by ``dtaint alias-compare`` and
``benchmarks/bench_alias_engines.py``:

* **ground truth** — seeded diffcheck-generated labeled programs; the
  static verdict per labeled function scores TP/FP/FN (a finding in an
  unlabeled filler counts as FP: fillers are constructed benign).
* **fixtures** — the seeded alias-stress corpus
  (:mod:`repro.alias.fixtures`), built so the engines *must* differ:
  the dtaint engine false-positives on the interprocedural dead-store
  pattern, the sse engine must not, and both must keep the vulnerable
  twins.
* **vendor** — the six-profile corpus at the golden scale; for the
  ``dtaint`` engine the canonical report of every profile is compared
  byte-for-byte against the committed golden corpus (any divergence is
  a red gate: selecting the default engine must be a no-op).

Each leg runs under a profiler bracket so the comparison publishes
honest per-phase seconds per engine alongside wall clock.
"""

import json
import os
import time

from repro import profiling
from repro.alias.base import ENGINE_NAMES
from repro.alias.fixtures import FIXTURES, build_fixture
from repro.core import DTaint, DTaintConfig

GOLDEN_SCALE = 0.1

# -- canonical report documents (shared with tests/golden_util.py) ---------

_TIMING_KEYS = ("elapsed_seconds", "stage_seconds", "summary_cache",
                "phase_profile")


def _finding_key(finding):
    return (
        finding.get("kind", ""),
        finding.get("function", ""),
        finding.get("sink_name", ""),
        finding.get("sink_addr", 0),
        finding.get("source_name", ""),
        finding.get("source_addr", 0),
        finding.get("expr", ""),
        finding.get("hops", 0),
    )


def canonical_report_doc(report_dict):
    """Timing-free, deterministically ordered form of a report dict."""
    doc = {k: v for k, v in report_dict.items() if k not in _TIMING_KEYS}
    for key in ("vulnerable_paths", "vulnerabilities", "sanitized_paths"):
        doc[key] = sorted(doc.get(key, ()), key=_finding_key)
    doc["degraded_functions"] = sorted(
        (
            {k: v for k, v in d.items() if k != "elapsed_seconds"}
            for d in doc.get("degraded_functions", ())
        ),
        key=lambda d: (d.get("addr", 0), d.get("function", "")),
    )
    return doc


def canonical_json(report_dict):
    """The byte-comparable serialisation of a canonical report."""
    return json.dumps(canonical_report_doc(report_dict), indent=2,
                      sort_keys=True)


def golden_path():
    """The committed golden corpus, located from the repo layout."""
    root = os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))))
    return os.path.join(root, "tests", "data",
                        "golden_corpus_reports.json")


# -- scoring ---------------------------------------------------------------

def _confusion():
    return {"tp": 0, "fp": 0, "fn": 0, "tn": 0}


def _derive(confusion):
    tp, fp, fn = confusion["tp"], confusion["fp"], confusion["fn"]
    confusion["precision"] = round(tp / (tp + fp), 4) if tp + fp else 1.0
    confusion["recall"] = round(tp / (tp + fn), 4) if tp + fn else 1.0
    denom = 2 * tp + fp + fn
    confusion["f1"] = round(2 * tp / denom, 4) if denom else 1.0
    return confusion


def _score(confusion, labels, reported):
    """Fold one program's verdicts into a confusion dict."""
    for name, truth in labels.items():
        flagged = name in reported
        if truth.vulnerable and flagged:
            confusion["tp"] += 1
        elif truth.vulnerable:
            confusion["fn"] += 1
        elif flagged:
            confusion["fp"] += 1
        else:
            confusion["tn"] += 1
    # Findings in unlabeled functions (fillers) are false positives by
    # construction.
    confusion["fp"] += len(reported - set(labels))


def _static_vuln(report):
    return {f.function for f in report.findings if not f.sanitized}


def _run_engine(binary, name, engine, modules=()):
    config = DTaintConfig(modules=tuple(modules), alias_engine=engine)
    return DTaint(binary, config=config, name=name).run()


# -- the harness -----------------------------------------------------------

def compare_engines(seed=1, count=20, arches=None, scale=GOLDEN_SCALE,
                    vendor=True, engines=ENGINE_NAMES, log=None):
    """Run every engine over the three legs; returns the comparison doc."""
    from repro.diffcheck.generate import (
        ARCHES,
        build_program,
        generate_specs,
    )

    say = log or (lambda message: None)
    arches = tuple(arches) if arches else ARCHES

    # Build every target once; the engines disagree about analysis,
    # never about bytes.
    specs = generate_specs(seed, count, arches=arches)
    programs = []
    for spec in specs:
        built = build_program(spec)
        labels = {g.function: g for g in built.ground_truth}
        programs.append((spec.name, built, labels))
    say("built %d labeled programs (seed %d)" % (len(programs), seed))
    fixtures = [(key, build_fixture(key)) for key in sorted(FIXTURES)]

    golden = None
    if vendor and abs(scale - GOLDEN_SCALE) < 1e-9:
        path = golden_path()
        if os.path.exists(path):
            with open(path) as handle:
                golden = json.load(handle)

    document = {
        "seed": seed,
        "count": count,
        "arches": list(arches),
        "scale": scale,
        "engines": {},
    }
    for engine in engines:
        document["engines"][engine] = _compare_one(
            engine, programs, fixtures, vendor, scale, golden, say,
        )
    document["gates"] = _gates(document)
    return document


def _compare_one(engine, programs, fixtures, vendor, scale, golden, say):
    before = profiling.PROFILER.snapshot()
    started = time.perf_counter()

    ground_truth = _confusion()
    for name, built, labels in programs:
        report = _run_engine(built.binary, name, engine)
        _score(ground_truth, labels, _static_vuln(report))

    fixture_scores = _confusion()
    per_fixture = {}
    for key, built in fixtures:
        report = _run_engine(built.binary, key, engine)
        labels = {g.function: g for g in built.ground_truth}
        reported = _static_vuln(report)
        _score(fixture_scores, labels, reported)
        truth = next(iter(labels.values()))
        per_fixture[key] = {
            "expected": bool(truth.vulnerable),
            "reported": truth.function in reported,
        }

    vendor_doc = None
    if vendor:
        from repro.corpus.profiles import (
            PROFILE_ORDER,
            analyzed_module_prefixes,
            build_firmware,
        )

        profiles = {}
        divergences = [] if (golden is not None and engine == "dtaint") \
            else None
        for key in PROFILE_ORDER:
            built = build_firmware(key, scale=scale)
            profile_start = time.perf_counter()
            report = _run_engine(
                built.binary, key, engine,
                modules=analyzed_module_prefixes(key),
            )
            profiles[key] = {
                "findings": len(report.findings),
                "sanitized": len(report.sanitized_paths),
                "wall_seconds": round(
                    time.perf_counter() - profile_start, 3
                ),
            }
            if divergences is not None:
                expected = json.dumps(
                    golden.get(key), indent=2, sort_keys=True
                )
                if canonical_json(report.to_dict()) != expected:
                    divergences.append(key)
        vendor_doc = {
            "profiles": profiles,
            "findings": sum(p["findings"] for p in profiles.values()),
            "golden_divergences": divergences,
        }

    profile = profiling.delta(before, profiling.PROFILER.snapshot())
    result = {
        "ground_truth": _derive(ground_truth),
        "fixtures": _derive(fixture_scores),
        "per_fixture": per_fixture,
        "vendor": vendor_doc,
        "phase_seconds": profile.get("seconds", {}),
        "counters": profile.get("counters", {}),
        "wall_seconds": round(time.perf_counter() - started, 3),
    }
    say("engine %s: gt P=%.3f R=%.3f F1=%.3f, fixtures fp=%d, %.1fs"
        % (engine, ground_truth["precision"], ground_truth["recall"],
           ground_truth["f1"], fixture_scores["fp"],
           result["wall_seconds"]))
    return result


def _combined_recall(engine_doc):
    tp = engine_doc["ground_truth"]["tp"] + engine_doc["fixtures"]["tp"]
    fn = engine_doc["ground_truth"]["fn"] + engine_doc["fixtures"]["fn"]
    return tp / (tp + fn) if tp + fn else 1.0


def _gates(document):
    """The acceptance gates the bench (and CI) enforce."""
    engines = document["engines"]
    gates = {}
    dtaint = engines.get("dtaint")
    sse = engines.get("sse")
    if dtaint is not None and dtaint.get("vendor"):
        divergences = dtaint["vendor"].get("golden_divergences")
        gates["dtaint_golden_identical"] = (
            None if divergences is None else not divergences
        )
    if dtaint is not None and sse is not None:
        gates["sse_fixture_fp_reduction"] = (
            sse["fixtures"]["fp"] < dtaint["fixtures"]["fp"]
        )
        gates["sse_recall_preserved"] = (
            _combined_recall(sse) >= _combined_recall(dtaint)
        )
        gates["sse_total_fp"] = (
            sse["ground_truth"]["fp"] + sse["fixtures"]["fp"]
        )
        gates["dtaint_total_fp"] = (
            dtaint["ground_truth"]["fp"] + dtaint["fixtures"]["fp"]
        )
    return gates


def render_comparison(document):
    """Human-readable comparison table."""
    lines = [
        "alias-engine comparison (seed %d, %d programs, arches %s)"
        % (document["seed"], document["count"],
           "/".join(document["arches"])),
        "  %-8s %9s %9s %9s %12s %12s %10s"
        % ("engine", "precision", "recall", "f1", "fixture-fp",
           "vendor-find", "wall(s)"),
    ]
    for engine, doc in sorted(document["engines"].items()):
        vendor = doc.get("vendor") or {}
        lines.append(
            "  %-8s %9.3f %9.3f %9.3f %12d %12s %10.1f"
            % (engine,
               doc["ground_truth"]["precision"],
               doc["ground_truth"]["recall"],
               doc["ground_truth"]["f1"],
               doc["fixtures"]["fp"],
               str(vendor.get("findings", "-")),
               doc["wall_seconds"])
        )
    for engine, doc in sorted(document["engines"].items()):
        seconds = doc.get("phase_seconds", {})
        if not seconds:
            continue
        total = sum(seconds.values()) or 1.0
        breakdown = "  ".join(
            "%s=%.2fs(%.0f%%)" % (name, seconds[name],
                                  100.0 * seconds[name] / total)
            for name in profiling.PHASES if name in seconds
        )
        lines.append("  phases[%s]: %s" % (engine, breakdown))
    for name, value in sorted((document.get("gates") or {}).items()):
        lines.append("  gate %s: %s" % (name, value))
    return "\n".join(lines)
