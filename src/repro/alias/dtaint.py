"""The paper's Algorithm-1 heuristics behind the engine interface.

A thin adapter over ``repro.core.aliasing``: :meth:`apply` delegates
to ``alias_replace`` unchanged, so selecting ``--alias-engine dtaint``
(the default) is byte-identical to the pre-engine pipeline — the
golden-corpus differential test pins exactly that.
"""

from repro.alias.base import AliasResult
from repro.core.aliasing import alias_replace, find_aliases


class DTaintAliasEngine:
    """Heuristic base+offset pattern match (paper Algorithm 1)."""

    name = "dtaint"

    def query(self, summary, types):
        entries = find_aliases(summary.def_pairs, types)
        return AliasResult(engine=self.name, entries=tuple(entries))

    def apply(self, summary, types, max_new=512):
        return alias_replace(summary, types, max_new)
