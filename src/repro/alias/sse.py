"""Sparse symbolic-execution alias engine (arXiv:2109.12209).

The dtaint engine treats every Formula-1 store (``deref(base1+off1) =
base2+off2``) it can pattern-match as a live alias.  That is the
paper's acknowledged precision bottleneck: a pointer field that is
*overwritten* before the function returns still contributes its stale
alias, and every definition reached through it becomes a false path.

This engine re-executes, sparsely, only the statements that define the
queried pointer cells: for each candidate cell (an interned
``SymDeref`` destination — equality is identity via the PR 3 interning
arenas, so "same cell" is pointer comparison, not a base+offset
pattern match) it replays the function's stores to that cell in site
order and keeps only the reaching definition.  A candidate store that
is definitely superseded by a later store to the *identical* cell is
dead: its :class:`AliasEntry` is dropped and the definition pair
itself is pruned from the summary, so neither the local rewrite pass
nor the interprocedural export ever propagates the stale name.

A kill is suppressed whenever the replay cannot prove the overwrite
executes on every path that executed the candidate:

* either store sits in a loop (``summary.loop_stores``) — iteration
  order is not replayed;
* a path constraint is recorded between the two sites — the overwrite
  may be conditional (``store; if (c) store``);
* on enriched summaries, either pair was imported from a callee —
  sites from different functions are not comparable, so only the
  caller's own stores participate.

Everything that survives goes through the same symmetric rewrite
(``apply_entries``) as the dtaint engine, which keeps the two engines
comparable: they differ only in which stores they believe.
"""

import bisect

from repro.alias.base import AliasResult
from repro.core.aliasing import AliasEntry, apply_entries
from repro.profiling import PROFILER
from repro.symexec.value import SymDeref, SymHeap, base_offset


def _candidate_stores(def_pairs, types):
    """Formula-1 stores with their defining pairs kept.

    The same filter as ``find_aliases`` (pointer-valued stores through
    a symbolic destination), but each entry stays attached to the
    definition pair that produced it so a dead store can be pruned.
    """
    candidates = []
    for pair in def_pairs:
        if not isinstance(pair.dest, SymDeref):
            continue
        value = pair.value
        view = base_offset(value)
        if view is None:
            continue
        base, offset = view
        if base is None:
            continue
        is_pointer = (
            types.is_pointer(base)
            or types.is_pointer(value)
            or isinstance(base, (SymHeap,))
        )
        if not is_pointer:
            continue
        candidates.append(
            (pair, AliasEntry(alias=pair.dest, base=base, offset=offset))
        )
    return candidates


def _constraint_between(con_sites, lo, hi):
    """Any recorded path constraint with a site in ``(lo, hi]``?"""
    index = bisect.bisect_right(con_sites, lo)
    return index < len(con_sites) and con_sites[index] <= hi


def _sparse_resolve(summary, types):
    """Split the candidate stores into (surviving entries, dead pairs)."""
    def_pairs = summary.def_pairs
    base = getattr(summary, "base", None)
    # On an enriched summary only the caller's own pairs have
    # comparable sites; imported callee pairs are never killed and
    # never kill.
    local = None if base is None else set(base.def_pairs)
    origin = summary if base is None else base
    loop_dests = {dest for (_site, dest, _value) in origin.loop_stores}
    con_sites = sorted(c.site for c in origin.constraints)

    candidates = _candidate_stores(def_pairs, types)

    # The sparse replay: walk the killable stores per identical cell
    # and remember the last (reaching) definition's site.
    last_site = {}
    for pair in def_pairs:
        if not isinstance(pair.dest, SymDeref):
            continue
        if local is not None and pair not in local:
            continue
        if pair.dest in loop_dests:
            continue
        prev = last_site.get(pair.dest)
        if prev is None or pair.site > prev:
            last_site[pair.dest] = pair.site

    entries, dead = [], []
    for pair, entry in candidates:
        killer = last_site.get(pair.dest, pair.site)
        is_dead = (
            (local is None or pair in local)
            and pair.dest not in loop_dests
            and pair.site < killer
            and not _constraint_between(con_sites, pair.site, killer)
        )
        if is_dead:
            dead.append(pair)
        else:
            entries.append(entry)
    return entries, dead


class SseAliasEngine:
    """Sparse re-execution of pointer-defining statements."""

    name = "sse"

    def query(self, summary, types):
        entries, dead = _sparse_resolve(summary, types)
        return AliasResult(
            engine=self.name, entries=tuple(entries), killed=tuple(dead)
        )

    def apply(self, summary, types, max_new=512):
        with PROFILER.phase("alias"):
            PROFILER.count("alias_queries")
            PROFILER.count("sse_queries")
            entries, dead = _sparse_resolve(summary, types)
            if dead:
                dead_set = set(dead)
                summary.def_pairs[:] = [
                    p for p in summary.def_pairs if p not in dead_set
                ]
                PROFILER.count("sse_killed_stores", len(dead))
            return apply_entries(summary, entries, max_new)
