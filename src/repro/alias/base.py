"""The alias-engine interface and registry.

DTaint's Algorithm-1 heuristics and the follow-up paper's sparse
symbolic-execution aliasing answer the same question — which stored
pointer names alias which cells — with different precision/cost
trade-offs.  This module pins the common surface so the detector,
the shard executors and the comparison harness can treat the choice
as configuration:

* :meth:`AliasEngine.query` is the pure form: given a function
  summary (base or enriched) and its inferred types, return an
  :class:`AliasResult` over interned symexec values without touching
  the summary.
* :meth:`AliasEngine.apply` is the summary-compatible export: mutate
  ``summary.def_pairs`` exactly the way ``alias_replace`` historically
  did (append re-expressed pairs; an engine may additionally prune
  pairs it can prove dead) and return the appended pairs.  Summaries
  stay the same cacheable shape for the increment/dedup layers.

Engine identity is part of cache identity: ``alias_engine`` is in the
config fingerprint (see ``pipeline/cache.py``), so summaries and
reports produced under one engine are never served to a run using the
other.
"""

from dataclasses import dataclass

from repro.errors import PipelineError

DEFAULT_ENGINE = "dtaint"
ENGINE_NAMES = ("dtaint", "sse")


@dataclass(frozen=True)
class AliasResult:
    """One engine's verdict over one function summary.

    ``entries`` are the surviving :class:`~repro.core.aliasing.
    AliasEntry` rows (``alias = base + offset``); ``killed`` are the
    definition pairs the engine proved dead (always empty for the
    ``dtaint`` engine, which never prunes).
    """

    engine: str
    entries: tuple = ()
    killed: tuple = ()

    def cell_names(self):
        """``(alias, cell)`` pairs: both interned names of each cell."""
        from repro.symexec.value import SymConst, mk_add

        out = []
        for entry in self.entries:
            cell = (
                entry.base if entry.offset == 0
                else mk_add(entry.base, SymConst(entry.offset))
            )
            out.append((entry.alias, cell))
        return out

    def related(self, a, b):
        """The alias relation over interned values.

        Reflexive by interning (equality is identity) and symmetric by
        construction: ``a`` and ``b`` are related when identical or
        when some entry names them as the two names of one cell.
        """
        if a is b:
            return True
        for alias, cell in self.cell_names():
            if (a is alias and b is cell) or (a is cell and b is alias):
                return True
        return False


class AliasEngine:
    """Duck-typed protocol; engines subclass for documentation only."""

    name = "abstract"

    def query(self, summary, types):
        raise NotImplementedError

    def apply(self, summary, types, max_new=512):
        raise NotImplementedError


_INSTANCES = {}


def get_engine(name):
    """Resolve an engine by name; engines are stateless singletons."""
    name = name or DEFAULT_ENGINE
    engine = _INSTANCES.get(name)
    if engine is None:
        if name == "dtaint":
            from repro.alias.dtaint import DTaintAliasEngine as cls
        elif name == "sse":
            from repro.alias.sse import SseAliasEngine as cls
        else:
            raise PipelineError(
                "unknown alias engine %r (expected one of %s)"
                % (name, ", ".join(ENGINE_NAMES))
            )
        engine = _INSTANCES[name] = cls()
    return engine
