"""Bit-level helpers used by the encoders, decoders and the emulator.

All 32-bit helpers treat values modulo 2**32; callers never need to
pre-mask their inputs.
"""

_MASK32 = 0xFFFFFFFF


def bit(word, index):
    """Return bit ``index`` (0 = LSB) of ``word`` as 0 or 1."""
    return (word >> index) & 1


def bits(word, hi, lo):
    """Return the inclusive bit-field ``word[hi:lo]`` as an unsigned int."""
    if hi < lo:
        raise ValueError("bit range hi=%d < lo=%d" % (hi, lo))
    return (word >> lo) & ((1 << (hi - lo + 1)) - 1)


def sign_extend(value, width):
    """Sign-extend ``value`` occupying ``width`` bits to a Python int."""
    sign_bit = 1 << (width - 1)
    return (value & (sign_bit - 1)) - (value & sign_bit)


def to_signed32(value):
    """Interpret the low 32 bits of ``value`` as a signed integer."""
    return sign_extend(value & _MASK32, 32)


def to_unsigned32(value):
    """Reduce ``value`` to an unsigned 32-bit integer."""
    return value & _MASK32


def ror32(value, amount):
    """Rotate the 32-bit ``value`` right by ``amount`` bits."""
    amount %= 32
    value &= _MASK32
    if amount == 0:
        return value
    return ((value >> amount) | (value << (32 - amount))) & _MASK32


def align_up(value, alignment):
    """Round ``value`` up to the next multiple of ``alignment``."""
    if alignment <= 0:
        raise ValueError("alignment must be positive")
    return (value + alignment - 1) // alignment * alignment
