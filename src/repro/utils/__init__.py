"""Shared low-level helpers: bit manipulation and byte packing."""

from repro.utils.bits import (
    align_up,
    bit,
    bits,
    ror32,
    sign_extend,
    to_signed32,
    to_unsigned32,
)

__all__ = [
    "align_up",
    "bit",
    "bits",
    "ror32",
    "sign_extend",
    "to_signed32",
    "to_unsigned32",
]
