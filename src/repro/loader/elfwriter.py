"""ELF32 executable writer.

Produces genuine ELF images from an
:class:`~repro.arch.asmlang.AssembledProgram`: ELF header, one
``PT_LOAD`` program header per mapped section, section headers for
``.plt``/``.text``/``.rodata``/``.data``/``.bss``, and a symbol table
(``.symtab`` + ``.strtab``).  Function symbols inside ``.plt`` act as
import stubs, mirroring how dynamically linked firmware binaries expose
their libc imports.
"""

import struct
from dataclasses import dataclass

from repro.loader import elfconst as C

_SECTION_FLAGS = {
    ".plt": C.SHF_ALLOC | C.SHF_EXECINSTR,
    ".text": C.SHF_ALLOC | C.SHF_EXECINSTR,
    ".rodata": C.SHF_ALLOC,
    ".data": C.SHF_ALLOC | C.SHF_WRITE,
    ".bss": C.SHF_ALLOC | C.SHF_WRITE,
}
_SEGMENT_FLAGS = {
    ".plt": C.PF_R | C.PF_X,
    ".text": C.PF_R | C.PF_X,
    ".rodata": C.PF_R,
    ".data": C.PF_R | C.PF_W,
    ".bss": C.PF_R | C.PF_W,
}


@dataclass
class SymbolSpec:
    """One symbol table entry to emit."""

    name: str
    value: int
    size: int = 0
    type_: int = C.STT_FUNC
    bind: int = C.STB_GLOBAL
    section: str = ".text"


class _StrTab:
    def __init__(self):
        self._data = bytearray(b"\x00")
        self._offsets = {"": 0}

    def add(self, name):
        if name not in self._offsets:
            self._offsets[name] = len(self._data)
            self._data += name.encode("utf-8") + b"\x00"
        return self._offsets[name]

    def bytes(self):
        return bytes(self._data)


def write_elf(arch, program, symbols, entry=0):
    """Serialise ``program`` into ELF32 bytes.

    ``arch`` is an :class:`~repro.arch.archinfo.ArchInfo`; ``symbols``
    a list of :class:`SymbolSpec`.  Sections with no content are
    omitted.  Returns the image bytes.
    """
    endian = ">" if arch.is_big_endian else "<"
    ei_data = C.ELFDATA2MSB if arch.is_big_endian else C.ELFDATA2LSB

    mapped = [
        (name, base, data)
        for name, (base, data) in program.sections.items()
        if data and name != ".bss"
    ]
    mapped.sort(key=lambda item: item[1])
    bss_base, bss_data = program.sections.get(".bss", (0, b""))
    bss_size = len(bss_data)

    strtab = _StrTab()
    shstrtab = _StrTab()

    # --- symbol table bytes -------------------------------------------------
    section_order = [name for name, _, _ in mapped]
    if bss_size:
        section_order.append(".bss")
    # shndx: 0 = SHN_UNDEF, then 1..N mapped sections.
    shndx_by_name = {name: i + 1 for i, name in enumerate(section_order)}

    sym_entries = [struct.pack(endian + "IIIBBH", 0, 0, 0, 0, 0, 0)]
    for spec in symbols:
        shndx = shndx_by_name.get(spec.section, C.SHN_ABS)
        sym_entries.append(
            struct.pack(
                endian + "IIIBBH",
                strtab.add(spec.name),
                spec.value,
                spec.size,
                C.st_info(spec.bind, spec.type_),
                0,
                shndx,
            )
        )
    symtab_bytes = b"".join(sym_entries)
    strtab_bytes = strtab.bytes()

    # --- layout --------------------------------------------------------------
    phnum = len(mapped) + (1 if bss_size else 0)
    header_size = C.EHDR_SIZE + phnum * C.PHDR_SIZE
    file_offset = header_size
    placed = []  # (name, base, data, offset)
    for name, base, data in mapped:
        # Keep file offset congruent with vaddr modulo page size the way
        # real linkers do.
        pad = (-(file_offset - base)) % 0x1000
        file_offset += pad
        placed.append((name, base, data, file_offset))
        file_offset += len(data)

    symtab_offset = file_offset
    file_offset += len(symtab_bytes)
    strtab_offset = file_offset
    file_offset += len(strtab_bytes)

    # Section header table at the very end, after .shstrtab.
    shnum = 1 + len(section_order) + (0 if not bss_size else 0) + 3
    # NULL + mapped (+.bss already inside section_order) + symtab + strtab
    # + shstrtab.

    shstr_entries = [".symtab", ".strtab", ".shstrtab"] + section_order
    for name in shstr_entries:
        shstrtab.add(name)
    shstrtab_bytes = shstrtab.bytes()
    shstrtab_offset = file_offset
    file_offset += len(shstrtab_bytes)
    shoff = (file_offset + 3) & ~3

    # --- ELF header ------------------------------------------------------------
    e_ident = C.ELF_MAGIC + bytes(
        [C.ELFCLASS32, ei_data, C.EV_CURRENT, 0, 0, 0, 0, 0, 0, 0, 0, 0]
    )
    ehdr = struct.pack(
        endian + "16sHHIIIIIHHHHHH",
        e_ident,
        C.ET_EXEC,
        arch.elf_machine,
        C.EV_CURRENT,
        entry,
        C.EHDR_SIZE,      # phoff
        shoff,
        0,                # flags
        C.EHDR_SIZE,
        C.PHDR_SIZE,
        phnum,
        C.SHDR_SIZE,
        shnum,
        shnum - 1,        # shstrndx (last section)
    )

    # --- program headers ---------------------------------------------------------
    phdrs = []
    for name, base, data, offset in placed:
        phdrs.append(
            struct.pack(
                endian + "IIIIIIII",
                C.PT_LOAD, offset, base, base, len(data), len(data),
                _SEGMENT_FLAGS[name], 0x1000,
            )
        )
    if bss_size:
        phdrs.append(
            struct.pack(
                endian + "IIIIIIII",
                C.PT_LOAD, 0, bss_base, bss_base, 0, bss_size,
                _SEGMENT_FLAGS[".bss"], 0x1000,
            )
        )

    # --- section headers ------------------------------------------------------------
    shdrs = [struct.pack(endian + "IIIIIIIIII", *([0] * 10))]
    offsets_by_name = {name: offset for name, _, _, offset in placed}
    bases_by_name = {name: base for name, base, _, _ in placed}
    sizes_by_name = {name: len(data) for name, _, data, _ in placed}
    for name in section_order:
        if name == ".bss":
            shdrs.append(
                struct.pack(
                    endian + "IIIIIIIIII",
                    shstrtab.add(name), C.SHT_NOBITS, _SECTION_FLAGS[name],
                    bss_base, 0, bss_size, 0, 0, 4, 0,
                )
            )
            continue
        shdrs.append(
            struct.pack(
                endian + "IIIIIIIIII",
                shstrtab.add(name), C.SHT_PROGBITS, _SECTION_FLAGS[name],
                bases_by_name[name], offsets_by_name[name],
                sizes_by_name[name], 0, 0, 4, 0,
            )
        )
    strtab_index = 1 + len(section_order) + 1
    shdrs.append(
        struct.pack(
            endian + "IIIIIIIIII",
            shstrtab.add(".symtab"), C.SHT_SYMTAB, 0, 0, symtab_offset,
            len(symtab_bytes), strtab_index, 1, 4, C.SYM_SIZE,
        )
    )
    shdrs.append(
        struct.pack(
            endian + "IIIIIIIIII",
            shstrtab.add(".strtab"), C.SHT_STRTAB, 0, 0, strtab_offset,
            len(strtab_bytes), 0, 0, 1, 0,
        )
    )
    shdrs.append(
        struct.pack(
            endian + "IIIIIIIIII",
            shstrtab.add(".shstrtab"), C.SHT_STRTAB, 0, 0, shstrtab_offset,
            len(shstrtab_bytes), 0, 0, 1, 0,
        )
    )

    # --- assemble the file --------------------------------------------------------------
    image = bytearray()
    image += ehdr
    image += b"".join(phdrs)
    for name, base, data, offset in placed:
        image += b"\x00" * (offset - len(image))
        image += data
    image += symtab_bytes
    image += strtab_bytes
    image += shstrtab_bytes
    image += b"\x00" * (shoff - len(image))
    image += b"".join(shdrs)
    return bytes(image)
