"""ELF reading/writing and the loaded-binary abstraction.

Firmware root filesystems carry ELF executables; this package writes
genuine ELF32 images (used by the synthetic corpus) and loads them back
for analysis, exposing segments, the symbol table, and import stubs the
way angr's CLE loader does.
"""

from repro.loader.binary import LoadedBinary, load_elf
from repro.loader.elf import ElfFile
from repro.loader.elfwriter import SymbolSpec, write_elf

__all__ = ["ElfFile", "LoadedBinary", "SymbolSpec", "load_elf", "write_elf"]
