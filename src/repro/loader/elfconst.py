"""ELF32 constants (the subset both reader and writer need)."""

ELF_MAGIC = b"\x7fELF"

ELFCLASS32 = 1
ELFDATA2LSB = 1
ELFDATA2MSB = 2
EV_CURRENT = 1

ET_EXEC = 2
EM_MIPS = 8
EM_ARM = 40

PT_LOAD = 1
PF_X = 1
PF_W = 2
PF_R = 4

SHT_NULL = 0
SHT_PROGBITS = 1
SHT_SYMTAB = 2
SHT_STRTAB = 3
SHT_NOBITS = 8

SHF_WRITE = 1
SHF_ALLOC = 2
SHF_EXECINSTR = 4

STB_LOCAL = 0
STB_GLOBAL = 1

STT_NOTYPE = 0
STT_OBJECT = 1
STT_FUNC = 2

SHN_UNDEF = 0
SHN_ABS = 0xFFF1

EHDR_SIZE = 52
PHDR_SIZE = 32
SHDR_SIZE = 40
SYM_SIZE = 16


def st_info(bind, type_):
    return (bind << 4) | (type_ & 0xF)
