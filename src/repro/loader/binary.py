"""The loaded-binary abstraction the analyses run on.

:class:`LoadedBinary` plays the role angr's CLE loader plays in the
paper's pipeline: it maps segments, resolves the architecture, indexes
function symbols, and distinguishes local functions from libc import
stubs (symbols living in ``.plt``).
"""

import bisect
from dataclasses import dataclass, field

from repro import faultinject
from repro.arch import get_arch
from repro.errors import ELFError
from repro.loader.elf import ElfFile


@dataclass
class FunctionSymbol:
    name: str
    addr: int
    size: int
    is_import: bool = False


@dataclass
class LoadedBinary:
    """An ELF mapped into a flat address space, ready for analysis."""

    arch: object
    entry: int
    elf: ElfFile = None
    segments: list = field(default_factory=list)  # (vaddr, bytes, executable)
    functions: dict = field(default_factory=dict)  # name -> FunctionSymbol
    imports: dict = field(default_factory=dict)    # addr -> name
    data_symbols: dict = field(default_factory=dict)
    _starts: list = field(default_factory=list)

    def _index(self):
        self.segments.sort(key=lambda seg: seg[0])
        self._starts = [seg[0] for seg in self.segments]

    def segment_for(self, addr):
        index = bisect.bisect_right(self._starts, addr) - 1
        if index < 0:
            return None
        vaddr, data, executable = self.segments[index]
        if addr < vaddr + len(data):
            return self.segments[index]
        return None

    def read(self, addr, size):
        """Read an integer from mapped memory; None when unmapped."""
        segment = self.segment_for(addr)
        if segment is None:
            return None
        vaddr, data, _ = segment
        offset = addr - vaddr
        if offset + size > len(data):
            return None
        return int.from_bytes(
            data[offset:offset + size],
            "big" if self.arch.is_big_endian else "little",
        )

    def read_bytes(self, addr, size):
        segment = self.segment_for(addr)
        if segment is None:
            return None
        vaddr, data, _ = segment
        offset = addr - vaddr
        return bytes(data[offset:offset + size])

    def read_cstring(self, addr, limit=4096):
        segment = self.segment_for(addr)
        if segment is None:
            return None
        vaddr, data, _ = segment
        offset = addr - vaddr
        end = data.find(b"\x00", offset, offset + limit)
        if end < 0:
            end = min(offset + limit, len(data))
        return bytes(data[offset:end])

    def read_ro(self, addr, size):
        """Like :meth:`read`, but only serves non-writable segments.

        Used as the lifters' ``mem_reader`` so literal-pool loads fold
        to constants without constant-folding mutable data.
        """
        segment = self.segment_for(addr)
        if segment is None:
            return None
        vaddr, data, executable = segment
        if not executable and self._segment_writable(vaddr):
            return None
        return self.read(addr, size)

    def _segment_writable(self, vaddr):
        if self.elf is None:
            return False
        for segment in self.elf.segments:
            if segment.vaddr == vaddr:
                return segment.writable
        return False

    def is_executable(self, addr):
        segment = self.segment_for(addr)
        return segment is not None and segment[2]

    def function_at(self, addr):
        for symbol in self.functions.values():
            if symbol.addr == addr:
                return symbol
        return None

    def import_name(self, addr):
        return self.imports.get(addr)

    @property
    def local_functions(self):
        return [f for f in self.functions.values() if not f.is_import]

    def function_bytes(self, symbol):
        """The code bytes of a function symbol (by its st_size)."""
        return self.read_bytes(symbol.addr, symbol.size)


def load_elf(data, name=""):
    """Parse and map ELF ``data`` into a :class:`LoadedBinary`.

    Raises :class:`ELFError` (a :class:`~repro.errors.MalformedInput`)
    for any malformed input; ``name`` is a label for fault probes and
    error messages (typically the file path).
    """
    faultinject.check("loader", name)
    elf = ElfFile.parse(data)
    arch = get_arch(elf.arch_name)

    binary = LoadedBinary(arch=arch, entry=elf.entry, elf=elf)
    for segment in elf.segments:
        content = bytearray(elf.data[segment.offset:segment.offset + segment.filesz])
        if segment.memsz > segment.filesz:
            content += b"\x00" * (segment.memsz - segment.filesz)
        binary.segments.append((segment.vaddr, bytes(content), segment.executable))
    binary._index()

    plt = elf.sections.get(".plt")
    plt_range = (plt.addr, plt.addr + plt.size) if plt else None

    for symbol in elf.symbols:
        if symbol.is_function:
            is_import = bool(
                plt_range and plt_range[0] <= symbol.value < plt_range[1]
            )
            function = FunctionSymbol(
                name=symbol.name, addr=symbol.value, size=symbol.size,
                is_import=is_import,
            )
            if symbol.name in binary.functions:
                raise ELFError("duplicate function symbol %r" % symbol.name)
            binary.functions[symbol.name] = function
            if is_import:
                binary.imports[symbol.value] = symbol.name
        else:
            binary.data_symbols[symbol.name] = symbol.value
    return binary
