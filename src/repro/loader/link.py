"""Assemble-and-link helper: assembly source to a loadable ELF.

Import stubs are synthesised into a ``.plt`` section (one minimal
return stub per libc import, the way dynamic firmware binaries expose
their imports), ``.globl`` labels in ``.text`` become sized ``STT_FUNC``
symbols, and everything is serialised through
:mod:`repro.loader.elfwriter`.
"""

from repro.arch import get_arch
from repro.errors import AssemblyError
from repro.loader import elfconst as C
from repro.loader.elfwriter import SymbolSpec, write_elf

_ARM_STUB = "    bx lr\n"
_MIPS_STUB = "    jr $ra\n    nop\n"


def make_plt_source(arch_name, import_names):
    """Generate the ``.plt`` section source for ``import_names``."""
    stub = _ARM_STUB if arch_name == "arm" else _MIPS_STUB
    lines = [".plt"]
    for name in import_names:
        lines.append("%s:" % name)
        lines.append(stub.rstrip("\n"))
    return "\n".join(lines) + "\n"


def build_executable(arch_name, source, imports=(), entry="main",
                     section_bases=None):
    """Assemble ``source`` (with libc ``imports``) and link to ELF bytes.

    Returns ``(elf_bytes, assembled_program)``.  Every ``.globl`` label
    in ``.text`` becomes a function symbol whose size runs to the next
    function (the literal pool between functions is included, as real
    toolchains do).  Imports get stub bodies in ``.plt``.
    """
    arch = get_arch(arch_name)
    full_source = make_plt_source(arch_name, imports) + "\n.text\n" + source
    program = arch.assembler().assemble(full_source, section_bases=section_bases)

    text_base, text_data = program.sections[".text"]
    text_end = text_base + len(text_data)
    plt_base, plt_data = program.sections[".plt"]
    plt_end = plt_base + len(plt_data)

    function_addrs = sorted(
        program.symbols[name]
        for name in program.exported
        if name in program.symbols
        and text_base <= program.symbols[name] < text_end
    )

    def function_size(addr):
        for candidate in function_addrs:
            if candidate > addr:
                return candidate - addr
        return text_end - addr

    symbols = []
    seen = set()
    for name in sorted(program.exported):
        addr = program.symbols.get(name)
        if addr is None:
            raise AssemblyError(".globl %r has no definition" % name)
        if text_base <= addr < text_end:
            symbols.append(
                SymbolSpec(name=name, value=addr, size=function_size(addr),
                           type_=C.STT_FUNC, section=".text")
            )
        else:
            section = _section_of(program, addr)
            symbols.append(
                SymbolSpec(name=name, value=addr, type_=C.STT_OBJECT,
                           section=section)
            )
        seen.add(name)

    stub_size = 4 if arch_name == "arm" else 8
    for name in imports:
        addr = program.symbols[name]
        if not plt_base <= addr < plt_end:
            raise AssemblyError("import stub %r not in .plt" % name)
        symbols.append(
            SymbolSpec(name=name, value=addr, size=stub_size,
                       type_=C.STT_FUNC, section=".plt")
        )
        seen.add(name)

    entry_addr = program.symbols.get(entry, 0)
    elf_bytes = write_elf(arch, program, symbols, entry=entry_addr)
    return elf_bytes, program


def _section_of(program, addr):
    for name, (base, data) in program.sections.items():
        if data and base <= addr < base + len(data):
            return name
    return ".data"
