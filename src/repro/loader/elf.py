"""ELF32 reader.

Parses the headers, program headers, section headers and symbol table
of ELF executables — both images produced by
:mod:`repro.loader.elfwriter` and any well-formed little/big-endian
ELF32 binary using the same structures.
"""

import struct
from dataclasses import dataclass, field

from repro.errors import ELFError
from repro.loader import elfconst as C


@dataclass
class ElfSection:
    name: str
    sh_type: int
    flags: int
    addr: int
    offset: int
    size: int
    link: int
    entsize: int


@dataclass
class ElfSegment:
    p_type: int
    offset: int
    vaddr: int
    filesz: int
    memsz: int
    flags: int

    @property
    def executable(self):
        return bool(self.flags & C.PF_X)

    @property
    def writable(self):
        return bool(self.flags & C.PF_W)


@dataclass
class ElfSymbol:
    name: str
    value: int
    size: int
    bind: int
    type_: int
    shndx: int

    @property
    def is_function(self):
        return self.type_ == C.STT_FUNC


@dataclass
class ElfFile:
    """A parsed ELF32 file."""

    data: bytes
    endian: str = "<"
    machine: int = 0
    entry: int = 0
    segments: list = field(default_factory=list)
    sections: dict = field(default_factory=dict)
    symbols: list = field(default_factory=list)

    # Cap on how much zero-fill a PT_LOAD may demand (memsz - filesz);
    # a malformed header must not be able to allocate gigabytes.
    MAX_SEGMENT_MEMSZ = 1 << 28
    # Cap on the *sum* of PT_LOAD memsz: e_phnum is attacker-
    # controlled, so many individually-plausible segments must not
    # multiply into an unbounded mapping either.
    MAX_TOTAL_MEMSZ = 1 << 29

    @classmethod
    def parse(cls, data):
        """Parse ``data``; every malformed input raises :class:`ELFError`.

        Untyped failures from arithmetic on attacker-controlled header
        fields (``struct.error``, ``IndexError``, ...) are converted so
        callers need exactly one except clause per file.
        """
        try:
            return cls._parse(data)
        except ELFError:
            raise
        except (struct.error, IndexError, ValueError, OverflowError,
                MemoryError) as exc:
            raise ELFError("malformed ELF: %s" % exc)

    @classmethod
    def _parse(cls, data):
        if len(data) < C.EHDR_SIZE:
            raise ELFError("file too small for an ELF header")
        if data[:4] != C.ELF_MAGIC:
            raise ELFError("bad ELF magic %r" % data[:4])
        if data[4] != C.ELFCLASS32:
            raise ELFError("only ELF32 is supported (EI_CLASS=%d)" % data[4])
        if data[5] == C.ELFDATA2LSB:
            endian = "<"
        elif data[5] == C.ELFDATA2MSB:
            endian = ">"
        else:
            raise ELFError("bad EI_DATA %d" % data[5])

        (
            e_type, e_machine, _version, e_entry, e_phoff, e_shoff, _flags,
            _ehsize, e_phentsize, e_phnum, e_shentsize, e_shnum, e_shstrndx,
        ) = struct.unpack_from(endian + "HHIIIIIHHHHHH", data, 16)

        elf = cls(data=data, endian=endian, machine=e_machine, entry=e_entry)

        total_memsz = 0
        for i in range(e_phnum):
            base = e_phoff + i * e_phentsize
            if base + C.PHDR_SIZE > len(data):
                raise ELFError("truncated program header %d" % i)
            p_type, offset, vaddr, _paddr, filesz, memsz, flags, _align = (
                struct.unpack_from(endian + "IIIIIIII", data, base)
            )
            if p_type == C.PT_LOAD:
                if offset + filesz > len(data):
                    raise ELFError("PT_LOAD %d extends past end of file" % i)
                if memsz < filesz or memsz > cls.MAX_SEGMENT_MEMSZ:
                    raise ELFError(
                        "PT_LOAD %d has implausible memsz 0x%x" % (i, memsz)
                    )
                total_memsz += memsz
                if total_memsz > cls.MAX_TOTAL_MEMSZ:
                    raise ELFError(
                        "PT_LOAD segments total 0x%x bytes, over the "
                        "0x%x mapping budget" % (total_memsz,
                                                 cls.MAX_TOTAL_MEMSZ)
                    )
                elf.segments.append(
                    ElfSegment(p_type, offset, vaddr, filesz, memsz, flags)
                )

        if e_shnum:
            raw_sections = []
            for i in range(e_shnum):
                base = e_shoff + i * e_shentsize
                if base + C.SHDR_SIZE > len(data):
                    raise ELFError("truncated section header %d" % i)
                raw_sections.append(
                    struct.unpack_from(endian + "IIIIIIIIII", data, base)
                )
            if e_shstrndx >= len(raw_sections):
                raise ELFError("bad e_shstrndx %d" % e_shstrndx)
            shstr = raw_sections[e_shstrndx]
            shstr_data = data[shstr[4]:shstr[4] + shstr[5]]

            def sh_name(offset):
                end = shstr_data.find(b"\x00", offset)
                return shstr_data[offset:end].decode("utf-8", "replace")

            parsed = []
            for raw in raw_sections:
                (name_off, sh_type, flags, addr, offset, size, link,
                 _info, _align, entsize) = raw
                parsed.append(
                    ElfSection(
                        sh_name(name_off), sh_type, flags, addr, offset,
                        size, link, entsize,
                    )
                )
            elf.sections = {s.name: s for s in parsed if s.name}
            elf._parse_symbols(parsed)
        return elf

    def _parse_symbols(self, parsed_sections):
        for section in parsed_sections:
            if section.sh_type != C.SHT_SYMTAB:
                continue
            if section.link >= len(parsed_sections):
                raise ELFError(".symtab has a bad strtab link")
            strtab = parsed_sections[section.link]
            str_data = self.data[strtab.offset:strtab.offset + strtab.size]
            # Bound the iteration by the bytes actually present, so a
            # forged sh_size cannot spin this loop past end-of-file.
            available = max(0, len(self.data) - section.offset)
            count = min(section.size, available) // C.SYM_SIZE
            for i in range(count):
                base = section.offset + i * C.SYM_SIZE
                name_off, value, size, info, _other, shndx = struct.unpack_from(
                    self.endian + "IIIBBH", self.data, base
                )
                end = str_data.find(b"\x00", name_off)
                name = str_data[name_off:end].decode("utf-8", "replace")
                if not name:
                    continue
                self.symbols.append(
                    ElfSymbol(
                        name=name, value=value, size=size,
                        bind=info >> 4, type_=info & 0xF, shndx=shndx,
                    )
                )

    def section_bytes(self, name):
        section = self.sections.get(name)
        if section is None or section.sh_type == C.SHT_NOBITS:
            return b""
        return self.data[section.offset:section.offset + section.size]

    @property
    def arch_name(self):
        if self.machine == C.EM_ARM:
            return "arm"
        if self.machine == C.EM_MIPS:
            return "mips"
        raise ELFError("unsupported machine %d" % self.machine)
