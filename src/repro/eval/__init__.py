"""Evaluation harness: regenerates every table and figure of the paper.

Each ``table*``/``figure*`` function returns structured rows and can
render them as text; the benchmarks under ``benchmarks/`` drive these
and print paper-vs-measured comparisons.  ``REPRO_SCALE`` (float
environment variable, default 0.25) shrinks the generated firmware for
quick runs; 1.0 reproduces Table II's function counts 1:1.
"""

from repro.eval.runner import EvalContext, get_scale
from repro.eval.tables import format_table

__all__ = ["EvalContext", "format_table", "get_scale"]
