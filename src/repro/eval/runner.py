"""Shared evaluation context: builds firmware once, runs DTaint once.

The benchmarks all need the same expensive artefacts (built firmware
images, detection reports); :class:`EvalContext` caches them for the
lifetime of the process so every table/figure bench can run in one
pytest invocation without rebuilding six binaries each.
"""

import os
from dataclasses import dataclass, field

from repro.core import DTaint, DTaintConfig
from repro.corpus.profiles import (
    PROFILES,
    PROFILE_ORDER,
    analyzed_module_prefixes,
    build_firmware,
)

DEFAULT_SCALE = 0.25


def get_scale():
    """Evaluation scale from ``REPRO_SCALE`` (default 0.25).

    1.0 reproduces Table II's function counts exactly; smaller values
    shrink the generated images proportionally (planted vulnerabilities
    are never scaled away).
    """
    raw = os.environ.get("REPRO_SCALE", "")
    try:
        value = float(raw)
    except ValueError:
        return DEFAULT_SCALE
    return min(max(value, 0.01), 1.0)


@dataclass
class EvalContext:
    scale: float = None
    _built: dict = field(default_factory=dict)
    _detectors: dict = field(default_factory=dict)
    _reports: dict = field(default_factory=dict)

    def __post_init__(self):
        if self.scale is None:
            self.scale = get_scale()

    def built(self, key):
        if key not in self._built:
            self._built[key] = build_firmware(key, scale=self.scale)
        return self._built[key]

    def detector(self, key):
        if key not in self._detectors:
            built = self.built(key)
            config = DTaintConfig(modules=analyzed_module_prefixes(key))
            self._detectors[key] = DTaint(
                built.binary, config=config,
                name=PROFILES[key].binary_name,
            )
        return self._detectors[key]

    def report(self, key):
        if key not in self._reports:
            self._reports[key] = self.detector(key).run()
        return self._reports[key]

    def all_reports(self):
        return {key: self.report(key) for key in PROFILE_ORDER}


_SHARED = None


def shared_context():
    """Process-wide cached context (used by the benchmarks)."""
    global _SHARED
    if _SHARED is None:
        _SHARED = EvalContext()
    return _SHARED
