"""Table generators: one function per table in the paper."""

from repro.cfg import CFGBuilder, build_call_graph
from repro.core import libc
from repro.corpus.profiles import PROFILES, PROFILE_ORDER


def format_table(headers, rows, title=""):
    """Render rows as a fixed-width text table."""
    columns = [str(h) for h in headers]
    str_rows = [[str(cell) for cell in row] for row in rows]
    widths = [
        max(len(columns[i]), *(len(r[i]) for r in str_rows))
        if str_rows else len(columns[i])
        for i in range(len(columns))
    ]

    def line(cells):
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

    out = []
    if title:
        out.append(title)
    out.append(line(columns))
    out.append(line(["-" * w for w in widths]))
    for row in str_rows:
        out.append(line(row))
    return "\n".join(out)


# ---------------------------------------------------------------------------


def table1_sources_sinks():
    """Table I: the configured sensitive sinks and input sources."""
    sinks = sorted(libc.SINKS) + ["loop"]
    sources = sorted(
        name for name in libc.SOURCES if name != "find_val"
    )
    return {"sensitive_sinks": sinks, "input_sources": sources}


def table2_firmware_stats(context):
    """Table II: size / functions / blocks / call edges per image.

    Blocks and edges come from a whole-binary CFG pass (no module
    filter), the way the paper characterises each image.
    """
    rows = []
    for key in PROFILE_ORDER:
        profile = PROFILES[key]
        built = context.built(key)
        functions = CFGBuilder(built.binary).build_all()
        call_graph = build_call_graph(functions)
        blocks = sum(f.block_count for f in functions.values())
        rows.append({
            "index": profile.index,
            "manufacturer": profile.vendor,
            "firmware_version": profile.version,
            "architecture": profile.arch.upper(),
            "binary": profile.binary_name,
            "size_kb": round(built.size_kb, 1),
            "functions": len(built.binary.local_functions),
            "blocks": blocks,
            "call_graph_edges": call_graph.edge_count,
            # Paper values for side-by-side comparison.
            "paper_size_kb": profile.size_kb,
            "paper_functions": profile.functions,
            "paper_blocks": profile.blocks,
            "paper_call_graph_edges": profile.call_edges,
        })
    return rows


def table3_detection(context):
    """Table III: per-image detection summary."""
    rows = []
    for key in PROFILE_ORDER:
        profile = PROFILES[key]
        report = context.report(key)
        row = report.summary_row()
        row.update({
            "firmware": profile.version,
            "paper_analysis_functions": profile.analyzed_functions,
            "paper_sinks_count": profile.sinks_count,
            "paper_vulnerable_paths": profile.vulnerable_paths,
            "paper_vulnerabilities": profile.vulnerabilities,
        })
        rows.append(row)
    return rows


def _match_findings(context, want_known):
    """Match report findings against the planted ground truth.

    Multi-path patterns plant one truth per source; the tables count
    one row per (firmware, label, function).
    """
    rows = []
    seen = set()
    for key in PROFILE_ORDER:
        built = context.built(key)
        report = context.report(key)
        for item in built.ground_truth:
            if not item.vulnerable:
                continue
            is_known = bool(item.cve)
            if is_known != want_known:
                continue
            # A CVE shared by two firmware versions of the same binary
            # (CVE-2015-2051 in DIR-645 and DIR-890L) is one Table IV
            # row, matching the paper.
            dedup = (item.cve, item.function)
            if dedup in seen:
                continue
            seen.add(dedup)
            symbol = built.binary.functions.get(item.function)
            hits = []
            if symbol is not None:
                low, high = symbol.addr, symbol.addr + symbol.size
                hits = [
                    f for f in report.findings
                    if low <= f.sink_addr < high
                ]
            rows.append({
                "firmware": PROFILES[key].version,
                "vulnerability": item.cve or "zero-day",
                "function": item.function,
                "kind": item.kind,
                "sink": item.sink,
                "source": item.source,
                "security_check": "N",
                "detected": bool(hits),
            })
    return rows


def table4_known_vulnerabilities(context):
    """Table IV: previously reported vulnerabilities (with CVE labels)."""
    return _match_findings(context, want_known=True)


def table5_zero_days(context):
    """Table V: zero-day findings grouped by firmware and bug type."""
    detailed = _match_findings(context, want_known=False)
    grouped = {}
    for row in detailed:
        key = (row["firmware"], row["kind"])
        entry = grouped.setdefault(
            key, {"firmware": row["firmware"],
                  "types": "Buffer Overflow" if row["kind"] == "buffer-overflow"
                  else "Command Injection",
                  "bugs": 0, "detected": 0}
        )
        entry["bugs"] += 1
        entry["detected"] += bool(row["detected"])
    # Count distinct vulnerable functions, not paths.
    seen_functions = set()
    for row in detailed:
        seen_functions.add((row["firmware"], row["kind"], row["function"]))
    for key in grouped:
        grouped[key]["bugs"] = sum(
            1 for fw, kind, _fn in seen_functions if (fw, kind) == key
        )
    return sorted(grouped.values(), key=lambda r: r["firmware"]), detailed


def table6_resources(context, key="dir645"):
    """Table VI: CPU and memory usage of the two heavy stages."""
    from repro.core import DTaint, DTaintConfig
    from repro.corpus.profiles import analyzed_module_prefixes
    from repro.eval.resources import measure

    built = context.built(key)
    config = DTaintConfig(modules=analyzed_module_prefixes(key))
    detector = DTaint(built.binary, config=config, name=key)
    detector.build_cfg()
    with measure(trace_python_heap=True) as ssa_usage:
        detector.analyze_functions()
    with measure(trace_python_heap=True) as ddg_usage:
        detector.run_dataflow()
        detector.detect()
    return [
        {"stage": "Static symbolic analysis",
         "cpu_percent": round(ssa_usage.cpu_percent, 1),
         "memory_mb": round(ssa_usage.peak_traced_mb, 1),
         "wall_seconds": round(ssa_usage.wall_seconds, 2)},
        {"stage": "Data flow generation",
         "cpu_percent": round(ddg_usage.cpu_percent, 1),
         "memory_mb": round(ddg_usage.peak_traced_mb, 1),
         "wall_seconds": round(ddg_usage.wall_seconds, 2)},
    ]


def table7_time_cost(context, programs=("dir645", "dgn1000", "dgn2200",
                                        "openssl")):
    """Table VII: SSA and DDG time, DTaint vs the top-down baseline.

    Programs map to the paper's cgibin / setup.cgi / httpd / openssl.
    """
    import time

    from repro.baseline import TopDownDDG
    from repro.core import DTaint, DTaintConfig
    from repro.corpus.openssl import build_openssl
    from repro.corpus.profiles import analyzed_module_prefixes

    paper = {
        "dir645": ("cgibin", 62.34, 10.48, 134.49, 16463.32),
        "dgn1000": ("setup.cgi", 33.85, 1.205, 39.17, 539.68),
        "dgn2200": ("httpd", 60.92, 8.87, 106.92, 22195.45),
        "openssl": ("openssl", 47.33, 3.09, 102.94, 7345.56),
    }
    rows = []
    for key in programs:
        if key == "openssl":
            built = build_openssl()
            config = DTaintConfig()
        else:
            built = context.built(key)
            config = DTaintConfig(modules=analyzed_module_prefixes(key))

        detector = DTaint(built.binary, config=config, name=key)
        detector.build_cfg()
        start = time.perf_counter()
        detector.analyze_functions()
        dtaint_ssa = time.perf_counter() - start
        start = time.perf_counter()
        detector.run_dataflow()
        dtaint_ddg = time.perf_counter() - start

        baseline = TopDownDDG(
            binary=built.binary,
            functions=detector.functions,
            call_graph=detector.call_graph,
        )
        baseline.build()

        name, p_dssa, p_dddg, p_assa, p_addg = paper[key]
        rows.append({
            "program": name,
            "dtaint_ssa_s": round(dtaint_ssa, 2),
            "dtaint_ddg_s": round(dtaint_ddg, 2),
            "baseline_ssa_s": round(baseline.stats.ssa_seconds, 2),
            "baseline_ddg_s": round(baseline.stats.ddg_seconds, 2),
            "baseline_contexts": baseline.stats.contexts_analyzed,
            "baseline_reanalyses": baseline.stats.reanalyses,
            "paper_dtaint_ssa_s": p_dssa,
            "paper_dtaint_ddg_s": p_dddg,
            "paper_angr_ssa_s": p_assa,
            "paper_angr_ddg_s": p_addg,
        })
    return rows
