"""CPU and memory measurement for Table VI."""

import os
import resource
import time
import tracemalloc
from contextlib import contextmanager
from dataclasses import dataclass


@dataclass
class ResourceUsage:
    wall_seconds: float
    cpu_seconds: float
    cpu_percent: float
    peak_traced_mb: float
    max_rss_mb: float


@contextmanager
def measure():
    """Measure wall/CPU time and memory over a ``with`` block.

    ``peak_traced_mb`` is tracemalloc's Python-heap peak over the
    block (deterministic); ``max_rss_mb`` the process high-water mark
    (monotonic across blocks).
    """
    usage = ResourceUsage(0.0, 0.0, 0.0, 0.0, 0.0)
    tracing_already = tracemalloc.is_tracing()
    if not tracing_already:
        tracemalloc.start()
    tracemalloc.reset_peak()
    cpu_start = time.process_time()
    wall_start = time.perf_counter()
    try:
        yield usage
    finally:
        usage.wall_seconds = time.perf_counter() - wall_start
        usage.cpu_seconds = time.process_time() - cpu_start
        cores = os.cpu_count() or 1
        if usage.wall_seconds > 0:
            usage.cpu_percent = (
                100.0 * usage.cpu_seconds / (usage.wall_seconds * cores)
            )
        _current, peak = tracemalloc.get_traced_memory()
        usage.peak_traced_mb = peak / (1024.0 * 1024.0)
        if not tracing_already:
            tracemalloc.stop()
        usage.max_rss_mb = (
            resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0
        )
