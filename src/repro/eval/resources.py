"""CPU and memory measurement for Table VI."""

import os
import resource
import time
import tracemalloc
from contextlib import contextmanager
from dataclasses import dataclass


@dataclass
class ResourceUsage:
    wall_seconds: float
    cpu_seconds: float
    cpu_percent: float
    peak_traced_mb: float
    max_rss_mb: float


@contextmanager
def measure(trace_python_heap=False):
    """Measure wall/CPU time and memory over a ``with`` block.

    ``peak_traced_mb`` is tracemalloc's Python-heap peak over the
    block (deterministic); ``max_rss_mb`` the process high-water mark
    (monotonic across blocks).

    Heap tracing is opt-in: tracemalloc hooks every allocation, which
    slows allocation-heavy analysis code by double-digit percentages —
    an observer tax the pipeline's per-task bookkeeping must not pay.
    Only the Table VI evaluation (which reports the deterministic
    Python-heap peak) asks for it; everyone else reads the free
    ``ru_maxrss`` high-water mark.  When tracing is off and no outer
    caller started it, ``peak_traced_mb`` stays 0.0.
    """
    usage = ResourceUsage(0.0, 0.0, 0.0, 0.0, 0.0)
    tracing_already = tracemalloc.is_tracing()
    tracing = trace_python_heap or tracing_already
    if tracing and not tracing_already:
        tracemalloc.start()
    if tracing:
        tracemalloc.reset_peak()
    cpu_start = time.process_time()
    wall_start = time.perf_counter()
    try:
        yield usage
    finally:
        usage.wall_seconds = time.perf_counter() - wall_start
        usage.cpu_seconds = time.process_time() - cpu_start
        cores = os.cpu_count() or 1
        if usage.wall_seconds > 0:
            usage.cpu_percent = (
                100.0 * usage.cpu_seconds / (usage.wall_seconds * cores)
            )
        if tracing:
            _current, peak = tracemalloc.get_traced_memory()
            usage.peak_traced_mb = peak / (1024.0 * 1024.0)
            if not tracing_already:
                tracemalloc.stop()
        usage.max_rss_mb = (
            resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0
        )
