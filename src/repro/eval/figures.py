"""Figure generators.

Figure 1 is the emulation histogram; Figures 2/3 and 5-7 are the
paper's illustrative code listings, regenerated as live artefacts: the
actual disassembly, symbolic definition pairs, and data-flow chain our
pipeline produces for the Heartbleed and foo/woo binaries.
"""

from repro.corpus.fleet import generate_fleet, source_availability
from repro.firmware.emulation import (
    EmulationHarness,
    failure_breakdown,
    figure1_histogram,
)


def figure1_emulation(size=None, seed=None):
    """Figure 1: firmware emulable per release year."""
    kwargs = {}
    if size is not None:
        kwargs["size"] = size
    if seed is not None:
        kwargs["seed"] = seed
    images = generate_fleet(**kwargs)
    results = EmulationHarness().run_fleet(images)
    histogram = figure1_histogram(results)
    emulated = sum(row["emulated"] for row in histogram)
    return {
        "histogram": histogram,
        "total": len(images),
        "emulated": emulated,
        "failures": failure_breakdown(results),
        "source_availability": source_availability(images),
        "paper": {"total": 6529, "emulated_upper_bound": 670,
                  "no_source": 5023},
    }


def render_figure1(data, width=48):
    """ASCII rendering of Figure 1 (total bar with emulated overlay)."""
    lines = ["Figure 1: firmware successfully emulated, by release year"]
    max_total = max(row["total"] for row in data["histogram"])
    for row in data["histogram"]:
        bar_total = int(width * row["total"] / max_total)
        bar_ok = int(width * row["emulated"] / max_total)
        bar = "#" * bar_ok + "." * (bar_total - bar_ok)
        lines.append(
            "%d |%s %4d total, %3d emulated"
            % (row["year"], bar.ljust(width), row["total"], row["emulated"])
        )
    lines.append(
        "total %d, emulated %d (paper: %d, <%d)"
        % (data["total"], data["emulated"], data["paper"]["total"],
           data["paper"]["emulated_upper_bound"])
    )
    return "\n".join(lines)


def figure3_heartbleed_disassembly():
    """Figure 3: the assembly that carries the Heartbleed flow."""
    from repro.corpus.openssl import build_openssl

    built = build_openssl()
    arch = built.binary.arch
    disassembler = arch.disassembler()
    listing = {}
    for name in ("ssl3_read_bytes", "ssl3_read_n", "tls1_process_heartbeat"):
        symbol = built.binary.functions[name]
        data = built.binary.read_bytes(symbol.addr, symbol.size)
        lines = []
        for i, insn in enumerate(disassembler.disasm_range(data, symbol.addr)):
            if insn is None:
                continue
            lines.append("%08x: %s" % (symbol.addr + 4 * i, insn.text()))
        listing[name] = lines
    return listing


def figure567_foo_woo():
    """Figures 5-7: assembly, symbolic analysis, and data flow of foo/woo."""
    from repro.core import DTaint
    from repro.corpus.examples import build_foo_woo
    from repro.symexec.value import pretty

    built = build_foo_woo()
    detector = DTaint(built.binary, name="foo-woo")
    report = detector.run()

    arch = built.binary.arch
    disassembler = arch.disassembler()
    assembly = {}
    for name in ("foo", "woo"):
        symbol = built.binary.functions[name]
        data = built.binary.read_bytes(symbol.addr, symbol.size)
        assembly[name] = [
            "%08x: %s" % (symbol.addr + 4 * i, insn.text())
            for i, insn in enumerate(disassembler.disasm_range(data, symbol.addr))
            if insn is not None
        ]

    definitions = {}
    for name in ("foo", "woo"):
        enriched = detector.enriched[name]
        definitions[name] = [
            "%s = %s" % (pretty(p.dest), pretty(p.value))
            for p in enriched.def_pairs
        ]
    flows = [f.describe() for f in report.findings]
    return {"assembly": assembly, "definitions": definitions,
            "data_flow": flows, "report": report}
