"""Command-line interface.

``dtaint scan FILE``          — analyse an ELF binary for taint-style bugs
``dtaint firmware FILE``      — extract a firmware image and analyse its
                                 main network binary
``dtaint corpus KEY``         — build a synthetic vendor image
                                 (dir645, dir890l, dgn1000, dgn2200,
                                 uniview, hikvision) and analyse it
``dtaint fleet``              — run the Figure 1 emulation study
"""

import argparse
import sys

from repro.core import DTaint, DTaintConfig


def _cmd_scan(args):
    from repro.loader.binary import load_elf

    with open(args.file, "rb") as handle:
        data = handle.read()
    binary = load_elf(data)
    config = DTaintConfig(modules=tuple(args.modules or ()))
    report = DTaint(binary, config=config, name=args.file).run()
    print(report.render())
    return 1 if report.vulnerable_paths and args.fail_on_findings else 0


def _cmd_firmware(args):
    from repro.firmware.binwalk import extract_filesystem, pick_target_binary
    from repro.loader.binary import load_elf

    with open(args.file, "rb") as handle:
        blob = handle.read()
    fs, container = extract_filesystem(blob)
    print("container: %s, %d filesystem entries" % (container.container, len(fs)))
    path, data = pick_target_binary(fs)
    print("analysing %s (%d bytes)" % (path, len(data)))
    binary = load_elf(data)
    report = DTaint(binary, name=path).run()
    print(report.render())
    return 0


def _cmd_corpus(args):
    from repro.corpus.profiles import (
        PROFILES,
        analyzed_module_prefixes,
        build_firmware,
    )

    if args.key not in PROFILES:
        print("unknown profile %r; choices: %s"
              % (args.key, ", ".join(sorted(PROFILES))), file=sys.stderr)
        return 2
    built = build_firmware(args.key, scale=args.scale)
    print("built %s: %.0f KB, %d functions"
          % (built.name, built.size_kb, len(built.binary.local_functions)))
    config = DTaintConfig(modules=analyzed_module_prefixes(args.key))
    report = DTaint(built.binary, config=config, name=built.name).run()
    print(report.render())
    expected = len(built.expected_vulnerabilities())
    print("ground truth: %d planted vulnerable patterns" % expected)
    return 0


def _cmd_fleet(args):
    from repro.eval.figures import figure1_emulation, render_figure1

    data = figure1_emulation(size=args.size)
    print(render_figure1(data))
    print("failure breakdown: %s" % data["failures"])
    return 0


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="dtaint",
        description="DTaint: taint-style vulnerability detection in "
                    "embedded firmware binaries (DSN'18 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    scan = sub.add_parser("scan", help="analyse an ELF binary")
    scan.add_argument("file")
    scan.add_argument("--modules", nargs="*",
                      help="function-name prefixes to analyse")
    scan.add_argument("--fail-on-findings", action="store_true")
    scan.set_defaults(func=_cmd_scan)

    firmware = sub.add_parser("firmware", help="extract + analyse firmware")
    firmware.add_argument("file")
    firmware.set_defaults(func=_cmd_firmware)

    corpus = sub.add_parser("corpus", help="build + analyse a vendor profile")
    corpus.add_argument("key")
    corpus.add_argument("--scale", type=float, default=0.25)
    corpus.set_defaults(func=_cmd_corpus)

    fleet = sub.add_parser("fleet", help="Figure 1 emulation study")
    fleet.add_argument("--size", type=int, default=6529)
    fleet.set_defaults(func=_cmd_fleet)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
