"""Command-line interface.

``dtaint scan FILE``          — analyse an ELF binary for taint-style bugs
``dtaint firmware FILE``      — extract a firmware image and analyse its
                                 main network binary
``dtaint unpack FILE``        — recursively extract a firmware image and
                                 print the extraction tree (``--json``
                                 for the manifest, ``--out DIR`` to
                                 write the embedded ELFs)
``dtaint corpus KEY``         — build a synthetic vendor image
                                 (dir645, dir890l, dgn1000, dgn2200,
                                 uniview, hikvision) and analyse it
``dtaint fleet``              — run the Figure 1 emulation study
``dtaint fleet-scan``         — analyse many images in parallel with
                                 summary/report caching, retries and
                                 JSONL telemetry (``--incremental``
                                 adds cross-binary fleet dedup,
                                 ``--baseline DIR`` a version delta)
``dtaint delta OLD NEW``      — diff two firmware versions: re-analyse
                                 only changed function closures,
                                 classify findings new/fixed/persisting
``dtaint cache gc``           — prune quarantined and stale-format
                                 entries from a cache directory (and,
                                 with ``--results-db``, apply run/job
                                 retention to the sqlite store)
``dtaint diffcheck``          — differential sweep of the static
                                 detector against a concrete-execution
                                 oracle and the top-down baseline
``dtaint serve``              — run the persistent analysis daemon:
                                 durable sqlite job queue, warm worker
                                 pool, REST/JSON API
``dtaint client``             — talk to a running daemon (submit /
                                 status / wait / findings / events /
                                 cancel / stats / shutdown)
``dtaint results``            — migrate a JSON ``--out`` directory
                                 into the sqlite results store, or
                                 export a stored run back to JSON
"""

import argparse
import sys

from repro.core import DTaint, DTaintConfig
from repro.errors import MalformedInput, ReproError

# Distinct exit codes so scripts wrapping the CLI can react to the
# *kind* of failure, not just "nonzero":
EXIT_OK = 0
EXIT_FINDINGS = 1          # vulnerable paths found (--fail-on-findings)
EXIT_USAGE = 2             # bad arguments (argparse uses 2 as well)
EXIT_ANALYSIS_FAILED = 3   # malformed input / analysis error / quarantine
EXIT_DEGRADED = 4          # degradation beyond --strict / --max-degraded


def _degradation_policy(args, degraded_count):
    """Apply --strict / --max-degraded; returns an exit code or None."""
    limit = 0 if args.strict else args.max_degraded
    if limit is not None and degraded_count > limit:
        print(
            "degradation policy violated: %d degraded function(s), "
            "limit %d" % (degraded_count, limit),
            file=sys.stderr,
        )
        return EXIT_DEGRADED
    return None


def _injection(args):
    """Scoped injector from --inject specs (a no-op context without)."""
    import contextlib

    from repro.pipeline.faultinject import injected

    if getattr(args, "inject", None):
        return injected(args.inject)
    return contextlib.nullcontext()


def _cmd_scan(args):
    import json

    from repro.loader.binary import load_elf

    with open(args.file, "rb") as handle:
        data = handle.read()
    try:
        with _injection(args):
            binary = load_elf(data, name=args.file)
            config = DTaintConfig(
                modules=tuple(args.modules or ()),
                deadline_seconds=args.deadline,
                alias_engine=args.alias_engine,
            )
            report = DTaint(binary, config=config, name=args.file).run()
    except MalformedInput as exc:
        print("analysis failed: %s" % exc, file=sys.stderr)
        return EXIT_ANALYSIS_FAILED
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(report.render())
    if args.profile:
        from repro import profiling

        print(profiling.render(report.phase_profile,
                               title="phase profile (%s)" % args.file))
    policy = _degradation_policy(args, report.degraded_count)
    if policy is not None:
        return policy
    if report.vulnerable_paths and args.fail_on_findings:
        return EXIT_FINDINGS
    return EXIT_OK


def _cmd_firmware(args):
    from repro.firmware.binwalk import extract_tree, pick_target_binary
    from repro.loader.binary import load_elf

    with open(args.file, "rb") as handle:
        blob = handle.read()
    try:
        with _injection(args):
            tree = extract_tree(blob, name=args.file)
            elves = tree.elves()
            print("container: %s, %d node(s), %d embedded ELF(s)"
                  % (tree.root.parser, len(tree.nodes()), len(elves)))
            for node_path, node in tree.walk():
                for note in node.notes:
                    print("note %s: %s" % (node_path, note),
                          file=sys.stderr)
            path, data = pick_target_binary(tree)
            print("analysing %s (%d bytes)" % (path, len(data)))
            binary = load_elf(data, name=path)
            report = DTaint(binary, name=path).run()
    except MalformedInput as exc:
        print("analysis failed: %s" % exc, file=sys.stderr)
        return EXIT_ANALYSIS_FAILED
    print(report.render())
    policy = _degradation_policy(args, report.degraded_count)
    if policy is not None:
        return policy
    return EXIT_OK


def _cmd_unpack(args):
    import json
    import os

    from repro.firmware.binwalk import extract_tree

    with open(args.file, "rb") as handle:
        blob = handle.read()
    try:
        with _injection(args):
            tree = extract_tree(blob, name=args.file)
    except MalformedInput as exc:
        print("unpack failed: %s" % exc, file=sys.stderr)
        return EXIT_ANALYSIS_FAILED
    if args.json:
        print(json.dumps(tree.manifest(), indent=2, sort_keys=True))
    else:
        print(tree.render())
        elves = tree.elves()
        print("%d node(s), %d embedded ELF(s), max depth %d"
              % (len(tree.nodes()), len(elves), tree.max_depth))
        for member, display, data in elves:
            print("  elf %s (%d bytes) member=%s"
                  % (display, len(data), member))
    if args.out:
        os.makedirs(args.out, exist_ok=True)
        manifest_path = os.path.join(args.out, "manifest.json")
        with open(manifest_path, "w") as handle:
            json.dump(tree.manifest(), handle, indent=2, sort_keys=True)
        for member, display, data in tree.elves():
            safe = display.strip("/").replace("/", "_") or "elf"
            out_path = os.path.join(args.out, safe)
            with open(out_path, "wb") as handle:
                handle.write(data)
        print("extracted to %s (manifest.json + %d ELF(s))"
              % (args.out, len(tree.elves())))
    return EXIT_OK


def _cmd_corpus(args):
    from repro.corpus.profiles import (
        PROFILES,
        analyzed_module_prefixes,
        build_firmware,
    )

    if args.key not in PROFILES:
        print("unknown profile %r; choices: %s"
              % (args.key, ", ".join(sorted(PROFILES))), file=sys.stderr)
        return 2
    built = build_firmware(args.key, scale=args.scale)
    print("built %s: %.0f KB, %d functions"
          % (built.name, built.size_kb, len(built.binary.local_functions)))
    config = DTaintConfig(modules=analyzed_module_prefixes(args.key))
    report = DTaint(built.binary, config=config, name=built.name).run()
    print(report.render())
    expected = len(built.expected_vulnerabilities())
    print("ground truth: %d planted vulnerable patterns" % expected)
    return 0


def _cmd_fleet(args):
    from repro.eval.figures import figure1_emulation, render_figure1

    data = figure1_emulation(size=args.size)
    print(render_figure1(data))
    print("failure breakdown: %s" % data["failures"])
    return 0


def _cmd_fleet_scan(args):
    import os
    import time

    from repro.corpus.profiles import PROFILE_ORDER, PROFILES
    from repro.pipeline import (
        FleetJob,
        FleetScheduler,
        ResultsStore,
        Telemetry,
        render_fleet_summary,
    )

    if args.jobs < 1:
        print("--jobs must be at least 1", file=sys.stderr)
        return 2
    images = list(getattr(args, "image", None) or ())
    # Explicit --image runs scan only those images unless profiles are
    # also named; a bare fleet-scan still means the whole profile fleet.
    if images and not args.profiles:
        keys = []
    else:
        keys = args.profiles or list(PROFILE_ORDER)
    unknown = [k for k in keys if k not in PROFILES]
    if unknown:
        print("unknown profile(s) %s; choices: %s"
              % (", ".join(unknown), ", ".join(sorted(PROFILES))),
              file=sys.stderr)
        return 2
    if args.server:
        return _fleet_scan_via_server(args, keys, images)
    try:
        from repro.pipeline.faultinject import FaultSpec

        for spec in args.inject or ():
            FaultSpec.parse(spec)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return EXIT_USAGE
    try:
        shards = _parse_shards(getattr(args, "shards", "0"))
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return EXIT_USAGE
    jobs = []
    for key in keys:
        fault = "crash" if key == args.inject_crash else ""
        jobs.append(FleetJob(
            job_id=key, kind="profile", key=key, scale=args.scale,
            fault=fault, fault_attempts=10 ** 6 if fault else 0,
            faults=tuple(args.inject or ()),
            shards=shards,
            alias_engine=args.alias_engine,
        ))
    if images:
        from repro.pipeline.scheduler import expand_firmware_jobs

        # Job ids become results-store filenames (images/<id>.json), so
        # they must not carry path separators; basenames are
        # disambiguated with a counter when two images share one.
        id_counts = {}
        for image_path in images:
            base = os.path.basename(image_path) or "image"
            seen = id_counts.get(base, 0)
            id_counts[base] = seen + 1
            image_id = base if not seen else "%s~%d" % (base, seen)
            try:
                member_jobs = expand_firmware_jobs(
                    job_id=image_id, path=image_path, shards=shards,
                    alias_engine=args.alias_engine,
                )
            except OSError as exc:
                print("cannot read image %s: %s" % (image_path, exc),
                      file=sys.stderr)
                return EXIT_USAGE
            except ReproError as exc:
                print("cannot unpack image %s: %s" % (image_path, exc),
                      file=sys.stderr)
                return EXIT_ANALYSIS_FAILED
            print("image %s: %d embedded ELF job(s)"
                  % (image_path, len(member_jobs)))
            jobs.extend(member_jobs)
    if not jobs:
        print("nothing to scan (no profiles, no --image)", file=sys.stderr)
        return EXIT_USAGE

    telemetry_path = args.telemetry
    if telemetry_path is None and args.out:
        telemetry_path = os.path.join(args.out, "telemetry.jsonl")
    if telemetry_path:
        os.makedirs(os.path.dirname(telemetry_path) or ".", exist_ok=True)
    telemetry = Telemetry(path=telemetry_path)

    if args.baseline and not args.out:
        print("--baseline requires --out (the delta report is written "
              "there)", file=sys.stderr)
        return EXIT_USAGE
    incremental = args.incremental or bool(args.baseline)
    cache_dir = None if args.no_cache else args.cache_dir
    if incremental and cache_dir is None:
        print("--incremental/--baseline need a cache dir (conflicts "
              "with --no-cache)", file=sys.stderr)
        return EXIT_USAGE
    scheduler = FleetScheduler(
        jobs=args.jobs,
        timeout=args.timeout or None,
        retries=args.retries,
        cache_dir=cache_dir,
        use_report_cache=not args.no_report_cache,
        use_fleet_index=incremental,
        telemetry=telemetry,
    )
    start = time.perf_counter()
    with scheduler:
        results = scheduler.run(jobs)
    wall = time.perf_counter() - start
    telemetry.close()

    new_findings = 0
    if args.out:
        store = ResultsStore(args.out)
        for result in results:
            store.write_image(result)
        rollup = store.write_rollup(results, wall)
        print("results: %s" % rollup)
        if args.baseline:
            new_findings = _fleet_baseline_delta(args, results, store)
    if args.results_db:
        from repro.service import ResultsDB

        with ResultsDB(args.results_db) as db:
            run_id, _images = db.record_run(
                results, wall, kind="fleet", source=args.out or "",
            )
        print("results db: %s (run %d)" % (args.results_db, run_id))
    if telemetry_path:
        print("telemetry: %s" % telemetry_path)
    print(render_fleet_summary(results, wall))
    if not all(r.ok for r in results):
        return EXIT_ANALYSIS_FAILED
    if args.baseline and new_findings and args.fail_on_findings:
        return EXIT_FINDINGS
    degraded = sum(
        (r.report or {}).get("coverage", {}).get("degraded", 0)
        for r in results
    )
    policy = _degradation_policy(args, degraded)
    if policy is not None:
        return policy
    return EXIT_OK


def _cmd_delta(args):
    import json

    from repro.increment import render_delta, run_delta

    config = DTaintConfig(modules=tuple(args.modules or ()))
    try:
        delta_doc, old_image, new_image = run_delta(
            args.old, args.new, config=config, cache_dir=args.cache_dir,
        )
    except (MalformedInput, OSError) as exc:
        print("delta failed: %s" % exc, file=sys.stderr)
        return EXIT_ANALYSIS_FAILED
    if args.json:
        print(json.dumps(delta_doc, indent=2, sort_keys=True))
    else:
        print(render_delta(delta_doc))
        for image in (old_image, new_image):
            stats = image.get("cache") or {}
            if stats:
                print("  cache %s: %d/%d summary hits, reuse %.0f%%" % (
                    image["name"],
                    stats.get("summary_hits", 0),
                    stats.get("summary_hits", 0)
                    + stats.get("summary_misses", 0),
                    100.0 * stats.get("reuse_ratio", 0.0),
                ))
    if args.out:
        from repro.pipeline import ResultsStore

        path = ResultsStore(args.out).write_delta(delta_doc)
        print("delta report: %s" % path)
    if args.fail_on_new and delta_doc["counts"]["new"]:
        return EXIT_FINDINGS
    return EXIT_OK


def _cmd_cache_gc(args):
    from repro.pipeline.cache import collect_garbage

    stats = collect_garbage(args.cache_dir, dry_run=args.dry_run)
    verb = "would remove" if args.dry_run else "removed"
    print(
        "cache gc (%s): %s %d corrupt, %d tmp, %d files; pruned %d "
        "stale summaries; %d bytes freed"
        % (args.cache_dir, verb, stats["corrupt_removed"],
           stats["tmp_removed"], stats["files_removed"],
           stats["stale_summaries"], stats["bytes_freed"])
    )
    if args.results_db:
        from repro.service import ResultsDB

        with ResultsDB(args.results_db) as db:
            db_stats = db.gc(
                retain_runs=args.retain_runs,
                retain_jobs=args.retain_jobs,
                dry_run=args.dry_run,
            )
        print(
            "results gc (%s): %s %d runs (%d images), %d queue jobs "
            "(%d events)"
            % (args.results_db, verb, db_stats["runs_removed"],
               db_stats["images_removed"], db_stats["jobs_removed"],
               db_stats["events_removed"])
        )
    return EXIT_OK


def _cmd_serve(args):
    import signal
    import threading

    from repro.service import AnalysisDaemon, serve

    rlimits = {}
    if args.max_memory_mb:
        rlimits["as_mb"] = args.max_memory_mb
    if args.max_cpu_seconds:
        rlimits["cpu_seconds"] = args.max_cpu_seconds
    if args.max_file_mb:
        rlimits["fsize_mb"] = args.max_file_mb
    daemon = AnalysisDaemon(
        db_path=args.db,
        cache_dir=None if args.no_cache else args.cache_dir,
        workers=args.workers,
        timeout=args.timeout or None,
        retries=args.retries,
        incremental=args.incremental,
        telemetry_path=args.telemetry,
        scale=args.scale,
        rlimits=rlimits or None,
        heartbeat=args.heartbeat,
        max_queue_depth=args.max_queue_depth,
        max_attempts=args.max_attempts,
        crash_threshold=args.crash_threshold,
        shards=_parse_shards(getattr(args, "shards", "0")),
        alias_engine=args.alias_engine,
    )
    server = serve(
        daemon, host=args.host, port=args.port,
        allow_shutdown=args.allow_shutdown, verbose=args.verbose,
    )
    host, port = server.server_address[:2]

    # SIGTERM / SIGINT drain gracefully: stop claiming immediately,
    # let the in-flight batch publish, then exit.  The handler only
    # trips the flag — the actual teardown runs in the main thread's
    # finally block, never inside signal context.
    def _drain(signum, frame):
        daemon.draining = True
        print("\nsignal %d: draining (in-flight batch completes, "
              "pending jobs stay durable)" % signum, flush=True)
        threading.Thread(target=server.shutdown, daemon=True).start()

    signal.signal(signal.SIGTERM, _drain)
    signal.signal(signal.SIGINT, _drain)

    resumed = daemon.start()
    if resumed:
        print("resumed %d job(s) stranded by a previous daemon" % resumed)
    print("dtaint daemon listening on http://%s:%d (db: %s, %d workers)"
          % (host, port, args.db, args.workers), flush=True)
    try:
        server.serve_forever(poll_interval=0.2)
    except KeyboardInterrupt:
        pass
    finally:
        threading.Thread(target=server.shutdown, daemon=True).start()
        server.server_close()
        daemon.stop(drain_timeout=args.drain_timeout)
    print("daemon stopped")
    return EXIT_OK


def _cmd_client(args):
    import json

    from repro.service import ServiceClient, ServiceError

    client = ServiceClient(args.url, timeout=args.http_timeout)
    try:
        if args.client_command == "submit":
            job = client.submit(
                kind="elf" if args.elf else "profile",
                key="" if args.elf else args.target,
                path=args.target if args.elf else "",
                scale=args.scale,
                modules=args.modules or (),
                priority=args.priority,
                alias_engine=getattr(args, "alias_engine", ""),
            )
            print("job %d: %s (%s)" % (
                job["job_id"], job["state"], job["outcome"]))
            if args.wait:
                job = client.wait(job["job_id"], timeout=args.wait_timeout)
                print("job %d finished: %s" % (job["job_id"], job["state"]))
                if job["state"] != "done":
                    return EXIT_ANALYSIS_FAILED
            return EXIT_OK
        if args.client_command == "status":
            print(json.dumps(client.job(args.job_id), indent=2,
                             sort_keys=True))
            return EXIT_OK
        if args.client_command == "wait":
            job = client.wait(args.job_id, timeout=args.wait_timeout)
            print("job %d: %s" % (args.job_id, job["state"]))
            return EXIT_OK if job["state"] == "done" \
                else EXIT_ANALYSIS_FAILED
        if args.client_command == "findings":
            print(json.dumps(client.findings(args.job_id), indent=2,
                             sort_keys=True))
            return EXIT_OK
        if args.client_command == "events":
            for event in client.events(args.job_id, after=args.after):
                print(json.dumps(event, sort_keys=True))
            return EXIT_OK
        if args.client_command == "cancel":
            result = client.cancel(args.job_id)
            print("job %d: %s" % (args.job_id, result["disposition"]))
            return EXIT_OK
        if args.client_command == "stats":
            print(json.dumps(client.stats(), indent=2, sort_keys=True))
            return EXIT_OK
        if args.client_command == "readyz":
            probe = client.readyz()
            print(json.dumps(probe, indent=2, sort_keys=True))
            return EXIT_OK if probe.get("ready") else EXIT_ANALYSIS_FAILED
        if args.client_command == "deadletter":
            print(json.dumps(client.dead_letter(), indent=2,
                             sort_keys=True))
            return EXIT_OK
        if args.client_command == "retry":
            result = client.retry_dead(args.job_id)
            print("job %d: %s" % (args.job_id, result["outcome"]))
            return EXIT_OK
        if args.client_command == "quarantine":
            print(json.dumps(client.quarantine(), indent=2,
                             sort_keys=True))
            return EXIT_OK
        if args.client_command == "quarantine-reset":
            result = client.reset_quarantine(args.dedup_key)
            print("breaker cleared for %s (%d row)" % (
                args.dedup_key[:16], result["removed"]))
            return EXIT_OK
        if args.client_command == "shutdown":
            client.shutdown()
            print("daemon stopping")
            return EXIT_OK
    except ServiceError as exc:
        print("client error: %s" % exc, file=sys.stderr)
        return EXIT_ANALYSIS_FAILED
    print("unknown client command %r" % args.client_command,
          file=sys.stderr)
    return EXIT_USAGE


def _parse_shards(value):
    """``--shards auto|N`` -> the FleetJob shard count (auto = -1)."""
    from repro.pipeline.shards import AUTO_SHARDS

    text = str(value or "0").strip().lower()
    if text == "auto":
        return AUTO_SHARDS
    try:
        count = int(text)
    except ValueError:
        raise ValueError("--shards takes 'auto' or an integer, not %r"
                         % (value,))
    if count < -1:
        raise ValueError("--shards must be 'auto', -1, or >= 0")
    return count


def _fleet_scan_via_server(args, keys, images=()):
    """fleet-scan --server: submit the fleet over HTTP and wait."""
    from repro.service import ServiceClient, ServiceError

    try:
        shards = _parse_shards(getattr(args, "shards", "0"))
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return EXIT_USAGE
    client = ServiceClient(args.server)
    try:
        client.healthz()
        submitted = []
        for key in keys:
            job = client.submit(kind="profile", key=key, scale=args.scale,
                                shards=shards,
                                alias_engine=args.alias_engine)
            submitted.append((key, job["job_id"]))
            print("submitted %s as job %d (%s)"
                  % (key, job["job_id"], job["outcome"]))
        for image_path in images:
            try:
                responses = client.submit_firmware(
                    image_path, shards=shards,
                    alias_engine=args.alias_engine,
                )
            except (OSError, ReproError) as exc:
                print("cannot submit image %s: %s" % (image_path, exc),
                      file=sys.stderr)
                return EXIT_ANALYSIS_FAILED
            for index, job in enumerate(responses):
                label = "%s#%d" % (image_path, index)
                submitted.append((label, job["job_id"]))
                print("submitted %s as job %d (%s)"
                      % (label, job["job_id"], job["outcome"]))
        failed = 0
        for key, job_id in submitted:
            job = client.wait(job_id, timeout=args.timeout or 600.0)
            findings = client.findings(job_id)
            sha = findings.get("findings_sha256", "")
            print("  %s: %s%s" % (
                key, job["state"], (" findings %s" % sha) if sha else ""))
            if job["state"] != "done":
                failed += 1
    except ServiceError as exc:
        print("fleet-scan --server failed: %s" % exc, file=sys.stderr)
        return EXIT_ANALYSIS_FAILED
    return EXIT_ANALYSIS_FAILED if failed else EXIT_OK


def _cmd_results_migrate(args):
    from repro.service import ResultsDB, migrate_output_dir

    try:
        with ResultsDB(args.db) as db:
            run_id, counts = migrate_output_dir(db, args.out_dir)
    except ReproError as exc:
        print("migrate failed: %s" % exc, file=sys.stderr)
        return EXIT_ANALYSIS_FAILED
    print("migrated %s -> %s as run %d (%d images, %d documents, "
          "rollup: %s)"
          % (args.out_dir, args.db, run_id, counts["images"],
             counts["documents"], "yes" if counts["rollup"] else "no"))
    return EXIT_OK


def _cmd_results_export(args):
    from repro.service import ResultsDB, export_run_dir

    try:
        with ResultsDB(args.db) as db:
            run_id = args.run if args.run is not None else db.latest_run_id()
            if run_id is None:
                print("no runs in %s" % args.db, file=sys.stderr)
                return EXIT_ANALYSIS_FAILED
            written = export_run_dir(db, run_id, args.out_dir)
    except ReproError as exc:
        print("export failed: %s" % exc, file=sys.stderr)
        return EXIT_ANALYSIS_FAILED
    print("exported run %d -> %s (%d files)"
          % (run_id, args.out_dir, len(written)))
    return EXIT_OK


def _baseline_documents(baseline):
    """Per-image baseline docs from a ``--out`` dir or a sqlite store.

    Accepts the JSON layout (a directory with ``images/*.json``), a
    results database file, or a directory containing ``dtaint.sqlite``
    — so a delta can be computed against either generation of store.
    """
    import json
    import os

    db_path = None
    if os.path.isfile(baseline):
        db_path = baseline
    elif os.path.isdir(baseline):
        from repro.service import default_db_path

        candidate = default_db_path(baseline)
        if (os.path.isfile(candidate)
                and not os.path.isdir(os.path.join(baseline, "images"))):
            db_path = candidate
    if db_path is not None:
        from repro.service import ResultsDB

        with ResultsDB(db_path) as db:
            return db.baseline_documents()
    documents = {}
    images_dir = os.path.join(baseline, "images")
    if os.path.isdir(images_dir):
        for name in sorted(os.listdir(images_dir)):
            if name.endswith(".json"):
                with open(os.path.join(images_dir, name), "r") as handle:
                    document = json.load(handle)
                documents[document.get("job_id", name[:-5])] = document
    return documents


def _fleet_baseline_delta(args, results, store):
    """--baseline DIR: diff this run's images against a previous run's."""
    from repro.increment import classify_findings, classify_functions

    baseline_docs = _baseline_documents(args.baseline)
    deltas = {}
    for result in results:
        if not result.ok or result.report is None:
            continue
        old_doc = baseline_docs.get(result.job.job_id)
        if old_doc is None:
            deltas[result.job.job_id] = {"status": "no_baseline"}
            continue
        new_findings = {
            section: result.report.get(section, [])
            for section in ("vulnerabilities", "vulnerable_paths")
        }
        findings = classify_findings(
            old_doc.get("findings", {}), new_findings
        )
        functions = classify_functions(
            old_doc.get("fingerprints", {}) or {},
            result.fingerprints or {},
        )
        deltas[result.job.job_id] = {
            "status": "ok",
            "functions": {
                kind: len(names) for kind, names in functions.items()
            },
            "changed": sorted(
                functions["body_changed"] + functions["callee_changed"]
                + functions["added"] + functions["removed"]
            ),
            "counts": {
                kind: len(items) for kind, items in findings.items()
            },
            "new": findings["new"],
            "fixed": findings["fixed"],
        }
    document = {"baseline": args.baseline, "images": deltas}
    path = store.write_delta(document)
    print("baseline delta: %s" % path)
    for job_id in sorted(deltas):
        delta = deltas[job_id]
        if delta.get("status") != "ok":
            print("  %s: %s" % (job_id, delta.get("status")))
            continue
        counts = delta["counts"]
        print("  %s: %d new, %d fixed, %d persisting (%d closures changed)"
              % (job_id, counts["new"], counts["fixed"],
                 counts["persisting"], len(delta["changed"])))
    return sum(
        d["counts"]["new"] for d in deltas.values()
        if d.get("status") == "ok"
    )


def _cmd_diffcheck(args):
    import json
    import os

    from repro.diffcheck import ARCHES, DiffCheck
    from repro.pipeline import ResultsStore, Telemetry

    if args.count < 1:
        print("--count must be at least 1", file=sys.stderr)
        return EXIT_USAGE
    telemetry_path = args.telemetry
    if telemetry_path is None and args.out:
        telemetry_path = os.path.join(args.out, "telemetry.jsonl")
    if telemetry_path:
        os.makedirs(os.path.dirname(telemetry_path) or ".", exist_ok=True)
    telemetry = Telemetry(path=telemetry_path)
    harness = DiffCheck(
        seed=args.seed,
        count=args.count,
        arches=tuple(args.arch) if args.arch else ARCHES,
        run_baseline=not args.no_baseline,
        shrink=not args.no_shrink,
        telemetry=telemetry,
        alias_engine=args.alias_engine,
    )
    report = harness.run()
    telemetry.close()
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(report.render())
    if args.out:
        path = ResultsStore(args.out).write_diffcheck(report.to_dict())
        print("triage report: %s" % path)
    if telemetry_path:
        print("telemetry: %s" % telemetry_path)
    if not report.ok:
        return EXIT_FINDINGS
    if args.fail_on_any_divergence and report.divergences:
        return EXIT_FINDINGS
    return EXIT_OK


def _cmd_alias_compare(args):
    import json
    import os

    from repro.alias.compare import compare_engines, render_comparison

    if args.count < 1:
        print("--count must be at least 1", file=sys.stderr)
        return EXIT_USAGE
    document = compare_engines(
        seed=args.seed,
        count=args.count,
        arches=tuple(args.arch) if args.arch else None,
        scale=args.scale,
        vendor=not args.no_vendor,
        log=None if args.json else print,
    )
    if args.json:
        print(json.dumps(document, indent=2, sort_keys=True))
    else:
        print(render_comparison(document))
    if args.out:
        os.makedirs(args.out, exist_ok=True)
        path = os.path.join(args.out, "alias_compare.json")
        with open(path, "w") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print("comparison: %s" % path)
    # The default engine drifting from the golden corpus is the one
    # divergence this command treats as a failure (CI gates on it).
    if document["gates"].get("dtaint_golden_identical") is False:
        print("dtaint engine diverged from the golden corpus: %s"
              % ", ".join(
                  document["engines"]["dtaint"]["vendor"]
                  ["golden_divergences"]),
              file=sys.stderr)
        return EXIT_FINDINGS
    return EXIT_OK


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="dtaint",
        description="DTaint: taint-style vulnerability detection in "
                    "embedded firmware binaries (DSN'18 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_alias_engine_option(command, default="dtaint"):
        command.add_argument(
            "--alias-engine", choices=("dtaint", "sse"), default=default,
            help="alias analysis engine: the paper's Algorithm-1 "
                 "heuristics (dtaint, default) or sparse "
                 "symbolic-execution aliasing (sse); part of the cache "
                 "identity")

    def add_degradation_options(command):
        command.add_argument(
            "--strict", action="store_true",
            help="exit %d if any function degraded" % EXIT_DEGRADED)
        command.add_argument(
            "--max-degraded", type=int, default=None, metavar="N",
            help="exit %d if more than N functions degraded"
                 % EXIT_DEGRADED)
        command.add_argument(
            "--inject", action="append", metavar="SPEC",
            help="deterministic fault injection spec "
                 "(fault@site:target, repeatable; chaos testing)")

    scan = sub.add_parser("scan", help="analyse an ELF binary")
    scan.add_argument("file")
    scan.add_argument("--modules", nargs="*",
                      help="function-name prefixes to analyse")
    scan.add_argument("--fail-on-findings", action="store_true")
    scan.add_argument("--json", action="store_true",
                      help="emit the report as JSON (same shape the "
                           "fleet pipeline stores)")
    scan.add_argument("--deadline", type=float, default=0.0,
                      help="per-function symexec soft deadline in "
                           "seconds; overruns truncate the summary "
                           "instead of failing (0 = unlimited)")
    scan.add_argument("--profile", action="store_true",
                      help="print the per-phase time/counter breakdown "
                           "(lift/symexec/alias/similarity/detect)")
    add_alias_engine_option(scan)
    add_degradation_options(scan)
    scan.set_defaults(func=_cmd_scan)

    firmware = sub.add_parser("firmware", help="extract + analyse firmware")
    firmware.add_argument("file")
    add_degradation_options(firmware)
    firmware.set_defaults(func=_cmd_firmware)

    unpack = sub.add_parser(
        "unpack",
        help="recursively extract a firmware image and print the tree",
    )
    unpack.add_argument("file")
    unpack.add_argument("--json", action="store_true",
                        help="print the canonical manifest instead of "
                             "the ASCII tree")
    unpack.add_argument("--out", metavar="DIR",
                        help="write manifest.json and every embedded "
                             "ELF into DIR")
    unpack.add_argument("--inject", action="append", metavar="SPEC",
                        help="fault spec(s) scoped to the extraction")
    unpack.set_defaults(func=_cmd_unpack)

    corpus = sub.add_parser("corpus", help="build + analyse a vendor profile")
    corpus.add_argument("key")
    corpus.add_argument("--scale", type=float, default=0.25)
    corpus.set_defaults(func=_cmd_corpus)

    fleet = sub.add_parser("fleet", help="Figure 1 emulation study")
    fleet.add_argument("--size", type=int, default=6529)
    fleet.set_defaults(func=_cmd_fleet)

    fleet_scan = sub.add_parser(
        "fleet-scan",
        help="analyse many vendor images in parallel, with caching",
    )
    fleet_scan.add_argument("profiles", nargs="*",
                            help="profile keys (default: all six, unless "
                                 "--image is given)")
    fleet_scan.add_argument("--image", action="append", metavar="FILE",
                            help="firmware image to unpack recursively "
                                 "and scan: one job per embedded ELF "
                                 "(repeatable)")
    fleet_scan.add_argument(
        "--shards", default="0", metavar="auto|N",
        help="split each image into cost-balanced shards scheduled "
             "across the worker pool ('auto' sizes from --jobs; 0 "
             "disables; findings are byte-identical either way)")
    fleet_scan.add_argument("--jobs", type=int, default=4,
                            help="concurrent worker processes")
    fleet_scan.add_argument("--scale", type=float, default=0.25)
    fleet_scan.add_argument("--cache-dir", default=".dtaint-cache",
                            help="content-addressed summary/report store")
    fleet_scan.add_argument("--no-cache", action="store_true",
                            help="disable all caching for this run")
    fleet_scan.add_argument("--no-report-cache", action="store_true",
                            help="keep summary reuse but always re-detect")
    fleet_scan.add_argument("--incremental", action="store_true",
                            help="layer the content-addressed fleet index "
                                 "over the per-binary caches: summaries "
                                 "and whole-image findings are reused "
                                 "across binaries by position-independent "
                                 "fingerprint")
    fleet_scan.add_argument("--baseline", metavar="DIR",
                            help="previous --out directory to diff "
                                 "against; writes <out>/delta.json with "
                                 "new/fixed/persisting findings per image "
                                 "(implies --incremental)")
    fleet_scan.add_argument("--fail-on-findings", action="store_true",
                            help="with --baseline: exit %d if any image "
                                 "gained a new finding" % EXIT_FINDINGS)
    fleet_scan.add_argument("--timeout", type=float, default=0.0,
                            help="per-job wall-clock budget in seconds "
                                 "(0 = unlimited)")
    fleet_scan.add_argument("--retries", type=int, default=1,
                            help="extra attempts after a crash/timeout")
    fleet_scan.add_argument("--out",
                            help="directory for per-image findings + "
                                 "fleet.json rollup")
    fleet_scan.add_argument("--results-db", metavar="PATH",
                            help="also record the run into a sqlite "
                                 "results store (usable later as "
                                 "--baseline)")
    fleet_scan.add_argument("--server", metavar="URL",
                            help="submit to a running 'dtaint serve' "
                                 "daemon over HTTP instead of running "
                                 "in-process")
    fleet_scan.add_argument("--telemetry",
                            help="JSONL event log path (default: "
                                 "<out>/telemetry.jsonl when --out is set)")
    fleet_scan.add_argument("--inject-crash", metavar="KEY",
                            help="chaos switch: make this job crash every "
                                 "attempt (demonstrates quarantine)")
    add_alias_engine_option(fleet_scan)
    add_degradation_options(fleet_scan)
    fleet_scan.set_defaults(func=_cmd_fleet_scan)

    delta = sub.add_parser(
        "delta",
        help="diff two firmware versions: classify functions by "
             "fingerprint and findings as new/fixed/persisting",
    )
    delta.add_argument("old", help="old-version ELF")
    delta.add_argument("new", help="new-version ELF")
    delta.add_argument("--modules", nargs="*",
                       help="function-name prefixes to analyse")
    delta.add_argument("--cache-dir",
                       help="fleet cache: unchanged closures reuse their "
                            "summaries instead of re-running symexec")
    delta.add_argument("--json", action="store_true",
                       help="emit the delta document as JSON")
    delta.add_argument("--out",
                       help="directory for delta.json")
    delta.add_argument("--fail-on-new", action="store_true",
                       help="exit %d if the new version introduces "
                            "findings" % EXIT_FINDINGS)
    delta.set_defaults(func=_cmd_delta)

    cache = sub.add_parser(
        "cache", help="cache maintenance (gc)",
    )
    cache_sub = cache.add_subparsers(dest="cache_command", required=True)
    cache_gc = cache_sub.add_parser(
        "gc",
        help="prune .corrupt quarantine files, orphaned tmp files and "
             "stale-format summaries",
    )
    cache_gc.add_argument("--cache-dir", default=".dtaint-cache")
    cache_gc.add_argument("--results-db", metavar="PATH",
                          help="sqlite results store to apply retention "
                               "to as well")
    cache_gc.add_argument("--retain-runs", type=int, default=None,
                          metavar="N",
                          help="keep only the newest N runs in the "
                               "results store")
    cache_gc.add_argument("--retain-jobs", type=int, default=None,
                          metavar="N",
                          help="keep only the newest N finished queue "
                               "jobs (and their event feeds)")
    cache_gc.add_argument("--dry-run", action="store_true",
                          help="report what would be removed, touch "
                               "nothing")
    cache_gc.set_defaults(func=_cmd_cache_gc)

    serve = sub.add_parser(
        "serve",
        help="run the persistent analysis daemon: durable job queue, "
             "warm worker pool, REST/JSON API",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8649,
                       help="TCP port (0 picks a free one)")
    serve.add_argument("--db", default="dtaint.sqlite",
                       help="sqlite results + queue store")
    serve.add_argument("--workers", type=int, default=2,
                       help="warm analysis worker processes")
    serve.add_argument("--cache-dir", default=".dtaint-cache",
                       help="content-addressed summary/report store")
    serve.add_argument("--no-cache", action="store_true",
                       help="disable the summary/report caches")
    serve.add_argument("--incremental", action="store_true",
                       help="layer the cross-binary fleet index over "
                            "the per-binary caches")
    serve.add_argument("--timeout", type=float, default=0.0,
                       help="per-job wall-clock budget in seconds "
                            "(0 = unlimited)")
    serve.add_argument("--retries", type=int, default=1,
                       help="extra attempts after a crash/timeout")
    serve.add_argument("--scale", type=float, default=0.25,
                       help="default profile build scale for "
                            "submissions that omit one")
    serve.add_argument("--telemetry",
                       help="also append the event stream to this "
                            "JSONL file")
    serve.add_argument("--shards", default="0", metavar="auto|N",
                       help="default shard count for submissions that "
                            "omit one ('auto' sizes from --workers; "
                            "0 = unsharded)")
    serve.add_argument("--max-memory-mb", type=int, default=0,
                       help="per-worker RLIMIT_AS in MiB; exhaustion "
                            "degrades to a typed ResourceExhausted "
                            "(0 = ungoverned)")
    serve.add_argument("--max-cpu-seconds", type=int, default=0,
                       help="per-worker RLIMIT_CPU soft limit; a spent "
                            "budget recycles the worker (0 = off)")
    serve.add_argument("--max-file-mb", type=int, default=0,
                       help="per-worker RLIMIT_FSIZE in MiB (0 = off)")
    serve.add_argument("--heartbeat", type=float, default=0.0,
                       help="worker heartbeat interval in seconds; "
                            "silent workers are reaped SIGTERM→SIGKILL "
                            "(0 = off)")
    serve.add_argument("--max-queue-depth", type=int, default=0,
                       help="pending+running backlog beyond which "
                            "submissions get HTTP 429 + Retry-After "
                            "(0 = unbounded)")
    serve.add_argument("--max-attempts", type=int, default=5,
                       help="cross-restart retry budget before a job "
                            "dead-letters")
    serve.add_argument("--crash-threshold", type=int, default=3,
                       help="process-killing failures per image before "
                            "its fingerprint is quarantined")
    serve.add_argument("--drain-timeout", type=float, default=60.0,
                       help="seconds to wait for the in-flight batch "
                            "on SIGTERM/SIGINT")
    serve.add_argument("--allow-shutdown", action="store_true",
                       help="enable POST /api/v1/shutdown (CI smoke)")
    serve.add_argument("--verbose", action="store_true",
                       help="log each request to stderr")
    add_alias_engine_option(serve)
    serve.set_defaults(func=_cmd_serve)

    client = sub.add_parser(
        "client",
        help="talk to a running 'dtaint serve' daemon",
    )
    client.add_argument("--url", default="http://127.0.0.1:8649",
                        help="daemon base URL")
    client.add_argument("--http-timeout", type=float, default=30.0)
    client_sub = client.add_subparsers(dest="client_command",
                                       required=True)
    c_submit = client_sub.add_parser("submit", help="submit a job")
    c_submit.add_argument("target",
                          help="profile key, or ELF path with --elf")
    c_submit.add_argument("--elf", action="store_true",
                          help="treat TARGET as an ELF path on the "
                               "daemon's host")
    c_submit.add_argument("--scale", type=float, default=None)
    c_submit.add_argument("--modules", nargs="*",
                          help="function-name prefixes to analyse")
    c_submit.add_argument("--priority", type=int, default=0,
                          help="higher runs sooner")
    c_submit.add_argument("--wait", action="store_true",
                          help="block until the job finishes")
    c_submit.add_argument("--wait-timeout", type=float, default=600.0)
    c_submit.add_argument("--alias-engine", choices=("dtaint", "sse"),
                          default="",
                          help="alias engine for this submission "
                               "(default: the daemon's)")
    for name, extra in (("status", "show a job's queue row"),
                        ("wait", "block until a job finishes"),
                        ("findings", "fetch canonical findings"),
                        ("events", "print the job's progress stream"),
                        ("cancel", "cancel a job")):
        c = client_sub.add_parser(name, help=extra)
        c.add_argument("job_id", type=int)
        if name == "wait":
            c.add_argument("--wait-timeout", type=float, default=600.0)
        if name == "events":
            c.add_argument("--after", type=int, default=0,
                           help="resume after this event_id")
    client_sub.add_parser("stats", help="queue + store statistics")
    client_sub.add_parser("readyz", help="readiness probe (exit 1 "
                                         "while draining)")
    client_sub.add_parser("deadletter",
                          help="list dead-lettered jobs + breaker info")
    c_retry = client_sub.add_parser(
        "retry", help="requeue a dead-lettered job with a fresh budget"
    )
    c_retry.add_argument("job_id", type=int)
    client_sub.add_parser("quarantine",
                          help="show the per-image circuit breaker")
    c_qreset = client_sub.add_parser(
        "quarantine-reset", help="clear one image's circuit breaker"
    )
    c_qreset.add_argument("dedup_key")
    client_sub.add_parser("shutdown", help="stop the daemon (needs "
                                           "--allow-shutdown)")
    client.set_defaults(func=_cmd_client)

    results = sub.add_parser(
        "results",
        help="results-store maintenance (migrate, export)",
    )
    results_sub = results.add_subparsers(dest="results_command",
                                         required=True)
    r_migrate = results_sub.add_parser(
        "migrate",
        help="import a JSON --out directory into the sqlite store "
             "(lossless)",
    )
    r_migrate.add_argument("out_dir", help="previous --out directory")
    r_migrate.add_argument("--db", default="dtaint.sqlite")
    r_migrate.set_defaults(func=_cmd_results_migrate)
    r_export = results_sub.add_parser(
        "export",
        help="write a stored run back out as the JSON directory layout",
    )
    r_export.add_argument("out_dir", help="destination directory")
    r_export.add_argument("--db", default="dtaint.sqlite")
    r_export.add_argument("--run", type=int, default=None,
                          help="run id (default: latest)")
    r_export.set_defaults(func=_cmd_results_export)

    diffcheck = sub.add_parser(
        "diffcheck",
        help="differential sweep: static detector vs concrete-execution "
             "oracle vs top-down baseline on seeded labeled programs",
    )
    diffcheck.add_argument("--seed", type=int, default=0,
                           help="sweep seed (same seed, same programs)")
    diffcheck.add_argument("--count", type=int, default=20,
                           help="number of generated programs")
    diffcheck.add_argument("--arch", action="append",
                           choices=["arm", "mips"],
                           help="restrict generation to an architecture "
                                "(repeatable; default both)")
    diffcheck.add_argument("--no-baseline", action="store_true",
                           help="skip the top-down baseline judge")
    diffcheck.add_argument("--no-shrink", action="store_true",
                           help="attach full programs as reproducers "
                                "instead of shrinking them")
    diffcheck.add_argument("--json", action="store_true",
                           help="emit the triage report as JSON")
    diffcheck.add_argument("--out",
                           help="directory for diffcheck.json")
    diffcheck.add_argument("--telemetry",
                           help="JSONL event log path (default: "
                                "<out>/telemetry.jsonl when --out is set)")
    diffcheck.add_argument("--fail-on-any-divergence", action="store_true",
                           help="exit %d on any divergence, not just "
                                "unexplained static false negatives"
                                % EXIT_FINDINGS)
    add_alias_engine_option(diffcheck)
    diffcheck.set_defaults(func=_cmd_diffcheck)

    alias_cmp = sub.add_parser(
        "alias-compare",
        help="run every alias engine over the labeled corpora and "
             "report per-engine precision/recall/runtime",
    )
    alias_cmp.add_argument("--seed", type=int, default=1,
                           help="generator seed for the labeled programs")
    alias_cmp.add_argument("--count", type=int, default=20,
                           help="number of generated programs")
    alias_cmp.add_argument("--arch", action="append",
                           choices=["arm", "mips"],
                           help="restrict generation to an architecture "
                                "(repeatable; default both)")
    alias_cmp.add_argument("--scale", type=float, default=0.1,
                           help="vendor-corpus build scale (0.1 matches "
                                "the committed golden corpus; the "
                                "dtaint-engine golden identity gate only "
                                "runs at 0.1)")
    alias_cmp.add_argument("--no-vendor", action="store_true",
                           help="skip the vendor-corpus leg (labeled "
                                "programs + fixtures only)")
    alias_cmp.add_argument("--json", action="store_true",
                           help="emit the comparison document as JSON")
    alias_cmp.add_argument("--out",
                           help="directory for alias_compare.json")
    alias_cmp.set_defaults(func=_cmd_alias_compare)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
