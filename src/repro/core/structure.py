"""Data-structure layout and similarity (paper §III-D, Formula 2).

A structure is represented by 3-tuples ``(b, o, t)``: base address,
constant field offset, and field type.  A multi-layer structure is the
collection of field sets grouped by base address, all sharing a root
pointer.  Two structures are similar when one's base set embeds into
the other's and fields at the same offset under the same base agree in
type; their similarity is the sum of Jaccard indices over aligned
bases.  The best-scoring candidate resolves each indirect call.
"""

from dataclasses import dataclass, field

from repro.core.types import UNKNOWN, infer_types, root_pointer
from repro.profiling import PROFILER
from repro.symexec.value import (
    SymDeref,
    SymVar,
    _sort_key,
    base_offset,
    pretty,
    substitute,
    walk,
)

ROOT = SymVar("$root")


@dataclass
class StructLayout:
    """Fields of one object, grouped by (normalised) base address.

    ``fields`` maps a base expression — rewritten so the root pointer
    is the placeholder ``$root`` — to a set of ``(offset, type)``
    pairs.
    """

    root: object
    fields: dict = field(default_factory=dict)
    _bases: object = field(default=None, repr=False, compare=False)
    _signature: object = field(default=None, repr=False, compare=False)

    def add(self, base, offset, type_):
        self.fields.setdefault(base, set()).add((offset, type_))
        self._bases = None
        self._signature = None

    @property
    def bases(self):
        if self._bases is None:
            self._bases = frozenset(self.fields)
        return self._bases

    def signature(self):
        """Canonical, hashable identity of the layout's content.

        Bases are interned expressions (identity-hashable), field sets
        become frozensets, and entries are ordered canonically — two
        layouts with equal content share one signature, which keys the
        pairwise similarity memo.
        """
        if self._signature is None:
            self._signature = tuple(sorted(
                ((base, frozenset(fields))
                 for base, fields in self.fields.items()),
                key=lambda entry: _sort_key(entry[0]),
            ))
        return self._signature

    @property
    def field_count(self):
        return sum(len(fields) for fields in self.fields.values())

    def describe(self):
        return {
            pretty(base): sorted(fields)
            for base, fields in self.fields.items()
        }


def _field_type(deref_node, types):
    inferred = types.type_of(deref_node)
    if inferred != UNKNOWN:
        return inferred
    # Fall back to the access width: pointer-sized loads may be
    # pointers, narrower ones are data.
    return "word" if deref_node.size == 4 else "byte"


def extract_layouts(summary, types=None):
    """Collect per-root structure layouts from a function summary.

    Every ``deref(base + offset)`` observed anywhere in the summary is
    a field access; bases are normalised by replacing the root pointer
    with ``$root`` so layouts of different functions are comparable.
    """
    if types is None:
        types = infer_types(summary)
    layouts = {}

    def visit(expr):
        for node in walk(expr):
            if not isinstance(node, SymDeref):
                continue
            view = base_offset(node.addr)
            if view is None:
                continue
            base, offset = view
            if base is None:
                continue
            root = root_pointer(node)
            if root is None:
                continue
            layout = layouts.get(root)
            if layout is None:
                layout = StructLayout(root=root)
                layouts[root] = layout
            normalised_base = substitute(base, {root: ROOT})
            # Pointer evidence: a field used as a deref base is itself a
            # pointer-typed field of the parent.
            layout.add(normalised_base, offset, _field_type(node, types))

    for pair in summary.def_pairs:
        visit(pair.dest)
        visit(pair.value)
    for use in summary.uses:
        visit(use.var)
    for call in summary.callsites:
        for arg in call.args:
            visit(arg)
    for constraint in summary.constraints:
        visit(constraint.expr)
    return layouts


_SIMILARITY_MEMO = {}  # (signature, signature) -> score


def similarity(a, b):
    """Formula 2: sum of Jaccard indices over aligned base addresses.

    Returns 0.0 when the base-containment or field-type compatibility
    rules fail.  Scores are memoized on the layouts' canonical
    signatures, so the candidate × callsite matrix in indirect-call
    resolution computes each distinct pairing once.
    """
    if a is None or b is None:
        return 0.0
    PROFILER.count("similarity_comparisons")
    key = (a.signature(), b.signature())
    cached = _SIMILARITY_MEMO.get(key)
    if cached is None:
        cached = _similarity_uncached(a, b)
        _SIMILARITY_MEMO[key] = cached
    else:
        PROFILER.count("similarity_memo_hits")
    return cached


def _similarity_uncached(a, b):
    bases_a, bases_b = a.bases, b.bases
    if not bases_a or not bases_b:
        return 0.0
    if not (bases_a <= bases_b or bases_b <= bases_a):
        return 0.0
    score = 0.0
    for base in sorted(bases_a & bases_b, key=_sort_key):
        fields_a, fields_b = a.fields[base], b.fields[base]
        # Same offset at the same base must have the same type.
        offsets_a = dict(fields_a)
        for offset, type_b in fields_b:
            type_a = offsets_a.get(offset)
            if type_a is not None and not _types_compatible(type_a, type_b):
                return 0.0
        union = fields_a | fields_b
        if union:
            score += len(fields_a & fields_b) / len(union)
    return score


def _types_compatible(a, b):
    if a == b:
        return True
    # "word" is an unknown 4-byte access: compatible with any
    # pointer/int view of the same slot.
    vague = {"word", UNKNOWN}
    if a in vague or b in vague:
        return True
    pointerish = {"ptr", "char*"}
    return a in pointerish and b in pointerish


def address_taken_functions(binary, summaries=None):
    """Local functions whose address escapes into data.

    Candidates for indirect-call resolution: a function can only be
    called through a pointer if its address was *taken* — stored in a
    data section (function-pointer tables, handler slots) or written
    to memory as a constant.
    """
    from repro.symexec.value import SymConst

    by_addr = {f.addr: f.name for f in binary.local_functions}
    taken = set()
    endness = "big" if binary.arch.is_big_endian else "little"
    for _name, (_base, data) in _data_sections(binary):
        for offset in range(0, len(data) - 3, 4):
            word = int.from_bytes(data[offset:offset + 4], endness)
            if word in by_addr:
                taken.add(by_addr[word])
    if summaries:
        for summary in summaries.values():
            for pair in summary.def_pairs:
                value = pair.value
                if isinstance(value, SymConst) and value.value in by_addr:
                    taken.add(by_addr[value.value])
    return taken


def _data_sections(binary):
    """(name, (base, bytes)) for the binary's data sections."""
    elf = binary.elf
    if elf is None:
        return []
    sections = []
    for name in (".data", ".rodata"):
        section = elf.sections.get(name)
        if section is not None and section.size:
            sections.append(
                (name, (section.addr, elf.section_bytes(name)))
            )
    return sections


@dataclass
class IndirectResolution:
    caller: str
    callsite_addr: int
    callee: str
    score: float


def resolve_indirect_calls(summaries, call_graph, candidates=None,
                           min_score=0.0, layouts=None):
    """Resolve indirect callsites by layout similarity.

    ``candidates`` restricts the callee pool (e.g. to address-taken
    functions); by default every analysed local function with a
    parameter layout is considered.  The caller-side layout is the one
    rooted at the callsite's first argument; the callee-side layout is
    the one rooted at its ``arg0``.  The best strictly-positive score
    wins (paper: "establish data dependencies of two data structures
    with the highest similarity").  ``layouts`` optionally supplies
    precomputed per-function layout maps (the shard merge path);
    missing functions are extracted here as usual.
    """
    with PROFILER.phase("similarity"):
        return _resolve_indirect_calls(summaries, call_graph, candidates,
                                       min_score, layouts)


def _resolve_indirect_calls(summaries, call_graph, candidates, min_score,
                            precomputed=None):
    precomputed = precomputed or {}
    layouts = {
        name: (precomputed[name] if name in precomputed
               else extract_layouts(summary))
        for name, summary in summaries.items()
    }
    arg0 = SymVar("arg0")
    if candidates is None:
        candidates = [
            name for name, function_layouts in layouts.items()
            if arg0 in function_layouts
        ]

    resolutions = []
    for caller_name, callsite in list(call_graph.indirect_sites):
        caller_summary = summaries.get(caller_name)
        if caller_summary is None:
            continue
        info = _callsite_summary(caller_summary, callsite.addr)
        if info is None or not info.args:
            continue
        caller_root = root_pointer(info.args[0])
        if caller_root is None:
            caller_root = info.args[0]
        caller_layout = layouts.get(caller_name, {}).get(caller_root)
        best = None
        for callee_name in candidates:
            if callee_name == caller_name:
                continue
            callee_layout = layouts.get(callee_name, {}).get(arg0)
            score = similarity(caller_layout, callee_layout)
            if score <= min_score:
                continue
            if best is None or score > best.score:
                best = IndirectResolution(
                    caller=caller_name, callsite_addr=callsite.addr,
                    callee=callee_name, score=score,
                )
        if best is not None:
            call_graph.add_indirect_edge(
                caller_name, best.callee, callsite, best.score
            )
            callsite.target_name = best.callee
            info.target = best.callee
            resolutions.append(best)
    return resolutions


def _callsite_summary(summary, addr):
    for call in summary.callsites:
        if call.addr == addr:
            return call
    return None
