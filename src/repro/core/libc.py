"""Library function models: Table I sources and sinks plus signatures.

Each model describes how a libc call moves data: which argument
objects it fills with attacker-controlled bytes (sources), which
arguments are dangerous when tainted (sinks), how data propagates
between arguments (copies), and argument types used by the type
inferencer.
"""

from dataclasses import dataclass, field

PTR = "ptr"
CHAR_PTR = "char*"
INT = "int"

BO = "buffer-overflow"
CMDI = "command-injection"


@dataclass(frozen=True)
class LibcModel:
    """Behavioural summary of one library function."""

    name: str
    arg_types: tuple = ()
    ret_type: str = INT
    # Indices of pointer args whose pointees become tainted (source).
    taints_args: tuple = ()
    # The returned pointer's pointee is tainted (source), e.g. getenv.
    taints_ret: bool = False
    # The integer return value is attacker-influenced (e.g. recv's
    # byte count).
    ret_attacker_len: bool = False
    # (dst_index, src_index) propagation pairs (copies).
    copies: tuple = ()
    # Sink classification: (vuln_kind, dangerous_arg_indices).
    sink: tuple = None
    # Allocation returning a fresh heap object.
    allocates: bool = False
    # Format-string argument index (sprintf/sscanf), if any.
    fmt_index: int = None
    variadic: bool = False


def _m(**kwargs):
    return LibcModel(**kwargs)


# Table I — input sources.
SOURCES = {
    "read": _m(
        name="read", arg_types=(INT, PTR, INT), taints_args=(1,),
        ret_attacker_len=True,
    ),
    "recv": _m(
        name="recv", arg_types=(INT, PTR, INT, INT), taints_args=(1,),
        ret_attacker_len=True,
    ),
    "recvfrom": _m(
        name="recvfrom", arg_types=(INT, PTR, INT, INT, PTR, PTR),
        taints_args=(1,), ret_attacker_len=True,
    ),
    "recvmsg": _m(
        name="recvmsg", arg_types=(INT, PTR, INT), taints_args=(1,),
        ret_attacker_len=True,
    ),
    "getenv": _m(
        name="getenv", arg_types=(CHAR_PTR,), ret_type=CHAR_PTR,
        taints_ret=True,
    ),
    "fgets": _m(
        name="fgets", arg_types=(CHAR_PTR, INT, PTR), ret_type=CHAR_PTR,
        taints_args=(0,),
    ),
    "websGetVar": _m(
        name="websGetVar", arg_types=(PTR, CHAR_PTR, CHAR_PTR),
        ret_type=CHAR_PTR, taints_ret=True,
    ),
    "find_var": _m(
        name="find_var", arg_types=(PTR, CHAR_PTR), ret_type=CHAR_PTR,
        taints_ret=True,
    ),
    # EDB-ID:43055 names this helper find_val; keep both spellings.
    "find_val": _m(
        name="find_val", arg_types=(PTR, CHAR_PTR), ret_type=CHAR_PTR,
        taints_ret=True,
    ),
}

# Table I — sensitive sinks (the "loop" sink is detected structurally).
SINKS = {
    "strcpy": _m(
        name="strcpy", arg_types=(CHAR_PTR, CHAR_PTR), ret_type=CHAR_PTR,
        copies=((0, 1),), sink=(BO, (1,)),
    ),
    # For the bounded copies the dangerous variable is the *length*
    # ("insufficient validation of length fields passed to copy
    # operations"); a tainted source with a checked length is safe.
    "strncpy": _m(
        name="strncpy", arg_types=(CHAR_PTR, CHAR_PTR, INT),
        ret_type=CHAR_PTR, copies=((0, 1),), sink=(BO, (2,)),
    ),
    "sprintf": _m(
        name="sprintf", arg_types=(CHAR_PTR, CHAR_PTR), ret_type=INT,
        copies=((0, 2), (0, 3), (0, 4)), sink=(BO, (2, 3, 4)),
        fmt_index=1, variadic=True,
    ),
    "memcpy": _m(
        name="memcpy", arg_types=(PTR, PTR, INT), ret_type=PTR,
        copies=((0, 1),), sink=(BO, (2,)),
    ),
    "strcat": _m(
        name="strcat", arg_types=(CHAR_PTR, CHAR_PTR), ret_type=CHAR_PTR,
        copies=((0, 1),), sink=(BO, (1,)),
    ),
    "sscanf": _m(
        name="sscanf", arg_types=(CHAR_PTR, CHAR_PTR), ret_type=INT,
        copies=((2, 0), (3, 0), (4, 0)), sink=(BO, (0,)),
        fmt_index=1, variadic=True,
    ),
    "system": _m(
        name="system", arg_types=(CHAR_PTR,), sink=(CMDI, (0,)),
    ),
    "popen": _m(
        name="popen", arg_types=(CHAR_PTR, CHAR_PTR), ret_type=PTR,
        sink=(CMDI, (0,)),
    ),
}

# Other modelled helpers (propagation / allocation / checking).
HELPERS = {
    "malloc": _m(name="malloc", arg_types=(INT,), ret_type=PTR, allocates=True),
    "calloc": _m(name="calloc", arg_types=(INT, INT), ret_type=PTR,
                 allocates=True),
    "strdup": _m(name="strdup", arg_types=(CHAR_PTR,), ret_type=CHAR_PTR,
                 copies=((-1, 0),), allocates=True),
    "strlen": _m(name="strlen", arg_types=(CHAR_PTR,), ret_type=INT),
    "strchr": _m(name="strchr", arg_types=(CHAR_PTR, INT), ret_type=CHAR_PTR),
    "strstr": _m(name="strstr", arg_types=(CHAR_PTR, CHAR_PTR),
                 ret_type=CHAR_PTR),
    "strcmp": _m(name="strcmp", arg_types=(CHAR_PTR, CHAR_PTR), ret_type=INT),
    "strncmp": _m(name="strncmp", arg_types=(CHAR_PTR, CHAR_PTR, INT),
                  ret_type=INT),
    "atoi": _m(name="atoi", arg_types=(CHAR_PTR,), ret_type=INT),
    "free": _m(name="free", arg_types=(PTR,)),
    "memset": _m(name="memset", arg_types=(PTR, INT, INT), ret_type=PTR),
    "snprintf": _m(name="snprintf", arg_types=(CHAR_PTR, INT, CHAR_PTR),
                   ret_type=INT, copies=((0, 3), (0, 4)), fmt_index=2,
                   variadic=True),
    "printf": _m(name="printf", arg_types=(CHAR_PTR,), variadic=True),
    "socket": _m(name="socket", arg_types=(INT, INT, INT)),
    "close": _m(name="close", arg_types=(INT,)),
    "exit": _m(name="exit", arg_types=(INT,)),
}

ALL_MODELS = {}
ALL_MODELS.update(SOURCES)
ALL_MODELS.update(SINKS)
ALL_MODELS.update(HELPERS)

SOURCE_NAMES = frozenset(SOURCES)
SINK_NAMES = frozenset(SINKS)


def model_for(name):
    """The :class:`LibcModel` for ``name``, or None if unmodelled."""
    return ALL_MODELS.get(name)


def is_source(name):
    return name in SOURCES


def is_sink(name):
    return name in SINKS
