"""Interprocedural data flow (paper §III-E, Algorithm 2).

The call graph is traversed bottom-up (callees before callers) and
every function is analysed exactly once.  At each callsite the
callee's exportable definition pairs — those whose defined variable
roots at a formal argument, at the return value, or at a heap object —
are imported into the caller with formals replaced by the callsite's
actual arguments, and ``ret_{callsite}`` symbols are replaced by the
callee's actual return expression.  Library calls apply their
behavioural models instead: sources introduce :class:`SymTaint`
definitions, copies introduce propagation pairs, allocators return
heap objects identified by the hash of the callsite chain.
"""

import pickle
import zlib
from dataclasses import dataclass, field

from repro import faultinject
from repro.core import libc
from repro.profiling import PROFILER
from repro.core.types import root_pointer
from repro.symexec.state import Constraint, DefPair, FunctionSummary
from repro.symexec.value import (
    SymConst,
    SymDeref,
    SymHeap,
    SymRet,
    SymTaint,
    SymVar,
    mk_deref,
    node_set,
    pretty,
    substitute,
)

_ARG_NAMES = tuple("arg%d" % i for i in range(10))
_MAX_IMPORTED_DEFS = 2000
# The engine records one callsite summary per explored path; only the
# first few distinct (addr, args) variants of each call site are
# imported, or the work compounds with the path count.
MAX_VARIANTS_PER_CALLSITE = 4


@dataclass
class EnrichedSummary:
    """A function summary after callee effects were folded in."""

    base: object                       # the FunctionSummary
    def_pairs: list = field(default_factory=list)
    constraints: list = field(default_factory=list)
    callsites: list = field(default_factory=list)
    ret_value: object = None           # representative return expression
    taint_objects: set = field(default_factory=set)
    # Callsites whose callee degraded: its effects were replaced by the
    # conservative empty summary (no defs, no constraints, no taint).
    degraded_callee_sites: int = 0

    @property
    def name(self):
        return self.base.name


def _actual_mapping(callsite):
    """formal ``argN`` -> actual expression at this callsite."""
    mapping = {}
    for index, value in enumerate(callsite.args):
        if value is not None:
            mapping[SymVar(_ARG_NAMES[index])] = value
    for index, value in enumerate(callsite.stack_args):
        if value is not None and 4 + index < len(_ARG_NAMES):
            mapping[SymVar(_ARG_NAMES[4 + index])] = value
    return mapping


# Expressions are interned (identity == structural equality), so the
# exportability of a destination is a pure function of the object —
# memoised id-keyed, pinning the expression via the stored reference.
_EXPORTABLE_MEMO = {}


def _exportable(dest):
    """Algorithm 2's check: d.rootPtr is an argument/return/heap pointer."""
    memo = _EXPORTABLE_MEMO.get(id(dest))
    if memo is not None and memo[0] is dest:
        return memo[1]
    root = root_pointer(dest)
    if root is None:
        result = False
    elif isinstance(root, (SymRet, SymHeap, SymTaint)):
        result = True
    else:
        result = isinstance(root, SymVar) and root.name in _ARG_NAMES
    _EXPORTABLE_MEMO[id(dest)] = (dest, result)
    return result


def _chain_hash(function_name, callsite_addr):
    """Heap identity: hash of the callsite chain (paper Listing 1).

    CRC32 rather than ``hash()``: heap identities end up in findings
    and in cached summaries, so they must be stable across interpreter
    runs (``hash()`` of a str is randomised per process).
    """
    key = ("%s@0x%x" % (function_name, callsite_addr)).encode("utf-8")
    return zlib.crc32(key) & 0xFFFFFFFF


# ---------------------------------------------------------------------------
# Summary serialization (the unit of reuse for the fleet cache).

SUMMARY_FORMAT_VERSION = 3    # v3: hash-consed SymExpr pickle layout
_SUMMARY_MAGIC = b"DTSUM"


def serialize_summary(summary):
    """Encode a :class:`FunctionSummary` as a self-describing blob.

    The header carries a magic and a format version so stale cache
    entries written by an older summary layout decode to ``None``
    (a cache miss) instead of poisoning an analysis.
    """
    payload = pickle.dumps(summary, protocol=4)
    return _SUMMARY_MAGIC + bytes([SUMMARY_FORMAT_VERSION]) + payload


def deserialize_summary(blob):
    """Decode a blob from :func:`serialize_summary`; ``None`` if stale.

    Any mismatch — wrong magic, old format version, undecodable
    pickle, wrong object type — is reported as ``None`` so callers
    fall back to re-analysis.
    """
    header_len = len(_SUMMARY_MAGIC) + 1
    if not isinstance(blob, bytes) or len(blob) <= header_len:
        return None
    if not blob.startswith(_SUMMARY_MAGIC):
        return None
    if blob[len(_SUMMARY_MAGIC)] != SUMMARY_FORMAT_VERSION:
        return None
    try:
        summary = pickle.loads(blob[header_len:])
    except Exception:
        return None
    if not isinstance(summary, FunctionSummary):
        return None
    return summary


class InterproceduralAnalysis:
    """Bottom-up definition updating over the whole call graph."""

    def __init__(self, summaries, call_graph, max_imported=_MAX_IMPORTED_DEFS,
                 degraded=()):
        self.summaries = summaries
        self.call_graph = call_graph
        self.enriched = {}
        self.max_imported = max_imported
        # Names of functions earlier phases gave up on.  Their callsites
        # get the conservative empty summary (skip the import, count the
        # substitution) instead of poisoning the caller.
        self.degraded = set(degraded)
        # (expr, frozen mapping) -> substituted expr.  The same callee
        # definitions get rebased onto the same actual arguments at
        # many call sites (helpers called with the canonical arg tuple
        # everywhere), so this pure-function memo removes most of the
        # substitution work on hot call graphs.
        self._subst_memo = {}
        # Per-callee views that every callsite import would otherwise
        # recompute: the exportable subset of its def pairs and the
        # constraints that mention a formal argument at all (the only
        # ones a callsite mapping can ever rewrite).  Both are pure
        # functions of the finished callee, which bottom-up order
        # guarantees is immutable by the time any caller imports it.
        self._export_memo = {}
        self._argcon_memo = {}

    def _substitute(self, expr, mapping, key):
        # No key of the mapping occurs in the expression: identity.
        # Same check substitute() opens with, hoisted here so no-op
        # rewrites never pay the memo (or bloat it with x -> x rows).
        if not mapping or node_set(expr).isdisjoint(mapping):
            return expr
        token = (expr, key)
        hit = self._subst_memo.get(token)
        if hit is None:
            hit = substitute(expr, mapping)
            if len(self._subst_memo) > 2_000_000:
                self._subst_memo.clear()
            self._subst_memo[token] = hit
        return hit

    def _export_pairs(self, callee):
        pairs = self._export_memo.get(callee.name)
        if pairs is None:
            pairs = tuple(
                pair for pair in callee.def_pairs
                if _exportable(pair.dest)
            )
            self._export_memo[callee.name] = pairs
        return pairs

    def _arg_constraints(self, callee):
        constraints = self._argcon_memo.get(callee.name)
        if constraints is None:
            args = set(SymVar(name) for name in _ARG_NAMES)
            constraints = tuple(
                constraint for constraint in callee.base.constraints
                if not node_set(constraint.expr).isdisjoint(args)
            )
            self._argcon_memo[callee.name] = constraints
        return constraints

    def run(self, names=None, on_fault=None):
        """Process functions callees-first; every function exactly once.

        With ``on_fault`` set, a fault while enriching one function
        calls ``on_fault(name, summary, exc)`` and drops only that
        function — its callers then see it as a degraded callee.
        """
        order = self.call_graph.bottom_up_order(names)
        with PROFILER.phase("interproc"):
            for name in order:
                summary = self.summaries.get(name)
                if summary is None:
                    continue  # import stub or unanalysed function
                if on_fault is None:
                    faultinject.check("interproc", name)
                    self.enriched[name] = self._enrich(summary)
                    continue
                try:
                    faultinject.check("interproc", name)
                    self.enriched[name] = self._enrich(summary)
                except Exception as exc:
                    self.degraded.add(name)
                    on_fault(name, summary, exc)
        return self.enriched

    # ------------------------------------------------------------------

    def _enrich(self, summary):
        enriched = EnrichedSummary(base=summary)
        enriched.def_pairs = list(summary.def_pairs)
        enriched.constraints = list(summary.constraints)
        enriched.callsites = list(summary.callsites)

        ret_substitutions = {}
        import_budget = [self.max_imported]
        # Imports are applied per *distinct* (address, arguments) pair,
        # capped at MAX_VARIANTS_PER_CALLSITE per call site.
        variant_counts = {}   # callsite addr -> distinct variants imported
        seen_variants = set()  # (addr, args) pairs already imported
        for callsite in summary.callsites:
            target = callsite.target
            if not isinstance(target, str):
                continue  # unresolved indirect call
            variant_key = (callsite.addr, tuple(callsite.args))
            if variant_key in seen_variants:
                continue
            count = variant_counts.get(callsite.addr, 0)
            if count >= MAX_VARIANTS_PER_CALLSITE:
                continue
            seen_variants.add(variant_key)
            variant_counts[callsite.addr] = count + 1
            first_variant = count == 0
            model = libc.model_for(target)
            if model is not None:
                self._apply_libc(enriched, summary, callsite, model,
                                 ret_substitutions)
                continue
            if target in self.degraded:
                # Conservative empty-summary substitution: the callee
                # contributes no defs, constraints or taint, and its
                # return value stays the opaque ``ret_{callsite}``.
                if first_variant:
                    enriched.degraded_callee_sites += 1
                continue
            callee = self.enriched.get(target)
            if callee is None:
                continue  # recursion inside an SCC, or unanalysed callee
            self._import_callee(enriched, callsite, callee,
                                ret_substitutions, import_budget,
                                import_constraints=first_variant)

        if ret_substitutions:
            # ``ret_substitutions`` is final here, so its frozen form
            # is a stable memo key for the closing rewrite pass.
            rkey = frozenset(ret_substitutions.items())
            enriched.def_pairs = [
                DefPair(
                    dest=self._substitute(p.dest, ret_substitutions, rkey),
                    value=self._substitute(p.value, ret_substitutions,
                                           rkey),
                    site=p.site,
                )
                for p in enriched.def_pairs
            ]
            enriched.constraints = [
                Constraint(
                    expr=self._substitute(c.expr, ret_substitutions, rkey),
                    taken=c.taken, site=c.site,
                )
                for c in enriched.constraints
            ]
            for callsite in enriched.callsites:
                callsite.args = [
                    self._substitute(a, ret_substitutions, rkey)
                    if a is not None else None
                    for a in callsite.args
                ]

        enriched.ret_value = self._representative_ret(summary,
                                                      ret_substitutions)
        return enriched

    def _representative_ret(self, summary, ret_substitutions):
        rkey = frozenset(ret_substitutions.items())
        values = []
        for value in summary.ret_values:
            values.append(self._substitute(value, ret_substitutions, rkey))
        distinct = [v for v in dict.fromkeys(values) if v != SymConst(0)]
        if not distinct:
            return SymConst(0)
        # Stable sort by the printable form so the fallback choice does
        # not depend on path-exploration order.
        distinct.sort(key=pretty)
        # Prefer a tainted/heap return among several paths.
        for value in distinct:
            if isinstance(value, (SymTaint, SymHeap)):
                return value
        return distinct[0]

    # ------------------------------------------------------------------

    def _apply_libc(self, enriched, summary, callsite, model,
                    ret_substitutions):
        """Fold a library call's behavioural model into the caller."""
        def arg(index):
            if index < len(callsite.args):
                return callsite.args[index]
            stack_index = index - len(callsite.args)
            if stack_index < len(callsite.stack_args):
                return callsite.stack_args[stack_index]
            return None

        # Sources: the pointee of an argument becomes tainted.
        for index in model.taints_args:
            pointer = arg(index)
            if pointer is None:
                continue
            taint = SymTaint(source=model.name, callsite=callsite.addr)
            enriched.def_pairs.append(
                DefPair(dest=mk_deref(pointer), value=taint,
                        site=callsite.addr)
            )
            enriched.taint_objects.add(pointer)
        # Sources returning a pointer to attacker data.
        if model.taints_ret:
            taint = SymTaint(source=model.name, callsite=callsite.addr)
            ret_sym = SymRet(callsite.addr)
            enriched.def_pairs.append(
                DefPair(dest=mk_deref(ret_sym), value=taint,
                        site=callsite.addr)
            )
            enriched.taint_objects.add(ret_sym)
        # Attacker-influenced byte counts (recv's return).
        if model.ret_attacker_len:
            ret_substitutions[SymRet(callsite.addr)] = SymTaint(
                source="%s:ret" % model.name, callsite=callsite.addr
            )
        # Copies: deref(dst) = deref(src).
        for dst_index, src_index in model.copies:
            dst = SymRet(callsite.addr) if dst_index == -1 else arg(dst_index)
            src = arg(src_index)
            if dst is None or src is None:
                continue
            enriched.def_pairs.append(
                DefPair(dest=mk_deref(dst), value=mk_deref(src),
                        site=callsite.addr)
            )
        # Allocation: unique heap object per callsite chain.
        if model.allocates:
            ret_substitutions[SymRet(callsite.addr)] = SymHeap(
                chain_hash=_chain_hash(summary.name, callsite.addr)
            )

    def _import_callee(self, enriched, callsite, callee, ret_substitutions,
                       budget, import_constraints=True):
        """Algorithm 2: push the callee's exportable defs into the caller.

        ``budget`` is a one-element list holding the caller's remaining
        import allowance — a shared cap across all its callsites, which
        keeps the definition sets from compounding up deep call chains.
        """
        mapping = _actual_mapping(callsite)
        mkey = frozenset(mapping.items())

        # The callee's return expression replaces ret_{callsite}
        # (ReplaceRetVariable) — rebased onto the actual arguments.
        ret_value = callee.ret_value
        if ret_value is not None and not isinstance(ret_value, SymConst):
            rebased = self._substitute(ret_value, mapping, mkey)
            ret_substitutions[SymRet(callsite.addr)] = rebased

        seen = set(
            (p.dest, p.value) for p in enriched.def_pairs[-256:]
        )
        for pair in self._export_pairs(callee):
            if budget[0] <= 0:
                break
            new_dest = self._substitute(pair.dest, mapping, mkey)
            new_value = self._substitute(pair.value, mapping, mkey)
            if (new_dest, new_value) in seen:
                continue
            seen.add((new_dest, new_value))
            enriched.def_pairs.append(
                DefPair(dest=new_dest, value=new_value, site=pair.site)
            )
            budget[0] -= 1

        # Taint objects seen by the callee become visible to the caller
        # under the actual-argument names.
        for pointer in callee.taint_objects:
            enriched.taint_objects.add(
                self._substitute(pointer, mapping, mkey)
            )

        # Constraints the callee applies to its *arguments* travel up
        # (a sanitizing helper counts as sanitization at the caller).
        # Only the callee's own constraints are considered — cascading
        # the transitive closure explodes exponentially on deep call
        # DAGs, and a check more than one level below the sink seldom
        # guards it.
        count = 0
        for constraint in self._arg_constraints(callee):
            if not import_constraints or count >= 32:
                break
            rewritten = self._substitute(constraint.expr, mapping, mkey)
            if rewritten != constraint.expr:
                enriched.constraints.append(
                    Constraint(expr=rewritten, taken=constraint.taken,
                               site=constraint.site)
                )
                count += 1
