"""Sensitive-sink identification (paper Table I).

Library sinks are callsites to the Table I functions; the structural
``loop`` sink is a copy statement inside a natural loop — a store
whose value was loaded in the same loop body (loop buffer copies).
"""

import re
from dataclasses import dataclass

from repro.core import libc
from repro.symexec.value import SymConst, SymDeref, derefs_in

_SPEC_RE = re.compile(r"%[-+ #0]*(\d*)(?:\.\d+)?([diouxXcsp%])")


def parse_format(fmt):
    """Return the conversion letters of a printf/scanf format string."""
    return [m.group(2) for m in _SPEC_RE.finditer(fmt) if m.group(2) != "%"]


@dataclass
class Sink:
    """One sensitive sink occurrence.

    ``kind`` is ``buffer-overflow`` or ``command-injection``;
    ``dangerous`` lists the (index, expression) pairs whose taint makes
    the sink exploitable.  ``callsite`` is None for loop-copy sinks.
    """

    function: str
    addr: int
    name: str                     # library function name or 'loop'
    kind: str
    dangerous: list
    callsite: object = None
    dest: object = None           # destination expression (copy target)


def find_sinks(name, enriched, binary=None):
    """All sinks inside one enriched function summary.

    For format-string sinks the format is read from the binary's
    read-only data when its address is constant, and only the
    arguments bound to ``%s`` conversions are treated as dangerous —
    anything else would chase leftover stack slots that are not
    arguments at all.
    """
    sinks = []
    for callsite in enriched.callsites:
        if not isinstance(callsite.target, str):
            continue
        model = libc.model_for(callsite.target)
        if model is None or model.sink is None:
            continue
        kind, dangerous_indices = model.sink
        dangerous_indices = _refine_variadic(
            model, callsite, dangerous_indices, binary
        )
        dangerous = []
        for index in dangerous_indices:
            value = None
            if index < len(callsite.args):
                value = callsite.args[index]
            elif index - len(callsite.args) < len(callsite.stack_args):
                value = callsite.stack_args[index - len(callsite.args)]
            if value is not None:
                dangerous.append((index, value))
        dest = callsite.args[0] if callsite.args else None
        sinks.append(
            Sink(
                function=name, addr=callsite.addr, name=callsite.target,
                kind=kind, dangerous=dangerous, callsite=callsite, dest=dest,
            )
        )
    sinks.extend(find_loop_copy_sinks(name, enriched))
    return sinks


def _refine_variadic(model, callsite, dangerous_indices, binary):
    """Narrow a variadic sink's dangerous set using its format string."""
    if model.fmt_index is None:
        return dangerous_indices
    fmt = None
    if model.fmt_index < len(callsite.args):
        fmt_arg = callsite.args[model.fmt_index]
        if isinstance(fmt_arg, SymConst) and binary is not None:
            raw = binary.read_cstring(fmt_arg.value)
            if raw is not None:
                fmt = raw.decode("latin-1", "replace")
    if fmt is None:
        # Unknown format: consider only arguments that exist in
        # registers (never speculative stack slots).
        return tuple(
            i for i in dangerous_indices if i < len(callsite.args)
        )
    specs = parse_format(fmt)
    refined = []
    for index in dangerous_indices:
        if model.name == "sscanf" and index == 0:
            refined.append(index)
            continue
        spec_position = index - (model.fmt_index + 1)
        if 0 <= spec_position < len(specs) and specs[spec_position] == "s":
            refined.append(index)
    return tuple(refined)


def find_loop_copy_sinks(name, enriched):
    """Detect Table I's ``loop`` sink: copy statements in a loop.

    A byte-sized loop store whose stored value is a byte-sized memory
    load is a copy-loop candidate (the strcpy-by-hand shape); wider
    stores are register spills or counters, not buffer copies.
    """
    sinks = []
    seen_sites = set()
    for site, dest, value in enriched.base.loop_stores:
        if site in seen_sites:
            continue
        if not (isinstance(dest, SymDeref) and dest.size == 1):
            continue
        loads = [
            d for d in derefs_in(value)
            if isinstance(d, SymDeref) and d.size == 1
        ]
        if not loads:
            continue
        seen_sites.add(site)
        sinks.append(
            Sink(
                function=name, addr=site, name="loop",
                kind=libc.BO,
                dangerous=[(1, load) for load in loads[:1]],
                dest=dest,
            )
        )
    return sinks
