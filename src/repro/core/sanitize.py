"""Sanitization checking (paper §IV).

For every (source, path, sink) tuple two kinds of constraint
expressions decide whether the tainted data was sanitized:

* buffer overflow — an upper-bound comparison (``n < 64`` or
  ``n < y`` for a symbolic ``y``) on the tainted variable anywhere on
  the path means the copy length was validated;
* command injection — a comparison of a byte of the tainted command
  string against ``';'`` (0x3B), or an equivalent ``strchr(cmd, ';')``
  call, means metacharacters were filtered.

A path with no such constraint is reported as a vulnerability.
"""

from repro.core import libc
from repro.core.types import root_pointer
from repro.ir.expr import Ops
from repro.symexec.value import (
    SymConst,
    SymDeref,
    SymOp,
    SymRet,
    SymTaint,
    contains,
    derefs_in,
    taints_in,
    walk,
)

_UPPER_BOUND_OPS = frozenset(
    [Ops.CMP_LT_S, Ops.CMP_LE_S, Ops.CMP_LT_U, Ops.CMP_LE_U]
)
SEMICOLON = 0x3B


def _normalize(expr, taken):
    """Unwrap boolean-test shells around a comparison.

    MIPS lowers ``a < b`` to ``sltu t, a, b; beq t, $zero`` so guards
    arrive as ``CmpEQ(CmpLT_U(a, b), 0)``; peel such wrappers down to
    the underlying comparison, flipping ``taken`` as needed.
    """
    for _ in range(4):
        if not (isinstance(expr, SymOp) and expr.op in (Ops.CMP_EQ, Ops.CMP_NE)
                and len(expr.args) == 2):
            break
        lhs, rhs = expr.args
        inner, const = (lhs, rhs) if isinstance(rhs, SymConst) else (rhs, lhs)
        if not (
            isinstance(const, SymConst)
            and const.value in (0, 1)
            and isinstance(inner, SymOp)
            and inner.op in Ops.COMPARISONS
        ):
            break
        truthy = const.value == 1
        if expr.op == Ops.CMP_EQ:
            taken = taken if truthy else not taken
        else:
            taken = (not taken) if truthy else taken
        expr = inner
    return expr, taken


def _measure_rets(callsites, taint, taint_objects):
    """Returns of ``strlen``-like calls applied to the tainted data.

    ``if (strlen(cookie) < N)`` sanitizes the copy of ``cookie``: the
    length-measuring call's return symbol counts as mentioning the
    taint.
    """
    rets = set()
    for callsite in callsites:
        if callsite.target not in ("strlen", "strnlen"):
            continue
        if callsite.args and _mentions_taint(
            callsite.args[0], taint, taint_objects
        ):
            rets.add(SymRet(callsite.addr))
    return rets


def _mentions_taint(expr, taint, taint_objects, extra=()):
    """Does ``expr`` involve the tainted value or its object?"""
    if contains(expr, taint):
        return True
    for ret in extra:
        if contains(expr, ret):
            return True
    for node in walk(expr):
        if isinstance(node, SymTaint) and node.source == taint.source and (
            node.callsite == taint.callsite
        ):
            return True
        # The tainted pointer itself (getenv's return, a filled
        # buffer's address) counts: measuring or comparing it measures
        # the attacker data.
        for pointer in taint_objects:
            if node == pointer:
                return True
    for deref in derefs_in(expr):
        root = root_pointer(deref)
        for pointer in taint_objects:
            if deref.addr == pointer or root == pointer:
                return True
            pointer_root = root_pointer(pointer)
            if pointer_root is not None and root == pointer_root:
                return True
    return False


def _is_upper_bound(expr, taken, taint, taint_objects, extra=()):
    """``taint < bound`` taken, or ``bound <= taint`` not taken."""
    if not isinstance(expr, SymOp) or expr.op not in _UPPER_BOUND_OPS:
        return False
    lhs, rhs = expr.args
    lhs_tainted = _mentions_taint(lhs, taint, taint_objects, extra)
    rhs_tainted = _mentions_taint(rhs, taint, taint_objects, extra)
    if lhs_tainted and not isinstance(rhs, SymTaint):
        # taint < bound: sanitizes when the branch was taken.
        return taken
    if rhs_tainted and not isinstance(lhs, SymTaint):
        # bound < taint: the *not taken* side is the safe one.
        return not taken
    return False


def check_buffer_overflow(path, constraints, taint_objects, callsites=()):
    """True when the path carries a length check on the tainted value.

    ``constraints`` is the combined constraint list of the sink's
    calling context and the functions along the path.
    """
    taint = path.source
    measure = _measure_rets(callsites, taint, taint_objects)
    for constraint in constraints:
        expr, taken = _normalize(constraint.expr, constraint.taken)
        if _is_upper_bound(expr, taken, taint, taint_objects, measure):
            return True
    return False


def check_loop_copy(path, constraints, taint_objects):
    """Bound check for structural loop-copy sinks.

    A hand-rolled copy loop is sanitized when its exit is bounded by an
    index comparison against a constant (``i < 63``) — the induction
    counter is not itself tainted, so the bound is recognised on any
    non-constant, non-byte value.
    """
    for constraint in constraints:
        expr, taken = _normalize(constraint.expr, constraint.taken)
        if not isinstance(expr, SymOp) or expr.op not in _UPPER_BOUND_OPS:
            continue
        lhs, rhs = expr.args
        if isinstance(lhs, SymConst) and isinstance(rhs, SymConst):
            continue
        # ``x < bound`` taken, or ``bound <= x`` not taken — the bound
        # may be a constant (index limit) or symbolic (a dst-pointer
        # limit like ``while (dst < end)``).
        if not isinstance(lhs, SymConst) and taken:
            return True
        if not isinstance(rhs, SymConst) and not taken:
            return True
    return False


def _compares_semicolon(expr, taint, taint_objects):
    if not isinstance(expr, SymOp) or expr.op not in (
        Ops.CMP_EQ, Ops.CMP_NE
    ):
        return False
    lhs, rhs = expr.args
    for value, other in ((lhs, rhs), (rhs, lhs)):
        if isinstance(other, SymConst) and other.value == SEMICOLON:
            if _mentions_taint(value, taint, taint_objects):
                return True
    return False


def check_command_injection(path, constraints, taint_objects,
                            callsites=()):
    """True when the command string was checked for ';'."""
    taint = path.source
    for constraint in constraints:
        if _compares_semicolon(constraint.expr, taint, taint_objects):
            return True
    # strchr(cmd, ';') followed by a branch on its result.
    strchr_rets = set()
    for callsite in callsites:
        if callsite.target != "strchr" or len(callsite.args) < 2:
            continue
        needle = callsite.args[1]
        if not (isinstance(needle, SymConst) and needle.value == SEMICOLON):
            continue
        if _mentions_taint(callsite.args[0], taint, taint_objects):
            strchr_rets.add(SymRet(callsite.addr))
    if strchr_rets:
        for constraint in constraints:
            for ret in strchr_rets:
                if contains(constraint.expr, ret):
                    return True
    return False


def is_sanitized(path, enriched_chain, taint_objects, extra_constraints=()):
    """Decide sanitization for one taint path.

    ``enriched_chain`` lists the enriched summaries whose constraints
    guard the path (at minimum the sink's function);
    ``extra_constraints`` carries rebased callee-side checks attached
    to forwarded sinks.
    """
    constraints = list(extra_constraints)
    callsites = []
    for enriched in enriched_chain:
        constraints.extend(enriched.constraints)
        callsites.extend(enriched.callsites)
    if path.sink.callsite is not None:
        constraints = list(path.sink.callsite.constraints) + constraints
    if path.sink.kind == libc.CMDI:
        return check_command_injection(
            path, constraints, taint_objects, callsites
        )
    if path.sink.name == "loop":
        return check_loop_copy(path, constraints, taint_objects)
    return check_buffer_overflow(path, constraints, taint_objects, callsites)
