"""Findings and the analysis report."""

import time
from dataclasses import dataclass, field

from repro.symexec.value import pretty


@dataclass
class Finding:
    """One (source, path, sink) tuple that lacked sanitization."""

    kind: str                 # 'buffer-overflow' | 'command-injection'
    function: str
    sink_name: str
    sink_addr: int
    source_name: str
    source_addr: int
    expr: str = ""
    hops: int = 0
    sanitized: bool = False
    note: str = ""

    @classmethod
    def from_path(cls, path, sanitized):
        return cls(
            kind=path.sink.kind,
            function=path.function,
            sink_name=path.sink.name,
            sink_addr=path.sink.addr,
            source_name=path.source_name,
            source_addr=path.source_site,
            expr=pretty(path.expr),
            hops=len(path.steps),
            sanitized=sanitized,
        )

    @property
    def key(self):
        """Dedup key: distinct vulnerabilities share a sink location."""
        return (self.kind, self.sink_name, self.sink_addr)

    def describe(self):
        state = "sanitized" if self.sanitized else "VULNERABLE"
        return "[%s] %s: %s@0x%x <- %s@0x%x in %s (%s)" % (
            state, self.kind, self.sink_name, self.sink_addr,
            self.source_name, self.source_addr, self.function, self.expr,
        )


@dataclass
class DegradedFunction:
    """One function the scan gave up on instead of aborting.

    ``phase`` is the pipeline stage that faulted (``cfg``, ``decode``,
    ``lift``, ``symexec``, ``interproc``, ``detect``), ``reason`` the
    fault message, ``error_type`` the exception class.  ``elapsed``
    is run-dependent and excluded from canonical findings documents.
    """

    function: str
    addr: int = 0
    phase: str = ""
    reason: str = ""
    error_type: str = ""
    elapsed_seconds: float = 0.0

    @classmethod
    def from_fault(cls, function, addr, phase, exc, elapsed=0.0):
        return cls(
            function=function,
            addr=addr or 0,
            phase=phase or getattr(exc, "phase", "") or "analysis",
            reason=str(exc),
            error_type=type(exc).__name__,
            elapsed_seconds=elapsed,
        )

    def describe(self):
        return "[degraded] %s@0x%x: %s in %s phase (%s)" % (
            self.function, self.addr, self.error_type, self.phase,
            self.reason,
        )


@dataclass
class Report:
    """Full output of one DTaint run over one binary."""

    binary_name: str = ""
    arch: str = ""
    analyzed_functions: int = 0
    total_functions: int = 0
    block_count: int = 0
    call_graph_edges: int = 0
    sink_count: int = 0
    indirect_resolved: int = 0
    findings: list = field(default_factory=list)
    sanitized_paths: list = field(default_factory=list)
    elapsed_seconds: float = 0.0
    stage_seconds: dict = field(default_factory=dict)
    # Per-phase hot-path profile (repro.profiling snapshot delta):
    # {"seconds": {...}, "counters": {...}} accumulated by this run.
    phase_profile: dict = field(default_factory=dict)
    summary_cache_hits: int = 0
    summary_cache_misses: int = 0
    # Graceful-degradation accounting: functions the scan skipped with
    # a typed reason, summaries cut short by caps or the soft deadline,
    # and callsites where a degraded callee was conservatively stubbed
    # with an empty summary.
    selected_functions: int = 0
    degraded_functions: list = field(default_factory=list)
    truncated_summaries: int = 0
    deadline_truncated: int = 0
    degraded_callee_sites: int = 0

    @property
    def vulnerable_paths(self):
        return [f for f in self.findings if not f.sanitized]

    @property
    def degraded_count(self):
        return len(self.degraded_functions)

    @property
    def coverage(self):
        """The "analyzed 45/48 functions, 3 degraded" accounting."""
        return {
            "analyzed": self.analyzed_functions,
            "selected": self.selected_functions or (
                self.analyzed_functions + self.degraded_count
            ),
            "total": self.total_functions,
            "degraded": self.degraded_count,
            "truncated": self.truncated_summaries,
            "deadline_truncated": self.deadline_truncated,
            "degraded_callee_sites": self.degraded_callee_sites,
        }

    @property
    def vulnerabilities(self):
        """Distinct vulnerable sinks (the paper's "Vulnerability" column)."""
        seen = {}
        for finding in self.vulnerable_paths:
            seen.setdefault(finding.key, finding)
        return list(seen.values())

    def summary_row(self):
        """One Table III row."""
        return {
            "firmware": self.binary_name,
            "analysis_functions": self.analyzed_functions,
            "sinks_count": self.sink_count,
            "execution_time_minutes": round(self.elapsed_seconds / 60.0, 2),
            "vulnerable_paths": len(self.vulnerable_paths),
            "vulnerabilities": len(self.vulnerabilities),
        }

    def to_dict(self):
        """JSON-serialisable form (findings, counters, stage timings)."""
        from dataclasses import asdict

        return {
            "binary": self.binary_name,
            "arch": self.arch,
            "analyzed_functions": self.analyzed_functions,
            "total_functions": self.total_functions,
            "blocks": self.block_count,
            "call_graph_edges": self.call_graph_edges,
            "sinks": self.sink_count,
            "indirect_resolved": self.indirect_resolved,
            "elapsed_seconds": self.elapsed_seconds,
            "stage_seconds": dict(self.stage_seconds),
            "phase_profile": {
                "seconds": dict(self.phase_profile.get("seconds", {})),
                "counters": dict(self.phase_profile.get("counters", {})),
            },
            "summary_cache": {
                "hits": self.summary_cache_hits,
                "misses": self.summary_cache_misses,
            },
            "coverage": self.coverage,
            "degraded_functions": [
                asdict(d) for d in self.degraded_functions
            ],
            "vulnerable_paths": [asdict(f) for f in self.vulnerable_paths],
            "vulnerabilities": [asdict(f) for f in self.vulnerabilities],
            "sanitized_paths": [asdict(f) for f in self.sanitized_paths],
        }

    def save_json(self, path):
        """Write the report to ``path`` as JSON; returns the path."""
        import json

        with open(path, "w") as handle:
            json.dump(self.to_dict(), handle, indent=2)
        return path

    def render(self):
        coverage_note = ""
        if self.degraded_count or self.truncated_summaries:
            parts = []
            if self.degraded_count:
                parts.append("%d degraded" % self.degraded_count)
            if self.truncated_summaries:
                parts.append("%d truncated" % self.truncated_summaries)
            coverage_note = " (%s)" % ", ".join(parts)
        lines = [
            "DTaint report for %s (%s)" % (self.binary_name, self.arch),
            "  functions analysed : %d / %d%s" % (
                self.analyzed_functions, self.total_functions, coverage_note
            ),
            "  basic blocks       : %d" % self.block_count,
            "  call graph edges   : %d" % self.call_graph_edges,
            "  sinks              : %d" % self.sink_count,
            "  indirect resolved  : %d" % self.indirect_resolved,
            "  vulnerable paths   : %d" % len(self.vulnerable_paths),
            "  vulnerabilities    : %d" % len(self.vulnerabilities),
            "  time               : %.2fs" % self.elapsed_seconds,
        ]
        if self.summary_cache_hits or self.summary_cache_misses:
            lines.append(
                "  summary cache      : %d hits / %d misses"
                % (self.summary_cache_hits, self.summary_cache_misses)
            )
        for degraded in self.degraded_functions:
            lines.append("  " + degraded.describe())
        for finding in self.findings:
            lines.append("  " + finding.describe())
        return "\n".join(lines)


class StageTimer:
    """Accumulates wall-clock per pipeline stage."""

    def __init__(self):
        self.stages = {}
        self._start = None
        self._name = None

    def start(self, name):
        self.stop()
        self._name = name
        self._start = time.perf_counter()

    def stop(self):
        if self._name is not None:
            elapsed = time.perf_counter() - self._start
            self.stages[self._name] = self.stages.get(self._name, 0.0) + elapsed
            self._name = None

    @property
    def total(self):
        return sum(self.stages.values())
