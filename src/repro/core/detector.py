"""The end-to-end DTaint pipeline (paper Fig. 4 + §IV).

``DTaint(binary).run()`` executes: function analysis → pointer
aliasing → data-structure similarity (indirect-call resolution) →
bottom-up interprocedural data flow → sink/source path generation →
sanitization constraint checking, and returns a
:class:`~repro.core.report.Report`.
"""

from dataclasses import dataclass, field

from repro.cfg import CFGBuilder, build_call_graph
from repro.core import sinks as sinks_mod
from repro.core.aliasing import alias_replace
from repro.core.interproc import InterproceduralAnalysis, _actual_mapping
from repro.core.paths import PathFinder
from repro.core.report import Finding, Report, StageTimer
from repro.core.sanitize import is_sanitized
from repro.core.structure import resolve_indirect_calls
from repro.core.types import infer_types, root_pointer
from repro.symexec import Constraint, SymbolicEngine
from repro.symexec.value import SymVar, substitute

_FORMALS = frozenset("arg%d" % i for i in range(10))


def _forwardable(expr):
    """An unresolved use is pushed to callers when it roots at a formal."""
    root = root_pointer(expr)
    if isinstance(root, SymVar) and root.name in _FORMALS:
        return True
    from repro.symexec.value import walk

    return any(
        isinstance(node, SymVar) and node.name in _FORMALS
        for node in walk(expr)
    )


@dataclass
class DTaintConfig:
    """Knobs for the pipeline, with ablation switches.

    ``enable_aliasing``, ``enable_structure_similarity`` and
    ``bottom_up`` exist for the design-choice ablation benches; the
    defaults are the paper's configuration.
    """

    max_paths: int = 64
    max_blocks_per_path: int = 256
    max_trace_depth: int = 24
    enable_aliasing: bool = True
    enable_structure_similarity: bool = True
    function_filter: object = None     # callable(name) -> bool, or None
    modules: tuple = ()                # name prefixes to analyse (else all)


class DTaint:
    """Detects taint-style vulnerabilities in one loaded binary."""

    def __init__(self, binary, config=None, name="", summary_cache=None):
        self.binary = binary
        self.config = config or DTaintConfig()
        self.name = name or "binary"
        self.functions = None
        self.summaries = None
        self.enriched = None
        self.call_graph = None
        self.timer = StageTimer()
        # A bound per-function summary store (``get(addr)``/``put(addr,
        # summary)``, hit/miss counters) — the pipeline layer's reuse
        # hook around the bottom-up traversal.  ``None`` disables reuse.
        self.summary_cache = summary_cache

    # ------------------------------------------------------------------

    def _selected_symbols(self):
        symbols = self.binary.local_functions
        config = self.config
        if config.modules:
            symbols = [
                s for s in symbols
                if any(s.name.startswith(prefix) for prefix in config.modules)
            ]
        if config.function_filter is not None:
            symbols = [s for s in symbols if config.function_filter(s.name)]
        return symbols

    def build_cfg(self):
        """Stage 0: CFG recovery over the selected functions."""
        self.timer.start("cfg")
        symbols = self._selected_symbols()
        self.functions = CFGBuilder(self.binary).build_all(symbols)
        self.call_graph = build_call_graph(self.functions)
        self.timer.stop()
        return self.functions

    def analyze_functions(self):
        """Stage 1: static symbolic analysis, one summary per function.

        Summaries are context-independent (the property Algorithm 2's
        bottom-up order relies on), so each one is looked up in the
        bound summary cache first and inserted on a miss; a warm cache
        skips the symbolic-execution hot path entirely.
        """
        if self.functions is None:
            self.build_cfg()
        self.timer.start("ssa")
        engine = SymbolicEngine(
            self.binary,
            max_paths=self.config.max_paths,
            max_blocks_per_path=self.config.max_blocks_per_path,
        )
        cache = self.summary_cache
        self.summaries = {}
        for name, function in self.functions.items():
            if function.is_import:
                continue
            summary = cache.get(function.addr) if cache is not None else None
            if summary is None:
                summary = engine.analyze_function(function)
                if cache is not None:
                    cache.put(function.addr, summary)
            self.summaries[name] = summary
        self.timer.stop()
        return self.summaries

    def run_dataflow(self):
        """Stages 2-4: aliasing, similarity, interprocedural data flow."""
        if self.summaries is None:
            self.analyze_functions()
        self.timer.start("aliasing")
        self._types = {}
        for name, summary in self.summaries.items():
            types = infer_types(summary)
            self._types[name] = types
            if self.config.enable_aliasing:
                alias_replace(summary, types)
        self.timer.stop()

        self.timer.start("structure")
        self.resolutions = []
        if self.config.enable_structure_similarity:
            from repro.core.structure import address_taken_functions

            candidates = address_taken_functions(self.binary, self.summaries)
            self.resolutions = resolve_indirect_calls(
                self.summaries, self.call_graph,
                candidates=sorted(candidates) or None,
            )
        self.timer.stop()

        self.timer.start("ddg")
        analysis = InterproceduralAnalysis(self.summaries, self.call_graph)
        self.enriched = analysis.run()
        if self.config.enable_aliasing:
            # A second alias pass connects imported callee definitions
            # with the caller's local pointer names.
            for name, enriched in self.enriched.items():
                alias_replace(enriched, self._types[name])
        self.timer.stop()
        return self.enriched

    def detect(self):
        """Stage 5: sinks, backward paths, sanitization checks.

        Sinks whose dangerous expression cannot be resolved locally and
        roots at a formal argument are forwarded to callers with
        formals replaced by actuals (Algorithm 2's
        ForwardUndefinedUse), so a sink in one callee connects to a
        source in a sibling callee through their common caller.
        """
        if self.enriched is None:
            self.run_dataflow()
        self.timer.start("detect")
        report = Report(
            binary_name=self.name,
            arch=self.binary.arch.name,
            analyzed_functions=len(self.summaries),
            total_functions=len(self.binary.local_functions),
            block_count=sum(
                f.block_count for f in self.functions.values()
            ),
            call_graph_edges=self.call_graph.edge_count,
            indirect_resolved=len(getattr(self, "resolutions", [])),
        )

        seen = set()
        pending = {}  # function name -> unresolved (sink, expr, idx, chain)
        order = self.call_graph.bottom_up_order(list(self.enriched))
        for name in order:
            enriched = self.enriched.get(name)
            if enriched is None:
                continue
            finder = PathFinder(
                enriched, max_depth=self.config.max_trace_depth
            )
            local_sinks = sinks_mod.find_sinks(name, enriched, self.binary)
            # The engine summarises callsites once per explored path;
            # the sink population counts distinct sink sites.
            report.sink_count += len({s.addr for s in local_sinks})

            candidate_keys = set()
            candidates = []
            for sink in local_sinks:
                for index, expr in sink.dangerous:
                    # The engine summarises a callsite once per path;
                    # identical (sink, expr) pairs need tracing once.
                    key = (sink.addr, index, expr)
                    if key in candidate_keys:
                        continue
                    candidate_keys.add(key)
                    candidates.append((sink, expr, index, (name,), ()))
            variant_counts = {}
            for callsite in enriched.callsites:
                target = callsite.target
                if not isinstance(target, str) or target not in pending:
                    continue
                # Callsites are summarised once per explored path;
                # forward through a few distinct argument variants.
                variant = (callsite.addr, tuple(callsite.args))
                if variant in variant_counts:
                    continue
                count = variant_counts.get(callsite.addr, 0)
                if count >= 4:
                    continue
                variant_counts[variant] = True
                variant_counts[callsite.addr] = count + 1
                mapping = _actual_mapping(callsite)
                for sink, expr, index, chain, carried in pending[target]:
                    rewritten = substitute(expr, mapping)
                    key = (sink.addr, index, rewritten)
                    if key in candidate_keys:
                        continue
                    candidate_keys.add(key)
                    # Constraints from the sink's own function travel
                    # with the forwarded use, rebased onto the actuals,
                    # so a callee-side length check still sanitizes a
                    # path whose taint resolves in the caller.
                    new_carried = tuple(
                        Constraint(
                            expr=substitute(c.expr, mapping),
                            taken=c.taken, site=c.site,
                        )
                        for c in (
                            tuple(self.enriched[target].constraints[:32])
                            + carried
                        )[:64]
                    )
                    candidates.append((sink, rewritten, index,
                                       chain + (name,), new_carried))

            unresolved = []
            for sink, expr, index, chain, carried in candidates:
                paths = finder.trace(sink, expr, index)
                if paths:
                    chain_summaries = [
                        self.enriched[c] for c in chain if c in self.enriched
                    ]
                    for path in paths:
                        sanitized = is_sanitized(
                            path, chain_summaries, finder.taint_objects,
                            extra_constraints=carried,
                        )
                        finding = Finding.from_path(path, sanitized)
                        dedup = (finding.key, finding.source_name,
                                 finding.source_addr, finding.sanitized)
                        if dedup in seen:
                            continue
                        seen.add(dedup)
                        if sanitized:
                            report.sanitized_paths.append(finding)
                        else:
                            report.findings.append(finding)
                elif _forwardable(expr) and len(chain) <= 8:
                    unresolved.append((sink, expr, index, chain, carried))
            if unresolved:
                pending[name] = unresolved[:32]
        self.timer.stop()
        report.stage_seconds = dict(self.timer.stages)
        report.elapsed_seconds = self.timer.total
        if self.summary_cache is not None:
            report.summary_cache_hits = self.summary_cache.hits
            report.summary_cache_misses = self.summary_cache.misses
        return report

    def run(self):
        """Run the full pipeline and return the report."""
        return self.detect()
