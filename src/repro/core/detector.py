"""The end-to-end DTaint pipeline (paper Fig. 4 + §IV).

``DTaint(binary).run()`` executes: function analysis → pointer
aliasing → data-structure similarity (indirect-call resolution) →
bottom-up interprocedural data flow → sink/source path generation →
sanitization constraint checking, and returns a
:class:`~repro.core.report.Report`.
"""

import time
from dataclasses import dataclass, field

from repro import faultinject, profiling
from repro.alias import get_engine
from repro.cfg import CFGBuilder, build_call_graph
from repro.core import sinks as sinks_mod
from repro.core.interproc import (
    MAX_VARIANTS_PER_CALLSITE,
    InterproceduralAnalysis,
    _actual_mapping,
)
from repro.core.paths import PathFinder
from repro.core.report import DegradedFunction, Finding, Report, StageTimer
from repro.core.sanitize import is_sanitized
from repro.core.structure import resolve_indirect_calls
from repro.core.types import infer_types, root_pointer
from repro.symexec import Constraint, SymbolicEngine
from repro.symexec.value import SymVar, substitute

_FORMALS = frozenset("arg%d" % i for i in range(10))


def _forwardable(expr):
    """An unresolved use is pushed to callers when it roots at a formal."""
    root = root_pointer(expr)
    if isinstance(root, SymVar) and root.name in _FORMALS:
        return True
    from repro.symexec.value import walk

    return any(
        isinstance(node, SymVar) and node.name in _FORMALS
        for node in walk(expr)
    )


@dataclass
class DTaintConfig:
    """Knobs for the pipeline, with ablation switches.

    ``enable_aliasing``, ``enable_structure_similarity`` and
    ``bottom_up`` exist for the design-choice ablation benches; the
    defaults are the paper's configuration.
    """

    max_paths: int = 64
    max_blocks_per_path: int = 256
    max_trace_depth: int = 24
    enable_aliasing: bool = True
    enable_structure_similarity: bool = True
    function_filter: object = None     # callable(name) -> bool, or None
    modules: tuple = ()                # name prefixes to analyse (else all)
    # Soft per-function wall-clock budget for symbolic exploration, in
    # seconds (0 disables).  A function that exhausts it yields a
    # ``truncated`` summary instead of stalling the scan.
    deadline_seconds: float = 0.0
    # Which alias engine runs Algorithm 1's role: "dtaint" (the
    # paper's heuristics, byte-identical to the historical pipeline)
    # or "sse" (sparse symbolic-execution aliasing).  Part of the
    # cache fingerprint — see pipeline/cache.py.
    alias_engine: str = "dtaint"


class DTaint:
    """Detects taint-style vulnerabilities in one loaded binary.

    The failure domain of every per-function stage is that one
    function: a decode bug, lift gap, symbolic-engine fault or
    per-function deadline never aborts the scan.  Each such fault is
    recorded as a :class:`~repro.core.report.DegradedFunction` and the
    interprocedural layer substitutes a conservative empty summary at
    the degraded callee's call sites.
    """

    def __init__(self, binary, config=None, name="", summary_cache=None):
        self.binary = binary
        self.config = config or DTaintConfig()
        self.name = name or "binary"
        self.functions = None
        self.summaries = None
        self.enriched = None
        self.call_graph = None
        self.timer = StageTimer()
        # A bound per-function summary store (``get(addr)``/``put(addr,
        # summary)``, hit/miss counters) — the pipeline layer's reuse
        # hook around the bottom-up traversal.  ``None`` disables reuse.
        self.summary_cache = summary_cache
        self.degraded = {}            # function name -> DegradedFunction
        self._selected_count = 0
        # name -> TypeMap, filled by run_dataflow's first alias pass —
        # or pre-installed via attach_prebuilt, which makes that pass
        # a no-op (shard workers already ran it).
        self._types = None
        self._prebuilt_structure = None
        # Per-run phase accounting: the profiler is cumulative per
        # process, so the report carries the delta since construction.
        self._profile_baseline = profiling.PROFILER.snapshot()

    # ------------------------------------------------------------------

    def _degrade(self, name, addr, phase, exc, started=None):
        """Record one function's fault; first fault per function wins."""
        if name in self.degraded:
            return
        if isinstance(exc, MemoryError):
            # Under RLIMIT_AS governance an allocation burst inside one
            # function surfaces as MemoryError; map it into the typed
            # taxonomy so the offending function degrades like any
            # other fault instead of reading as an anonymous crash.
            from repro.errors import ResourceExhausted

            exc = ResourceExhausted(
                "memory limit exhausted during %s" % phase,
                function=name, addr=addr, resource="memory",
            )
        elapsed = time.perf_counter() - started if started else 0.0
        self.degraded[name] = DegradedFunction.from_fault(
            name, addr, phase, exc, elapsed=elapsed
        )

    # ------------------------------------------------------------------

    def _selected_symbols(self):
        symbols = self.binary.local_functions
        config = self.config
        if config.modules:
            symbols = [
                s for s in symbols
                if any(s.name.startswith(prefix) for prefix in config.modules)
            ]
        if config.function_filter is not None:
            symbols = [s for s in symbols if config.function_filter(s.name)]
        return symbols

    def build_cfg(self):
        """Stage 0: CFG recovery over the selected functions.

        A function whose CFG cannot be recovered (undecodable
        instruction, lift gap, run past extent) is degraded and
        skipped; recovery proceeds for every other function.
        """
        self.timer.start("cfg")
        symbols = self._selected_symbols()
        self._selected_count = sum(1 for s in symbols if not s.is_import)

        def on_fault(symbol, exc):
            self._degrade(symbol.name, symbol.addr, "cfg", exc)

        self.functions = CFGBuilder(self.binary).build_all(
            symbols, on_fault=on_fault
        )
        self.call_graph = build_call_graph(self.functions)
        # Duck-typed pipeline hook: an incremental summary cache
        # fingerprints the recovered functions here (it needs the call
        # graph for closure hashes).  Plain bound caches have no such
        # method and pay nothing; repro.core stays pipeline-agnostic.
        bind = getattr(self.summary_cache, "bind_functions", None)
        if bind is not None:
            bind(self.binary, self.functions, self.call_graph)
        self.timer.stop()
        return self.functions

    def attach_prebuilt(self, functions, call_graph, selected_count,
                        degraded=(), summaries=None, types=None,
                        structure=None):
        """Adopt per-function state produced elsewhere (shard merge).

        Installs what ``build_cfg`` + ``analyze_functions`` + the
        first alias pass would have computed — the per-function,
        embarrassingly-parallel part of the pipeline — so the
        remaining inherently-serial stages (indirect-call resolution,
        bottom-up interprocedural enrichment, the second alias pass,
        detection) run exactly as an unsharded scan would.  The empty
        cfg/ssa timer brackets keep ``stage_seconds``'s shape
        identical.  ``structure``, when given, carries the shards'
        precomputed ``layouts`` and summary-sourced ``address_taken``
        contributions for the similarity stage.
        """
        self.timer.start("cfg")
        self.functions = functions
        self.call_graph = call_graph
        self._selected_count = selected_count
        for entry in degraded:
            self.degraded.setdefault(entry.function, entry)
        self.timer.stop()
        self.timer.start("ssa")
        self.summaries = dict(summaries or {})
        self.timer.stop()
        self._types = dict(types or {})
        self._prebuilt_structure = structure
        return self.summaries

    def analyze_functions(self):
        """Stage 1: static symbolic analysis, one summary per function.

        Summaries are context-independent (the property Algorithm 2's
        bottom-up order relies on), so each one is looked up in the
        bound summary cache first and inserted on a miss; a warm cache
        skips the symbolic-execution hot path entirely.
        """
        if self.functions is None:
            self.build_cfg()
        self.timer.start("ssa")
        engine = SymbolicEngine(
            self.binary,
            max_paths=self.config.max_paths,
            max_blocks_per_path=self.config.max_blocks_per_path,
            deadline_seconds=self.config.deadline_seconds,
        )
        cache = self.summary_cache
        self.summaries = {}
        for name, function in self.functions.items():
            if function.is_import:
                continue
            started = time.perf_counter()
            try:
                summary = (
                    cache.get(function.addr) if cache is not None else None
                )
                if summary is None:
                    summary = engine.analyze_function(function)
                    if cache is not None:
                        cache.put(function.addr, summary)
            except Exception as exc:
                self._degrade(name, function.addr, "symexec", exc, started)
                continue
            self.summaries[name] = summary
        self.timer.stop()
        return self.summaries

    def run_dataflow(self):
        """Stages 2-4: aliasing, similarity, interprocedural data flow."""
        if self.summaries is None:
            self.analyze_functions()
        self.timer.start("aliasing")
        alias_engine = get_engine(self.config.alias_engine)
        if self._types is None:
            self._types = {}
            for name, summary in list(self.summaries.items()):
                started = time.perf_counter()
                try:
                    types = infer_types(summary)
                    self._types[name] = types
                    if self.config.enable_aliasing:
                        alias_engine.apply(summary, types)
                except Exception as exc:
                    self._degrade(
                        name, summary.addr, "aliasing", exc, started
                    )
                    del self.summaries[name]
        self.timer.stop()

        self.timer.start("structure")
        self.resolutions = []
        if self.config.enable_structure_similarity:
            from repro.core.structure import address_taken_functions

            # Indirect-call resolution is an image-wide refinement; a
            # fault here costs resolution quality, never the scan.
            try:
                prebuilt = self._prebuilt_structure
                layouts = None
                if prebuilt is not None:
                    # Shards already extracted layouts and the
                    # summary-sourced address-taken contribution; only
                    # the data-section scan remains image-global.
                    candidates = address_taken_functions(self.binary, None)
                    candidates |= set(prebuilt.get("address_taken", ()))
                    layouts = prebuilt.get("layouts")
                else:
                    candidates = address_taken_functions(
                        self.binary, self.summaries
                    )
                self.resolutions = resolve_indirect_calls(
                    self.summaries, self.call_graph,
                    candidates=sorted(candidates) or None,
                    layouts=layouts,
                )
            except Exception:
                self.resolutions = []
        self.timer.stop()

        self.timer.start("ddg")
        analysis = InterproceduralAnalysis(
            self.summaries, self.call_graph, degraded=self.degraded,
        )

        def on_fault(name, summary, exc):
            self._degrade(name, summary.addr, "interproc", exc)
            self.summaries.pop(name, None)

        self.enriched = analysis.run(on_fault=on_fault)
        self._degraded_callee_sites = sum(
            e.degraded_callee_sites for e in self.enriched.values()
        )
        if self.config.enable_aliasing:
            # A second alias pass connects imported callee definitions
            # with the caller's local pointer names.  It is interproc
            # summary application, so bill the walk to the interproc
            # phase — the engine's own time still lands in ``alias``
            # because nested phases account exclusively.
            with profiling.PROFILER.phase("interproc"):
                for name, enriched in list(self.enriched.items()):
                    try:
                        alias_engine.apply(enriched, self._types[name])
                    except Exception as exc:
                        self._degrade(
                            name, enriched.base.addr, "aliasing", exc
                        )
                        del self.enriched[name]
                        self.summaries.pop(name, None)
        self.timer.stop()
        return self.enriched

    def detect(self):
        """Stage 5: sinks, backward paths, sanitization checks.

        Sinks whose dangerous expression cannot be resolved locally and
        roots at a formal argument are forwarded to callers with
        formals replaced by actuals (Algorithm 2's
        ForwardUndefinedUse), so a sink in one callee connects to a
        source in a sibling callee through their common caller.
        """
        if self.enriched is None:
            self.run_dataflow()
        self.timer.start("detect")
        report = Report(
            binary_name=self.name,
            arch=self.binary.arch.name,
            analyzed_functions=len(self.summaries),
            selected_functions=self._selected_count,
            total_functions=len(self.binary.local_functions),
            block_count=sum(
                f.block_count for f in self.functions.values()
            ),
            call_graph_edges=self.call_graph.edge_count,
            indirect_resolved=len(getattr(self, "resolutions", [])),
        )

        seen = set()
        pending = {}  # function name -> unresolved (sink, expr, idx, chain)
        order = self.call_graph.bottom_up_order(list(self.enriched))
        with profiling.PROFILER.phase("detect"):
            for name in order:
                enriched = self.enriched.get(name)
                if enriched is None:
                    continue
                started = time.perf_counter()
                try:
                    self._detect_one(name, enriched, report, seen, pending)
                    profiling.PROFILER.count("detect_functions")
                except Exception as exc:
                    self._degrade(name, enriched.base.addr, "detect", exc,
                                  started)
        self.timer.stop()
        self._finalize(report)
        return report

    def _detect_one(self, name, enriched, report, seen, pending):
        """Sink detection and path tracing for one function."""
        faultinject.check("detect", name)
        finder = PathFinder(
            enriched, max_depth=self.config.max_trace_depth
        )
        local_sinks = sinks_mod.find_sinks(name, enriched, self.binary)
        # The engine summarises callsites once per explored path;
        # the sink population counts distinct sink sites.
        report.sink_count += len({s.addr for s in local_sinks})

        candidate_keys = set()
        candidates = []
        for sink in local_sinks:
            for index, expr in sink.dangerous:
                # The engine summarises a callsite once per path;
                # identical (sink, expr) pairs need tracing once.
                key = (sink.addr, index, expr)
                if key in candidate_keys:
                    continue
                candidate_keys.add(key)
                candidates.append((sink, expr, index, (name,), ()))
        variant_counts = {}   # callsite addr -> distinct variants used
        seen_variants = set()  # (addr, args) pairs already forwarded
        for callsite in enriched.callsites:
            target = callsite.target
            if not isinstance(target, str) or target not in pending:
                continue
            # Callsites are summarised once per explored path;
            # forward through a few distinct argument variants.
            variant = (callsite.addr, tuple(callsite.args))
            if variant in seen_variants:
                continue
            count = variant_counts.get(callsite.addr, 0)
            if count >= MAX_VARIANTS_PER_CALLSITE:
                continue
            seen_variants.add(variant)
            variant_counts[callsite.addr] = count + 1
            mapping = _actual_mapping(callsite)
            for sink, expr, index, chain, carried in pending[target]:
                rewritten = substitute(expr, mapping)
                key = (sink.addr, index, rewritten)
                if key in candidate_keys:
                    continue
                candidate_keys.add(key)
                # Constraints from the sink's own function travel
                # with the forwarded use, rebased onto the actuals,
                # so a callee-side length check still sanitizes a
                # path whose taint resolves in the caller.
                new_carried = tuple(
                    Constraint(
                        expr=substitute(c.expr, mapping),
                        taken=c.taken, site=c.site,
                    )
                    for c in (
                        tuple(self.enriched[target].constraints[:32])
                        + carried
                    )[:64]
                )
                candidates.append((sink, rewritten, index,
                                   chain + (name,), new_carried))

        unresolved = []
        for sink, expr, index, chain, carried in candidates:
            paths = finder.trace(sink, expr, index)
            if paths:
                chain_summaries = [
                    self.enriched[c] for c in chain if c in self.enriched
                ]
                for path in paths:
                    sanitized = is_sanitized(
                        path, chain_summaries, finder.taint_objects,
                        extra_constraints=carried,
                    )
                    finding = Finding.from_path(path, sanitized)
                    dedup = (finding.key, finding.source_name,
                             finding.source_addr, finding.sanitized)
                    if dedup in seen:
                        continue
                    seen.add(dedup)
                    if sanitized:
                        report.sanitized_paths.append(finding)
                    else:
                        report.findings.append(finding)
            elif _forwardable(expr) and len(chain) <= 8:
                unresolved.append((sink, expr, index, chain, carried))
        if unresolved:
            pending[name] = unresolved[:32]

    def _finalize(self, report):
        """Fold the degradation ledger and timings into the report."""
        report.stage_seconds = dict(self.timer.stages)
        report.elapsed_seconds = self.timer.total
        report.phase_profile = profiling.delta(
            self._profile_baseline, profiling.PROFILER.snapshot()
        )
        if self.summary_cache is not None:
            report.summary_cache_hits = self.summary_cache.hits
            report.summary_cache_misses = self.summary_cache.misses
        report.degraded_functions = sorted(
            self.degraded.values(), key=lambda d: (d.addr, d.function)
        )
        report.analyzed_functions = sum(
            1 for name in self.summaries if name not in self.degraded
        )
        live = [
            s for name, s in self.summaries.items()
            if name not in self.degraded
        ]
        report.truncated_summaries = sum(
            1 for s in live if getattr(s, "truncated", False)
        )
        report.deadline_truncated = sum(
            1 for s in live if getattr(s, "deadline_hit", False)
        )
        report.degraded_callee_sites = getattr(
            self, "_degraded_callee_sites", 0
        )

    def run(self):
        """Run the full pipeline and return the report."""
        return self.detect()
