"""Data-type inference (paper §III-B, "Data Type").

Types are inferred two ways, exactly as the paper describes: from
standard library call signatures (``strcpy``'s arguments are
``char*``), and from how machine instructions use values (a ``deref``
base must be a pointer; a value compared against a small constant is
an integer).
"""

from repro.core import libc
from repro.ir.expr import Ops
from repro.symexec.value import (
    SymConst,
    SymDeref,
    SymHeap,
    SymOp,
    SymRet,
    SymVar,
    walk,
)

PTR = libc.PTR
CHAR_PTR = libc.CHAR_PTR
INT = libc.INT
UNKNOWN = "unknown"

_POINTERISH = (PTR, CHAR_PTR)


class TypeMap:
    """Expression -> inferred type, with pointer evidence dominant."""

    def __init__(self):
        self._types = {}

    def observe(self, expr, type_):
        """Record evidence; pointer evidence overrides integer."""
        if type_ == UNKNOWN:
            return
        current = self._types.get(expr)
        if current in _POINTERISH and type_ == INT:
            return  # pointer evidence wins
        if current == CHAR_PTR and type_ == PTR:
            return  # keep the more precise type
        self._types[expr] = type_

    def type_of(self, expr):
        if isinstance(expr, SymConst):
            return INT
        if isinstance(expr, SymHeap):
            return PTR
        return self._types.get(expr, UNKNOWN)

    def is_pointer(self, expr):
        if isinstance(expr, SymHeap):
            return True
        return self._types.get(expr) in _POINTERISH

    def items(self):
        return self._types.items()

    def __len__(self):
        return len(self._types)


def infer_types(summary):
    """Infer a :class:`TypeMap` for one function summary."""
    types = TypeMap()

    def observe_deref_bases(expr):
        for node in walk(expr):
            if isinstance(node, SymDeref):
                base = _base_atom(node.addr)
                if base is not None:
                    types.observe(base, PTR)

    # Rule 1: deref bases are pointers (LDR/STR indirect operands).
    for pair in summary.def_pairs:
        observe_deref_bases(pair.dest)
        observe_deref_bases(pair.value)
    for use in summary.uses:
        observe_deref_bases(use.var)
    for constraint in summary.constraints:
        observe_deref_bases(constraint.expr)

    # Rule 2: comparisons against constants type the operand as int —
    # unless pointer evidence exists (CMP of pointers happens too).
    for constraint in summary.constraints:
        expr = constraint.expr
        if isinstance(expr, SymOp) and expr.op in Ops.COMPARISONS:
            lhs, rhs = expr.args
            if isinstance(rhs, SymConst) and not isinstance(lhs, SymConst):
                types.observe(lhs, INT)
            if isinstance(lhs, SymConst) and not isinstance(rhs, SymConst):
                types.observe(rhs, INT)

    # Rule 3: library call signatures.
    for call in summary.callsites:
        if not isinstance(call.target, str):
            continue
        model = libc.model_for(call.target)
        if model is None:
            continue
        for index, arg_type in enumerate(model.arg_types):
            if index < len(call.args):
                types.observe(call.args[index], arg_type)
                if arg_type in _POINTERISH:
                    observe_deref_bases(call.args[index])
        if model.ret_type in _POINTERISH:
            types.observe(SymRet(call.addr), model.ret_type)

    return types


def _base_atom(addr_expr):
    """The root atom of an address expression, if it has one."""
    from repro.symexec.value import base_offset

    view = base_offset(addr_expr)
    if view is None:
        return None
    base, _offset = view
    if isinstance(base, (SymVar, SymRet, SymDeref, SymHeap)):
        return base
    return None


_ROOT_POINTER_MEMO = {}  # interned expr -> root atom | None


def root_pointer(expr):
    """Follow deref chains to the root object of an address expression.

    ``deref(deref(arg0 + 0x58) + 0xec)`` roots at ``arg0``; used by
    Algorithm 2's exportability check ("d.rootPtr is argument or return
    pointer").  Memoized per interned expression: roots are asked for
    the same layout nodes over and over during structure extraction.
    """
    try:
        return _ROOT_POINTER_MEMO[expr]
    except KeyError:
        pass
    root = _root_pointer_uncached(expr)
    _ROOT_POINTER_MEMO[expr] = root
    return root


def _root_pointer_uncached(expr):
    current = expr
    for _ in range(64):
        if isinstance(current, SymDeref):
            current = current.addr
            continue
        base = _base_atom(current)
        if base is None:
            return current if isinstance(
                current, (SymVar, SymRet, SymHeap)
            ) else None
        if base is current:
            return base
        current = base
    return None
