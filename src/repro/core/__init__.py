"""DTaint's core: data-flow identification and vulnerability detection.

Pipeline (paper Fig. 4):

1. function analysis — :mod:`repro.symexec` summaries per function;
2. pointer aliasing — Algorithm 1 (:mod:`repro.core.aliasing`);
3. data-structure layout similarity — Formula 2
   (:mod:`repro.core.structure`) resolving indirect calls;
4. interprocedural data flow — bottom-up definition updating,
   Algorithm 2 (:mod:`repro.core.interproc`);
5. sink/source identification and backward path generation
   (:mod:`repro.core.sinks`, :mod:`repro.core.paths`);
6. sanitization constraint checking (:mod:`repro.core.sanitize`).

:class:`~repro.core.detector.DTaint` wires the stages together.
"""

from repro.core.detector import DTaint, DTaintConfig
from repro.core.report import Finding, Report

__all__ = ["DTaint", "DTaintConfig", "Finding", "Report"]
