"""PoC validation: confirm findings by concrete execution.

The paper validated DTaint's reports on real devices ("We use real
devices for verifying these vulnerabilities").  Here the same loop is
closed in emulation: the handler containing a finding is *executed* on
the concrete CPU with attacker-controlled input served by the libc
emulation, and the vulnerability is confirmed by its observable effect:

* **command injection** — a ``system``/``popen`` call receives a string
  containing the injected ``;marker``;
* **buffer overflow** — the attacker pattern overwrites the saved
  return address, and the CPU faults (or lands) at an
  attacker-controlled PC (``0x41414141``-style), or tramples the
  canary placed above the handler's frame.

Sanitized handlers run the same input and must *not* exhibit either
effect — validation is a true experiment, not a re-check of the static
result.
"""

from dataclasses import dataclass

from repro.emu import Memory, make_cpu
from repro.emu.libc import LibcEmulator, LibcEnvironment
from repro.errors import EmulationError

ATTACK_BYTE = 0x41
ATTACK_PC_MIN = 0x41000000
ATTACK_PC_MAX = 0x42FFFFFF
CMD_MARKER = b";reboot;"
STACK_TOP = 0x7FFF0000
CANARY = b"\xca\xfe\xba\xbe"


@dataclass
class ValidationResult:
    function: str
    kind: str
    confirmed: bool
    effect: str = ""
    steps: int = 0


def _attacker_env(overflow_length, input_bytes=b""):
    payload = b"A" * overflow_length + CMD_MARKER
    environment = LibcEnvironment(
        input_bytes=input_bytes or (b"A" * overflow_length + b"\x00"),
    )

    class _AttackerDict(dict):
        """Every environment variable resolves to the payload."""

        def get(self, key, default=None):
            return payload

    environment.env = _AttackerDict()
    return environment


def _load(binary):
    memory = Memory(endness=binary.arch.endness)
    for vaddr, data, _x in binary.segments:
        if data:
            memory.write_bytes(vaddr, data)
    memory.write_bytes(STACK_TOP - 0x40000, b"\x00" * 0x40000)
    return memory


def validate_function(binary, function_name, kind, args=(0, 0, 0, 0),
                      overflow_length=4096, max_steps=400_000,
                      input_bytes=b""):
    """Execute ``function_name`` under attack; return the result."""
    memory = _load(binary)
    cpu = make_cpu(binary.arch, memory)
    environment = _attacker_env(overflow_length, input_bytes)
    LibcEmulator(cpu, binary, environment).install()

    symbol = binary.functions[function_name]
    stack_pointer = STACK_TOP - 0x8000
    # A canary above the initial frame: a stack overflow that escapes
    # the local buffer will trample it even if control flow survives.
    memory.write_bytes(stack_pointer, CANARY)

    effect = ""
    confirmed = False
    try:
        cpu.run(symbol.addr, stack_pointer - 8, max_steps=max_steps,
                args=args)
    except EmulationError:
        pc = cpu.pc
        if ATTACK_PC_MIN <= pc <= ATTACK_PC_MAX:
            confirmed = True
            effect = "control flow hijacked: pc=0x%08x" % pc
        else:
            effect = "crashed at pc=0x%08x" % pc

    if not confirmed and kind == "command-injection":
        for api, command in environment.commands:
            if b";" in command:
                confirmed = True
                effect = "%s(%r) executed with injected metacharacter" % (
                    api, command[:64]
                )
                break

    if not confirmed and kind == "buffer-overflow":
        if memory.read_bytes(stack_pointer, 4) != CANARY:
            confirmed = True
            effect = "stack canary overwritten"

    return ValidationResult(
        function=function_name, kind=kind, confirmed=confirmed,
        effect=effect, steps=cpu.steps,
    )


def validate_ground_truth(built, max_steps=400_000):
    """Run validation over a corpus target's planted patterns.

    Returns ``{function_name: ValidationResult}`` for every distinct
    ground-truth function (vulnerable and safe alike — the safe decoys
    must come back unconfirmed).
    """
    results = {}
    for item in built.ground_truth:
        if item.function in results:
            continue
        results[item.function] = validate_function(
            built.binary, item.function, item.kind, max_steps=max_steps,
            input_bytes=item.poc_input,
        )
    return results
