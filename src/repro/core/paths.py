"""Sink-to-source path generation.

DTaint "tracks the sinks and performs backward depth-first traversal
to generate paths from sinks to sources" (paper §I).  Here the
traversal rewrites a sink's dangerous expression backwards through the
(interprocedurally enriched) definition pairs: each step replaces a
``deref`` sub-expression with its reaching definition, recording the
definition site, until the expression exposes a :class:`SymTaint` — a
source — or no definitions apply.
"""

from dataclasses import dataclass, field

from repro.core.types import root_pointer
from repro.symexec.value import (
    SymDeref,
    SymTaint,
    derefs_in,
    pretty,
    substitute,
    taints_in,
)


@dataclass
class TaintPath:
    """One resolved source → sink data path."""

    function: str
    sink: object                # the Sink
    source: SymTaint
    expr: object                # the fully rewritten dangerous expression
    steps: list = field(default_factory=list)   # (site, dest, value) hops
    arg_index: int = -1

    @property
    def source_name(self):
        return self.source.source

    @property
    def source_site(self):
        return self.source.callsite

    def describe(self):
        return {
            "function": self.function,
            "sink": "%s@0x%x" % (self.sink.name, self.sink.addr),
            "source": "%s@0x%x" % (self.source_name, self.source_site),
            "expr": pretty(self.expr),
            "hops": len(self.steps),
        }


class PathFinder:
    """Backward DFS over definition pairs."""

    def __init__(self, enriched, taint_objects=None, max_depth=12,
                 max_paths_per_sink=12, max_expansions=800,
                 max_defs_per_var=12):
        self.enriched = enriched
        self.max_depth = max_depth
        self.max_paths_per_sink = max_paths_per_sink
        self.max_expansions = max_expansions
        self.max_defs_per_var = max_defs_per_var
        self._defs_by_dest = {}
        for pair in enriched.def_pairs:
            self._defs_by_dest.setdefault(pair.dest, []).append(pair)
        self.taint_objects = set(taint_objects or enriched.taint_objects)

    # ------------------------------------------------------------------

    def trace(self, sink, expr, arg_index=-1):
        """All taint paths reaching ``expr`` at ``sink``."""
        results = []
        self._expansions = 0
        self._dfs(sink, expr, arg_index, [], set(), results, 0)
        return results

    def _dfs(self, sink, expr, arg_index, steps, visited, results, depth):
        if len(results) >= self.max_paths_per_sink or depth > self.max_depth:
            return
        if self._expansions > self.max_expansions:
            return
        self._expansions += 1
        taints = taints_in(expr)
        if not taints:
            taints = self._object_taints(expr)
        if taints:
            for taint in taints[:1]:
                results.append(
                    TaintPath(
                        function=self.enriched.name, sink=sink, source=taint,
                        expr=expr, steps=list(steps), arg_index=arg_index,
                    )
                )
            return
        rewritten_any = False
        for deref in derefs_in(expr):
            for pair in self._lookup(deref):
                # ``visited`` is scoped to the *current chain*: a key is
                # live only while its rewrite is on the stack (cycle
                # guard), then backtracked so sibling branches may chase
                # the same definition.  The global ``_expansions`` budget
                # bounds total work instead.
                key = (deref, pair.dest, pair.value)
                if key in visited:
                    continue
                new_expr = substitute(expr, {deref: pair.value})
                if new_expr == expr:
                    continue
                rewritten_any = True
                visited.add(key)
                steps.append((pair.site, pair.dest, pair.value))
                self._dfs(sink, new_expr, arg_index, steps, visited,
                          results, depth + 1)
                steps.pop()
                visited.discard(key)
        return rewritten_any

    def _lookup(self, deref):
        """Reaching definitions for a deref (exact canonical match).

        A stack slot redefined on many explored paths can carry dozens
        of definitions; only the first few distinct ones are chased.
        """
        return self._defs_by_dest.get(deref, ())[:self.max_defs_per_var]

    def _object_taints(self, expr):
        """Taint through objects: a tainted pointer, or a deref rooted
        at one.

        Sources taint whole objects (``deref(buf) = taint``): passing
        the pointer itself to a sink (``system(cmd)``) is tainted, and
        so is any load from inside the object (``deref(buf + k)``).
        """
        from repro.symexec.value import base_offset, walk

        for node in walk(expr):
            if node in self.taint_objects:
                return [
                    SymTaint(source=_object_source(self, node),
                             callsite=_object_site(self, node))
                ]
        for deref in derefs_in(expr):
            candidates = [deref.addr]
            view = base_offset(deref.addr)
            if view is not None and view[0] is not None:
                candidates.append(view[0])
            for pointer in candidates:
                if pointer in self.taint_objects:
                    return [
                        SymTaint(source=_object_source(self, pointer),
                                 callsite=_object_site(self, pointer))
                    ]
        return []


def root_pointer_of(pointer):
    root = root_pointer(pointer)
    return root if root is not None else pointer


def _object_source(finder, pointer):
    for pair in finder.enriched.def_pairs:
        if isinstance(pair.value, SymTaint) and isinstance(
            pair.dest, SymDeref
        ) and pair.dest.addr == pointer:
            return pair.value.source
    return "source"


def _object_site(finder, pointer):
    for pair in finder.enriched.def_pairs:
        if isinstance(pair.value, SymTaint) and isinstance(
            pair.dest, SymDeref
        ) and pair.dest.addr == pointer:
            return pair.value.callsite
    return 0
