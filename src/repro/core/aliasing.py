"""Pointer-alias recognition (paper Algorithm 1).

The symbolic names already unify "move"-style aliases (``int *p = x;
q = p``).  What Algorithm 1 recovers is the second kind: a pointer
*stored to memory*, ``deref(base1 + offset1) = base2 + offset2``
(Formula 1).  Whenever another definition writes through ``base2``,
the same cell is also reachable through the stored name, so the
definition is re-expressed with ``base2`` replaced by
``deref(base1 + offset1) - offset2`` and added to the definition
pairs.
"""

from dataclasses import dataclass

from repro.profiling import PROFILER
from repro.symexec.state import DefPair
from repro.symexec.value import (
    SymDeref,
    SymHeap,
    SymRet,
    SymVar,
    _sort_key,
    base_offset,
    mk_add,
    mk_sub,
    node_set,
    substitute,
    walk,
    SymConst,
)


@dataclass(frozen=True)
class AliasEntry:
    """``alias = base + offset``: ``alias`` names the cell ``base+offset``."""

    alias: object   # a SymDeref: the stored-to location
    base: object    # the pointer atom stored
    offset: int


def _pointer_atoms(expr):
    """Pointer-like atoms appearing inside ``expr`` (deref bases)."""
    atoms = set()
    for node in walk(expr):
        if isinstance(node, SymDeref):
            view = base_offset(node.addr)
            if view is None:
                continue
            base, _ = view
            if isinstance(base, (SymVar, SymRet, SymDeref, SymHeap)):
                atoms.add(base)
    return atoms


def find_aliases(def_pairs, types):
    """Collect the ALIAS set of Algorithm 1 (lines 4-7)."""
    aliases = []
    for pair in def_pairs:
        if not isinstance(pair.dest, SymDeref):
            continue
        value = pair.value
        view = base_offset(value)
        if view is None:
            continue
        base, offset = view
        if base is None:
            continue  # constant address, nothing symbolic to alias
        is_pointer = (
            types.is_pointer(base)
            or types.is_pointer(value)
            or isinstance(base, (SymHeap,))
        )
        if not is_pointer:
            continue
        aliases.append(AliasEntry(alias=pair.dest, base=base, offset=offset))
    return aliases


def alias_replace(summary, types, max_new=512):
    """Run Algorithm 1 over ``summary.def_pairs`` in place.

    For every definition whose variable mentions an aliased base
    pointer, a new definition pair naming the same object through the
    alias is appended.  Returns the list of added pairs.
    """
    with PROFILER.phase("alias"):
        PROFILER.count("alias_queries")
        return _alias_replace(summary, types, max_new)


def _alias_replace(summary, types, max_new):
    aliases = find_aliases(summary.def_pairs, types)
    return apply_entries(summary, aliases, max_new)


def rewrite_map(aliases):
    """Symmetric rewrite closure over a set of :class:`AliasEntry`.

    A stored pointer gives the cell two names.  Forward (Algorithm 1
    as written): base -> alias - offset, so a definition through the
    original pointer is also visible through the stored name.
    Reverse: alias -> base + offset, so imported definitions expressed
    through the stored name connect to local uses of the original
    pointer.  Returns ``atom -> [(origin, replacement)]``.
    """
    rewrites = {}  # atom -> replacement expr
    for entry in aliases:
        forward = (
            entry.alias if entry.offset == 0
            else mk_sub(entry.alias, SymConst(entry.offset))
        )
        rewrites.setdefault(entry.base, []).append((entry.alias, forward))
        reverse = (
            entry.base if entry.offset == 0
            else mk_add(entry.base, SymConst(entry.offset))
        )
        rewrites.setdefault(entry.alias, []).append((entry.base, reverse))
    return rewrites


def apply_entries(summary, aliases, max_new=512):
    """Append re-expressed definition pairs for ``aliases`` in place.

    The rewrite half of Algorithm 1 (lines 8-13), shared by every
    alias engine: the engines differ only in which :class:`AliasEntry`
    rows they pass in (and which definition pairs survive to be
    rewritten).  Returns the list of added pairs.
    """
    def_pairs = summary.def_pairs
    if not aliases:
        return []

    rewrites = rewrite_map(aliases)

    # Index: which rewritable atoms appear in a destination is a set
    # intersection against its interned sub-node set, not a re-walk —
    # every pointer atom of ``dest`` is one of its sub-nodes, so
    # ``nodes(dest) ∩ rewrite_keys`` covers both halves of the old
    # union and destinations without aliased atoms are skipped in O(1).
    rewrite_keys = frozenset(rewrites)
    existing = set(def_pairs)
    added = []
    for pair in list(def_pairs):
        if not isinstance(pair.dest, SymDeref):
            continue
        mentioned = node_set(pair.dest) & rewrite_keys
        if not mentioned:
            continue
        for ptr in sorted(mentioned, key=_sort_key):
            for origin, replacement in rewrites.get(ptr, ()):
                if origin is pair.dest or replacement is pair.dest:
                    continue  # would rewrite the defining store itself
                new_dest = substitute(pair.dest, {ptr: replacement})
                if new_dest is pair.dest:
                    continue
                new_pair = DefPair(
                    dest=new_dest, value=pair.value, site=pair.site
                )
                if new_pair in existing:
                    continue
                existing.add(new_pair)
                added.append(new_pair)
                if len(added) >= max_new:
                    def_pairs.extend(added)
                    return added
    def_pairs.extend(added)
    return added
