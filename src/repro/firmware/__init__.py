"""Firmware containers, filesystem, extraction, and the boot model.

The pipeline stages mirror the paper's §IV implementation: a firmware
image arrives as an opaque blob; a Binwalk-style signature scanner
(:mod:`repro.firmware.binwalk`) carves the container
(:mod:`repro.firmware.image`), unpacks the root filesystem
(:mod:`repro.firmware.simplefs`), and the binary of interest is loaded
for analysis.  :mod:`repro.firmware.emulation` is the FIRMADYNE-style
full-system boot model behind Figure 1.
"""

from repro.firmware.binwalk import extract_filesystem, scan
from repro.firmware.image import FirmwareImage, pack_trx, pack_uimage
from repro.firmware.simplefs import SimpleFS

__all__ = [
    "FirmwareImage",
    "SimpleFS",
    "extract_filesystem",
    "pack_trx",
    "pack_uimage",
    "scan",
]
