"""Firmware containers, filesystems, extraction, and the boot model.

The pipeline stages mirror the paper's §IV implementation: a firmware
image arrives as an opaque blob; a Binwalk-style signature scanner
(:mod:`repro.firmware.binwalk`) carves the container
(:mod:`repro.firmware.image`), unpacks the root filesystem
(:mod:`repro.firmware.simplefs`, :mod:`repro.firmware.logfs`,
:mod:`repro.firmware.cramfs`), and the binary of interest is loaded
for analysis.  Nested images go through the recursive UnpackParser
registry (:mod:`repro.firmware.unpack` + plugins in
:mod:`repro.firmware.parsers`).  :mod:`repro.firmware.emulation` is
the FIRMADYNE-style full-system boot model behind Figure 1.
"""

from repro.firmware.binwalk import extract_filesystem, extract_tree, scan
from repro.firmware.image import FirmwareImage, pack_trx, pack_uimage
from repro.firmware.simplefs import SimpleFS
from repro.firmware.unpack import (
    ExtractionTree,
    RecursiveExtractor,
    UnpackParser,
    register,
    registered_parsers,
)

__all__ = [
    "ExtractionTree",
    "FirmwareImage",
    "RecursiveExtractor",
    "SimpleFS",
    "UnpackParser",
    "extract_filesystem",
    "extract_tree",
    "pack_trx",
    "pack_uimage",
    "register",
    "registered_parsers",
    "scan",
]
