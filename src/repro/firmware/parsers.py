"""The UnpackParser plugins (binaryanalysis-ng style, one per format).

Each parser is registered against its magic signature(s) and turns a
validated match into a :class:`~repro.firmware.unpack.CarvedUnit`
whose child regions the recursive driver re-scans.  Containers come
from :mod:`repro.firmware.image`, filesystems from
:mod:`repro.firmware.simplefs` / :mod:`~repro.firmware.logfs` /
:mod:`~repro.firmware.cramfs`; the compression parsers here inflate
with explicit budgets so a bomb can never allocate past the
extraction's trust-boundary limits.
"""

import lzma
import struct
import zlib

from repro.errors import FirmwareError
from repro.firmware import cramfs, logfs
from repro.firmware import image as img
from repro.firmware import simplefs
from repro.firmware.simplefs import SimpleFS
from repro.firmware.unpack import (
    ELF_MAGIC,
    CarvedUnit,
    Region,
    UnpackParser,
    register,
)

_INFLATE_CHUNK = 1 << 16


def _bounded_inflate(decompressor, data, budget, what):
    """Drain ``decompressor`` over ``data`` without exceeding the
    extraction's remaining inflate budget; returns (output, consumed).

    Works for both protocols: zlib objects hand back unconsumed input
    via ``unconsumed_tail`` (which must be re-fed), lzma objects
    buffer it internally.  Decompression happens in bounded chunks so
    a bomb trips the budget instead of allocating its full expansion.
    """
    cap = budget.remaining_bytes()
    is_zlib = hasattr(decompressor, "unconsumed_tail")
    out = []
    produced = 0
    feed = data
    while not decompressor.eof:
        try:
            chunk = decompressor.decompress(feed, _INFLATE_CHUNK)
        except (zlib.error, lzma.LZMAError, EOFError) as exc:
            raise FirmwareError("corrupt %s stream: %s" % (what, exc))
        feed = decompressor.unconsumed_tail if is_zlib else b""
        produced += len(chunk)
        if produced > cap:
            raise FirmwareError(
                "%s payload inflates past the extraction budget" % what
            )
        out.append(chunk)
        if not chunk and not decompressor.eof:
            # No output, no stream end: the input ran dry mid-stream.
            raise FirmwareError("truncated %s stream" % what)
    consumed = len(data) - len(decompressor.unused_data)
    return b"".join(out), consumed


@register
class TrxParser(UnpackParser):
    """Broadcom-style TRX container → loader / kernel / rootfs."""

    name = "trx"
    signatures = (img.TRX_MAGIC,)

    def parse(self, data, offset, budget):
        image = img.parse_trx(data, offset)
        total = struct.unpack_from("<I", data, offset + 4)[0]
        children = []
        if image.loader:
            children.append(Region("loader", image.loader))
        children.append(Region("kernel", image.kernel))
        children.append(Region("rootfs", image.rootfs))
        return CarvedUnit(size=total, children=children)


@register
class UImageParser(UnpackParser):
    """U-Boot legacy image → kernel / rootfs."""

    name = "uimage"
    signatures = (struct.pack(">I", img.UIMAGE_MAGIC),)

    def parse(self, data, offset, budget):
        image = img.parse_uimage(data, offset)
        size = struct.unpack_from(">I", data, offset + 12)[0]
        return CarvedUnit(
            size=img.UIMAGE_HEADER_SIZE + size,
            children=[Region("kernel", image.kernel),
                      Region("rootfs", image.rootfs)],
            meta={"name": image.name,
                  "load_addr": "0x%x" % image.load_addr,
                  "entry_addr": "0x%x" % image.entry_addr},
        )


@register
class VendorBlobParser(UnpackParser):
    """Proprietary XOR wrapper; the key is recovered from its header
    and validated against the deobfuscated payload's magic."""

    name = "vendor-blob"
    signatures = (img.VENDOR_MAGIC,)

    def parse(self, data, offset, budget):
        inner, span, key = img.parse_vendor_blob(data, offset)
        return CarvedUnit(
            size=span,
            children=[Region("payload", inner)],
            meta={"xor_key": "0x%02x" % key},
        )


@register
class PartitionTableParser(UnpackParser):
    """Multi-partition PTBL container → one region per partition."""

    name = "parts"
    signatures = (img.PARTS_MAGIC,)

    def parse(self, data, offset, budget):
        partitions, span = img.parse_parts(data, offset)
        return CarvedUnit(
            size=span,
            children=[Region(name, blob) for name, blob in partitions],
            meta={"partitions": len(partitions)},
        )


@register
class GzipParser(UnpackParser):
    """gzip-wrapped payload (compressed kernels, recovery images)."""

    name = "gzip"
    signatures = (b"\x1f\x8b\x08",)

    def parse(self, data, offset, budget):
        decompressor = zlib.decompressobj(16 + zlib.MAX_WBITS)
        payload, consumed = _bounded_inflate(
            decompressor, data[offset:], budget, "gzip"
        )
        if not payload:
            raise FirmwareError("empty gzip payload")
        return CarvedUnit(size=consumed,
                          children=[Region("unpacked", payload)])


@register
class LzmaParser(UnpackParser):
    """LZMA-alone-wrapped payload (the classic compressed kernel)."""

    name = "lzma"
    signatures = (b"\x5d\x00\x00",)

    def parse(self, data, offset, budget):
        if len(data) < offset + 13:
            raise FirmwareError("truncated LZMA header")
        properties = data[offset]
        dict_size = struct.unpack_from("<I", data, offset + 1)[0]
        # lc/lp/pb encode into one byte < 225; a sane dictionary is a
        # power of two no larger than 64 MiB.  Anything else is a
        # false-positive hit on the weak 3-byte signature.
        if properties >= 225 or dict_size == 0 or dict_size > (64 << 20) \
                or dict_size & (dict_size - 1):
            raise FirmwareError("implausible LZMA header")
        decompressor = lzma.LZMADecompressor(format=lzma.FORMAT_ALONE)
        payload, consumed = _bounded_inflate(
            decompressor, data[offset:], budget, "LZMA"
        )
        if not payload:
            raise FirmwareError("empty LZMA payload")
        return CarvedUnit(size=consumed,
                          children=[Region("unpacked", payload)])


def _fs_children(files):
    """Filesystem files as offset-0-only regions (a magic in the
    middle of a config file is content, not a nested image)."""
    return [
        Region(path, content, scan_anywhere=False)
        for path, content in sorted(files.items())
    ]


@register
class SimpleFSParser(UnpackParser):
    """The SquashFS stand-in; files become child regions."""

    name = "simplefs"
    signatures = (simplefs.MAGIC,)

    def parse(self, data, offset, budget):
        size = simplefs.span(data, offset)
        fs = SimpleFS.unpack(
            data[offset:offset + size],
            max_image_bytes=max(budget.remaining_bytes(), 1),
        )
        return CarvedUnit(
            size=size,
            children=_fs_children(dict(fs.files())),
            meta={"entries": len(fs)},
            skipped=list(fs.skipped),
        )


@register
class LogFSParser(UnpackParser):
    """JFFS2-style log filesystem; replayed last-version-wins."""

    name = "logfs"
    signatures = (logfs.MAGIC,)

    def parse(self, data, offset, budget):
        files, skipped, size = logfs.unpack(data, offset)
        return CarvedUnit(
            size=size,
            children=_fs_children(files),
            meta={"entries": len(files)},
            skipped=skipped,
        )


@register
class CramFSParser(UnpackParser):
    """CramFS-like read-only compressed filesystem."""

    name = "cramfs"
    signatures = (cramfs.MAGIC,)

    def parse(self, data, offset, budget):
        files, skipped, size = cramfs.unpack(data, offset)
        return CarvedUnit(
            size=size,
            children=_fs_children(files),
            meta={"entries": len(files)},
            skipped=skipped,
        )


@register
class ElfParser(UnpackParser):
    """ELF executables are terminal: the analysis target itself."""

    name = "elf"
    signatures = (ELF_MAGIC,)

    def parse(self, data, offset, budget):
        if len(data) < offset + 16:
            raise FirmwareError("truncated ELF ident")
        ei_class = data[offset + 4]
        if ei_class not in (1, 2):
            raise FirmwareError("bad ELF class %d" % ei_class)
        return CarvedUnit(
            size=len(data) - offset,
            meta={"class": "ELF%d" % (32 if ei_class == 1 else 64)},
        )
