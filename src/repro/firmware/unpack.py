"""Recursive firmware extraction over a registry of UnpackParsers.

Real firmware is a matryoshka: a partition table holds an obfuscated
vendor wrapper holding a TRX holding an LZMA-compressed kernel and a
filesystem whose files are themselves filesystem images.  DTaint's
front end (paper §IV) must surface every binary in that nest before
any analysis can happen — the paper's §VI reports that >65% of real
images fail to unpack cleanly, which is exactly the failure mode a
single-format carver has.

The model here follows binaryanalysis-ng's parser tree: every format
is one :class:`UnpackParser` plugin declaring its magic signature(s)
and a ``parse`` method that validates bounds and yields child
regions.  The driver is a fixpoint loop — carve → identify → unpack →
recurse — over those regions:

1. scan a region for registered signatures;
2. try each candidate **in offset order**; the first parser that
   accepts (validation passes) wins, failed candidates are recorded
   as notes on the resulting node (decoy magics degrade to notes, not
   aborts);
3. every child region the parser yields (partitions, decompressed
   payloads, filesystem files) is re-scanned the same way until only
   leaves (ELFs, opaque data) remain.

Budgets guard the recursion with the same trust-boundary limits the
flat extractor already enforces (:mod:`repro.firmware.simplefs`):
a depth cap defeats recursion bombs (a gzip quine nests forever), a
total-inflate cap defeats decompression bombs, and a node cap defeats
fan-out bombs.  A blown budget raises :class:`FirmwareError` — the
pipeline's fault taxonomy turns that into a typed, degraded job
instead of an OOM.
"""

import hashlib
from dataclasses import dataclass, field

from repro import faultinject
from repro.errors import FirmwareError
from repro.firmware.simplefs import MAX_IMAGE_BYTES

MANIFEST_FORMAT_VERSION = 1

DEFAULT_MAX_DEPTH = 8
DEFAULT_MAX_NODES = 4096

ELF_MAGIC = b"\x7fELF"


@dataclass
class Region:
    """One child blob a parser yielded for re-scanning.

    ``scan_anywhere`` controls signature discovery: container payloads
    (kernels, partitions) are scanned at any offset because vendors
    pad them, while filesystem *files* only match at offset 0 — a
    stray magic in the middle of ``/etc/passwd`` is file content, not
    a nested image.
    """

    label: str
    data: bytes
    scan_anywhere: bool = True
    meta: dict = field(default_factory=dict)


@dataclass
class CarvedUnit:
    """What one parser produced from one match offset."""

    size: int                    # bytes consumed from the match offset
    children: list = field(default_factory=list)     # [Region, ...]
    meta: dict = field(default_factory=dict)
    skipped: list = field(default_factory=list)      # [(label, reason)]


class UnpackParser:
    """Base class for signature-keyed unpack plugins.

    Subclasses declare ``name``, the magic ``signatures`` bytes that
    key them into the scan, and implement :meth:`parse`, which either
    returns a :class:`CarvedUnit` (bounds validated, children ready
    for recursion) or raises :class:`FirmwareError` — the driver then
    falls through to the next candidate in offset order.
    """

    name = ""
    signatures = ()              # tuple of magic byte strings

    def parse(self, data, offset, budget):
        raise NotImplementedError


# ---------------------------------------------------------------------------
# Registry.

_REGISTRY = []


def register(cls):
    """Class decorator: instantiate and register an UnpackParser."""
    parser = cls()
    if not parser.name or not parser.signatures:
        raise ValueError("parser %r needs a name and signatures" % cls)
    _REGISTRY.append(parser)
    return cls


def registered_parsers():
    """All registered parser instances (registration order)."""
    _ensure_loaded()
    return tuple(_REGISTRY)


def _ensure_loaded():
    # The plugin module registers its parsers on import; importing it
    # lazily here breaks the cycle (parsers need this module's bases).
    if not _REGISTRY:
        from repro.firmware import parsers as _parsers  # noqa: F401


def signature_table():
    """``[(magic, parser), ...]`` — longest magics first so a scan
    prefers the most specific signature at any given offset."""
    _ensure_loaded()
    table = [
        (magic, parser)
        for parser in _REGISTRY
        for magic in parser.signatures
    ]
    table.sort(key=lambda item: (-len(item[0]), item[1].name))
    return table


def find_candidates(data, anywhere=True):
    """Candidate ``(offset, parser)`` pairs in offset order.

    With ``anywhere`` false only offset-0 matches are returned (the
    filesystem-file rule).  At equal offsets the longer magic wins
    first slot; a parser appears once per matching offset.
    """
    candidates = []
    seen = set()
    for position, (magic, parser) in enumerate(signature_table()):
        if anywhere:
            start = 0
            while True:
                index = data.find(magic, start)
                if index < 0:
                    break
                if (index, parser.name) not in seen:
                    seen.add((index, parser.name))
                    candidates.append((index, position, parser))
                start = index + 1
        elif data[:len(magic)] == magic:
            if (0, parser.name) not in seen:
                seen.add((0, parser.name))
                candidates.append((0, position, parser))
    candidates.sort(key=lambda item: (item[0], item[1]))
    return [(offset, parser) for offset, _position, parser in candidates]


# ---------------------------------------------------------------------------
# Budgets.

class UnpackBudget:
    """Depth / inflate / fan-out limits shared by one extraction.

    ``max_total_bytes`` reuses the trust-boundary image budget from
    :mod:`repro.firmware.simplefs`: the sum of all child regions ever
    materialised (decompressed payloads included) may not exceed it.
    """

    def __init__(self, max_depth=DEFAULT_MAX_DEPTH,
                 max_total_bytes=MAX_IMAGE_BYTES,
                 max_nodes=DEFAULT_MAX_NODES):
        self.max_depth = max_depth
        self.max_total_bytes = max_total_bytes
        self.max_nodes = max_nodes
        self.total_bytes = 0
        self.nodes = 0

    def charge_bytes(self, count, label=""):
        self.total_bytes += count
        if self.total_bytes > self.max_total_bytes:
            raise FirmwareError(
                "extraction inflates past the %d MiB budget%s"
                % (self.max_total_bytes >> 20,
                   " (at %s)" % label if label else "")
            )

    def charge_node(self, label=""):
        self.nodes += 1
        if self.nodes > self.max_nodes:
            raise FirmwareError(
                "extraction exceeds %d nodes%s — fan-out bomb?"
                % (self.max_nodes, " (at %s)" % label if label else "")
            )

    def check_depth(self, depth, label=""):
        if depth > self.max_depth:
            raise FirmwareError(
                "extraction nests deeper than %d levels%s — "
                "recursion bomb?"
                % (self.max_depth, " (at %s)" % label if label else "")
            )

    def remaining_bytes(self):
        return max(self.max_total_bytes - self.total_bytes, 0)


# ---------------------------------------------------------------------------
# The extraction tree.

@dataclass
class ExtractionNode:
    """One carved unit (or leaf blob) in the extraction tree."""

    parser: str                  # 'trx' | 'simplefs' | 'elf' | 'data' | ...
    label: str                   # child label within the parent
    offset: int                  # match offset within the parent region
    size: int
    depth: int
    sha256: str
    meta: dict = field(default_factory=dict)
    notes: list = field(default_factory=list)    # decoys, skipped files
    children: list = field(default_factory=list)
    data: bytes = None           # leaf payload (interior nodes: None)

    @property
    def is_leaf(self):
        return not self.children

    def to_dict(self):
        """Canonical manifest form (no payload bytes, sorted keys)."""
        return {
            "parser": self.parser,
            "label": self.label,
            "offset": self.offset,
            "size": self.size,
            "depth": self.depth,
            "sha256": self.sha256,
            "meta": {key: self.meta[key] for key in sorted(self.meta)},
            "notes": list(self.notes),
            "children": [child.to_dict() for child in self.children],
        }


class ExtractionTree:
    """The result of one recursive extraction."""

    def __init__(self, name, root, budget):
        self.name = name
        self.root = root
        self.budget = budget

    def walk(self):
        """Yield ``(path, node)`` depth-first; paths are '/'-joined
        labels and unique within the tree."""
        def visit(node, prefix):
            path = "%s/%s" % (prefix, node.label) if prefix else node.label
            yield path, node
            for child in node.children:
                yield from visit(child, path)
        yield from visit(self.root, "")

    def nodes(self):
        return [node for _path, node in self.walk()]

    def elves(self):
        """Every ELF leaf as ``(member_id, display_path, data)``.

        ``member_id`` is the unique tree path (stable across runs —
        what a fleet job's ``member`` field names); ``display_path``
        prefers the filesystem path when the ELF came out of a
        filesystem (labels starting with '/').
        """
        out = []
        for path, node in self.walk():
            if node.parser == "elf" and node.data is not None:
                display = node.label if node.label.startswith("/") else path
                out.append((path, display, node.data))
        return out

    def leaves(self):
        return [(path, node) for path, node in self.walk() if node.is_leaf]

    @property
    def max_depth(self):
        return max(node.depth for node in self.nodes())

    def manifest(self):
        """Canonical, deterministic manifest document."""
        return {
            "format_version": MANIFEST_FORMAT_VERSION,
            "name": self.name,
            "max_depth": self.max_depth,
            "node_count": len(self.nodes()),
            "elves": [
                {"member": member, "path": display,
                 "sha256": hashlib.sha256(data).hexdigest(),
                 "size": len(data)}
                for member, display, data in self.elves()
            ],
            "tree": self.root.to_dict(),
        }

    def render(self):
        """Human-readable tree (``dtaint unpack`` output)."""
        lines = []

        def visit(node, prefix, is_last, is_root):
            describe = "%s" % node.parser
            if node.label and node.label != describe:
                describe = "%s [%s]" % (node.label, node.parser)
            extras = []
            if node.offset:
                extras.append("@0x%x" % node.offset)
            extras.append("%d bytes" % node.size)
            for key in sorted(node.meta):
                extras.append("%s=%s" % (key, node.meta[key]))
            if node.notes:
                extras.append("%d note(s)" % len(node.notes))
            text = "%s (%s)" % (describe, ", ".join(extras))
            if is_root:
                lines.append(text)
                child_prefix = ""
            else:
                connector = "`-- " if is_last else "|-- "
                lines.append(prefix + connector + text)
                child_prefix = prefix + ("    " if is_last else "|   ")
            for index, child in enumerate(node.children):
                visit(child, child_prefix,
                      index == len(node.children) - 1, False)

        visit(self.root, "", True, True)
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# The recursive driver.

class RecursiveExtractor:
    """carve → identify → unpack → recurse, until fixpoint."""

    def __init__(self, max_depth=DEFAULT_MAX_DEPTH,
                 max_total_bytes=MAX_IMAGE_BYTES,
                 max_nodes=DEFAULT_MAX_NODES):
        self.budget = UnpackBudget(max_depth=max_depth,
                                   max_total_bytes=max_total_bytes,
                                   max_nodes=max_nodes)

    def extract(self, data, name=""):
        """Unpack ``data`` fully; returns an :class:`ExtractionTree`.

        Raises :class:`FirmwareError` when the top level contains no
        parseable container or ELF at all, or when a budget blows —
        nested decoys and unidentifiable payloads degrade to ``data``
        leaves with notes instead.
        """
        faultinject.check("firmware.unpack", name)
        root = self._extract_region(
            Region(label=name or "image", data=data, scan_anywhere=True),
            depth=0,
        )
        if root.parser == "data":
            detail = "; ".join(root.notes) if root.notes else \
                "no known container signature found"
            raise FirmwareError(
                "no parseable container in %s: %s"
                % (name or "image", detail)
            )
        return ExtractionTree(name=name, root=root, budget=self.budget)

    def _extract_region(self, region, depth):
        """Identify and unpack one region; returns its node."""
        budget = self.budget
        budget.check_depth(depth, region.label)
        budget.charge_node(region.label)
        data = region.data
        notes = []
        for offset, parser in find_candidates(
                data, anywhere=region.scan_anywhere):
            try:
                unit = parser.parse(data, offset, budget)
            except FirmwareError as exc:
                # A decoy or corrupt candidate: note it, try the next
                # signature in offset order (bugfix: a vendor-blob hit
                # must not mask a valid TRX later in the blob).
                notes.append("%s@0x%x: %s" % (parser.name, offset, exc))
                continue
            return self._build_node(region, parser, offset, unit,
                                    depth, notes)
        # Nothing parsed: a leaf.  ELFs are identified (they are what
        # the analysis downstream wants); everything else is data.
        kind = "elf" if data[:4] == ELF_MAGIC else "data"
        return ExtractionNode(
            parser=kind, label=region.label, offset=0, size=len(data),
            depth=depth, sha256=hashlib.sha256(data).hexdigest(),
            meta=dict(region.meta), notes=notes, data=data,
        )

    def _build_node(self, region, parser, offset, unit, depth, notes):
        node = ExtractionNode(
            parser=parser.name, label=region.label, offset=offset,
            size=unit.size, depth=depth,
            sha256=hashlib.sha256(
                region.data[offset:offset + unit.size]
            ).hexdigest(),
            meta={**region.meta, **unit.meta}, notes=notes,
        )
        for label, reason in unit.skipped:
            node.notes.append("skipped %s: %s" % (label, reason))
        trailing = len(region.data) - offset - unit.size
        if trailing > 0:
            node.meta.setdefault("trailing_bytes", trailing)
        seen_labels = set()
        for child in unit.children:
            # Labels must be unique per parent so tree paths are
            # stable member identifiers.
            label = child.label
            serial = 1
            while label in seen_labels:
                serial += 1
                label = "%s#%d" % (child.label, serial)
            seen_labels.add(label)
            child.label = label
            self.budget.charge_bytes(len(child.data), label)
            node.children.append(self._extract_region(child, depth + 1))
        if not node.children:
            # A parsed unit with no children keeps its payload: it is
            # a leaf the caller may want (an identified ELF).
            node.data = region.data[offset:offset + unit.size]
        return node


def unpack(data, name="", max_depth=DEFAULT_MAX_DEPTH,
           max_total_bytes=MAX_IMAGE_BYTES, max_nodes=DEFAULT_MAX_NODES):
    """One-call recursive extraction; returns an ExtractionTree."""
    extractor = RecursiveExtractor(
        max_depth=max_depth, max_total_bytes=max_total_bytes,
        max_nodes=max_nodes,
    )
    return extractor.extract(data, name=name)
