"""Firmware container formats.

Two structurally faithful containers cover the fleet:

* **TRX** — the Broadcom-style header used by many router vendors:
  ``HDR0`` magic, total length, CRC32, flags/version, and three
  partition offsets (loader, kernel, rootfs);
* **uImage** — the U-Boot legacy image header: magic ``0x27051956``,
  header CRC, timestamp, sizes, load/entry addresses, data CRC, and a
  32-byte name, followed by the payload (here: kernel stub + SimpleFS
  rootfs at a marked offset).

A ``vendor-blob`` (proprietary, optionally XOR-obfuscated) wrapper
models the images Binwalk fails on (paper §VI: >65% of images fail to
unpack cleanly).
"""

import struct
import zlib
from dataclasses import dataclass

from repro.errors import FirmwareError

TRX_MAGIC = b"HDR0"
TRX_HEADER = "<4sIIII III"   # magic, len, crc, flags_version, 3 offsets (+pad)
TRX_HEADER_SIZE = 32

UIMAGE_MAGIC = 0x27051956
UIMAGE_HEADER = ">IIIIIIIBBBB32s"
UIMAGE_HEADER_SIZE = 64


@dataclass
class FirmwareImage:
    """A parsed firmware container."""

    container: str
    kernel: bytes
    rootfs: bytes
    name: str = ""
    load_addr: int = 0
    entry_addr: int = 0


def pack_trx(kernel, rootfs, loader=b""):
    """Build a TRX-style image."""
    offsets_base = TRX_HEADER_SIZE
    loader_off = offsets_base if loader else 0
    kernel_off = offsets_base + len(loader)
    rootfs_off = kernel_off + len(kernel)
    payload = loader + kernel + rootfs
    total = TRX_HEADER_SIZE + len(payload)
    header_wo_crc = struct.pack(
        "<4sII", TRX_MAGIC, total, 0
    ) + struct.pack("<IIII", 1, loader_off, kernel_off, rootfs_off) + b"\x00" * 4
    crc = zlib.crc32(header_wo_crc[12:] + payload) & 0xFFFFFFFF
    header = struct.pack(
        "<4sII", TRX_MAGIC, total, crc
    ) + header_wo_crc[12:]
    return header + payload


def parse_trx(data, offset=0):
    """Parse a TRX image; malformed input raises :class:`FirmwareError`."""
    try:
        return _parse_trx(data, offset)
    except FirmwareError:
        raise
    except (struct.error, IndexError, ValueError, OverflowError) as exc:
        raise FirmwareError("malformed TRX image: %s" % exc)


def _parse_trx(data, offset):
    if data[offset:offset + 4] != TRX_MAGIC:
        raise FirmwareError("not a TRX image at offset 0x%x" % offset)
    total, crc = struct.unpack_from("<II", data, offset + 4)
    if offset + total > len(data):
        raise FirmwareError("TRX length runs past the blob")
    body = data[offset + 12:offset + total]
    if zlib.crc32(body) & 0xFFFFFFFF != crc:
        raise FirmwareError("TRX CRC mismatch")
    _version, loader_off, kernel_off, rootfs_off = struct.unpack_from(
        "<IIII", data, offset + 12
    )
    kernel = data[offset + kernel_off:offset + rootfs_off]
    rootfs = data[offset + rootfs_off:offset + total]
    return FirmwareImage(container="trx", kernel=kernel, rootfs=rootfs)


def pack_uimage(kernel, rootfs, name="firmware", load_addr=0x80000000,
                entry_addr=0x80000100):
    """Build a U-Boot legacy image wrapping kernel + rootfs.

    The rootfs is appended after the kernel; its offset is stored in
    the first 4 payload bytes (a common vendor convention for combined
    images).
    """
    payload = struct.pack(">I", 4 + len(kernel)) + kernel + rootfs
    data_crc = zlib.crc32(payload) & 0xFFFFFFFF
    name_bytes = name.encode("utf-8")[:31].ljust(32, b"\x00")
    header = struct.pack(
        UIMAGE_HEADER,
        UIMAGE_MAGIC,
        0,                      # header CRC (patched below)
        0x5B2EDF00,             # timestamp
        len(payload),
        load_addr,
        entry_addr,
        data_crc,
        5,                      # OS: Linux
        2,                      # arch field (ARM=2; cosmetic here)
        2,                      # type: kernel
        0,                      # compression: none
        name_bytes,
    )
    header_crc = zlib.crc32(header) & 0xFFFFFFFF
    header = header[:4] + struct.pack(">I", header_crc) + header[8:]
    return header + payload


def parse_uimage(data, offset=0):
    """Parse a uImage; malformed input raises :class:`FirmwareError`."""
    try:
        return _parse_uimage(data, offset)
    except FirmwareError:
        raise
    except (struct.error, IndexError, ValueError, OverflowError) as exc:
        raise FirmwareError("malformed uImage: %s" % exc)


def _parse_uimage(data, offset):
    if len(data) < offset + UIMAGE_HEADER_SIZE:
        raise FirmwareError("truncated uImage header")
    fields = struct.unpack_from(UIMAGE_HEADER, data, offset)
    magic, header_crc, _ts, size, load, entry, data_crc = fields[:7]
    name = fields[11].rstrip(b"\x00").decode("utf-8", "replace")
    if magic != UIMAGE_MAGIC:
        raise FirmwareError("not a uImage at offset 0x%x" % offset)
    header = bytearray(data[offset:offset + UIMAGE_HEADER_SIZE])
    header[4:8] = b"\x00" * 4
    if zlib.crc32(bytes(header)) & 0xFFFFFFFF != header_crc:
        raise FirmwareError("uImage header CRC mismatch")
    payload = data[offset + UIMAGE_HEADER_SIZE:offset + UIMAGE_HEADER_SIZE + size]
    if len(payload) != size:
        raise FirmwareError("uImage payload truncated")
    if zlib.crc32(payload) & 0xFFFFFFFF != data_crc:
        raise FirmwareError("uImage data CRC mismatch")
    rootfs_off = struct.unpack_from(">I", payload, 0)[0]
    kernel = payload[4:rootfs_off]
    rootfs = payload[rootfs_off:]
    return FirmwareImage(
        container="uimage", kernel=kernel, rootfs=rootfs, name=name,
        load_addr=load, entry_addr=entry,
    )


VENDOR_MAGIC = b"VNDR"


def pack_vendor_blob(kernel, rootfs, xor_key=0x5A):
    """A proprietary wrapper: magic + XOR-obfuscated TRX body.

    Models the encrypted/unknown images Binwalk cannot unpack.
    """
    inner = pack_trx(kernel, rootfs)
    obfuscated = bytes(b ^ xor_key for b in inner)
    return VENDOR_MAGIC + struct.pack("<BxxxI", xor_key, len(obfuscated)) + (
        obfuscated
    )
