"""Firmware container formats.

Two structurally faithful containers cover the fleet:

* **TRX** — the Broadcom-style header used by many router vendors:
  ``HDR0`` magic, total length, CRC32, flags/version, and three
  partition offsets (loader, kernel, rootfs);
* **uImage** — the U-Boot legacy image header: magic ``0x27051956``,
  header CRC, timestamp, sizes, load/entry addresses, data CRC, and a
  32-byte name, followed by the payload (here: kernel stub + SimpleFS
  rootfs at a marked offset);
* **PTBL** — a multi-partition table (the mtd-partition layout most
  real images carry): named partitions with explicit offsets/sizes
  that must be in-bounds, in order, and non-overlapping;
* **vendor-blob** — a proprietary XOR-obfuscated wrapper modelling
  the images Binwalk fails on (paper §VI: >65% of images fail to
  unpack cleanly).  The key byte sits in its own header, so a
  deobfuscating parser *can* recover the inner container — the
  recovery is validated against the decoded payload's magic.

``pack_gzip``/``pack_lzma`` wrap payloads the way vendors ship
compressed kernels; the matching parsers live in
:mod:`repro.firmware.parsers`.
"""

import lzma
import struct
import zlib
from dataclasses import dataclass

from repro.errors import FirmwareError

TRX_MAGIC = b"HDR0"
TRX_HEADER = "<4sIIII III"   # magic, len, crc, flags_version, 3 offsets (+pad)
TRX_HEADER_SIZE = 32

UIMAGE_MAGIC = 0x27051956
UIMAGE_HEADER = ">IIIIIIIBBBB32s"
UIMAGE_HEADER_SIZE = 64


@dataclass
class FirmwareImage:
    """A parsed firmware container."""

    container: str
    kernel: bytes
    rootfs: bytes
    name: str = ""
    load_addr: int = 0
    entry_addr: int = 0
    loader: bytes = b""


def pack_trx(kernel, rootfs, loader=b""):
    """Build a TRX-style image."""
    offsets_base = TRX_HEADER_SIZE
    loader_off = offsets_base if loader else 0
    kernel_off = offsets_base + len(loader)
    rootfs_off = kernel_off + len(kernel)
    payload = loader + kernel + rootfs
    total = TRX_HEADER_SIZE + len(payload)
    header_wo_crc = struct.pack(
        "<4sII", TRX_MAGIC, total, 0
    ) + struct.pack("<IIII", 1, loader_off, kernel_off, rootfs_off) + b"\x00" * 4
    crc = zlib.crc32(header_wo_crc[12:] + payload) & 0xFFFFFFFF
    header = struct.pack(
        "<4sII", TRX_MAGIC, total, crc
    ) + header_wo_crc[12:]
    return header + payload


def parse_trx(data, offset=0):
    """Parse a TRX image; malformed input raises :class:`FirmwareError`."""
    try:
        return _parse_trx(data, offset)
    except FirmwareError:
        raise
    except (struct.error, IndexError, ValueError, OverflowError) as exc:
        raise FirmwareError("malformed TRX image: %s" % exc)


def _parse_trx(data, offset):
    if data[offset:offset + 4] != TRX_MAGIC:
        raise FirmwareError("not a TRX image at offset 0x%x" % offset)
    total, crc = struct.unpack_from("<II", data, offset + 4)
    if total < TRX_HEADER_SIZE:
        raise FirmwareError("TRX length smaller than its own header")
    if offset + total > len(data):
        raise FirmwareError("TRX length runs past the blob")
    body = data[offset + 12:offset + total]
    if zlib.crc32(body) & 0xFFFFFFFF != crc:
        raise FirmwareError("TRX CRC mismatch")
    _version, loader_off, kernel_off, rootfs_off = struct.unpack_from(
        "<IIII", data, offset + 12
    )
    # A crafted header can order the partition offsets arbitrarily;
    # slicing with inverted or out-of-range offsets silently produces
    # empty partitions, so the ordering is validated up front:
    # header <= [loader <=] kernel <= rootfs <= total.
    if not (TRX_HEADER_SIZE <= kernel_off <= rootfs_off <= total):
        raise FirmwareError(
            "TRX partition offsets out of order (kernel=0x%x, "
            "rootfs=0x%x, total=0x%x)" % (kernel_off, rootfs_off, total)
        )
    if loader_off and not (TRX_HEADER_SIZE <= loader_off <= kernel_off):
        raise FirmwareError(
            "TRX loader offset 0x%x outside [header, kernel)" % loader_off
        )
    loader = data[offset + loader_off:offset + kernel_off] if loader_off \
        else b""
    kernel = data[offset + kernel_off:offset + rootfs_off]
    rootfs = data[offset + rootfs_off:offset + total]
    return FirmwareImage(container="trx", kernel=kernel, rootfs=rootfs,
                         loader=loader)


def pack_uimage(kernel, rootfs, name="firmware", load_addr=0x80000000,
                entry_addr=0x80000100):
    """Build a U-Boot legacy image wrapping kernel + rootfs.

    The rootfs is appended after the kernel; its offset is stored in
    the first 4 payload bytes (a common vendor convention for combined
    images).
    """
    payload = struct.pack(">I", 4 + len(kernel)) + kernel + rootfs
    data_crc = zlib.crc32(payload) & 0xFFFFFFFF
    name_bytes = name.encode("utf-8")[:31].ljust(32, b"\x00")
    header = struct.pack(
        UIMAGE_HEADER,
        UIMAGE_MAGIC,
        0,                      # header CRC (patched below)
        0x5B2EDF00,             # timestamp
        len(payload),
        load_addr,
        entry_addr,
        data_crc,
        5,                      # OS: Linux
        2,                      # arch field (ARM=2; cosmetic here)
        2,                      # type: kernel
        0,                      # compression: none
        name_bytes,
    )
    header_crc = zlib.crc32(header) & 0xFFFFFFFF
    header = header[:4] + struct.pack(">I", header_crc) + header[8:]
    return header + payload


def parse_uimage(data, offset=0):
    """Parse a uImage; malformed input raises :class:`FirmwareError`."""
    try:
        return _parse_uimage(data, offset)
    except FirmwareError:
        raise
    except (struct.error, IndexError, ValueError, OverflowError) as exc:
        raise FirmwareError("malformed uImage: %s" % exc)


def _parse_uimage(data, offset):
    if len(data) < offset + UIMAGE_HEADER_SIZE:
        raise FirmwareError("truncated uImage header")
    fields = struct.unpack_from(UIMAGE_HEADER, data, offset)
    magic, header_crc, _ts, size, load, entry, data_crc = fields[:7]
    name = fields[11].rstrip(b"\x00").decode("utf-8", "replace")
    if magic != UIMAGE_MAGIC:
        raise FirmwareError("not a uImage at offset 0x%x" % offset)
    header = bytearray(data[offset:offset + UIMAGE_HEADER_SIZE])
    header[4:8] = b"\x00" * 4
    if zlib.crc32(bytes(header)) & 0xFFFFFFFF != header_crc:
        raise FirmwareError("uImage header CRC mismatch")
    payload = data[offset + UIMAGE_HEADER_SIZE:offset + UIMAGE_HEADER_SIZE + size]
    if len(payload) != size:
        raise FirmwareError("uImage payload truncated")
    if zlib.crc32(payload) & 0xFFFFFFFF != data_crc:
        raise FirmwareError("uImage data CRC mismatch")
    if size < 4:
        raise FirmwareError("uImage payload too small for a rootfs offset")
    rootfs_off = struct.unpack_from(">I", payload, 0)[0]
    # The rootfs offset is read from attacker-controlled payload bytes;
    # unvalidated it silently yields an empty (or inverted) kernel and
    # a rootfs slice of garbage.
    if not (4 <= rootfs_off <= size):
        raise FirmwareError(
            "uImage rootfs offset 0x%x outside the %d-byte payload"
            % (rootfs_off, size)
        )
    kernel = payload[4:rootfs_off]
    rootfs = payload[rootfs_off:]
    return FirmwareImage(
        container="uimage", kernel=kernel, rootfs=rootfs, name=name,
        load_addr=load, entry_addr=entry,
    )


VENDOR_MAGIC = b"VNDR"
VENDOR_HEADER_SIZE = 12      # magic + key byte + pad + payload length


def pack_vendor_blob(kernel=b"", rootfs=b"", xor_key=0x5A, inner=None):
    """A proprietary wrapper: magic + XOR-obfuscated inner container.

    Models the obfuscated images Binwalk chokes on.  By default the
    inner container is a TRX built from ``kernel``/``rootfs``; pass
    ``inner`` to wrap pre-built container bytes instead (nested
    matryoshka images wrap whole sub-images this way).
    """
    if inner is None:
        inner = pack_trx(kernel, rootfs)
    obfuscated = bytes(b ^ xor_key for b in inner)
    return VENDOR_MAGIC + struct.pack("<BxxxI", xor_key, len(obfuscated)) + (
        obfuscated
    )


def parse_vendor_blob(data, offset=0):
    """Deobfuscate a vendor blob; returns ``(inner_bytes, span, key)``.

    The XOR key is recovered from the wrapper's own header and
    cross-checked against the first deobfuscated byte (known-plaintext
    recovery: every supported inner container starts with a known
    magic).  A decoy ``VNDR`` whose payload decodes to nothing
    recognisable raises :class:`FirmwareError` — the carver then moves
    on to the next candidate signature instead of emitting garbage.
    """
    if data[offset:offset + 4] != VENDOR_MAGIC:
        raise FirmwareError("not a vendor blob at offset 0x%x" % offset)
    if len(data) < offset + VENDOR_HEADER_SIZE:
        raise FirmwareError("truncated vendor-blob header")
    xor_key, length = struct.unpack_from("<BxxxI", data, offset + 4)
    start = offset + VENDOR_HEADER_SIZE
    obfuscated = data[start:start + length]
    if len(obfuscated) != length:
        raise FirmwareError("vendor-blob payload runs past the region")
    inner = bytes(b ^ xor_key for b in obfuscated)
    known_magics = (TRX_MAGIC, struct.pack(">I", UIMAGE_MAGIC),
                    PARTS_MAGIC)
    if not any(inner.startswith(magic) for magic in known_magics):
        raise FirmwareError(
            "vendor-blob payload (key 0x%02x from header) decodes to no "
            "known container" % xor_key
        )
    return inner, VENDOR_HEADER_SIZE + length, xor_key


# ---------------------------------------------------------------------------
# Multi-partition table container.

PARTS_MAGIC = b"PTBL"
PARTS_HEADER = "<4sII"       # magic, partition count, crc32(body)
PARTS_HEADER_SIZE = struct.calcsize(PARTS_HEADER)
PARTS_ENTRY = "<8sII"        # name, absolute offset, size
PARTS_ENTRY_SIZE = struct.calcsize(PARTS_ENTRY)
MAX_PARTITIONS = 64


def pack_parts(partitions):
    """Build a PTBL image from ``[(name, bytes), ...]`` partitions."""
    if len(partitions) > MAX_PARTITIONS:
        raise FirmwareError("too many partitions (%d)" % len(partitions))
    table_size = PARTS_HEADER_SIZE + PARTS_ENTRY_SIZE * len(partitions)
    entries = []
    payload = b""
    cursor = table_size
    for name, data in partitions:
        name_bytes = name.encode("utf-8")[:8].ljust(8, b"\x00")
        entries.append(struct.pack(PARTS_ENTRY, name_bytes, cursor,
                                   len(data)))
        payload += bytes(data)
        cursor += len(data)
    body = b"".join(entries) + payload
    crc = zlib.crc32(body) & 0xFFFFFFFF
    return struct.pack(PARTS_HEADER, PARTS_MAGIC, len(partitions), crc) + body


def parse_parts(data, offset=0):
    """Parse a PTBL container; returns ``([(name, bytes), ...], span)``.

    Entries must lie inside the image, start past the table, appear in
    ascending offset order, and not overlap — crafted tables violating
    any of that raise :class:`FirmwareError` instead of silently
    producing empty or aliased partitions.
    """
    try:
        return _parse_parts(data, offset)
    except FirmwareError:
        raise
    except (struct.error, IndexError, ValueError, OverflowError) as exc:
        raise FirmwareError("malformed partition table: %s" % exc)


def _parse_parts(data, offset):
    if data[offset:offset + 4] != PARTS_MAGIC:
        raise FirmwareError("not a partition table at offset 0x%x" % offset)
    _magic, count, crc = struct.unpack_from(PARTS_HEADER, data, offset)
    if count > MAX_PARTITIONS:
        raise FirmwareError("partition table declares %d entries (cap %d)"
                            % (count, MAX_PARTITIONS))
    table_size = PARTS_HEADER_SIZE + PARTS_ENTRY_SIZE * count
    if offset + table_size > len(data):
        raise FirmwareError("partition table runs past the region")
    entries = []
    end = table_size
    for index in range(count):
        name_bytes, part_off, size = struct.unpack_from(
            PARTS_ENTRY, data, offset + PARTS_HEADER_SIZE
            + index * PARTS_ENTRY_SIZE
        )
        name = name_bytes.rstrip(b"\x00").decode("utf-8", "replace") \
            or "part%d" % index
        entries.append((name, part_off, size))
        end = max(end, part_off + size)
    if offset + end > len(data):
        raise FirmwareError("partition data runs past the region")
    body = data[offset + PARTS_HEADER_SIZE:offset + end]
    if zlib.crc32(body) & 0xFFFFFFFF != crc:
        raise FirmwareError("partition table CRC mismatch")
    previous_end = table_size
    partitions = []
    for name, part_off, size in entries:
        if part_off < table_size:
            raise FirmwareError(
                "partition %r starts inside the table (0x%x)"
                % (name, part_off)
            )
        if part_off < previous_end:
            raise FirmwareError(
                "partition %r out of order or overlapping (0x%x < 0x%x)"
                % (name, part_off, previous_end)
            )
        partitions.append((name, data[offset + part_off:
                                      offset + part_off + size]))
        previous_end = part_off + size
    return partitions, end


# ---------------------------------------------------------------------------
# Compression wrappers (gzip / LZMA-alone), the way vendors ship
# compressed kernels.  The matching bounded parsers live in
# :mod:`repro.firmware.parsers`.

LZMA_FILTERS = [{"id": lzma.FILTER_LZMA1, "preset": 6}]


def pack_gzip(data):
    """gzip-wrap ``data`` (deterministic: no mtime, no filename)."""
    compressor = zlib.compressobj(6, zlib.DEFLATED, 16 + zlib.MAX_WBITS)
    return compressor.compress(bytes(data)) + compressor.flush()


def pack_lzma(data):
    """LZMA-alone-wrap ``data`` (the classic compressed-kernel format)."""
    return lzma.compress(bytes(data), format=lzma.FORMAT_ALONE,
                         filters=LZMA_FILTERS)
