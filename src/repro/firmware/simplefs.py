"""SimpleFS: the root-filesystem archive inside firmware containers.

A structurally faithful stand-in for SquashFS: magic, superblock with
entry count and a checksum, then an inode table of (path, mode, offset,
length) records followed by packed file contents, optionally
zlib-compressed per file (SquashFS compresses per block; per file keeps
the format small while preserving the "compressed filesystem" property
the extractor must handle).
"""

import struct
import zlib

from repro import faultinject
from repro.errors import FirmwareError, MalformedInput

MAGIC = b"SFS1"
_SUPER = "<4sIII"           # magic, entry_count, table_size, crc32
_ENTRY = "<HHIII"           # path_len, mode, offset, stored_len, raw_len

MODE_FILE = 0o100755
MODE_DIR = 0o040755

COMPRESS_THRESHOLD = 64

# Decompression bombs: a hostile image can declare a tiny stored blob
# that inflates without bound.  Per-file and whole-image budgets cap
# what unpack() will ever materialise; an oversized *entry* degrades
# to a typed per-file skip, a blown *image* budget is malformed input.
MAX_FILE_BYTES = 64 << 20
MAX_IMAGE_BYTES = 256 << 20


class SimpleFS:
    """An in-memory root filesystem that packs to/from bytes."""

    def __init__(self):
        self._files = {}    # path -> (mode, bytes)
        self.skipped = []   # (path, reason) entries dropped by unpack()

    def add_file(self, path, data, mode=MODE_FILE):
        if not path.startswith("/"):
            raise FirmwareError("paths must be absolute: %r" % path)
        self._files[path] = (mode, bytes(data))

    def add_dir(self, path):
        self._files[path] = (MODE_DIR, b"")

    def read_file(self, path):
        try:
            mode, data = self._files[path]
        except KeyError:
            raise FirmwareError("no such file %r" % path)
        if mode == MODE_DIR:
            raise FirmwareError("%r is a directory" % path)
        return data

    def paths(self):
        return sorted(self._files)

    def files(self):
        return [
            (path, data) for path, (mode, data) in sorted(self._files.items())
            if mode != MODE_DIR
        ]

    def __contains__(self, path):
        return path in self._files

    def __len__(self):
        return len(self._files)

    # ------------------------------------------------------------------

    def pack(self):
        """Serialise to bytes."""
        entries = []
        blobs = []
        offset = 0
        for path, (mode, data) in sorted(self._files.items()):
            stored = data
            if len(data) >= COMPRESS_THRESHOLD:
                compressed = zlib.compress(data, 6)
                if len(compressed) < len(data):
                    stored = compressed
            path_bytes = path.encode("utf-8")
            entries.append(
                struct.pack(
                    _ENTRY, len(path_bytes), mode & 0xFFFF, offset,
                    len(stored), len(data),
                ) + path_bytes
            )
            blobs.append(stored)
            offset += len(stored)
        table = b"".join(entries)
        payload = b"".join(blobs)
        crc = zlib.crc32(table + payload) & 0xFFFFFFFF
        super_block = struct.pack(
            _SUPER, MAGIC, len(self._files), len(table), crc
        )
        return super_block + table + payload

    @classmethod
    def unpack(cls, data, max_file_bytes=MAX_FILE_BYTES,
               max_image_bytes=MAX_IMAGE_BYTES):
        """Parse bytes back into a :class:`SimpleFS`.

        Image-level corruption (bad magic, truncated superblock or
        table, checksum mismatch) raises :class:`FirmwareError`.  A
        corrupt *entry* inside an otherwise intact image is dropped
        into ``fs.skipped`` as ``(path, reason)`` instead — one bad
        file must not lose the rest of the filesystem.

        Allocation is bounded: a file whose declared size exceeds
        ``max_file_bytes`` is skipped *before* any decompression
        happens (and the inflate itself is capped, so a lying header
        cannot expand past its declaration), while an image whose
        total unpacked size would exceed ``max_image_bytes`` raises —
        a filesystem that big is an attack, not firmware.
        """
        header_size = struct.calcsize(_SUPER)
        if len(data) < header_size:
            raise FirmwareError("truncated SimpleFS superblock")
        magic, count, table_size, crc = struct.unpack_from(_SUPER, data, 0)
        if magic != MAGIC:
            raise FirmwareError("bad SimpleFS magic %r" % magic)
        body = data[header_size:]
        if table_size > len(body):
            raise FirmwareError("SimpleFS inode table runs past the image")
        table = body[:table_size]
        payload_base = table_size
        total = payload_base + _payload_size(body, count, table_size)
        if total > len(body):
            raise FirmwareError("SimpleFS payload runs past the image")
        if zlib.crc32(body[:total]) & 0xFFFFFFFF != crc:
            raise FirmwareError("SimpleFS checksum mismatch")

        fs = cls()
        cursor = 0
        unpacked_total = 0
        entry_size = struct.calcsize(_ENTRY)
        for index in range(count):
            if cursor + entry_size > len(table):
                raise FirmwareError("truncated SimpleFS inode table")
            path_len, mode, offset, stored_len, raw_len = struct.unpack_from(
                _ENTRY, table, cursor
            )
            cursor += entry_size
            path_bytes = table[cursor:cursor + path_len]
            cursor += path_len
            # The image budget counts declared sizes, so it is checked
            # before any allocation happens for this entry.
            unpacked_total += raw_len
            if unpacked_total > max_image_bytes:
                raise FirmwareError(
                    "SimpleFS image inflates past the %d MiB budget"
                    % (max_image_bytes >> 20)
                )
            # Entry framing is intact past this point; anything wrong
            # with this one file degrades to a typed per-file skip.
            try:
                fs._unpack_entry(
                    path_bytes, mode, offset, stored_len, raw_len,
                    body, payload_base, max_file_bytes,
                )
            except MalformedInput as exc:
                label = (
                    path_bytes.decode("utf-8", "replace")
                    or "entry %d" % index
                )
                fs.skipped.append((label, str(exc)))
        return fs

    def _unpack_entry(self, path_bytes, mode, offset, stored_len, raw_len,
                      body, payload_base, max_file_bytes=MAX_FILE_BYTES):
        try:
            path = path_bytes.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise FirmwareError("undecodable path: %s" % exc)
        faultinject.check("firmware.file", path)
        if raw_len > max_file_bytes:
            # Checked before any slice or inflate: a decompression
            # bomb never allocates, it just loses its one entry.
            raise FirmwareError(
                "file %r declares %d bytes, over the %d MiB cap"
                % (path, raw_len, max_file_bytes >> 20)
            )
        start = payload_base + offset
        stored = body[start:start + stored_len]
        if len(stored) != stored_len:
            raise FirmwareError("truncated file payload for %r" % path)
        if stored_len == raw_len:
            content = stored
        else:
            # Bounded inflate: never produce more than the declared
            # size, so even a header that lies about raw_len cannot
            # make this allocate past the cap.
            inflater = zlib.decompressobj()
            try:
                content = inflater.decompress(stored, raw_len)
            except zlib.error as exc:
                raise FirmwareError(
                    "corrupt compressed file %r: %s" % (path, exc)
                )
            if (inflater.unconsumed_tail
                    or inflater.decompress(b"", 1)
                    or len(content) != raw_len):
                raise FirmwareError("bad decompressed size for %r" % path)
        if mode == MODE_DIR & 0xFFFF:
            self.add_dir(path)
        else:
            self._files[path] = (mode, content)


def span(data, offset=0):
    """Exact byte extent of the SimpleFS image starting at ``offset``.

    Lets a recursive carver attribute the right slice to the
    filesystem without unpacking it first; malformed superblocks
    raise :class:`FirmwareError`.
    """
    header_size = struct.calcsize(_SUPER)
    if len(data) < offset + header_size:
        raise FirmwareError("truncated SimpleFS superblock")
    magic, count, table_size, _crc = struct.unpack_from(
        _SUPER, data, offset
    )
    if magic != MAGIC:
        raise FirmwareError("bad SimpleFS magic %r" % magic)
    body = data[offset + header_size:]
    if table_size > len(body):
        raise FirmwareError("SimpleFS inode table runs past the image")
    return header_size + table_size + _payload_size(body, count, table_size)


def _payload_size(body, count, table_size):
    """Total payload length = max(offset+stored_len) over the table."""
    entry_size = struct.calcsize(_ENTRY)
    cursor = 0
    end = 0
    table = body[:table_size]
    for _ in range(count):
        if cursor + entry_size > len(table):
            raise FirmwareError("truncated SimpleFS inode table")
        path_len, _mode, offset, stored_len, _raw = struct.unpack_from(
            _ENTRY, table, cursor
        )
        cursor += entry_size + path_len
        end = max(end, offset + stored_len)
    return end
