"""FIRMADYNE-style full-system boot model (paper §II-A, Figure 1).

The paper ran FIRMADYNE over 6,529 images: fewer than 670 booted; the
rest "failed to access custom and proprietary hardware components or
failed to initialize the network configuration in the boot process".
This module is an executable model of that experiment.  Each boot
attempt walks the stages a real emulation walks — unpack, kernel
bring-up, device probing, NVRAM, userland init, network configuration
— and fails at the first stage whose hardware trait the emulator
cannot satisfy.  Failure *reasons* therefore come out of the model,
not a table, and the headline number (~10% emulable) is an emergent
property of the trait distributions in :mod:`repro.corpus.fleet`.
"""

from collections import Counter
from dataclasses import dataclass

# Peripherals FIRMADYNE-style emulation can fake well enough to boot
# (generic watchdogs/I2C/NAND/PoE have stock kernel drivers; crypto
# engines, DSPs, PTZ motors and DSL PHYs do not).
_EMULATABLE_PERIPHERALS = frozenset(
    ["sensor-i2c", "vendor-watchdog", "custom-nand", "poe-controller"]
)


@dataclass
class BootResult:
    image_id: str
    year: int
    success: bool
    stage: str          # stage reached (or failed at)
    reason: str = ""


class EmulationHarness:
    """Attempts to boot fleet images the way FIRMADYNE does."""

    def __init__(self, supported_archs=("arm", "mips")):
        self.supported_archs = supported_archs

    def attempt_boot(self, image):
        """Run the boot stages against one image's traits."""
        if image.encrypted or image.container == "vendor-blob":
            return BootResult(
                image.image_id, image.year, False, "unpack",
                "container cannot be unpacked",
            )
        if not image.is_linux:
            return BootResult(
                image.image_id, image.year, False, "kernel",
                "non-Linux RTOS image",
            )
        if image.arch not in self.supported_archs:
            return BootResult(
                image.image_id, image.year, False, "kernel",
                "unsupported CPU architecture",
            )
        if not image.kernel_supported:
            return BootResult(
                image.image_id, image.year, False, "kernel",
                "kernel version outside the emulator's range",
            )
        blocking = [
            p for p in image.peripherals
            if p not in _EMULATABLE_PERIPHERALS
        ]
        if blocking:
            return BootResult(
                image.image_id, image.year, False, "device-probe",
                "proprietary peripheral: %s" % ", ".join(sorted(blocking)),
            )
        if not image.nvram_defaults_present:
            return BootResult(
                image.image_id, image.year, False, "nvram",
                "missing NVRAM defaults, init loops",
            )
        if not image.network_init_ok:
            return BootResult(
                image.image_id, image.year, False, "network",
                "network configuration failed in boot",
            )
        return BootResult(image.image_id, image.year, True, "userland")

    def run_fleet(self, images):
        """Boot every image; return the list of results."""
        return [self.attempt_boot(image) for image in images]


def figure1_histogram(results):
    """Figure 1's series: per-year totals and successful boots."""
    totals = Counter()
    booted = Counter()
    for result in results:
        totals[result.year] += 1
        if result.success:
            booted[result.year] += 1
    years = sorted(totals)
    return [
        {"year": year, "total": totals[year], "emulated": booted[year]}
        for year in years
    ]


def failure_breakdown(results):
    """Failure counts by stage (the paper's two headline causes)."""
    stages = Counter(
        result.stage for result in results if not result.success
    )
    return dict(stages)
