"""Binwalk-style signature scanning and extraction (paper §IV).

DTaint's front end "uses a custom-written extraction utility built
around the Binwalk API to extract the root file system".  This module
is that utility: a magic-signature scanner over the raw blob, a
Shannon-entropy profile (how real Binwalk spots encrypted or
compressed regions), and a carver that parses the matched container
and unpacks the SimpleFS rootfs.
"""

import math
import struct
from dataclasses import dataclass

from repro import faultinject
from repro.errors import FirmwareError
from repro.firmware import image as img
from repro.firmware.simplefs import MAGIC as SFS_MAGIC, SimpleFS

_SIGNATURES = (
    ("trx", img.TRX_MAGIC),
    ("uimage", struct.pack(">I", img.UIMAGE_MAGIC)),
    ("simplefs", SFS_MAGIC),
    ("vendor-blob", img.VENDOR_MAGIC),
    ("elf", b"\x7fELF"),
    ("gzip", b"\x1f\x8b\x08"),
)


@dataclass
class Signature:
    offset: int
    kind: str
    description: str


def scan(data):
    """Find all known magic signatures in ``data`` (sorted by offset)."""
    hits = []
    for kind, magic in _SIGNATURES:
        start = 0
        while True:
            index = data.find(magic, start)
            if index < 0:
                break
            hits.append(
                Signature(offset=index, kind=kind,
                          description="%s signature" % kind)
            )
            start = index + 1
    hits.sort(key=lambda s: s.offset)
    return hits


def entropy_profile(data, block_size=1024):
    """Per-block Shannon entropy in bits/byte (0..8).

    High sustained entropy (> ~7.5) marks compressed or encrypted
    regions that defeat signature carving.
    """
    profile = []
    for start in range(0, len(data), block_size):
        block = data[start:start + block_size]
        if not block:
            break
        counts = [0] * 256
        for byte in block:
            counts[byte] += 1
        entropy = 0.0
        size = len(block)
        for count in counts:
            if count:
                p = count / size
                entropy -= p * math.log2(p)
        profile.append(entropy)
    return profile


def carve(data):
    """Parse the outermost container in ``data``."""
    hits = scan(data)
    for hit in hits:
        if hit.kind == "trx":
            return img.parse_trx(data, hit.offset)
        if hit.kind == "uimage":
            return img.parse_uimage(data, hit.offset)
        if hit.kind == "vendor-blob":
            raise FirmwareError(
                "proprietary vendor wrapper at 0x%x (cannot unpack)"
                % hit.offset
            )
    raise FirmwareError("no known container signature found")


def extract_filesystem(data, name=""):
    """Full pipeline: blob -> container -> SimpleFS root filesystem.

    Malformed blobs raise :class:`FirmwareError`; ``name`` labels the
    image for fault probes and error messages.
    """
    faultinject.check("firmware.unpack", name)
    container = carve(data)
    rootfs_data = container.rootfs
    if rootfs_data[:4] != SFS_MAGIC:
        # The rootfs may sit at an aligned offset; rescan within it.
        index = rootfs_data.find(SFS_MAGIC)
        if index < 0:
            raise FirmwareError("no filesystem inside the container")
        rootfs_data = rootfs_data[index:]
    return SimpleFS.unpack(rootfs_data), container


def pick_target_binary(fs, preferred=("cgibin", "setup.cgi", "httpd",
                                      "mwareserver", "centaurus")):
    """Choose the network-facing ELF the analysis should load.

    Preference order mirrors the paper's six targets; falls back to
    the largest ELF in the filesystem.
    """
    candidates = []
    for path, data in fs.files():
        if data[:4] == b"\x7fELF":
            candidates.append((path, data))
    if not candidates:
        raise FirmwareError("no ELF executables in the filesystem")
    for name in preferred:
        for path, data in candidates:
            if path.endswith("/" + name) or path.endswith(name):
                return path, data
    return max(candidates, key=lambda item: len(item[1]))
