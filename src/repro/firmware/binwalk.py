"""Binwalk-style signature scanning and extraction (paper §IV).

DTaint's front end "uses a custom-written extraction utility built
around the Binwalk API to extract the root file system".  This module
is that utility: a magic-signature scanner over the raw blob, a
Shannon-entropy profile (how real Binwalk spots encrypted or
compressed regions), and two carving paths:

* :func:`extract_filesystem` — the flat path: outermost container →
  SimpleFS rootfs, for the classic TRX/uImage single-filesystem image;
* :func:`extract_tree` — the recursive path
  (:mod:`repro.firmware.unpack`): carve → identify → unpack → recurse
  through nested containers, compression wrappers, and filesystems
  until every embedded binary is surfaced.

The signature table is derived from the UnpackParser registry, so a
newly registered format is scannable here without touching this file.
"""

import math
from dataclasses import dataclass

from repro import faultinject
from repro.errors import FirmwareError
from repro.firmware import image as img
from repro.firmware import unpack as unpack_mod
from repro.firmware.simplefs import MAGIC as SFS_MAGIC, SimpleFS
from repro.firmware.unpack import ELF_MAGIC


@dataclass
class Signature:
    offset: int
    kind: str
    description: str


def signatures():
    """``(kind, magic)`` pairs from the UnpackParser registry."""
    return tuple(
        (parser.name, magic)
        for magic, parser in unpack_mod.signature_table()
    )


def scan(data):
    """Find all known magic signatures in ``data`` (sorted by offset)."""
    hits = []
    for kind, magic in signatures():
        start = 0
        while True:
            index = data.find(magic, start)
            if index < 0:
                break
            hits.append(
                Signature(offset=index, kind=kind,
                          description="%s signature" % kind)
            )
            start = index + 1
    hits.sort(key=lambda s: s.offset)
    return hits


def entropy_profile(data, block_size=1024):
    """Per-block Shannon entropy in bits/byte (0..8).

    High sustained entropy (> ~7.5) marks compressed or encrypted
    regions that defeat signature carving.
    """
    profile = []
    for start in range(0, len(data), block_size):
        block = data[start:start + block_size]
        if not block:
            break
        counts = [0] * 256
        for byte in block:
            counts[byte] += 1
        entropy = 0.0
        size = len(block)
        for count in counts:
            if count:
                p = count / size
                entropy -= p * math.log2(p)
        profile.append(entropy)
    return profile


def carve(data):
    """Parse the outermost container in ``data``.

    Every candidate signature is tried **in offset order**; a
    candidate that fails to parse (decoy magic, corrupt header,
    undecodable wrapper) is recorded and the next one is tried.  The
    call fails only when no candidate parses — a stray vendor-blob
    marker ahead of a valid TRX no longer aborts the extraction.
    """
    failures = []
    for hit in scan(data):
        try:
            if hit.kind == "trx":
                return img.parse_trx(data, hit.offset)
            if hit.kind == "uimage":
                return img.parse_uimage(data, hit.offset)
            if hit.kind == "vendor-blob":
                # Recover the XOR key from the wrapper header and
                # carve the deobfuscated payload in its place.
                inner, _span, _key = img.parse_vendor_blob(data, hit.offset)
                return carve(inner)
        except FirmwareError as exc:
            failures.append("%s@0x%x: %s" % (hit.kind, hit.offset, exc))
    if failures:
        raise FirmwareError(
            "no candidate container parsed: %s" % "; ".join(failures)
        )
    raise FirmwareError("no known container signature found")


def extract_filesystem(data, name=""):
    """Flat pipeline: blob -> container -> SimpleFS root filesystem.

    Malformed blobs raise :class:`FirmwareError`; ``name`` labels the
    image for fault probes and error messages.  Images whose rootfs is
    not a SimpleFS (nested matryoshka images) need
    :func:`extract_tree` instead.
    """
    faultinject.check("firmware.unpack", name)
    container = carve(data)
    rootfs_data = container.rootfs
    if rootfs_data[:4] != SFS_MAGIC:
        # The rootfs may sit at an aligned offset; rescan within it.
        index = rootfs_data.find(SFS_MAGIC)
        if index < 0:
            raise FirmwareError("no filesystem inside the container")
        rootfs_data = rootfs_data[index:]
    return SimpleFS.unpack(rootfs_data), container


def extract_tree(data, name="", **budget_kwargs):
    """Recursive pipeline: blob -> full extraction tree.

    Delegates to :func:`repro.firmware.unpack.unpack`: nested
    containers, compression wrappers, obfuscated vendor blobs and
    filesystems are all carved until only leaves remain.  Returns an
    :class:`repro.firmware.unpack.ExtractionTree`.
    """
    return unpack_mod.unpack(data, name=name, **budget_kwargs)


def _elf_candidates(source):
    """Normalise any extraction product into ``[(path, elf_bytes)]``."""
    if hasattr(source, "elves"):            # ExtractionTree
        return [(display, data) for _member, display, data
                in source.elves()]
    if hasattr(source, "files"):            # SimpleFS
        pairs = source.files()
    else:                                   # plain [(path, data)] list
        pairs = list(source)
    return [(path, data) for path, data in pairs
            if data[:4] == ELF_MAGIC]


def pick_target_binary(fs, preferred=("cgibin", "setup.cgi", "httpd",
                                      "mwareserver", "centaurus")):
    """Choose the network-facing ELF the analysis should load.

    Preference order mirrors the paper's six targets; falls back to
    the largest ELF.  ``fs`` may be a SimpleFS, an ExtractionTree, or
    a plain ``[(path, data)]`` list.  A preferred name matches only a
    path's final component — ``/bin/foohttpd`` is not ``httpd``.
    """
    candidates = _elf_candidates(fs)
    if not candidates:
        raise FirmwareError("no ELF executables in the filesystem")
    for name in preferred:
        for path, data in candidates:
            if path.rpartition("/")[2] == name:
                return path, data
    return max(candidates, key=lambda item: len(item[1]))
