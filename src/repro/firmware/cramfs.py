"""CramFS-like read-only compressed filesystem.

Real cramfs packs a directory tree into a superblock + inode table +
per-file runs of fixed-size zlib blocks, mounted read-only straight
from flash.  This keeps that shape: a superblock whose ``size`` field
states the exact image extent (what lets a recursive carver skip the
whole filesystem in one hop), an inode table of path records, and a
block area where each file is a run of ``[u16 compressed_len][blob]``
blocks of up to :data:`BLOCK_SIZE` raw bytes each.
"""

import struct
import zlib

from repro.errors import FirmwareError
from repro.firmware.simplefs import MAX_FILE_BYTES

# Real cramfs's 0x28cd3d45 magic, little-endian on the wire.
MAGIC = b"\x45\x3d\xcd\x28"
_SUPER = "<4sIII"        # magic, total size, file count, crc32
_SUPER_SIZE = struct.calcsize(_SUPER)
_ENTRY = "<HHII"         # path_len, mode, raw_len, block_offset
_ENTRY_SIZE = struct.calcsize(_ENTRY)
_BLOCK_HDR = "<H"        # compressed length of one block

BLOCK_SIZE = 4096
MAX_FILES = 4096


def pack(files):
    """Serialise ``{path: bytes}`` into a cramfs-like image."""
    entries = []
    blocks = bytearray()
    for path in sorted(files):
        data = bytes(files[path])
        if not path.startswith("/"):
            raise FirmwareError("cramfs paths must be absolute: %r" % path)
        path_bytes = path.encode("utf-8")
        entries.append((path_bytes, len(data), len(blocks)))
        for start in range(0, len(data), BLOCK_SIZE):
            raw = data[start:start + BLOCK_SIZE]
            stored = zlib.compress(raw, 6)
            blocks += struct.pack(_BLOCK_HDR, len(stored)) + stored
        if not data:
            pass                     # zero blocks; raw_len 0 says it all
    table = b"".join(
        struct.pack(_ENTRY, len(path_bytes), 0o100755, raw_len, offset)
        + path_bytes
        for path_bytes, raw_len, offset in entries
    )
    body = table + bytes(blocks)
    total = _SUPER_SIZE + len(body)
    crc = zlib.crc32(body) & 0xFFFFFFFF
    return struct.pack(_SUPER, MAGIC, total, len(entries), crc) + body


def unpack(data, offset=0, max_file_bytes=MAX_FILE_BYTES):
    """Parse a cramfs-like image; returns ``(files, skipped, span)``.

    Image-level corruption (bad magic, truncated extent, checksum
    mismatch, an absurd file count) raises :class:`FirmwareError`; a
    corrupt *file* inside an intact image degrades to a ``skipped``
    entry, mirroring the SimpleFS per-file skip contract.
    """
    if len(data) < offset + _SUPER_SIZE:
        raise FirmwareError("truncated cramfs superblock")
    magic, total, count, crc = struct.unpack_from(_SUPER, data, offset)
    if magic != MAGIC:
        raise FirmwareError("not a cramfs image at offset 0x%x" % offset)
    if total < _SUPER_SIZE or offset + total > len(data):
        raise FirmwareError("cramfs extent runs past the region")
    if count > MAX_FILES:
        raise FirmwareError("cramfs declares %d files (cap %d)"
                            % (count, MAX_FILES))
    body = data[offset + _SUPER_SIZE:offset + total]
    if zlib.crc32(body) & 0xFFFFFFFF != crc:
        raise FirmwareError("cramfs checksum mismatch")

    files = {}
    skipped = []
    cursor = 0
    records = []
    for index in range(count):
        if cursor + _ENTRY_SIZE > len(body):
            raise FirmwareError("truncated cramfs inode table")
        path_len, _mode, raw_len, block_off = struct.unpack_from(
            _ENTRY, body, cursor
        )
        cursor += _ENTRY_SIZE
        path = body[cursor:cursor + path_len].decode("utf-8", "replace")
        cursor += path_len
        records.append((path or "entry %d" % index, raw_len, block_off))
    block_area = body[cursor:]
    for path, raw_len, block_off in records:
        if raw_len > max_file_bytes:
            skipped.append((path, "file declares %d bytes, over the "
                            "per-file cap" % raw_len))
            continue
        try:
            files[path] = _read_blocks(block_area, block_off, raw_len, path)
        except FirmwareError as exc:
            skipped.append((path, str(exc)))
    return files, skipped, total


def _read_blocks(area, block_off, raw_len, path):
    chunks = []
    produced = 0
    cursor = block_off
    while produced < raw_len:
        if cursor + 2 > len(area):
            raise FirmwareError("block run for %r past the block area"
                                % path)
        (stored_len,) = struct.unpack_from(_BLOCK_HDR, area, cursor)
        cursor += 2
        stored = area[cursor:cursor + stored_len]
        if len(stored) != stored_len:
            raise FirmwareError("truncated block for %r" % path)
        cursor += stored_len
        want = min(BLOCK_SIZE, raw_len - produced)
        inflater = zlib.decompressobj()
        try:
            raw = inflater.decompress(stored, want)
        except zlib.error as exc:
            raise FirmwareError("corrupt block for %r: %s" % (path, exc))
        if inflater.decompress(b"", 1) or len(raw) != want:
            raise FirmwareError("bad block size for %r" % path)
        chunks.append(raw)
        produced += len(raw)
    return b"".join(chunks)
