"""LogFS: a JFFS2-style log-structured flash filesystem.

JFFS2 stores a filesystem as an append-only sequence of nodes on
flash: each write appends a node carrying the full path, a version
counter and a CRC; readers replay the log and keep, per path, only
the highest-version node.  Deletions are "deletion markers" — a node
whose flag says the path is gone.  Torn or bit-rotted nodes are
expected on flash and are skipped, not fatal.

This module keeps that structure faithfully while staying small:

* node = header (magic, flags, version, lengths, CRC) + path + payload;
* nodes are 4-byte aligned, padded with ``0xFF`` (the erased-flash
  pattern, exactly what a real flash dump shows between nodes);
* replay is last-version-wins, deletion markers drop a path, and a
  node with a bad CRC is skipped into ``skipped`` — one torn write
  must not lose the rest of the filesystem.
"""

import struct
import zlib

from repro.errors import FirmwareError
from repro.firmware.simplefs import MAX_FILE_BYTES

# 0x1985 is the real JFFS2 magic bitmask; 'LF' tags our node layout.
MAGIC = b"\x85\x19LF"
_NODE = "<4sHHIIII"      # magic, flags, mode, version, path_len,
                         # stored_len, raw_len
_NODE_SIZE = struct.calcsize(_NODE)
_CRC = "<I"              # crc32 over (path + payload), after the header

FLAG_DELETED = 0x0001
FLAG_COMPRESSED = 0x0002

_PAD = 0xFF              # erased-flash fill between nodes
_ALIGN = 4


def _align(offset):
    return (offset + _ALIGN - 1) & ~(_ALIGN - 1)


def pack(entries):
    """Serialise a write log into LogFS bytes.

    ``entries`` is an iterable of ``(path, data)`` or
    ``(path, data, deleted)`` tuples **in write order** — pass the
    same path twice to model an overwrite (replay keeps the last
    one), or ``deleted=True`` for a deletion marker.
    """
    out = bytearray()
    version = 0
    for entry in entries:
        if len(entry) == 2:
            path, data = entry
            deleted = False
        else:
            path, data, deleted = entry
        if not path.startswith("/"):
            raise FirmwareError("LogFS paths must be absolute: %r" % path)
        version += 1
        payload = b"" if deleted else bytes(data)
        flags = FLAG_DELETED if deleted else 0
        stored = payload
        if len(payload) >= 64:
            compressed = zlib.compress(payload, 6)
            if len(compressed) < len(payload):
                stored = compressed
                flags |= FLAG_COMPRESSED
        path_bytes = path.encode("utf-8")
        header = struct.pack(
            _NODE, MAGIC, flags, 0o100755, version,
            len(path_bytes), len(stored), len(payload),
        )
        crc = zlib.crc32(path_bytes + stored) & 0xFFFFFFFF
        out += header + struct.pack(_CRC, crc) + path_bytes + stored
        while len(out) % _ALIGN:
            out.append(_PAD)
    # Trailing erased-flash tail, the way a partition dump ends.
    out += bytes([_PAD]) * _ALIGN
    return bytes(out)


def unpack(data, offset=0, max_file_bytes=MAX_FILE_BYTES):
    """Replay a LogFS region; returns ``(files, skipped, span)``.

    ``files`` maps path -> content after last-version-wins replay,
    ``skipped`` lists ``(label, reason)`` for nodes dropped by CRC or
    budget, and ``span`` is the number of bytes the log occupies from
    ``offset`` (including the erased tail) — the extent a recursive
    carver should attribute to this filesystem.
    """
    if data[offset:offset + 4] != MAGIC:
        raise FirmwareError("not a LogFS node log at offset 0x%x" % offset)
    latest = {}            # path -> (version, content or None)
    skipped = []
    cursor = offset
    end = len(data)
    while cursor < end:
        window = data[cursor:cursor + 4]
        if window[:4] != MAGIC:
            # Erased-flash padding continues the log; anything else
            # ends the extent (the next container's bytes).
            if window and all(b == _PAD for b in window):
                cursor += len(window)
                continue
            break
        if cursor + _NODE_SIZE + 4 > end:
            skipped.append(("node@0x%x" % (cursor - offset),
                            "truncated node header"))
            cursor = end
            break
        (_magic, flags, _mode, version, path_len, stored_len,
         raw_len) = struct.unpack_from(_NODE, data, cursor)
        (crc,) = struct.unpack_from(_CRC, data, cursor + _NODE_SIZE)
        body_start = cursor + _NODE_SIZE + 4
        body_end = body_start + path_len + stored_len
        if body_end > end:
            skipped.append(("node@0x%x" % (cursor - offset),
                            "node body runs past the region"))
            cursor = end
            break
        path_bytes = data[body_start:body_start + path_len]
        stored = data[body_start + path_len:body_end]
        cursor = _align(body_end)
        label = path_bytes.decode("utf-8", "replace")
        if zlib.crc32(path_bytes + stored) & 0xFFFFFFFF != crc:
            skipped.append((label, "node CRC mismatch"))
            continue
        if raw_len > max_file_bytes:
            skipped.append((label, "node declares %d bytes, over the "
                            "per-file cap" % raw_len))
            continue
        if flags & FLAG_COMPRESSED:
            inflater = zlib.decompressobj()
            try:
                content = inflater.decompress(stored, raw_len)
            except zlib.error as exc:
                skipped.append((label, "corrupt compressed node: %s" % exc))
                continue
            if inflater.decompress(b"", 1) or len(content) != raw_len:
                skipped.append((label, "bad decompressed node size"))
                continue
        else:
            content = stored
            if len(content) != raw_len:
                skipped.append((label, "stored/raw length mismatch"))
                continue
        previous = latest.get(label)
        if previous is None or version >= previous[0]:
            latest[label] = (
                version, None if flags & FLAG_DELETED else content
            )
    files = {
        path: content for path, (_v, content) in latest.items()
        if content is not None
    }
    return files, skipped, cursor - offset
